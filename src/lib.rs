//! # sorn
//!
//! Umbrella crate for the SORN workspace — a from-scratch implementation
//! of *"Semi-Oblivious Reconfigurable Datacenter Networks"* (HotNets '24)
//! and everything it depends on: circuit schedules, a slot-synchronous
//! packet simulator, oblivious and semi-oblivious routing, workload
//! generators, a macro-pattern control plane, and the full evaluation
//! harness.
//!
//! Re-exports every workspace crate under a stable module name:
//!
//! | module | contents |
//! |---|---|
//! | [`topology`] | matchings, circuit schedules, builders, AWGR model |
//! | [`sim`] | the deterministic slot-synchronous cell simulator |
//! | [`routing`] | VLB / h-dim / SORN routers and flow-level evaluation |
//! | [`traffic`] | pFabric & Facebook-like workloads, traces |
//! | [`core`] | the SORN design: config, model formulas, baselines |
//! | [`control`] | pattern estimation, clique optimization, updates |
//! | [`analysis`] | Table 1 / Figure 2(f) / ablation experiment drivers |
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use sorn_analysis as analysis;
pub use sorn_control as control;
pub use sorn_core as core;
pub use sorn_routing as routing;
pub use sorn_sim as sim;
pub use sorn_topology as topology;
pub use sorn_traffic as traffic;
