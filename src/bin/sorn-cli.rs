//! `sorn-cli` — command-line front end for the SORN library.
//!
//! ```text
//! sorn-cli analyze  --n 4096 --cliques 64 --locality 0.56 [--uplinks 16]
//! sorn-cli schedule --n 8 --cliques 2 --q 3
//! sorn-cli gen-trace --n 32 --cliques 4 --locality 0.56 --load 0.3 \
//!                    --duration-us 500 --seed 1 --out trace.json
//! sorn-cli simulate --trace trace.json --cliques 4 [--locality 0.56]
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set minimal.

use sorn::analysis::fct::{bucketed_slowdown, DEFAULT_BUCKETS};
use sorn::analysis::render::{fmt_latency, fmt_pct, TextTable};
use sorn::core::{SornConfig, SornNetwork};
use sorn::sim::SimConfig;
use sorn::sim::{CheckpointStore, Engine};
use sorn::topology::Ratio;
use sorn::traffic::spatial::CliqueLocal;
use sorn::traffic::{FlowSizeDist, PoissonWorkload, Trace};
use sorn_bench::{
    drive_checkpointed, install_stop_handler, load_resume, DriveOutcome, RunMode, EXIT_INTERRUPTED,
};
use sorn_telemetry::{WeatherProbe, DEFAULT_TOPK};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Flags that take no value (`--resume` vs `--key value`).
const BOOL_FLAGS: &[&str] = &["resume", "weather"];

/// Parsed `--key value` arguments.
struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = &argv[i];
            if !key.starts_with("--") {
                return Err(format!("expected --flag, got `{key}`"));
            }
            if BOOL_FLAGS.contains(&&key[2..]) {
                flags.insert(key[2..].to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let Some(value) = argv.get(i + 1) else {
                return Err(format!("flag `{key}` is missing a value"));
            };
            flags.insert(key[2..].to_string(), value.clone());
            i += 2;
        }
        Ok(Args { flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse `{v}`")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }
}

const USAGE: &str = "usage:
  sorn-cli table1
  sorn-cli fig2f     [--n <nodes>] [--cliques <count>]
  sorn-cli hierarchy --radices 4,4,4 --profile 0.6,0.25,0.15
  sorn-cli analyze   --n <nodes> --cliques <count> --locality <x> [--uplinks u] [--slot-ns s] [--prop-ns p] [--q a/b]
  sorn-cli schedule  --n <nodes> --cliques <count> [--q a/b | --locality <x>]
  sorn-cli gen-trace --n <nodes> --cliques <count> --locality <x> --load <rho> --duration-us <t> [--seed k] [--dist web-search|data-mining|fixed:<bytes>] --out <file>
  sorn-cli simulate  --trace <file> --cliques <count> [--locality <x>] [--seed k] [--max-slots m]
                     [--weather] [--weather-topk <k>]
                     [--checkpoint-dir <dir>] [--checkpoint-every <slots>] [--resume]";

fn parse_q(s: &str) -> Result<Ratio, String> {
    if let Some((a, b)) = s.split_once('/') {
        let num: u64 = a.parse().map_err(|_| format!("bad ratio `{s}`"))?;
        let den: u64 = b.parse().map_err(|_| format!("bad ratio `{s}`"))?;
        if num == 0 || den == 0 {
            return Err(format!("ratio `{s}` must be positive"));
        }
        Ok(Ratio::new(num, den))
    } else {
        let v: u64 = s.parse().map_err(|_| format!("bad ratio `{s}`"))?;
        if v == 0 {
            return Err("ratio must be positive".into());
        }
        Ok(Ratio::integer(v))
    }
}

fn parse_dist(s: &str) -> Result<FlowSizeDist, String> {
    match s {
        "web-search" => Ok(FlowSizeDist::web_search()),
        "data-mining" => Ok(FlowSizeDist::data_mining()),
        other => {
            if let Some(bytes) = other.strip_prefix("fixed:") {
                let b: u64 = bytes.parse().map_err(|_| format!("bad size `{bytes}`"))?;
                Ok(FlowSizeDist::fixed(b))
            } else {
                Err(format!("unknown distribution `{other}`"))
            }
        }
    }
}

fn build_config(args: &Args) -> Result<SornConfig, String> {
    let n: usize = args.get("n", 0usize)?;
    let cliques: usize = args.get("cliques", 0usize)?;
    if n == 0 || cliques == 0 {
        return Err("need --n and --cliques".into());
    }
    let mut cfg = SornConfig::small(n, cliques, args.get("locality", 0.56f64)?);
    cfg.uplinks = args.get("uplinks", 1usize)?;
    cfg.slot_ns = args.get("slot-ns", 100u64)?;
    cfg.propagation_ns = args.get("prop-ns", 500u64)?;
    if let Some(q) = args.flags.get("q") {
        cfg.q = Some(parse_q(q)?);
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

fn parse_list<T: std::str::FromStr>(s: &str, what: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("bad {what} entry `{p}`"))
        })
        .collect()
}

fn cmd_hierarchy(args: &Args) -> Result<(), String> {
    let radices: Vec<usize> = parse_list(args.required("radices")?, "radix")?;
    let profile: Vec<f64> = parse_list(args.required("profile")?, "profile")?;
    let model =
        sorn::core::HierarchyModel::new(radices.clone(), profile).map_err(|e| e.to_string())?;
    println!(
        "hierarchical SORN over {} nodes ({} levels, radices {:?})",
        radices.iter().product::<usize>(),
        radices.len(),
        radices
    );
    let mut t = TextTable::new(&["metric", "value"]);
    let w = model.optimal_weights();
    t.row(vec![
        "optimal bandwidth split".into(),
        w.iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(" / "),
    ]);
    t.row(vec![
        "mean hops / BW cost".into(),
        format!("{:.3}", model.mean_hops()),
    ]);
    t.row(vec![
        "worst-case throughput".into(),
        fmt_pct(model.optimal_throughput()),
    ]);
    for l in 0..model.levels() {
        t.row(vec![
            format!("level-{l} delta_m (slots)"),
            format!("{:.0}", model.class_delta_m(l).ceil()),
        ]);
    }
    print!("{}", t.render());
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let net = SornNetwork::build(cfg).map_err(|e| e.to_string())?;
    let a = net.analysis();
    println!(
        "SORN analysis — {} nodes, {} cliques of {}, x = {}",
        net.config().n,
        net.config().cliques,
        net.config().clique_size(),
        net.config().locality
    );
    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["oversubscription q".into(), format!("{:.4}", a.q)]);
    t.row(vec![
        "intra delta_m (slots)".into(),
        format!("{:.0}", a.intra_delta_m.ceil()),
    ]);
    t.row(vec![
        "inter delta_m (slots)".into(),
        format!("{:.0}", a.inter_delta_m.ceil()),
    ]);
    t.row(vec![
        "intra worst latency".into(),
        fmt_latency(a.intra_latency_ns),
    ]);
    t.row(vec![
        "inter worst latency".into(),
        fmt_latency(a.inter_latency_ns),
    ]);
    t.row(vec!["worst-case throughput".into(), fmt_pct(a.throughput)]);
    t.row(vec![
        "mean hops / BW cost".into(),
        format!("{:.2}", a.mean_hops),
    ]);
    t.row(vec![
        "schedule period (slots)".into(),
        net.schedule().period().to_string(),
    ]);
    print!("{}", t.render());
    Ok(())
}

fn cmd_schedule(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let net = SornNetwork::build(cfg).map_err(|e| e.to_string())?;
    print!("{}", net.schedule().render_table());
    Ok(())
}

fn cmd_gen_trace(args: &Args) -> Result<(), String> {
    let cfg = build_config(args)?;
    let load: f64 = args.get("load", 0.3f64)?;
    let duration_us: u64 = args.get("duration-us", 500u64)?;
    let seed: u64 = args.get("seed", 0u64)?;
    let out = args.required("out")?;
    let dist = parse_dist(&args.get("dist", "web-search".to_string())?)?;

    let net = SornNetwork::build(cfg.clone()).map_err(|e| e.to_string())?;
    let wl = PoissonWorkload {
        n: cfg.n,
        load,
        node_bandwidth_bytes_per_ns: 12.5 * cfg.uplinks as f64,
        duration_ns: duration_us * 1000,
        seed,
    };
    let flows = wl.generate(
        &dist,
        &CliqueLocal::new(net.cliques().clone(), cfg.locality),
    );
    let trace = Trace::record(
        cfg.n,
        &format!(
            "poisson load={load} x={} dist={} duration={duration_us}us seed={seed}",
            cfg.locality,
            dist.name()
        ),
        &flows,
    );
    std::fs::write(out, trace.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} flows to {out}", flows.len());
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let path = args.required("trace")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trace = Trace::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    let cliques: usize = args.get("cliques", 0usize)?;
    if cliques == 0 {
        return Err("need --cliques".into());
    }
    let mut cfg = SornConfig::small(trace.nodes, cliques, args.get("locality", 0.56f64)?);
    cfg.uplinks = args.get("uplinks", 1usize)?;
    cfg.validate().map_err(|e| e.to_string())?;
    let seed: u64 = args.get("seed", 0u64)?;
    let max_slots: u64 = args.get("max-slots", 10_000_000u64)?;

    let net = SornNetwork::build(cfg.clone()).map_err(|e| e.to_string())?;
    let flows = trace.replay();
    println!(
        "simulating {} flows ({}) on {} nodes / {} cliques...",
        flows.len(),
        trace.description,
        trace.nodes,
        cliques
    );
    // `--weather-topk` implies `--weather`, mirroring the harness flags.
    let weather_topk: usize = args.get("weather-topk", DEFAULT_TOPK)?;
    if weather_topk == 0 {
        return Err("flag --weather-topk: must be >= 1".into());
    }
    let weather_on = args.flags.contains_key("weather") || args.flags.contains_key("weather-topk");
    let (metrics, drained, weather) = if let Some(dir) = args.flags.get("checkpoint-dir") {
        simulate_checkpointed(
            &net,
            &cfg,
            flows,
            seed,
            max_slots,
            args,
            PathBuf::from(dir),
            weather_on,
            weather_topk,
        )?
    } else {
        if args.flags.contains_key("checkpoint-every") || args.flags.contains_key("resume") {
            return Err("--checkpoint-every/--resume require --checkpoint-dir".into());
        }
        let probe = weather_on.then(|| WeatherProbe::new(net.cliques().clone(), weather_topk));
        let (metrics, drained, probe) = net
            .simulate_with_probe(flows, seed, max_slots, probe)
            .map_err(|e| e.to_string())?;
        (metrics, drained, probe)
    };

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["drained".into(), drained.to_string()]);
    t.row(vec![
        "flows completed".into(),
        metrics.flows.len().to_string(),
    ]);
    t.row(vec![
        "cells delivered".into(),
        metrics.delivered_cells.to_string(),
    ]);
    t.row(vec![
        "mean hops".into(),
        format!("{:.3}", metrics.mean_hops()),
    ]);
    t.row(vec![
        "delivery fraction".into(),
        format!("{:.3}", metrics.delivery_fraction()),
    ]);
    t.row(vec![
        "circuit utilization".into(),
        format!("{:.3}", metrics.circuit_utilization()),
    ]);
    t.row(vec!["mean FCT".into(), fmt_latency(metrics.mean_fct_ns())]);
    if let Some(p99) = metrics.fct_percentile_ns(99.0) {
        t.row(vec!["p99 FCT".into(), fmt_latency(p99 as f64)]);
    }
    print!("{}", t.render());

    // Size-bucketed slowdown (pFabric-style).
    let sim_cfg = SimConfig {
        slot_ns: cfg.slot_ns,
        propagation_ns: cfg.propagation_ns,
        uplinks: cfg.uplinks,
        ..SimConfig::default()
    };
    let buckets = bucketed_slowdown(&metrics.flows, &sim_cfg, &DEFAULT_BUCKETS);
    println!("\nFCT slowdown by flow size:");
    let mut bt = TextTable::new(&["size", "flows", "mean slowdown", "p99 slowdown"]);
    for b in buckets {
        if b.flows == 0 {
            continue;
        }
        let label = if b.hi == u64::MAX {
            format!(">= {} KB", b.lo / 1000)
        } else {
            format!("{}-{} KB", b.lo / 1000, b.hi / 1000)
        };
        bt.row(vec![
            label,
            b.flows.to_string(),
            format!("{:.2}", b.mean_slowdown),
            format!("{:.2}", b.p99_slowdown),
        ]);
    }
    print!("{}", bt.render());

    if let Some(w) = weather {
        println!();
        print!("{}", w.render_txt("simulate"));
        let txt_path = "WEATHER_simulate.txt";
        let json_path = "WEATHER_simulate.json";
        std::fs::write(txt_path, w.render_txt("simulate"))
            .and_then(|()| std::fs::write(json_path, w.render_json("simulate")))
            .map_err(|e| format!("writing weather report: {e}"))?;
        println!("wrote {txt_path} and {json_path}");
    }
    Ok(())
}

/// Snapshot blob name carrying the weather probe's serialized state, so
/// a resumed run's report is byte-identical to an uninterrupted one.
const BLOB_WEATHER: &str = "weather";

/// The crash-safe variant of `simulate`: drives the engine directly,
/// snapshotting full state (plus the weather probe, when on) to
/// `dir/simulate/` every `--checkpoint-every` slots (default 10000, two
/// rolling generations). SIGINT/SIGTERM finishes the current slot,
/// writes a final checkpoint, and exits with code 3; `--resume`
/// continues from the newest valid generation and prints the identical
/// tables an uninterrupted run would have.
#[allow(clippy::too_many_arguments)]
fn simulate_checkpointed(
    net: &SornNetwork,
    cfg: &SornConfig,
    flows: Vec<sorn::sim::Flow>,
    seed: u64,
    max_slots: u64,
    args: &Args,
    dir: PathBuf,
    weather_on: bool,
    weather_topk: usize,
) -> Result<(sorn::sim::Metrics, bool, Option<WeatherProbe>), String> {
    let every: u64 = args.get("checkpoint-every", 10_000u64)?;
    if every == 0 {
        return Err("flag --checkpoint-every: must be >= 1".into());
    }
    let resume = args.flags.contains_key("resume");
    let sim_cfg = SimConfig {
        slot_ns: cfg.slot_ns,
        propagation_ns: cfg.propagation_ns,
        uplinks: cfg.uplinks,
        seed,
        engine_threads: cfg.engine_threads,
        trace_one_in: cfg.trace_one_in,
        ..SimConfig::default()
    };
    let mut store = CheckpointStore::open(dir.join("simulate")).map_err(|e| e.to_string())?;
    let stop = install_stop_handler();
    let mut eng = match load_resume(&store, resume)? {
        Some(out) => {
            for (path, reason) in &out.skipped {
                eprintln!(
                    "sorn-cli: skipped corrupt checkpoint {}: {reason}",
                    path.display()
                );
            }
            let probe = match out.snapshot.blob(BLOB_WEATHER) {
                Some(b) => Some(
                    WeatherProbe::from_bytes(b, net.cliques().clone())
                        .map_err(|e| format!("bad weather blob in checkpoint: {e}"))?,
                ),
                None => weather_on.then(|| WeatherProbe::new(net.cliques().clone(), weather_topk)),
            };
            let eng =
                Engine::restore_with_probe(&out.snapshot, net.schedule(), net.router(), probe)
                    .map_err(|e| {
                        format!(
                            "checkpoint {} does not fit this scenario: {e}",
                            out.path.display()
                        )
                    })?;
            eprintln!(
                "sorn-cli: resumed from {} at slot {}",
                out.path.display(),
                out.snapshot.slot()
            );
            eng
        }
        None => {
            let probe = weather_on.then(|| WeatherProbe::new(net.cliques().clone(), weather_topk));
            let mut eng = Engine::with_probe(sim_cfg, net.schedule(), net.router(), probe);
            eng.add_flows(flows).map_err(|e| e.to_string())?;
            eng
        }
    };
    let outcome = drive_checkpointed(
        &mut eng,
        RunMode::UntilDrained(max_slots),
        &mut store,
        every,
        stop,
        |eng, snap| {
            if let Some(w) = eng.probe() {
                snap.attach_blob(BLOB_WEATHER, w.to_bytes());
            }
        },
        |_, _, _| {},
    )
    .map_err(|e| e.to_string())?;
    match outcome {
        DriveOutcome::Interrupted { slot, path } => {
            eprintln!(
                "sorn-cli: interrupted at slot {slot}; wrote {}; rerun with --resume",
                path.display()
            );
            std::process::exit(EXIT_INTERRUPTED);
        }
        DriveOutcome::Completed { drained } => {
            let metrics = eng.metrics().clone();
            Ok((metrics, drained, eng.finish()))
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return Err(USAGE.into());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "table1" => {
            let params = sorn::analysis::table1::Table1Params::default();
            print!(
                "{}",
                sorn::analysis::table1::render(&sorn::analysis::table1::generate(&params))
            );
            Ok(())
        }
        "fig2f" => {
            let mut params = sorn::analysis::fig2f::Fig2fParams::default();
            params.n = args.get("n", params.n)?;
            params.cliques = args.get("cliques", params.cliques)?;
            let pts = sorn::analysis::fig2f::generate(&params).map_err(|e| e.to_string())?;
            let mut t = TextTable::new(&["x", "theory 1/(3-x)", "simulated"]);
            for p in pts {
                t.row(vec![
                    format!("{:.1}", p.x),
                    format!("{:.4}", p.theory),
                    format!("{:.4}", p.simulated),
                ]);
            }
            print!("{}", t.render());
            Ok(())
        }
        "hierarchy" => cmd_hierarchy(&args),
        "analyze" => cmd_analyze(&args),
        "schedule" => cmd_schedule(&args),
        "gen-trace" => cmd_gen_trace(&args),
        "simulate" => cmd_simulate(&args),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let argv: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn parse_key_value_pairs() {
        let a = args(&[("n", "16"), ("cliques", "4")]);
        assert_eq!(a.get("n", 0usize).unwrap(), 16);
        assert_eq!(a.get("missing", 7u64).unwrap(), 7);
        assert!(a.required("cliques").is_ok());
        assert!(a.required("nope").is_err());
    }

    #[test]
    fn parse_bool_flags_take_no_value() {
        let a = Args::parse(&["--resume".into(), "--n".into(), "4".into()]).unwrap();
        assert_eq!(a.flags.get("resume").map(String::as_str), Some("true"));
        assert_eq!(a.get("n", 0usize).unwrap(), 4);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Args::parse(&["positional".into()]).is_err());
        assert!(Args::parse(&["--dangling".into()]).is_err());
        let a = args(&[("n", "abc")]);
        assert!(a.get("n", 0usize).is_err());
    }

    #[test]
    fn parse_q_forms() {
        assert_eq!(parse_q("3").unwrap(), Ratio::integer(3));
        assert_eq!(parse_q("50/11").unwrap(), Ratio::new(50, 11));
        assert!(parse_q("0").is_err());
        assert!(parse_q("a/b").is_err());
        assert!(parse_q("3/0").is_err());
    }

    #[test]
    fn parse_dist_forms() {
        assert_eq!(
            parse_dist("web-search").unwrap().name(),
            "pfabric-web-search"
        );
        assert_eq!(parse_dist("fixed:1500").unwrap().name(), "fixed-1500B");
        assert!(parse_dist("bogus").is_err());
        assert!(parse_dist("fixed:x").is_err());
    }

    #[test]
    fn parse_list_forms() {
        let v: Vec<usize> = parse_list("4,4,8", "radix").unwrap();
        assert_eq!(v, vec![4, 4, 8]);
        let f: Vec<f64> = parse_list("0.6, 0.25, 0.15", "profile").unwrap();
        assert_eq!(f.len(), 3);
        assert!(parse_list::<usize>("4,x", "radix").is_err());
    }

    #[test]
    fn build_config_validates() {
        let a = args(&[("n", "16"), ("cliques", "4"), ("locality", "0.5")]);
        let cfg = build_config(&a).unwrap();
        assert_eq!(cfg.n, 16);
        assert_eq!(cfg.effective_q(), Ratio::integer(4));
        let bad = args(&[("n", "10"), ("cliques", "3")]);
        assert!(build_config(&bad).is_err());
    }
}
