//! Resilience under a seeded failure storm: flat VLB vs modular SORN.
//!
//! The §6 blast-radius study argues statically that modular designs
//! confine each flow's failure exposure; this experiment measures the
//! dynamic consequence. Both fabrics carry the *same* workload through
//! the *same* scripted storm (seeded MTBF/MTTR outages over a shared
//! set of links and nodes), with fault-aware routing detouring around
//! dead circuits. The table reports goodput degradation while failed
//! and time-to-recover after repairs, straight from the engine's
//! metrics. Pass `--trace-out <file>` for per-scheme JSONL run traces;
//! `--jobs 2` runs the two fabrics on worker threads (each run is
//! self-contained and seeded, so the table is identical either way);
//! `--engine-threads N` shards the slot phases inside each simulation
//! (also bit-identical at any thread count).
//!
//! `--serve-metrics ADDR` serves live `/metrics`, `/health`,
//! `/progress`, and `/weather` over HTTP while the storms run
//! (`--serve-linger-ms` keeps the endpoint up afterwards). A flight
//! recorder always rides along (`--flight-ring N` sizes its ring, a
//! power of two, default 4096); a scheme that trips an anomaly watchdog
//! (the storm's drop spikes usually do) dumps its recent-event ring to
//! `FLIGHT_<scheme>.jsonl` in the working directory.
//!
//! `--trace-flows N` turns on causal flow tracing (roughly one flow in
//! N; 1 traces everything): each scheme prints a tail-autopsy table
//! attributing its slowest traced cells' latency to queueing vs
//! transmission vs reconfiguration wait. `--weather` attaches the
//! bounded-memory network-weather roll-up (per-clique demand/goodput
//! matrices, `--weather-topk K` heavy-hitter sketches, a decimated
//! timeline) and writes `WEATHER_<scheme>.{txt,json}` run reports in
//! the working directory, byte-identical at any `--engine-threads` and
//! across a checkpoint/resume.
//!
//! `--checkpoint-dir DIR` turns on crash-safe checkpointing: both
//! schemes run sequentially, snapshotting engine plus flight-recorder
//! state every `--checkpoint-every N` slots to `DIR/<scheme>/` (two
//! rolling generations). SIGINT/SIGTERM finishes the current slot,
//! writes a final checkpoint, and exits with code 3; `--resume`
//! continues from the newest valid checkpoint and prints the identical
//! table an uninterrupted run would have. Checkpointing composes with
//! `--engine-threads` but not with `--trace-out` (the JSONL sink
//! appends to a file mid-run and cannot be rewound on resume).

use sorn_analysis::autopsy::TailAutopsy;
use sorn_analysis::resilience::{resilience_table, ResilienceRow};
use sorn_bench::{
    drive_checkpointed, header, install_stop_handler, load_resume, run_jobs,
    take_engine_threads_flag, take_flight_ring_flag, take_jobs_flag, take_trace_flows_flag,
    CheckpointOpts, DriveOutcome, RunMode, Task, TelemetryOpts, WeatherOpts, EXIT_INTERRUPTED,
};
use sorn_control::{ControlConfig, ControlLoop, EpochOutcome};
use sorn_routing::{FaultAwareSornRouter, FaultAwareVlbRouter};
use sorn_sim::{
    CheckpointStore, Engine, FailureSet, FaultPlan, FaultStorm, Flow, LinkHealth, Metrics, Router,
    SimConfig, Snapshot,
};
use sorn_telemetry::{
    FlightRecorder, FlowTraceCollector, IntervalSampler, JsonlTraceSink, LiveMetricsProbe,
    MetricsPublisher, MetricsServer, WeatherProbe,
};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId, Ratio};
use sorn_traffic::{spatial::CliqueLocal, FlowSizeDist, PoissonWorkload};
use std::path::{Path, PathBuf};

const N: usize = 32;
const CLIQUES: usize = 4;
const DURATION_NS: u64 = 400_000;
const STORM_SEED: u64 = 5;
/// The correlated port-group burst (see [`storm`]).
const BURST_FROM_NS: u64 = 200_000;
const BURST_UNTIL_NS: u64 = 295_000;

/// Copyable per-scheme observability knobs from the command line.
#[derive(Clone, Copy)]
struct ObsOpts {
    /// `--weather` / `--weather-topk`: the network-weather roll-up.
    weather: WeatherOpts,
    /// `--flight-ring`: flight-recorder ring capacity (power of two).
    flight_ring: usize,
    /// `--trace-flows`: causal-trace sampling (one flow in N); 0 off.
    trace_flows: u64,
}

/// The composed per-scheme probe: an optional causal-trace collector,
/// an optional live-metrics feeder, an optional weather roll-up, and
/// the always-on flight recorder.
type SchemeProbe = (
    Option<FlowTraceCollector>,
    (
        (Option<LiveMetricsProbe>, Option<WeatherProbe>),
        FlightRecorder,
    ),
);

/// Builds one scheme's fresh [`SchemeProbe`].
fn scheme_probe(
    scheme: &str,
    obs: ObsOpts,
    map: &CliqueMap,
    slots: u64,
    slot_ns: u64,
    publisher: &Option<MetricsPublisher>,
) -> SchemeProbe {
    (
        (obs.trace_flows > 0).then(|| FlowTraceCollector::new(slot_ns)),
        (
            (
                publisher
                    .clone()
                    .map(|p| LiveMetricsProbe::new(p).with_max_slots(slots)),
                obs.weather.enabled.then(|| {
                    let probe = WeatherProbe::new(map.clone(), obs.weather.topk);
                    match publisher {
                        Some(p) => probe.with_publisher(p.clone()),
                        None => probe,
                    }
                }),
            ),
            FlightRecorder::new(obs.flight_ring).with_dump_path(format!("FLIGHT_{scheme}.jsonl")),
        ),
    )
}

/// Turns one scheme's finished probe into summary messages: the
/// tail-autopsy table for traced runs, the weather run reports, and a
/// pointer to the flight-recorder dump when a watchdog fired.
/// Everything is deterministic at any `--engine-threads`.
fn summarize_probe(scheme: &str, probe: SchemeProbe, messages: &mut Vec<String>) {
    let (collector, ((_live, weather), mut recorder)) = probe;
    if let Some(c) = collector {
        let autopsy = TailAutopsy::from_breakdowns(&c.cell_breakdowns(), 5);
        messages.push(format!("[{scheme}] traced {} hop events", c.len()));
        for line in autopsy.render().lines() {
            messages.push(format!("  {line}"));
        }
    }
    if let Some(w) = weather {
        let txt_path = PathBuf::from(format!("WEATHER_{scheme}.txt"));
        let json_path = PathBuf::from(format!("WEATHER_{scheme}.json"));
        if let Err(e) = std::fs::write(&txt_path, w.render_txt(scheme))
            .and_then(|()| std::fs::write(&json_path, w.render_json(scheme)))
        {
            eprintln!("resilience: cannot write weather report for {scheme}: {e}");
        } else {
            messages.push(format!(
                "[{scheme}] weather: {} and {}",
                txt_path.display(),
                json_path.display()
            ));
        }
    }
    match recorder.dump_if_anomalous() {
        Ok(Some(path)) => messages.push(format!(
            "[{scheme}] flight recorder: anomaly -> {}",
            path.display()
        )),
        Ok(None) => {}
        Err(e) => eprintln!("resilience: flight-recorder dump for {scheme} failed: {e}"),
    }
}

fn main() {
    let (jobs, engine_threads, ckpt, telemetry, obs) = parse_args();
    header("Resilience: flat VLB vs modular SORN under one failure storm");

    // The per-scheme trace files land next to the `--trace-out` base
    // path; create its directory up front so a fresh results tree
    // doesn't fail deep inside a worker thread.
    if let Some(base) = &telemetry.trace_out {
        if let Some(parent) = base.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!(
                    "resilience: cannot create --trace-out directory {}: {e}",
                    parent.display()
                );
                std::process::exit(2);
            }
        }
    }

    let server = telemetry.serve_metrics.as_ref().map(|addr| {
        let (server, publisher) = MetricsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("resilience: cannot bind --serve-metrics {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "resilience: serving /metrics on http://{}",
            server.local_addr()
        );
        (server, publisher)
    });
    let publisher = server.as_ref().map(|(_, p)| p.clone());

    let map = CliqueMap::contiguous(N, CLIQUES);
    let q = Ratio::integer(3);
    let flat_sched = round_robin(N).expect("round robin");
    let sorn_sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).expect("sorn schedule");

    // Sustainable load of short fixed-size flows: with headroom, queues
    // stay shallow while healthy, so the degradation and recovery
    // columns measure the storm rather than a standing backlog.
    let wl = PoissonWorkload {
        n: N,
        load: 0.3,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: DURATION_NS,
        seed: 11,
    };
    let flows = wl.generate(
        &FlowSizeDist::fixed(10 * 1250),
        &CliqueLocal::new(map.clone(), 0.7),
    );
    let plan = storm(&map);
    println!(
        "{N} nodes, {CLIQUES} cliques, {} flows over {DURATION_NS} ns;",
        flows.len()
    );
    println!(
        "storm: {} fail/restore events (seed {STORM_SEED}): clique-0 link + node outages,",
        plan.len()
    );
    println!(
        "plus a correlated port-group burst at 4 clique-2 nodes ({BURST_FROM_NS}-{BURST_UNTIL_NS} ns)\n"
    );

    let (flat, flat_msg, sorn, sorn_msg) = if let Some(ckpt_dir) = &ckpt.dir {
        // Checkpointed runs go sequentially: the two schemes share one
        // stop flag, and a signal mid-suite leaves each scheme's own
        // rolling generations behind for `--resume`.
        if jobs > 1 {
            eprintln!("resilience: --checkpoint-dir runs the schemes sequentially; ignoring --jobs {jobs}");
        }
        let stop = install_stop_handler();
        eprintln!(
            "resilience: checkpointing to {} every {} slots",
            ckpt_dir.display(),
            ckpt.cadence()
        );
        let mut done = Vec::new();
        for scheme in ["flat-vlb", "sorn"] {
            let health = LinkHealth::new();
            let flat_router;
            let sorn_router;
            let (sched, router): (_, &dyn Router) = if scheme == "flat-vlb" {
                flat_router = FaultAwareVlbRouter::new(health.clone());
                (&flat_sched, &flat_router)
            } else {
                sorn_router = FaultAwareSornRouter::new(map.clone(), health.clone());
                (&sorn_sched, &sorn_router)
            };
            let outcome = run_scheme_checkpointed(
                scheme,
                sched,
                router,
                health,
                &map,
                flows.clone(),
                plan.clone(),
                engine_threads,
                obs,
                publisher.clone(),
                ckpt_dir,
                ckpt.cadence(),
                ckpt.resume,
                stop,
            );
            match outcome {
                Err(e) => {
                    eprintln!("resilience: {e}");
                    std::process::exit(2);
                }
                Ok(None) => {
                    // Interrupted: final checkpoint is on disk.
                    if let Some((server, publisher)) = server {
                        publisher.mark_done();
                        server.shutdown();
                    }
                    std::process::exit(EXIT_INTERRUPTED);
                }
                Ok(Some(r)) => done.push(r),
            }
        }
        let (sorn, sorn_msg) = done.pop().expect("sorn result");
        let (flat, flat_msg) = done.pop().expect("flat-vlb result");
        (flat, flat_msg, sorn, sorn_msg)
    } else {
        // Each scheme's closure owns everything it touches (schedule,
        // router, health mirror, flows, plan), so the pair can run on
        // worker threads; trace messages print after the join, in order.
        let tasks: Vec<Task<(Metrics, Option<String>)>> = vec![
            {
                let (sched, map, flows, plan, telemetry, publisher) = (
                    flat_sched,
                    map.clone(),
                    flows.clone(),
                    plan.clone(),
                    telemetry.clone(),
                    publisher.clone(),
                );
                Box::new(move || {
                    let health = LinkHealth::new();
                    let router = FaultAwareVlbRouter::new(health.clone());
                    run_scheme(
                        "flat-vlb",
                        &sched,
                        &router,
                        health,
                        &map,
                        flows,
                        plan,
                        engine_threads,
                        &telemetry,
                        obs,
                        publisher,
                    )
                })
            },
            {
                let (sched, map, flows, plan, telemetry, publisher) = (
                    sorn_sched.clone(),
                    map.clone(),
                    flows.clone(),
                    plan,
                    telemetry.clone(),
                    publisher.clone(),
                );
                Box::new(move || {
                    let health = LinkHealth::new();
                    let router = FaultAwareSornRouter::new(map.clone(), health.clone());
                    run_scheme(
                        "sorn",
                        &sched,
                        &router,
                        health,
                        &map,
                        flows,
                        plan,
                        engine_threads,
                        &telemetry,
                        obs,
                        publisher,
                    )
                })
            },
        ];
        let mut results = run_jobs(jobs, tasks).into_iter();
        let (flat, flat_msg) = results.next().expect("flat-vlb result");
        let (sorn, sorn_msg) = results.next().expect("sorn result");
        (flat, flat_msg, sorn, sorn_msg)
    };
    for msg in [flat_msg, sorn_msg].into_iter().flatten() {
        println!("{msg}");
    }

    println!(
        "{}",
        resilience_table(&[
            ResilienceRow::from_metrics("flat-vlb", &flat),
            ResilienceRow::from_metrics("sorn", &sorn),
        ])
    );
    println!("Modularity confines the storm: flat VLB sprays through every fabric");
    println!("link, so the port-group burst queues everyone's traffic behind it and");
    println!("goodput visibly dips; SORN never schedules those circuits, keeps its");
    println!("baseline goodput, and drains its (clique-local) backlog far sooner");
    println!("once repairs land.\n");

    control_recovery_demo(&map, q, &sorn_sched, &flows);

    if let Some((server, publisher)) = server {
        publisher.mark_done();
        if telemetry.serve_linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(telemetry.serve_linger_ms));
        }
        server.shutdown();
    }
}

/// The shared storm, two parts, both identical for the two fabrics:
///
/// 1. Seeded MTBF/MTTR outages over three clique-0 links (both fabrics
///    schedule them) plus one node.
/// 2. A correlated late burst — four clique-2 nodes lose every uplink
///    toward remote nodes at mismatched intra indices, modeling a
///    failing port group. Flat VLB sprays over all of those circuits,
///    so fabric-wide through-traffic queues behind them; SORN schedules
///    none of them (they are neither intra-clique nor index-matched
///    gateway links), so its exposure is zero by construction.
///
/// How much of one storm each fabric is exposed to is exactly the §6
/// modularity claim, measured dynamically.
fn storm(map: &CliqueMap) -> FaultPlan {
    debug_assert_eq!(map.n(), N);
    let mut plan = FaultPlan::storm(&FaultStorm {
        seed: STORM_SEED,
        horizon_ns: 3 * DURATION_NS / 4,
        mtbf_ns: 100_000.0,
        mttr_ns: 12_000.0,
        links: vec![
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(3)),
            (NodeId(4), NodeId(5)),
        ],
        nodes: vec![NodeId(9)],
    });
    let members = N / CLIQUES;
    for src in 16..20u32 {
        for dst in 0..N as u32 {
            let cross_clique = map.clique_of(NodeId(src)) != map.clique_of(NodeId(dst));
            let index_mismatch = src as usize % members != dst as usize % members;
            if cross_clique && index_mismatch {
                plan.link_outage(NodeId(src), NodeId(dst), BURST_FROM_NS, BURST_UNTIL_NS);
            }
        }
    }
    plan
}

/// Runs one scheme through the storm and returns its final metrics
/// (stranded count included) plus observer messages to print once
/// every scheme has joined. With `--trace-out base.jsonl`, the run's
/// trace lands in `base.<scheme>.jsonl`. A flight recorder always
/// observes; an anomalous run dumps `FLIGHT_<scheme>.jsonl`.
#[allow(clippy::too_many_arguments)]
fn run_scheme(
    scheme: &str,
    schedule: &CircuitSchedule,
    router: &dyn Router,
    health: LinkHealth,
    map: &CliqueMap,
    flows: Vec<Flow>,
    plan: FaultPlan,
    engine_threads: usize,
    telemetry: &TelemetryOpts,
    obs: ObsOpts,
    publisher: Option<MetricsPublisher>,
) -> (Metrics, Option<String>) {
    let cfg = SimConfig {
        seed: 42,
        engine_threads,
        trace_one_in: obs.trace_flows,
        ..SimConfig::default()
    };
    // Measure exactly the active workload window: letting the run drain
    // to empty would append a low-rate tail of all-healthy slots and
    // skew the healthy-goodput baseline.
    let slots = DURATION_NS / cfg.slot_ns;
    let inner = scheme_probe(scheme, obs, map, slots, cfg.slot_ns, &publisher);
    let mut messages = Vec::new();
    let (metrics, probe) = if let Some(base) = &telemetry.trace_out {
        let path = suffixed(base, scheme);
        let sink = JsonlTraceSink::create(&path).unwrap_or_else(|e| {
            eprintln!(
                "resilience: cannot create --trace-out file {}: {e}",
                path.display()
            );
            std::process::exit(2);
        });
        let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
        let mut eng = Engine::with_probe(cfg, schedule, router, (sampler, inner));
        eng.set_fault_plan(plan);
        eng.set_health_mirror(health);
        eng.add_flows(flows).expect("flows in range");
        eng.run_slots(slots).expect("storm run");
        let mut metrics = eng.metrics().clone();
        metrics.stranded_cells = eng.count_stranded();
        let (sampler, probe) = eng.finish();
        let lines = sampler.into_sink().finish().unwrap_or_else(|e| {
            eprintln!(
                "resilience: cannot flush --trace-out file {}: {e}",
                path.display()
            );
            std::process::exit(2);
        });
        messages.push(format!(
            "[{scheme}] wrote {lines} trace events to {}",
            path.display()
        ));
        (metrics, probe)
    } else {
        let mut eng = Engine::with_probe(cfg, schedule, router, inner);
        eng.set_fault_plan(plan);
        eng.set_health_mirror(health);
        eng.add_flows(flows).expect("flows in range");
        eng.run_slots(slots).expect("storm run");
        let mut metrics = eng.metrics().clone();
        metrics.stranded_cells = eng.count_stranded();
        (metrics, eng.finish())
    };
    summarize_probe(scheme, probe, &mut messages);
    let msg = (!messages.is_empty()).then(|| messages.join("\n"));
    (metrics, msg)
}

/// Snapshot blob names for the probe state carried across a resume:
/// the causal-trace collector, the weather roll-up, and the flight
/// recorder (so a resumed run's reports and anomaly dump still contain
/// pre-interrupt events).
const BLOB_TRACE: &str = "trace";
const BLOB_WEATHER: &str = "weather";
const BLOB_FLIGHT: &str = "flight";

/// Rebuilds one scheme's probe for a resumed run from the snapshot's
/// sidecar blobs; the live-metrics feeder is wall-clock state and
/// starts fresh.
fn probe_from_snapshot(
    scheme: &str,
    obs: ObsOpts,
    map: &CliqueMap,
    slots: u64,
    slot_ns: u64,
    publisher: &Option<MetricsPublisher>,
    snap: &Snapshot,
) -> Result<SchemeProbe, String> {
    let collector = match snap.blob(BLOB_TRACE) {
        Some(b) => Some(
            FlowTraceCollector::from_bytes(b)
                .map_err(|e| format!("[{scheme}] bad trace blob in checkpoint: {e}"))?,
        ),
        None => (obs.trace_flows > 0).then(|| FlowTraceCollector::new(slot_ns)),
    };
    let weather = match snap.blob(BLOB_WEATHER) {
        Some(b) => Some(
            WeatherProbe::from_bytes(b, map.clone())
                .map_err(|e| format!("[{scheme}] bad weather blob in checkpoint: {e}"))?,
        ),
        None => obs
            .weather
            .enabled
            .then(|| WeatherProbe::new(map.clone(), obs.weather.topk)),
    }
    .map(|w| match publisher {
        Some(p) => w.with_publisher(p.clone()),
        None => w,
    });
    let recorder = match snap.blob(BLOB_FLIGHT) {
        Some(bytes) => FlightRecorder::from_bytes(bytes)
            .map_err(|e| format!("[{scheme}] flight blob in checkpoint: {e}"))?,
        None => FlightRecorder::new(obs.flight_ring),
    }
    .with_dump_path(format!("FLIGHT_{scheme}.jsonl"));
    Ok((
        collector,
        (
            (
                publisher
                    .clone()
                    .map(|p| LiveMetricsProbe::new(p).with_max_slots(slots)),
                weather,
            ),
            recorder,
        ),
    ))
}

/// The checkpointed variant of [`run_scheme`]: same storm, driven
/// slot-by-slot with a snapshot of engine plus probe state (trace,
/// weather, flight recorder) to `dir/<scheme>/` every `every` slots,
/// honoring the shared stop flag. Returns `Ok(None)` when interrupted
/// (the final checkpoint is already on disk); on completion the metrics
/// and messages are identical to an uninterrupted [`run_scheme`] run
/// without `--trace-out`.
#[allow(clippy::too_many_arguments)]
fn run_scheme_checkpointed(
    scheme: &str,
    schedule: &CircuitSchedule,
    router: &dyn Router,
    health: LinkHealth,
    map: &CliqueMap,
    flows: Vec<Flow>,
    plan: FaultPlan,
    engine_threads: usize,
    obs: ObsOpts,
    publisher: Option<MetricsPublisher>,
    dir: &Path,
    every: u64,
    resume: bool,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<Option<(Metrics, Option<String>)>, String> {
    let cfg = SimConfig {
        seed: 42,
        engine_threads,
        trace_one_in: obs.trace_flows,
        ..SimConfig::default()
    };
    let slots = DURATION_NS / cfg.slot_ns;
    let mut store =
        CheckpointStore::open(dir.join(scheme)).map_err(|e| format!("[{scheme}] {e}"))?;

    let mut eng = match load_resume(&store, resume).map_err(|e| format!("[{scheme}] {e}"))? {
        Some(mut out) => {
            out.snapshot.set_engine_threads(engine_threads);
            let probe = probe_from_snapshot(
                scheme,
                obs,
                map,
                slots,
                cfg.slot_ns,
                &publisher,
                &out.snapshot,
            )?;
            let mut eng = Engine::restore_with_probe(&out.snapshot, schedule, router, probe)
                .map_err(|e| {
                    format!(
                        "[{scheme}] checkpoint {} does not fit this scenario: {e}",
                        out.path.display()
                    )
                })?;
            // The snapshot carries the fault plan and failure state;
            // only the shared health view must be re-attached.
            eng.set_health_mirror(health);
            eprintln!(
                "resilience: [{scheme}] resumed from {} at slot {}",
                out.path.display(),
                out.snapshot.slot()
            );
            note_checkpoint_events(
                eng.probe_mut(),
                Some((out.snapshot.slot(), &out.path)),
                &out.skipped,
                &[],
            );
            eng
        }
        None => {
            let probe = scheme_probe(scheme, obs, map, slots, cfg.slot_ns, &publisher);
            let mut eng = Engine::with_probe(cfg, schedule, router, probe);
            eng.set_fault_plan(plan);
            eng.set_health_mirror(health);
            eng.add_flows(flows).expect("flows in range");
            eng
        }
    };

    let mut written = Vec::new();
    let outcome = drive_checkpointed(
        &mut eng,
        RunMode::UntilSlot(slots),
        &mut store,
        every,
        stop,
        |eng, snap| {
            let (collector, ((_live, weather), recorder)) = eng.probe();
            if let Some(c) = collector {
                snap.attach_blob(BLOB_TRACE, c.to_bytes());
            }
            if let Some(w) = weather {
                snap.attach_blob(BLOB_WEATHER, w.to_bytes());
            }
            snap.attach_blob(BLOB_FLIGHT, recorder.to_bytes());
        },
        |slot, path, bytes| written.push((slot, path.to_path_buf(), bytes)),
    )
    .map_err(|e| format!("[{scheme}] {e}"))?;
    note_checkpoint_events(eng.probe_mut(), None, &[], &written);
    match outcome {
        DriveOutcome::Interrupted { slot, path } => {
            eprintln!(
                "resilience: [{scheme}] interrupted at slot {slot}; wrote {}; rerun with --resume",
                path.display()
            );
            Ok(None)
        }
        DriveOutcome::Completed { .. } => {
            let mut metrics = eng.metrics().clone();
            metrics.stranded_cells = eng.count_stranded();
            let probe = eng.finish();
            let mut messages = Vec::new();
            summarize_probe(scheme, probe, &mut messages);
            let msg = (!messages.is_empty()).then(|| messages.join("\n"));
            Ok(Some((metrics, msg)))
        }
    }
}

/// Mirrors checkpoint lifecycle events into the flight recorder and the
/// live `/metrics` endpoint. Fired by this driver, never by the engine,
/// so the table stays bit-identical with checkpointing on or off.
fn note_checkpoint_events(
    probe: &mut SchemeProbe,
    restored: Option<(u64, &Path)>,
    skipped: &[(PathBuf, String)],
    written: &[(u64, PathBuf, usize)],
) {
    let (_collector, ((live, _weather), recorder)) = probe;
    for (path, reason) in skipped {
        recorder.note_checkpoint_corrupt_skipped(&path.display().to_string(), reason);
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_corrupt_skipped();
        }
    }
    if let Some((slot, path)) = restored {
        recorder.note_checkpoint_restored(slot, &path.display().to_string());
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_restored();
        }
    }
    for (slot, path, bytes) in written {
        recorder.note_checkpoint_written(*slot, *bytes as u64, &path.display().to_string());
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_written();
        }
    }
}

/// Parses `--jobs`, `--engine-threads`, the observability flags
/// (`--weather`, `--weather-topk`, `--flight-ring`, `--trace-flows`),
/// the checkpoint flags, and the shared telemetry flags, exiting with a
/// usage line on error.
fn parse_args() -> (usize, usize, CheckpointOpts, TelemetryOpts, ObsOpts) {
    let parse = || -> Result<(usize, usize, CheckpointOpts, TelemetryOpts, ObsOpts), String> {
        let (jobs, rest) = take_jobs_flag(std::env::args().skip(1))?;
        let (threads, rest) = take_engine_threads_flag(rest)?;
        let (weather, rest) = WeatherOpts::take(rest)?;
        let (flight_ring, rest) = take_flight_ring_flag(rest)?;
        let (trace_flows, rest) = take_trace_flows_flag(rest)?;
        let (ckpt, rest) = CheckpointOpts::take(rest)?;
        let telemetry = TelemetryOpts::parse(rest)?;
        Ok((
            jobs,
            threads,
            ckpt,
            telemetry,
            ObsOpts {
                weather,
                flight_ring,
                trace_flows,
            },
        ))
    };
    match parse() {
        Ok(v) => {
            if v.2.enabled() && v.3.trace_out.is_some() {
                eprintln!(
                    "error: --checkpoint-dir cannot be combined with --trace-out \
                     (the JSONL trace file cannot be rewound on resume)"
                );
                std::process::exit(2);
            }
            v
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: resilience [--jobs N] [--engine-threads N] [--trace-out <path>] \
                 [--sample-interval-ns <n>] [--trace-flows <n>] [--weather] \
                 [--weather-topk <k>] [--flight-ring <n>] [--serve-metrics <addr>] \
                 [--serve-linger-ms <n>] [--checkpoint-dir <dir>] [--checkpoint-every <n>] \
                 [--resume]"
            );
            std::process::exit(2);
        }
    }
}

/// `base.jsonl` + `tag` -> `base.<tag>.jsonl`.
fn suffixed(base: &Path, tag: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    base.with_file_name(format!("{stem}.{tag}.{ext}"))
}

/// The control-plane half of recovery: feed the loop the storm's
/// failure set so it masks dead demand out of the optimizer, and force
/// two installation failures to show the bounded retry/backoff path.
fn control_recovery_demo(map: &CliqueMap, q: Ratio, schedule: &CircuitSchedule, flows: &[Flow]) {
    header("Control plane: failure masking + bounded install retries");
    let mut cfg = ControlConfig::default();
    cfg.allowed_sizes = vec![4, 8];
    let mut ctl = ControlLoop::new(cfg, map.clone(), q, schedule.clone());
    ctl.observe(flows);

    let mut failures = FailureSet::none();
    failures.fail_node(NodeId(9));
    failures.fail_link(NodeId(0), NodeId(1));
    ctl.report_failures(&failures);
    ctl.inject_install_failures(2);

    let outcome = ctl.end_epoch().expect("epoch");
    let label = match outcome {
        EpochOutcome::NoPlan => "no plan".to_string(),
        EpochOutcome::Held { current, candidate } => {
            format!("held (current {current:.3}, candidate {candidate:.3})")
        }
        EpochOutcome::Updated { throughput, .. } => {
            format!("updated (modeled throughput {throughput:.3})")
        }
        EpochOutcome::InstallFailed {
            attempts,
            candidate,
        } => format!("install failed after {attempts} attempts (candidate {candidate:.3})"),
    };
    println!("epoch outcome: {label}");
    let record = ctl.decisions().records.last().expect("decision recorded");
    let fr = record
        .failure_response
        .as_ref()
        .expect("failure response recorded");
    println!(
        "failed nodes {:?}, failed links {:?}; {:.1}% of estimated demand masked",
        fr.failed_nodes,
        fr.failed_links,
        fr.masked_demand_fraction * 100.0
    );
    println!(
        "install attempts: {}, modeled retry backoff: {} ns, gave up: {}",
        fr.install_attempts, fr.install_backoff_ns, fr.gave_up
    );
}
