//! Resilience under a seeded failure storm: flat VLB vs modular SORN.
//!
//! The §6 blast-radius study argues statically that modular designs
//! confine each flow's failure exposure; this experiment measures the
//! dynamic consequence. Both fabrics carry the *same* workload through
//! the *same* scripted storm (seeded MTBF/MTTR outages over a shared
//! set of links and nodes), with fault-aware routing detouring around
//! dead circuits. The table reports goodput degradation while failed
//! and time-to-recover after repairs, straight from the engine's
//! metrics. Pass `--trace-out <file>` for per-scheme JSONL run traces;
//! `--jobs 2` runs the two fabrics on worker threads (each run is
//! self-contained and seeded, so the table is identical either way);
//! `--engine-threads N` shards the slot phases inside each simulation
//! (also bit-identical at any thread count).
//!
//! `--serve-metrics ADDR` serves live `/metrics`, `/health`, and
//! `/progress` over HTTP while the storms run (`--serve-linger-ms`
//! keeps the endpoint up afterwards). A flight recorder always rides
//! along; a scheme that trips an anomaly watchdog (the storm's drop
//! spikes usually do) dumps its recent-event ring to
//! `FLIGHT_<scheme>.jsonl` in the working directory.

use sorn_analysis::resilience::{resilience_table, ResilienceRow};
use sorn_bench::{header, run_jobs, take_engine_threads_flag, take_jobs_flag, Task, TelemetryOpts};
use sorn_control::{ControlConfig, ControlLoop, EpochOutcome};
use sorn_routing::{FaultAwareSornRouter, FaultAwareVlbRouter};
use sorn_sim::{
    Engine, FailureSet, FaultPlan, FaultStorm, Flow, LinkHealth, Metrics, Router, SimConfig,
};
use sorn_telemetry::{
    FlightRecorder, IntervalSampler, JsonlTraceSink, LiveMetricsProbe, MetricsPublisher,
    MetricsServer, DEFAULT_CAPACITY,
};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId, Ratio};
use sorn_traffic::{spatial::CliqueLocal, FlowSizeDist, PoissonWorkload};
use std::path::{Path, PathBuf};

const N: usize = 32;
const CLIQUES: usize = 4;
const DURATION_NS: u64 = 400_000;
const STORM_SEED: u64 = 5;
/// The correlated port-group burst (see [`storm`]).
const BURST_FROM_NS: u64 = 200_000;
const BURST_UNTIL_NS: u64 = 295_000;

fn main() {
    let (jobs, engine_threads, telemetry) = parse_args();
    header("Resilience: flat VLB vs modular SORN under one failure storm");

    let server = telemetry.serve_metrics.as_ref().map(|addr| {
        let (server, publisher) = MetricsServer::bind(addr).unwrap_or_else(|e| {
            eprintln!("resilience: cannot bind --serve-metrics {addr}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "resilience: serving /metrics on http://{}",
            server.local_addr()
        );
        (server, publisher)
    });
    let publisher = server.as_ref().map(|(_, p)| p.clone());

    let map = CliqueMap::contiguous(N, CLIQUES);
    let q = Ratio::integer(3);
    let flat_sched = round_robin(N).expect("round robin");
    let sorn_sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).expect("sorn schedule");

    // Sustainable load of short fixed-size flows: with headroom, queues
    // stay shallow while healthy, so the degradation and recovery
    // columns measure the storm rather than a standing backlog.
    let wl = PoissonWorkload {
        n: N,
        load: 0.3,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: DURATION_NS,
        seed: 11,
    };
    let flows = wl.generate(
        &FlowSizeDist::fixed(10 * 1250),
        &CliqueLocal::new(map.clone(), 0.7),
    );
    let plan = storm(&map);
    println!(
        "{N} nodes, {CLIQUES} cliques, {} flows over {DURATION_NS} ns;",
        flows.len()
    );
    println!(
        "storm: {} fail/restore events (seed {STORM_SEED}): clique-0 link + node outages,",
        plan.len()
    );
    println!(
        "plus a correlated port-group burst at 4 clique-2 nodes ({BURST_FROM_NS}-{BURST_UNTIL_NS} ns)\n"
    );

    // Each scheme's closure owns everything it touches (schedule,
    // router, health mirror, flows, plan), so the pair can run on
    // worker threads; trace messages print after the join, in order.
    let tasks: Vec<Task<(Metrics, Option<String>)>> = vec![
        {
            let (sched, flows, plan, telemetry, publisher) = (
                flat_sched,
                flows.clone(),
                plan.clone(),
                telemetry.clone(),
                publisher.clone(),
            );
            Box::new(move || {
                let health = LinkHealth::new();
                let router = FaultAwareVlbRouter::new(health.clone());
                run_scheme(
                    "flat-vlb",
                    &sched,
                    &router,
                    health,
                    flows,
                    plan,
                    engine_threads,
                    &telemetry,
                    publisher,
                )
            })
        },
        {
            let (sched, cliques, flows, plan, telemetry, publisher) = (
                sorn_sched.clone(),
                map.clone(),
                flows.clone(),
                plan,
                telemetry.clone(),
                publisher.clone(),
            );
            Box::new(move || {
                let health = LinkHealth::new();
                let router = FaultAwareSornRouter::new(cliques, health.clone());
                run_scheme(
                    "sorn",
                    &sched,
                    &router,
                    health,
                    flows,
                    plan,
                    engine_threads,
                    &telemetry,
                    publisher,
                )
            })
        },
    ];
    let mut results = run_jobs(jobs, tasks).into_iter();
    let (flat, flat_msg) = results.next().expect("flat-vlb result");
    let (sorn, sorn_msg) = results.next().expect("sorn result");
    for msg in [flat_msg, sorn_msg].into_iter().flatten() {
        println!("{msg}");
    }

    println!(
        "{}",
        resilience_table(&[
            ResilienceRow::from_metrics("flat-vlb", &flat),
            ResilienceRow::from_metrics("sorn", &sorn),
        ])
    );
    println!("Modularity confines the storm: flat VLB sprays through every fabric");
    println!("link, so the port-group burst queues everyone's traffic behind it and");
    println!("goodput visibly dips; SORN never schedules those circuits, keeps its");
    println!("baseline goodput, and drains its (clique-local) backlog far sooner");
    println!("once repairs land.\n");

    control_recovery_demo(&map, q, &sorn_sched, &flows);

    if let Some((server, publisher)) = server {
        publisher.mark_done();
        if telemetry.serve_linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(telemetry.serve_linger_ms));
        }
        server.shutdown();
    }
}

/// The shared storm, two parts, both identical for the two fabrics:
///
/// 1. Seeded MTBF/MTTR outages over three clique-0 links (both fabrics
///    schedule them) plus one node.
/// 2. A correlated late burst — four clique-2 nodes lose every uplink
///    toward remote nodes at mismatched intra indices, modeling a
///    failing port group. Flat VLB sprays over all of those circuits,
///    so fabric-wide through-traffic queues behind them; SORN schedules
///    none of them (they are neither intra-clique nor index-matched
///    gateway links), so its exposure is zero by construction.
///
/// How much of one storm each fabric is exposed to is exactly the §6
/// modularity claim, measured dynamically.
fn storm(map: &CliqueMap) -> FaultPlan {
    debug_assert_eq!(map.n(), N);
    let mut plan = FaultPlan::storm(&FaultStorm {
        seed: STORM_SEED,
        horizon_ns: 3 * DURATION_NS / 4,
        mtbf_ns: 100_000.0,
        mttr_ns: 12_000.0,
        links: vec![
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(3)),
            (NodeId(4), NodeId(5)),
        ],
        nodes: vec![NodeId(9)],
    });
    let members = N / CLIQUES;
    for src in 16..20u32 {
        for dst in 0..N as u32 {
            let cross_clique = map.clique_of(NodeId(src)) != map.clique_of(NodeId(dst));
            let index_mismatch = src as usize % members != dst as usize % members;
            if cross_clique && index_mismatch {
                plan.link_outage(NodeId(src), NodeId(dst), BURST_FROM_NS, BURST_UNTIL_NS);
            }
        }
    }
    plan
}

/// Runs one scheme through the storm and returns its final metrics
/// (stranded count included) plus observer messages to print once
/// every scheme has joined. With `--trace-out base.jsonl`, the run's
/// trace lands in `base.<scheme>.jsonl`. A flight recorder always
/// observes; an anomalous run dumps `FLIGHT_<scheme>.jsonl`.
#[allow(clippy::too_many_arguments)]
fn run_scheme(
    scheme: &str,
    schedule: &CircuitSchedule,
    router: &dyn Router,
    health: LinkHealth,
    flows: Vec<Flow>,
    plan: FaultPlan,
    engine_threads: usize,
    telemetry: &TelemetryOpts,
    publisher: Option<MetricsPublisher>,
) -> (Metrics, Option<String>) {
    let cfg = SimConfig {
        seed: 42,
        engine_threads,
        ..SimConfig::default()
    };
    // Measure exactly the active workload window: letting the run drain
    // to empty would append a low-rate tail of all-healthy slots and
    // skew the healthy-goodput baseline.
    let slots = DURATION_NS / cfg.slot_ns;
    let live = publisher.map(LiveMetricsProbe::new);
    let recorder =
        FlightRecorder::new(DEFAULT_CAPACITY).with_dump_path(format!("FLIGHT_{scheme}.jsonl"));
    let mut messages = Vec::new();
    let (mut metrics, recorder) = if let Some(base) = &telemetry.trace_out {
        let path = suffixed(base, scheme);
        let sink = JsonlTraceSink::create(&path).expect("create trace file");
        let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
        let mut eng = Engine::with_probe(cfg, schedule, router, (sampler, (live, recorder)));
        eng.set_fault_plan(plan);
        eng.set_health_mirror(health);
        eng.add_flows(flows).expect("flows in range");
        eng.run_slots(slots).expect("storm run");
        let mut metrics = eng.metrics().clone();
        metrics.stranded_cells = eng.count_stranded();
        let (sampler, (_live, recorder)) = eng.finish();
        let lines = sampler.into_sink().finish().expect("flush trace");
        messages.push(format!(
            "[{scheme}] wrote {lines} trace events to {}",
            path.display()
        ));
        (metrics, recorder)
    } else {
        let mut eng = Engine::with_probe(cfg, schedule, router, (live, recorder));
        eng.set_fault_plan(plan);
        eng.set_health_mirror(health);
        eng.add_flows(flows).expect("flows in range");
        eng.run_slots(slots).expect("storm run");
        let mut metrics = eng.metrics().clone();
        metrics.stranded_cells = eng.count_stranded();
        let (_live, recorder) = eng.finish();
        (metrics, recorder)
    };
    let mut recorder = recorder;
    match recorder.dump_if_anomalous() {
        Ok(Some(path)) => messages.push(format!(
            "[{scheme}] flight recorder: anomaly -> {}",
            path.display()
        )),
        Ok(None) => {}
        Err(e) => eprintln!("resilience: flight-recorder dump for {scheme} failed: {e}"),
    }
    let msg = (!messages.is_empty()).then(|| messages.join("\n"));
    (metrics, msg)
}

/// Parses `--jobs`, `--engine-threads`, and the shared telemetry flags,
/// exiting with a usage line on error.
fn parse_args() -> (usize, usize, TelemetryOpts) {
    let parsed = take_jobs_flag(std::env::args().skip(1))
        .and_then(|(jobs, rest)| take_engine_threads_flag(rest).map(|(t, rest)| (jobs, t, rest)))
        .and_then(|(jobs, threads, rest)| TelemetryOpts::parse(rest).map(|t| (jobs, threads, t)));
    match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: resilience [--jobs N] [--engine-threads N] [--trace-out <path>] [--sample-interval-ns <n>]"
            );
            std::process::exit(2);
        }
    }
}

/// `base.jsonl` + `tag` -> `base.<tag>.jsonl`.
fn suffixed(base: &Path, tag: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
    base.with_file_name(format!("{stem}.{tag}.{ext}"))
}

/// The control-plane half of recovery: feed the loop the storm's
/// failure set so it masks dead demand out of the optimizer, and force
/// two installation failures to show the bounded retry/backoff path.
fn control_recovery_demo(map: &CliqueMap, q: Ratio, schedule: &CircuitSchedule, flows: &[Flow]) {
    header("Control plane: failure masking + bounded install retries");
    let mut cfg = ControlConfig::default();
    cfg.allowed_sizes = vec![4, 8];
    let mut ctl = ControlLoop::new(cfg, map.clone(), q, schedule.clone());
    ctl.observe(flows);

    let mut failures = FailureSet::none();
    failures.fail_node(NodeId(9));
    failures.fail_link(NodeId(0), NodeId(1));
    ctl.report_failures(&failures);
    ctl.inject_install_failures(2);

    let outcome = ctl.end_epoch().expect("epoch");
    let label = match outcome {
        EpochOutcome::NoPlan => "no plan".to_string(),
        EpochOutcome::Held { current, candidate } => {
            format!("held (current {current:.3}, candidate {candidate:.3})")
        }
        EpochOutcome::Updated { throughput, .. } => {
            format!("updated (modeled throughput {throughput:.3})")
        }
        EpochOutcome::InstallFailed {
            attempts,
            candidate,
        } => format!("install failed after {attempts} attempts (candidate {candidate:.3})"),
    };
    println!("epoch outcome: {label}");
    let record = ctl.decisions().records.last().expect("decision recorded");
    let fr = record
        .failure_response
        .as_ref()
        .expect("failure response recorded");
    println!(
        "failed nodes {:?}, failed links {:?}; {:.1}% of estimated demand masked",
        fr.failed_nodes,
        fr.failed_links,
        fr.masked_demand_fraction * 100.0
    );
    println!(
        "install attempts: {}, modeled retry backoff: {} ns, gave up: {}",
        fr.install_attempts, fr.install_backoff_ns, fr.gave_up
    );
}
