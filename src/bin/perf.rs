//! Perf-regression harness: runs a fixed scenario suite under the
//! engine's self-profiler and emits a `BENCH_<label>.json` report
//! (schema in `sorn_analysis::perfreport`).
//!
//! Scenarios:
//!
//! - `fig2f_vlb` / `fig2f_sorn` — the Figure 2(f) fabric at scale
//!   (128 nodes, 8 cliques): one clique-local Poisson workload pushed
//!   through flat VLB and through SORN, packet-simulated to drain.
//! - `resilience_storm` — the §6 failure storm (32 nodes, fault-aware
//!   SORN routing), exercising the fault-apply and reroute paths.
//! - `adaptation_sweep` — §5 control-loop epochs across a macro-pattern
//!   shift; its unit of work is the *epoch*, so the report's cell
//!   columns count epochs for this scenario.
//! - `scale16k_hier` / `scale65k_hier` (under `--scale16k` /
//!   `--scale65k`) — warehouse-scale clique-of-cliques fabrics (16 384
//!   and 65 536 nodes) under hierarchical routing, exercising the
//!   bitset-occupancy transmit walk and quiet-slot fast-forward
//!   (DESIGN.md §14).
//! - `horizon_diurnal` (under `--horizon`) — the long-horizon scenario
//!   (DESIGN.md §15): a sparse diurnal sine workload over 10^9 slots
//!   of simulated time, dominated by quiet gaps that batched
//!   fast-forward jumps in O(1) each. `--no-skip` disables the batched
//!   skip so the same workload steps slot-by-slot — run both and
//!   compare `wall_per_sim_ns` (or feed one to `--baseline`) to
//!   measure the speedup. `--tiny` shrinks it to 2·10^6 slots.
//!
//! Usage:
//!
//! ```text
//! perf [--label NAME] [--out-dir DIR] [--tiny] [--scale512]
//!      [--scale16k] [--scale65k] [--horizon [--no-skip]] [--jobs N]
//!      [--engine-threads N] [--baseline FILE] [--threshold PCT]
//!      [--trace-flows N] [--weather] [--weather-topk K] [--flight-ring N]
//!      [--serve-metrics ADDR] [--serve-linger-ms N]
//! perf --validate FILE
//! ```
//!
//! `--trace-flows N` turns on causal flow tracing for the simulation
//! scenarios (roughly one flow in N; 1 traces everything): each
//! scenario prints a tail-autopsy table attributing its slowest traced
//! cells' latency to queueing vs transmission vs reconfiguration wait,
//! and writes `TRACE_<scenario>.json` (Chrome `trace_event`, load in
//! Perfetto) plus `TRACE_<scenario>.txt` (the canonical span log, byte-
//! identical at any `--engine-threads`) to the out dir. A flight
//! recorder rides along always (`--flight-ring N` sizes its ring, a
//! power of two, default 4096); when a run trips an anomaly watchdog it
//! dumps `FLIGHT_<scenario>.jsonl`. `--weather` turns on the bounded-
//! memory network-weather roll-up (per-clique demand/goodput matrices,
//! `--weather-topk K` heavy-hitter sketches, a decimated timeline) and
//! writes `WEATHER_<scenario>.{txt,json}` run reports, byte-identical
//! at any `--engine-threads` and across a checkpoint/resume.
//! `--serve-metrics ADDR` serves live `/metrics`, `/health`,
//! `/progress`, and `/weather` over HTTP during the suite;
//! `--serve-linger-ms` keeps it up after the last scenario so scrapers
//! can catch the final snapshot.
//!
//! `--engine-threads N` shards each simulation's slot phases across N
//! threads (`SimConfig::engine_threads`); results are bit-identical at
//! any count, so it only moves the timings. `--scale512` swaps the
//! suite for the 512-node scaling scenarios used to benchmark it;
//! `--scale16k` / `--scale65k` swap in the warehouse-scale fabrics
//! (combinable with each other and `--tiny`, but not with `--scale512`
//! or `--checkpoint-dir`).
//!
//! `--checkpoint-dir DIR` turns on crash-safe checkpointing for the
//! direct-engine scenarios (`fig2f_vlb`, `resilience_storm`, or
//! `scale512_vlb` under `--scale512`): every `--checkpoint-every N`
//! slots the engine plus its trace/flight-recorder state is snapshotted
//! to a rolling pair of generations in `DIR/<scenario>/`. The
//! SORN-routed scenarios and `adaptation_sweep` drive the engine behind
//! higher-level APIs that cannot snapshot mid-run, so a checkpointed
//! suite is just the direct-engine scenarios, run sequentially. SIGINT
//! or SIGTERM finishes the current slot, writes a final checkpoint, and
//! exits with code 3; `--resume` continues from the newest valid
//! checkpoint and produces bit-identical metrics and trace output to an
//! uninterrupted run.
//!
//! `--tiny` shrinks every scenario for CI smoke runs. `--jobs N` runs
//! the scenarios on N worker threads; every scenario is self-contained
//! and seeded, so its simulation metrics are identical at any job
//! count, and the report records the suite wall time and aggregate
//! speedup alongside each scenario's own wall time. (Under `--jobs > 1`
//! the per-scenario cells/sec contend for cores and `peak_rss_bytes` —
//! process-wide `VmHWM` — reflects the concurrent set, so record
//! baselines with `--jobs 1`.) `--baseline` compares this run's
//! cells/sec against a stored report and exits nonzero when any
//! scenario slowed down by more than `--threshold` percent (default
//! 25). `--validate` just schema-checks an existing report file.

use sorn_analysis::autopsy::TailAutopsy;
use sorn_analysis::perfreport::{
    compare, phases_from_profile, BenchReport, ScenarioResult, SCHEMA_VERSION,
};
use sorn_bench::{
    drive_checkpointed, install_stop_handler, load_resume, run_jobs, take_flight_ring_flag,
    CheckpointOpts, DriveOutcome, RunMode, Task, WeatherOpts, EXIT_INTERRUPTED,
};
use sorn_control::{ControlConfig, ControlLoop};
use sorn_core::{SornConfig, SornNetwork};
use sorn_routing::{FaultAwareSornRouter, HierarchicalRouter, VlbRouter};
use sorn_sim::{
    CheckpointStore, Engine, FaultPlan, FaultStorm, Flow, FlowId, LinkHealth, Phase, Profiler,
    SimConfig, Snapshot,
};
use sorn_telemetry::{
    FlightRecorder, FlowTraceCollector, LiveMetricsProbe, MetricsPublisher, MetricsServer,
    WallClockProfiler, WeatherProbe,
};
use sorn_topology::builders::{
    clique_of_cliques, round_robin, sorn_schedule, HierarchySpec, SornScheduleParams,
};
use sorn_topology::{CliqueMap, NodeId, Ratio};
use sorn_traffic::{
    spatial::CliqueLocal, DiurnalPattern, DiurnalWorkload, FlowSizeDist, PoissonWorkload,
};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage: perf [--label NAME] [--out-dir DIR] [--tiny] [--scale512] \
                     [--scale16k] [--scale65k] [--horizon [--no-skip]] \
                     [--jobs N] [--engine-threads N] \
                     [--trace-flows N] [--weather] [--weather-topk K] [--flight-ring N] \
                     [--serve-metrics ADDR] [--serve-linger-ms N] \
                     [--checkpoint-dir DIR] [--checkpoint-every N] [--resume] \
                     [--baseline FILE] [--threshold PCT] | perf --validate FILE";

struct Opts {
    label: String,
    out_dir: PathBuf,
    baseline: Option<PathBuf>,
    threshold_pct: f64,
    tiny: bool,
    scale512: bool,
    scale16k: bool,
    scale65k: bool,
    horizon: bool,
    no_skip: bool,
    jobs: usize,
    engine_threads: usize,
    trace_flows: u64,
    serve_metrics: Option<String>,
    serve_linger_ms: u64,
    validate: Option<PathBuf>,
}

/// Observability settings threaded into every scenario closure.
#[derive(Clone)]
struct Instruments {
    /// `SimConfig::trace_one_in`; 0 disables causal tracing.
    trace_one_in: u64,
    /// Where trace exports and flight-recorder dumps land.
    out_dir: PathBuf,
    /// Live-endpoint publisher when `--serve-metrics` is up.
    publisher: Option<MetricsPublisher>,
    /// `--weather` / `--weather-topk`: the network-weather roll-up.
    weather: WeatherOpts,
    /// `--flight-ring`: flight-recorder ring capacity (power of two).
    flight_ring: usize,
}

/// The composed per-scenario probe: an optional live-metrics feeder, an
/// optional causal-trace collector, an optional network-weather
/// roll-up, and the always-on flight recorder.
type ObsProbe = (
    Option<LiveMetricsProbe>,
    (
        (Option<FlowTraceCollector>, Option<WeatherProbe>),
        FlightRecorder,
    ),
);

impl Instruments {
    fn probe(&self, scheme: &str, slot_ns: u64, map: &CliqueMap, max_slots: u64) -> ObsProbe {
        (
            self.publisher
                .clone()
                .map(|p| LiveMetricsProbe::new(p).with_max_slots(max_slots)),
            (
                (
                    (self.trace_one_in > 0).then(|| FlowTraceCollector::new(slot_ns)),
                    self.weather.enabled.then(|| {
                        let probe = WeatherProbe::new(map.clone(), self.weather.topk);
                        match &self.publisher {
                            Some(p) => probe.with_publisher(p.clone()),
                            None => probe,
                        }
                    }),
                ),
                FlightRecorder::new(self.flight_ring)
                    .with_dump_path(self.out_dir.join(format!("FLIGHT_{scheme}.jsonl"))),
            ),
        )
    }

    /// Turns the run's observers into summary text: the tail-autopsy
    /// table for traced runs (plus `TRACE_<scheme>.{json,txt}` exports)
    /// and a pointer to the flight-recorder dump when a watchdog fired.
    /// Everything printed is deterministic at any `--engine-threads`.
    fn summarize(&self, scheme: &str, probe: ObsProbe, propagation_ns: u64) -> String {
        use std::fmt::Write as _;
        let (_live, ((collector, weather), mut recorder)) = probe;
        let mut text = String::new();
        if let Some(w) = weather {
            let txt_path = self.out_dir.join(format!("WEATHER_{scheme}.txt"));
            let json_path = self.out_dir.join(format!("WEATHER_{scheme}.json"));
            if let Err(e) = std::fs::write(&txt_path, w.render_txt(scheme))
                .and_then(|()| std::fs::write(&json_path, w.render_json(scheme)))
            {
                eprintln!("perf: cannot write weather report for {scheme}: {e}");
            } else {
                let _ = writeln!(
                    text,
                    "[{scheme}] weather: {} and {}",
                    txt_path.display(),
                    json_path.display()
                );
            }
        }
        if let Some(c) = collector {
            let autopsy = TailAutopsy::from_breakdowns(&c.cell_breakdowns(), 5);
            let _ = writeln!(text, "[{scheme}] traced {} hop events", c.len());
            for line in autopsy.render().lines() {
                let _ = writeln!(text, "  {line}");
            }
            let json_path = self.out_dir.join(format!("TRACE_{scheme}.json"));
            let txt_path = self.out_dir.join(format!("TRACE_{scheme}.txt"));
            if let Err(e) = std::fs::write(&json_path, c.chrome_trace_json(propagation_ns))
                .and_then(|()| std::fs::write(&txt_path, c.render_all()))
            {
                eprintln!("perf: cannot write trace export for {scheme}: {e}");
            } else {
                let _ = writeln!(
                    text,
                    "  exports: {} (Perfetto), {} (span log)",
                    json_path.display(),
                    txt_path.display()
                );
            }
        }
        match recorder.dump_if_anomalous() {
            Ok(Some(path)) => {
                let _ = writeln!(
                    text,
                    "[{scheme}] flight recorder: anomaly -> {}",
                    path.display()
                );
            }
            Ok(None) => {}
            Err(e) => eprintln!("perf: flight-recorder dump for {scheme} failed: {e}"),
        }
        text
    }
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        label: "local".to_string(),
        out_dir: PathBuf::from("."),
        baseline: None,
        threshold_pct: 25.0,
        tiny: false,
        scale512: false,
        scale16k: false,
        scale65k: false,
        horizon: false,
        no_skip: false,
        jobs: 1,
        engine_threads: 1,
        trace_flows: 0,
        serve_metrics: None,
        serve_linger_ms: 0,
        validate: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        let arg = &args[*i];
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return Ok(v.to_string());
        }
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let arg = args[i].clone();
        let flag = arg.split('=').next().unwrap_or("");
        match flag {
            "--label" => opts.label = value(&mut i, "--label")?,
            "--out-dir" => opts.out_dir = PathBuf::from(value(&mut i, "--out-dir")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(value(&mut i, "--baseline")?)),
            "--threshold" => {
                opts.threshold_pct = value(&mut i, "--threshold")?
                    .parse()
                    .map_err(|_| "--threshold needs a number".to_string())?
            }
            "--tiny" => opts.tiny = true,
            "--scale512" => opts.scale512 = true,
            "--scale16k" => opts.scale16k = true,
            "--scale65k" => opts.scale65k = true,
            "--horizon" => opts.horizon = true,
            "--no-skip" => opts.no_skip = true,
            "--jobs" => {
                opts.jobs = value(&mut i, "--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs a count".to_string())?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--engine-threads" => {
                opts.engine_threads = value(&mut i, "--engine-threads")?
                    .parse()
                    .map_err(|_| "--engine-threads needs a count".to_string())?;
                if opts.engine_threads == 0 {
                    return Err("--engine-threads must be at least 1".to_string());
                }
            }
            "--trace-flows" => {
                opts.trace_flows = value(&mut i, "--trace-flows")?
                    .parse()
                    .map_err(|_| "--trace-flows needs a count".to_string())?;
                if opts.trace_flows == 0 {
                    return Err("--trace-flows must be at least 1 (1 traces all)".to_string());
                }
            }
            "--serve-metrics" => opts.serve_metrics = Some(value(&mut i, "--serve-metrics")?),
            "--serve-linger-ms" => {
                opts.serve_linger_ms = value(&mut i, "--serve-linger-ms")?
                    .parse()
                    .map_err(|_| "--serve-linger-ms needs a number".to_string())?
            }
            "--validate" => opts.validate = Some(PathBuf::from(value(&mut i, "--validate")?)),
            _ => return Err(format!("unknown flag {arg:?}")),
        }
        i += 1;
    }
    if opts.label.is_empty() || opts.label.contains(|c: char| c == '/' || c.is_whitespace()) {
        return Err(format!("bad label {:?}", opts.label));
    }
    if opts.scale512 && (opts.scale16k || opts.scale65k) {
        return Err("--scale512 cannot combine with --scale16k/--scale65k".to_string());
    }
    if opts.horizon && (opts.scale512 || opts.scale16k || opts.scale65k) {
        return Err("--horizon cannot combine with the scale suites".to_string());
    }
    if opts.no_skip && !opts.horizon {
        return Err("--no-skip only applies to --horizon".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (weather, rest) = match WeatherOpts::take(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (flight_ring, rest) = match take_flight_ring_flag(rest) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (ckpt, rest) = match CheckpointOpts::take(rest) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("perf: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let opts = match parse_args(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("perf: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.validate {
        return validate_file(path);
    }

    let mut suite_tags = String::new();
    for (on, tag) in [
        (opts.tiny, " [tiny]"),
        (opts.scale512, " [scale512]"),
        (opts.scale16k, " [scale16k]"),
        (opts.scale65k, " [scale65k]"),
        (opts.horizon, " [horizon]"),
        (opts.no_skip, " [no-skip]"),
    ] {
        if on {
            suite_tags.push_str(tag);
        }
    }
    println!(
        "perf suite '{}'{suite_tags} (schema v{SCHEMA_VERSION})\n",
        opts.label,
    );
    // Each scenario is a self-contained closure (own workload, own
    // seeded engine, own profiler), so the suite can fan out across
    // worker threads; summaries are printed after the join, in suite
    // order, so stdout is identical at any job count. Simulation
    // results are also identical at any --engine-threads count (the
    // engine's determinism contract), so only the timings move.
    let tiny = opts.tiny;
    let engine_threads = opts.engine_threads;
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!(
            "perf: cannot create --out-dir {}: {e}",
            opts.out_dir.display()
        );
        return ExitCode::from(2);
    }
    let server = match &opts.serve_metrics {
        Some(addr) => match MetricsServer::bind(addr) {
            Ok((server, publisher)) => {
                eprintln!("perf: serving /metrics on http://{}", server.local_addr());
                Some((server, publisher))
            }
            Err(e) => {
                eprintln!("perf: cannot bind --serve-metrics {addr}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let inst = Instruments {
        trace_one_in: opts.trace_flows,
        out_dir: opts.out_dir.clone(),
        publisher: server.as_ref().map(|(_, p)| p.clone()),
        weather,
        flight_ring,
    };
    let suite_start = Instant::now();
    if ckpt.enabled() && (opts.scale16k || opts.scale65k || opts.horizon) {
        eprintln!("perf: --scale16k/--scale65k/--horizon do not support --checkpoint-dir");
        return ExitCode::from(2);
    }
    let effective_jobs = if ckpt.enabled() { 1 } else { opts.jobs };
    let outcomes: Vec<(ScenarioResult, String)> = if ckpt.enabled() {
        if opts.jobs > 1 {
            eprintln!(
                "perf: --checkpoint-dir runs scenarios sequentially; ignoring --jobs {}",
                opts.jobs
            );
        }
        let dir = ckpt.dir.clone().expect("enabled() implies a dir");
        let ctx = CkptCtx {
            dir,
            every: ckpt.cadence(),
            resume: ckpt.resume,
            stop: install_stop_handler(),
        };
        eprintln!(
            "perf: checkpointing to {} every {} slots (SORN-routed scenarios and \
             adaptation_sweep are skipped: they cannot snapshot mid-run)",
            ctx.dir.display(),
            ctx.every
        );
        let run = || -> Result<Option<Vec<(ScenarioResult, String)>>, String> {
            let mut out = Vec::new();
            if opts.scale512 {
                match run_scale_checkpointed(
                    "scale512_vlb",
                    512,
                    8,
                    40_000,
                    engine_threads,
                    &inst,
                    &ctx,
                )? {
                    Some(r) => out.push(r),
                    None => return Ok(None),
                }
            } else {
                let (n, cliques, duration_ns) = fig2f_dims(tiny);
                match run_scale_checkpointed(
                    "fig2f_vlb",
                    n,
                    cliques,
                    duration_ns,
                    engine_threads,
                    &inst,
                    &ctx,
                )? {
                    Some(r) => out.push(r),
                    None => return Ok(None),
                }
                match resilience_storm_checkpointed(tiny, engine_threads, &inst, &ctx)? {
                    Some(r) => out.push(r),
                    None => return Ok(None),
                }
            }
            Ok(Some(out))
        };
        match run() {
            Err(e) => {
                eprintln!("perf: {e}");
                return ExitCode::from(2);
            }
            Ok(None) => {
                // Interrupted: the final checkpoint is on disk; flush
                // the live endpoint and signal "resume me" distinctly.
                if let Some((server, publisher)) = server {
                    publisher.mark_done();
                    server.shutdown();
                }
                return ExitCode::from(EXIT_INTERRUPTED as u8);
            }
            Ok(Some(outcomes)) => outcomes,
        }
    } else {
        let tasks: Vec<Task<(ScenarioResult, String)>> = if opts.horizon {
            // The long-horizon scenario: one run, skip on unless
            // --no-skip asked for the slot-by-slot reference.
            let a = inst.clone();
            let no_skip = opts.no_skip;
            vec![Box::new(move || {
                horizon_diurnal(tiny, no_skip, engine_threads, &a)
            })]
        } else if opts.scale16k || opts.scale65k {
            // The warehouse-scale scenarios: clique-of-cliques fabrics
            // at 16k/65k nodes, routed hierarchically. Run one per
            // requested scale (both flags together sweep the trend).
            let mut tasks: Vec<Task<(ScenarioResult, String)>> = Vec::new();
            if opts.scale16k {
                let a = inst.clone();
                tasks.push(Box::new(move || {
                    warehouse_scale("scale16k_hier", &SCALE16K_RADICES, tiny, engine_threads, &a)
                }));
            }
            if opts.scale65k {
                let b = inst.clone();
                tasks.push(Box::new(move || {
                    warehouse_scale("scale65k_hier", &SCALE65K_RADICES, tiny, engine_threads, &b)
                }));
            }
            tasks
        } else if opts.scale512 {
            // The 512-node scaling scenarios: one big fabric per routing
            // scheme, the workload where intra-run sharding has room to pay.
            let (a, b) = (inst.clone(), inst.clone());
            vec![
                Box::new(move || scale512("scale512_vlb", engine_threads, &a)),
                Box::new(move || scale512("scale512_sorn", engine_threads, &b)),
            ]
        } else {
            let (a, b, c) = (inst.clone(), inst.clone(), inst.clone());
            vec![
                Box::new(move || fig2f_scale("fig2f_vlb", tiny, engine_threads, &a)),
                Box::new(move || fig2f_scale("fig2f_sorn", tiny, engine_threads, &b)),
                Box::new(move || resilience_storm(tiny, engine_threads, &c)),
                Box::new(move || adaptation_sweep(tiny)),
            ]
        };
        run_jobs(opts.jobs, tasks)
    };
    let suite_wall_ns = suite_start.elapsed().as_nanos().max(1) as u64;
    let (scenarios, summaries): (Vec<ScenarioResult>, Vec<String>) = outcomes.into_iter().unzip();
    for s in &summaries {
        print!("{s}");
    }
    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        label: opts.label.clone(),
        created_unix_s: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        jobs: effective_jobs as u64,
        engine_threads: opts.engine_threads as u64,
        suite_wall_ns,
        scenarios,
    };
    let serial_ns: u64 = report.scenarios.iter().map(|s| s.wall_ns).sum();
    println!(
        "suite: {:.1} ms wall on {} job(s); scenario sum {:.1} ms; aggregate speedup {:.2}x",
        suite_wall_ns as f64 / 1e6,
        effective_jobs,
        serial_ns as f64 / 1e6,
        report.aggregate_speedup().unwrap_or(1.0),
    );
    if let Err(e) = report.validate() {
        eprintln!("perf: produced an invalid report: {e}");
        return ExitCode::FAILURE;
    }
    let path = opts.out_dir.join(report.file_name());
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("perf: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", path.display());

    if let Some(base_path) = &opts.baseline {
        let base = match std::fs::read_to_string(base_path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::parse(&text))
            .and_then(|r| r.validate().map(|()| r))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("perf: bad baseline {}: {e}", base_path.display());
                return ExitCode::FAILURE;
            }
        };
        let cmp = compare(&base, &report, opts.threshold_pct);
        println!("\nbaseline: {} ({})", base_path.display(), base.label);
        println!("{}", cmp.render());
        if cmp.regressed() {
            eprintln!("perf: REGRESSION against baseline");
            return ExitCode::FAILURE;
        }
        println!("no regression past {:.1}%", opts.threshold_pct);
    }
    if let Some((server, publisher)) = server {
        publisher.mark_done();
        if opts.serve_linger_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(opts.serve_linger_ms));
        }
        server.shutdown();
    }
    ExitCode::SUCCESS
}

fn validate_file(path: &PathBuf) -> ExitCode {
    let result = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| BenchReport::parse(&text))
        .and_then(|r| r.validate().map(|()| r));
    match result {
        Ok(r) => {
            println!(
                "{}: valid (schema v{}, label '{}', {} scenarios)",
                path.display(),
                r.schema_version,
                r.label,
                r.scenarios.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}: INVALID: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Shared clique-local Poisson workload for the fig2f-scale scenarios.
fn scale_workload(n: usize, cliques: usize, duration_ns: u64) -> Vec<Flow> {
    let map = CliqueMap::contiguous(n, cliques);
    let wl = PoissonWorkload {
        n,
        load: 0.35,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns,
        seed: 7,
    };
    wl.generate(&FlowSizeDist::fixed(10 * 1250), &CliqueLocal::new(map, 0.5))
}

/// Fabric and workload dimensions for the fig2f-scale scenarios.
fn fig2f_dims(tiny: bool) -> (usize, usize, u64) {
    if tiny {
        (32, 4, 40_000)
    } else {
        (128, 8, 150_000)
    }
}

/// One fig2f-scale run: the same workload through flat VLB
/// (`fig2f_vlb`) or through SORN (`fig2f_sorn`), simulated to drain.
fn fig2f_scale(
    name: &str,
    tiny: bool,
    engine_threads: usize,
    inst: &Instruments,
) -> (ScenarioResult, String) {
    let (n, cliques, duration_ns) = fig2f_dims(tiny);
    run_scale_scenario(name, n, cliques, duration_ns, engine_threads, inst)
}

/// The 512-node scaling scenario behind `--scale512`: the fig2f fabric
/// at 512 nodes / 8 cliques, sized so `--engine-threads` sweeps finish
/// in minutes on a laptop. `results/bench_par_{1,2,4}.json` are this
/// suite at 1/2/4 engine threads.
fn scale512(name: &str, engine_threads: usize, inst: &Instruments) -> (ScenarioResult, String) {
    let scheme = if name.ends_with("_vlb") {
        "fig2f_vlb"
    } else {
        "fig2f_sorn"
    };
    let (result, text) = run_scale_scenario(scheme, 512, 8, 40_000, engine_threads, inst);
    (
        ScenarioResult {
            name: name.to_string(),
            ..result
        },
        text.replacen(scheme, name, 1),
    )
}

/// Fabric radices for the warehouse scenarios: clique-of-cliques at
/// 16 384 (128 racks of 128) and 65 536 (256 groups of 256) nodes.
const SCALE16K_RADICES: [usize; 2] = [128, 128];
const SCALE65K_RADICES: [usize; 2] = [256, 256];

/// One warehouse-scale run behind `--scale16k` / `--scale65k`: a
/// clique-of-cliques fabric routed hierarchically (spray within the
/// rack, then correct digits top-down) under a light clique-local
/// Poisson load. The injection window is shorter than one schedule
/// period, so the run exercises both the dense word-walk transmit path
/// and the quiet-slot fast path through the long drain tail. `--tiny`
/// truncates the workload for CI smoke runs but keeps the full node
/// count — the fabric size is what the scenario measures.
fn warehouse_scale(
    name: &str,
    radices: &[usize],
    tiny: bool,
    engine_threads: usize,
    inst: &Instruments,
) -> (ScenarioResult, String) {
    let n: usize = radices.iter().product();
    let groups = n / radices[0];
    let duration_ns: u64 = if tiny { 2_000 } else { 20_000 };
    let map = CliqueMap::contiguous(n, groups);
    let wl = PoissonWorkload {
        n,
        // Light load: uniform level weights give the level-0 channel
        // (spray + final correction) half the slots, so nominal load
        // 0.15 keeps its utilization comfortably below 1.
        load: 0.15,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns,
        seed: 7,
    };
    let flows = wl.generate(
        &FlowSizeDist::fixed(10 * 1250),
        &CliqueLocal::new(map.clone(), 0.5),
    );
    let schedule = clique_of_cliques(radices.to_vec(), 1 << 20).expect("schedule");
    let spec = HierarchySpec::new(radices.to_vec(), vec![1; radices.len()]).expect("spec");
    let router = HierarchicalRouter::new(spec);
    let cfg = SimConfig {
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    // Budget the drain in schedule periods: each targeted hop can wait
    // a full rotation for its circuit.
    let max_slots = duration_ns / cfg.slot_ns + 12 * schedule.period() as u64;
    let profiler = WallClockProfiler::new();
    let probe = inst.probe(name, cfg.slot_ns, &map, max_slots);
    let start = Instant::now();
    let mut eng = Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
    eng.add_flows(flows).expect("flows in range");
    eng.run_until_drained(max_slots).expect("run");
    let metrics = eng.metrics().clone();
    let probe = eng.finish();
    let (result, mut text) = finish_scenario(
        name,
        start,
        metrics.slots,
        metrics.delivered_cells,
        n,
        &profiler,
        metrics.slots_skipped,
        metrics.slots * cfg.slot_ns,
    );
    text.push_str(&inst.summarize(name, probe, cfg.propagation_ns));
    (result, text)
}

/// The long-horizon scenario behind `--horizon`: a 16-node fabric under
/// flat VLB carrying a *sparse* diurnal sine workload (~12 flows per
/// node spread across 10 day/night cycles), simulated for 10^9 slots —
/// 100 seconds of fabric time. Virtually the whole horizon is
/// quiescent, so with batched fast-forward on (the default) the wall
/// time is set by the handful of busy episodes; with `--no-skip` the
/// same run steps every quiet slot individually. Both produce
/// bit-identical metrics — compare their `wall_per_sim_ns` for the
/// fast-forward speedup. `--tiny` keeps the shape at 2·10^6 slots.
fn horizon_diurnal(
    tiny: bool,
    no_skip: bool,
    engine_threads: usize,
    inst: &Instruments,
) -> (ScenarioResult, String) {
    let name = "horizon_diurnal";
    const N: usize = 16;
    const CLIQUES: usize = 4;
    let (horizon_ns, flow_bytes, flows_per_node): (u64, u64, f64) = if tiny {
        (200_000_000, 12_500, 6.0)
    } else {
        (100_000_000_000, 125_000, 12.0)
    };
    let map = CliqueMap::contiguous(N, CLIQUES);
    // Offered load that lands ~flows_per_node flows on each source over
    // the whole horizon: sparse enough that busy episodes are isolated
    // islands in an ocean of quiet slots.
    let mean_load = flows_per_node * flow_bytes as f64 / (12.5 * horizon_ns as f64);
    let wl = DiurnalWorkload {
        cliques: map.clone(),
        pattern: DiurnalPattern {
            period_ns: horizon_ns / 10,
            mean_load,
            amplitude: 0.8,
            locality_peak: 0.7,
            locality_trough: 0.2,
        },
        sizes: FlowSizeDist::fixed(flow_bytes),
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: horizon_ns,
        seed: 13,
    };
    let flows = wl.generate();
    let schedule = round_robin(N).expect("round robin");
    let router = VlbRouter::new();
    let cfg = SimConfig {
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    // Drain budget past the horizon: the last arrivals need at most a
    // few schedule rotations to clear.
    let max_slots = horizon_ns / cfg.slot_ns + 100 * schedule.period() as u64;
    let profiler = WallClockProfiler::new();
    let probe = inst.probe(name, cfg.slot_ns, &map, max_slots);
    let start = Instant::now();
    let mut eng = Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
    eng.set_fast_forward(!no_skip);
    eng.add_flows(flows).expect("flows in range");
    assert!(
        eng.run_until_drained(max_slots).expect("run"),
        "horizon workload must drain"
    );
    let metrics = eng.metrics().clone();
    let probe = eng.finish();
    let (result, mut text) = finish_scenario(
        name,
        start,
        metrics.slots,
        metrics.delivered_cells,
        N,
        &profiler,
        metrics.slots_skipped,
        metrics.slots * cfg.slot_ns,
    );
    text.push_str(&inst.summarize(name, probe, cfg.propagation_ns));
    (result, text)
}

fn run_scale_scenario(
    scheme: &str,
    n: usize,
    cliques: usize,
    duration_ns: u64,
    engine_threads: usize,
    inst: &Instruments,
) -> (ScenarioResult, String) {
    let flows = scale_workload(n, cliques, duration_ns);
    let cfg = SimConfig {
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    let max_slots = 20 * duration_ns / cfg.slot_ns;
    let profiler = WallClockProfiler::new();
    let map = CliqueMap::contiguous(n, cliques);
    let probe = inst.probe(scheme, cfg.slot_ns, &map, max_slots);

    let start = Instant::now();
    let (metrics, probe) = if scheme == "fig2f_vlb" {
        let schedule = round_robin(n).expect("round robin");
        let router = VlbRouter::new();
        let mut eng =
            Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
        eng.add_flows(flows).expect("flows in range");
        eng.run_until_drained(max_slots).expect("run");
        let metrics = eng.metrics().clone();
        (metrics, eng.finish())
    } else {
        let mut sorn_cfg = SornConfig::small(n, cliques, 0.5);
        sorn_cfg.engine_threads = engine_threads;
        sorn_cfg.trace_one_in = inst.trace_one_in;
        let net = SornNetwork::build(sorn_cfg).expect("network");
        let (metrics, _, probe, _) = net
            .simulate_instrumented(flows, 42, max_slots, probe, profiler.clone())
            .expect("run");
        (metrics, probe)
    };
    let (result, mut text) = finish_scenario(
        scheme,
        start,
        metrics.slots,
        metrics.delivered_cells,
        n,
        &profiler,
        metrics.slots_skipped,
        metrics.slots * cfg.slot_ns,
    );
    text.push_str(&inst.summarize(scheme, probe, cfg.propagation_ns));
    (result, text)
}

/// Checkpoint wiring threaded into the checkpointable scenarios.
struct CkptCtx<'a> {
    /// Root checkpoint directory; each scenario gets a subdirectory.
    dir: PathBuf,
    /// Slots between periodic checkpoints.
    every: u64,
    /// Resume each scenario from its newest valid checkpoint.
    resume: bool,
    /// Raised by SIGINT/SIGTERM; polled at slot boundaries.
    stop: &'a std::sync::atomic::AtomicBool,
}

/// Snapshot blob names for the probe state carried across a resume.
const BLOB_TRACE: &str = "trace";
const BLOB_FLIGHT: &str = "flight";
const BLOB_WEATHER: &str = "weather";

/// Rebuilds the scenario probe for a resumed run: the causal-trace
/// collector, weather roll-up, and flight recorder come back from the
/// snapshot's sidecar blobs (so their output is identical to an
/// uninterrupted run); the live-metrics feeder is wall-clock state and
/// starts fresh.
fn probe_from_snapshot(
    inst: &Instruments,
    scheme: &str,
    slot_ns: u64,
    map: &CliqueMap,
    max_slots: u64,
    snap: &Snapshot,
) -> Result<ObsProbe, String> {
    let collector = match snap.blob(BLOB_TRACE) {
        Some(b) => Some(
            FlowTraceCollector::from_bytes(b)
                .map_err(|e| format!("[{scheme}] bad trace blob in checkpoint: {e}"))?,
        ),
        None => (inst.trace_one_in > 0).then(|| FlowTraceCollector::new(slot_ns)),
    };
    let weather = match snap.blob(BLOB_WEATHER) {
        Some(b) => Some(
            WeatherProbe::from_bytes(b, map.clone())
                .map_err(|e| format!("[{scheme}] bad weather blob in checkpoint: {e}"))?,
        ),
        None => inst
            .weather
            .enabled
            .then(|| WeatherProbe::new(map.clone(), inst.weather.topk)),
    }
    .map(|w| match &inst.publisher {
        Some(p) => w.with_publisher(p.clone()),
        None => w,
    });
    let recorder = match snap.blob(BLOB_FLIGHT) {
        Some(b) => FlightRecorder::from_bytes(b)
            .map_err(|e| format!("[{scheme}] bad flight-recorder blob in checkpoint: {e}"))?,
        None => FlightRecorder::new(inst.flight_ring),
    }
    .with_dump_path(inst.out_dir.join(format!("FLIGHT_{scheme}.jsonl")));
    Ok((
        inst.publisher
            .clone()
            .map(|p| LiveMetricsProbe::new(p).with_max_slots(max_slots)),
        ((collector, weather), recorder),
    ))
}

/// Attaches the probe's trace, weather, and flight-recorder state to a
/// snapshot as sidecar blobs, so a resume rebuilds observers
/// mid-stream.
fn attach_probe_blobs(probe: &ObsProbe, snap: &mut Snapshot) {
    let (_live, ((collector, weather), recorder)) = probe;
    if let Some(c) = collector {
        snap.attach_blob(BLOB_TRACE, c.to_bytes());
    }
    if let Some(w) = weather {
        snap.attach_blob(BLOB_WEATHER, w.to_bytes());
    }
    snap.attach_blob(BLOB_FLIGHT, recorder.to_bytes());
}

/// Mirrors checkpoint lifecycle events into the flight recorder and the
/// live `/metrics` endpoint. Fired by this driver, never by the engine,
/// so simulation results stay bit-identical with checkpointing on or
/// off.
fn note_checkpoint_events(
    probe: &mut ObsProbe,
    restored: Option<(u64, &std::path::Path)>,
    skipped: &[(PathBuf, String)],
    written: &[(u64, PathBuf, usize)],
) {
    let (live, ((_collector, _weather), recorder)) = probe;
    for (path, reason) in skipped {
        recorder.note_checkpoint_corrupt_skipped(&path.display().to_string(), reason);
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_corrupt_skipped();
        }
    }
    if let Some((slot, path)) = restored {
        recorder.note_checkpoint_restored(slot, &path.display().to_string());
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_restored();
        }
    }
    for (slot, path, bytes) in written {
        recorder.note_checkpoint_written(*slot, *bytes as u64, &path.display().to_string());
        if let Some(l) = live.as_mut() {
            l.note_checkpoint_written();
        }
    }
}

/// The VLB scale scenario under checkpointing: same fabric and workload
/// as [`run_scale_scenario`]'s VLB branch, driven slot-by-slot with
/// periodic snapshots. Returns `Ok(None)` when interrupted by a signal
/// (the final checkpoint is already on disk).
fn run_scale_checkpointed(
    scheme: &str,
    n: usize,
    cliques: usize,
    duration_ns: u64,
    engine_threads: usize,
    inst: &Instruments,
    ckpt: &CkptCtx<'_>,
) -> Result<Option<(ScenarioResult, String)>, String> {
    let cfg = SimConfig {
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    let max_slots = 20 * duration_ns / cfg.slot_ns;
    let schedule = round_robin(n).expect("round robin");
    let router = VlbRouter::new();
    let profiler = WallClockProfiler::new();
    let map = CliqueMap::contiguous(n, cliques);
    let start = Instant::now();
    let mut store =
        CheckpointStore::open(ckpt.dir.join(scheme)).map_err(|e| format!("[{scheme}] {e}"))?;

    let mut eng = match load_resume(&store, ckpt.resume).map_err(|e| format!("[{scheme}] {e}"))? {
        Some(mut out) => {
            out.snapshot.set_engine_threads(engine_threads);
            let probe =
                probe_from_snapshot(inst, scheme, cfg.slot_ns, &map, max_slots, &out.snapshot)?;
            let mut eng = Engine::restore_with_probe_and_profiler(
                &out.snapshot,
                &schedule,
                &router,
                probe,
                profiler.clone(),
            )
            .map_err(|e| {
                format!(
                    "[{scheme}] checkpoint {} does not fit this scenario: {e}",
                    out.path.display()
                )
            })?;
            eprintln!(
                "perf: [{scheme}] resumed from {} at slot {}",
                out.path.display(),
                out.snapshot.slot()
            );
            note_checkpoint_events(
                eng.probe_mut(),
                Some((out.snapshot.slot(), &out.path)),
                &out.skipped,
                &[],
            );
            eng
        }
        None => {
            let probe = inst.probe(scheme, cfg.slot_ns, &map, max_slots);
            let mut eng =
                Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
            eng.add_flows(scale_workload(n, cliques, duration_ns))
                .expect("flows in range");
            eng
        }
    };

    let mut written = Vec::new();
    let outcome = drive_checkpointed(
        &mut eng,
        RunMode::UntilDrained(max_slots),
        &mut store,
        ckpt.every,
        ckpt.stop,
        |eng, snap| attach_probe_blobs(eng.probe(), snap),
        |slot, path, bytes| written.push((slot, path.to_path_buf(), bytes)),
    )
    .map_err(|e| format!("[{scheme}] {e}"))?;
    note_checkpoint_events(eng.probe_mut(), None, &[], &written);
    match outcome {
        DriveOutcome::Interrupted { slot, path } => {
            eprintln!(
                "perf: [{scheme}] interrupted at slot {slot}; wrote {}; rerun with --resume",
                path.display()
            );
            Ok(None)
        }
        DriveOutcome::Completed { .. } => {
            let metrics = eng.metrics().clone();
            let probe = eng.finish();
            let (result, mut text) = finish_scenario(
                scheme,
                start,
                metrics.slots,
                metrics.delivered_cells,
                n,
                &profiler,
                metrics.slots_skipped,
                metrics.slots * cfg.slot_ns,
            );
            text.push_str(&inst.summarize(scheme, probe, cfg.propagation_ns));
            Ok(Some((result, text)))
        }
    }
}

/// The §6 storm under checkpointing: [`resilience_storm`]'s fabric,
/// workload, and fault plan, driven slot-by-slot with periodic
/// snapshots. The restored engine re-attaches a fresh health mirror
/// ([`Engine::set_health_mirror`] republishes the restored failure set
/// immediately, so fault-aware routing picks up exactly where it left
/// off). Returns `Ok(None)` when interrupted by a signal.
fn resilience_storm_checkpointed(
    tiny: bool,
    engine_threads: usize,
    inst: &Instruments,
    ckpt: &CkptCtx<'_>,
) -> Result<Option<(ScenarioResult, String)>, String> {
    let scheme = "resilience_storm";
    let StormFixture {
        map,
        schedule,
        flows,
        plan,
        duration_ns,
    } = storm_fixture(tiny);
    let cmap = map.clone();
    let health = LinkHealth::new();
    let router = FaultAwareSornRouter::new(map, health.clone());
    let cfg = SimConfig {
        seed: 42,
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    let slots = duration_ns / cfg.slot_ns;
    let profiler = WallClockProfiler::new();
    let start = Instant::now();
    let mut store =
        CheckpointStore::open(ckpt.dir.join(scheme)).map_err(|e| format!("[{scheme}] {e}"))?;

    let mut eng = match load_resume(&store, ckpt.resume).map_err(|e| format!("[{scheme}] {e}"))? {
        Some(mut out) => {
            out.snapshot.set_engine_threads(engine_threads);
            let probe =
                probe_from_snapshot(inst, scheme, cfg.slot_ns, &cmap, slots, &out.snapshot)?;
            let mut eng = Engine::restore_with_probe_and_profiler(
                &out.snapshot,
                &schedule,
                &router,
                probe,
                profiler.clone(),
            )
            .map_err(|e| {
                format!(
                    "[{scheme}] checkpoint {} does not fit this scenario: {e}",
                    out.path.display()
                )
            })?;
            // The snapshot carries the fault plan and failure state;
            // only the shared health view must be re-attached.
            eng.set_health_mirror(health);
            eprintln!(
                "perf: [{scheme}] resumed from {} at slot {}",
                out.path.display(),
                out.snapshot.slot()
            );
            note_checkpoint_events(
                eng.probe_mut(),
                Some((out.snapshot.slot(), &out.path)),
                &out.skipped,
                &[],
            );
            eng
        }
        None => {
            let probe = inst.probe(scheme, cfg.slot_ns, &cmap, slots);
            let mut eng =
                Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
            eng.set_fault_plan(plan);
            eng.set_health_mirror(health);
            eng.add_flows(flows).expect("flows in range");
            eng
        }
    };

    let mut written = Vec::new();
    let outcome = drive_checkpointed(
        &mut eng,
        RunMode::UntilSlot(slots),
        &mut store,
        ckpt.every,
        ckpt.stop,
        |eng, snap| attach_probe_blobs(eng.probe(), snap),
        |slot, path, bytes| written.push((slot, path.to_path_buf(), bytes)),
    )
    .map_err(|e| format!("[{scheme}] {e}"))?;
    note_checkpoint_events(eng.probe_mut(), None, &[], &written);
    match outcome {
        DriveOutcome::Interrupted { slot, path } => {
            eprintln!(
                "perf: [{scheme}] interrupted at slot {slot}; wrote {}; rerun with --resume",
                path.display()
            );
            Ok(None)
        }
        DriveOutcome::Completed { .. } => {
            let metrics = eng.metrics().clone();
            let probe = eng.finish();
            let (result, mut text) = finish_scenario(
                scheme,
                start,
                metrics.slots,
                metrics.delivered_cells,
                cmap.n(),
                &profiler,
                metrics.slots_skipped,
                metrics.slots * cfg.slot_ns,
            );
            text.push_str(&inst.summarize(scheme, probe, cfg.propagation_ns));
            Ok(Some((result, text)))
        }
    }
}

/// The §6 storm fixture shared by the plain and checkpointed storm
/// scenarios: the 32-node/4-clique fabric, its clique-local workload,
/// and the scripted fault plan (seeded MTBF/MTTR outages plus a
/// correlated port-group burst late in the run).
struct StormFixture {
    map: CliqueMap,
    schedule: sorn_topology::CircuitSchedule,
    flows: Vec<Flow>,
    plan: FaultPlan,
    duration_ns: u64,
}

fn storm_fixture(tiny: bool) -> StormFixture {
    const N: usize = 32;
    const CLIQUES: usize = 4;
    let duration_ns: u64 = if tiny { 100_000 } else { 400_000 };

    let map = CliqueMap::contiguous(N, CLIQUES);
    let schedule =
        sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).expect("schedule");
    let wl = PoissonWorkload {
        n: N,
        load: 0.3,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns,
        seed: 11,
    };
    let flows = wl.generate(
        &FlowSizeDist::fixed(10 * 1250),
        &CliqueLocal::new(map.clone(), 0.7),
    );
    let mut plan = FaultPlan::storm(&FaultStorm {
        seed: 5,
        horizon_ns: 3 * duration_ns / 4,
        mtbf_ns: 100_000.0,
        mttr_ns: 12_000.0,
        links: vec![
            (NodeId(0), NodeId(1)),
            (NodeId(2), NodeId(3)),
            (NodeId(4), NodeId(5)),
        ],
        nodes: vec![NodeId(9)],
    });
    // Correlated port-group burst late in the run (see the resilience
    // experiment for the full rationale).
    let members = N / CLIQUES;
    for src in 16..20u32 {
        for dst in 0..N as u32 {
            let cross = map.clique_of(NodeId(src)) != map.clique_of(NodeId(dst));
            if cross && src as usize % members != dst as usize % members {
                plan.link_outage(
                    NodeId(src),
                    NodeId(dst),
                    duration_ns / 2,
                    3 * duration_ns / 4,
                );
            }
        }
    }
    StormFixture {
        map,
        schedule,
        flows,
        plan,
        duration_ns,
    }
}

/// The §6 storm on the fault-aware SORN fabric: seeded MTBF/MTTR link
/// and node outages plus a correlated port-group burst, over the
/// resilience study's 32-node/4-clique fabric.
fn resilience_storm(
    tiny: bool,
    engine_threads: usize,
    inst: &Instruments,
) -> (ScenarioResult, String) {
    let StormFixture {
        map,
        schedule,
        flows,
        plan,
        duration_ns,
    } = storm_fixture(tiny);
    let cmap = map.clone();
    let health = LinkHealth::new();
    let router = FaultAwareSornRouter::new(map, health.clone());
    let cfg = SimConfig {
        seed: 42,
        engine_threads,
        trace_one_in: inst.trace_one_in,
        ..SimConfig::default()
    };
    let slots = duration_ns / cfg.slot_ns;
    let profiler = WallClockProfiler::new();
    let probe = inst.probe("resilience_storm", cfg.slot_ns, &cmap, slots);

    let start = Instant::now();
    let mut eng = Engine::with_probe_and_profiler(cfg, &schedule, &router, probe, profiler.clone());
    eng.set_fault_plan(plan);
    eng.set_health_mirror(health);
    eng.add_flows(flows).expect("flows in range");
    eng.run_slots(slots).expect("storm run");
    let metrics = eng.metrics().clone();
    let probe = eng.finish();
    let (result, mut text) = finish_scenario(
        "resilience_storm",
        start,
        metrics.slots,
        metrics.delivered_cells,
        cmap.n(),
        &profiler,
        metrics.slots_skipped,
        metrics.slots * cfg.slot_ns,
    );
    text.push_str(&inst.summarize("resilience_storm", probe, cfg.propagation_ns));
    (result, text)
}

/// §5 control-loop epochs across a macro-pattern shift. Each
/// `end_epoch` (demand estimation, candidate search, install) is
/// recorded as a `reconfigure` span; "cells" count epochs here.
fn adaptation_sweep(tiny: bool) -> (ScenarioResult, String) {
    let (n, phases): (u32, Vec<(usize, Vec<Flow>)>) = if tiny {
        let n = 32u32;
        (
            n,
            vec![
                (2, community_flows(n, |v| v / 8, 50_000, 500)),
                (2, community_flows(n, |v| v % 8, 50_000, 500)),
            ],
        )
    } else {
        let n = 64u32;
        (
            n,
            vec![
                (3, community_flows(n, |v| v / 8, 50_000, 500)),
                (8, community_flows(n, |v| v % 8, 50_000, 500)),
                (4, community_flows(n, |v| v % 8, 10_000, 2_000)),
            ],
        )
    };
    let cliques = if tiny { 4 } else { 8 };
    let q = Ratio::integer(4);
    let map = CliqueMap::contiguous(n as usize, cliques);
    let schedule = sorn_schedule(&map, &SornScheduleParams::with_q(q)).expect("schedule");
    let mut control = ControlConfig::default();
    control.allowed_sizes = vec![4, 8, 16];
    control.alpha = 0.5;

    let profiler = WallClockProfiler::new();
    let start = Instant::now();
    let mut ctl = ControlLoop::new(control, map, q, schedule);
    let mut epochs = 0u64;
    for (count, flows) in &phases {
        for _ in 0..*count {
            ctl.observe(flows);
            let _span = profiler.span(Phase::Reconfigure);
            ctl.end_epoch().expect("epoch");
            epochs += 1;
        }
    }
    // Epoch-counting scenario: no simulated-time axis to normalize by.
    finish_scenario(
        "adaptation_sweep",
        start,
        epochs,
        epochs,
        n as usize,
        &profiler,
        0,
        0,
    )
}

fn community_flows(n: u32, group: impl Fn(u32) -> u32, heavy: u64, light: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            flows.push(Flow {
                id: FlowId(0),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: if group(s) == group(d) { heavy } else { light },
                arrival_ns: 0,
            });
        }
    }
    flows
}

/// Packages one scenario's measurements and renders its summary text
/// (returned, not printed: under `--jobs` the caller prints summaries
/// after the join, in suite order).
#[allow(clippy::too_many_arguments)]
fn finish_scenario(
    name: &str,
    start: Instant,
    slots: u64,
    cells_delivered: u64,
    nodes: usize,
    profiler: &WallClockProfiler,
    slots_skipped: u64,
    sim_ns: u64,
) -> (ScenarioResult, String) {
    use std::fmt::Write as _;
    let wall_ns = start.elapsed().as_nanos().max(1) as u64;
    let secs = wall_ns as f64 / 1e9;
    let profile = profiler.report();
    let peak_rss = peak_rss_bytes();
    // 0 simulated ns (epoch-counting scenarios) leaves the field
    // unrecorded, which `compare` skips.
    let wall_per_sim_ns = if sim_ns > 0 {
        wall_ns as f64 / sim_ns as f64
    } else {
        0.0
    };
    let result = ScenarioResult {
        name: name.to_string(),
        wall_ns,
        slots,
        cells_delivered,
        cells_per_sec: cells_delivered as f64 / secs,
        slots_per_sec: slots as f64 / secs,
        peak_rss_bytes: peak_rss,
        bytes_per_node: peak_rss / nodes.max(1) as u64,
        slots_skipped,
        wall_per_sim_ns,
        phases: phases_from_profile(&profile),
    };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "[{name}] {:.1} ms wall, {} slots ({} skipped), {} cells, {:.0} cells/s, \
         peak RSS {:.1} MiB, {} bytes/node",
        wall_ns as f64 / 1e6,
        slots,
        slots_skipped,
        cells_delivered,
        result.cells_per_sec,
        result.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        result.bytes_per_node,
    );
    if wall_per_sim_ns > 0.0 {
        let _ = writeln!(
            text,
            "[{name}] {wall_per_sim_ns:.3} wall-ns per simulated ns",
        );
    }
    let _ = writeln!(text, "{}", profile.render());
    (result, text)
}

/// Process peak resident set (`VmHWM`), in bytes; 0 where unavailable.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
    }
    0
}
