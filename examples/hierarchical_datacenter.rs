//! A three-level datacenter: pods of 4 racks, clusters of 4 pods,
//! 4 clusters (§3's pods/clusters/blocks hierarchy; §6's "independent
//! schedules on each hierarchical level").
//!
//! Builds the weighted multi-level schedule from a traffic profile,
//! compares the closed-form model against the exact flow-level
//! evaluation, and packet-simulates a pFabric workload shaped to the
//! profile.
//!
//! Run with: `cargo run --release --example hierarchical_datacenter`

use sorn::core::HierarchyModel;
use sorn::routing::{evaluate, DemandMatrix, HierarchicalPaths, HierarchicalRouter};
use sorn::sim::{Engine, SimConfig};
use sorn::topology::builders::hierarchical_schedule;
use sorn::topology::NodeId;
use sorn::traffic::{FlowSizeDist, PoissonWorkload};

fn main() {
    // 64 racks: radices [4, 4, 4]; 60% pod-local, 25% cluster-local,
    // 15% fabric-wide traffic.
    let profile = vec![0.60, 0.25, 0.15];
    let model = HierarchyModel::new(vec![4, 4, 4], profile.clone()).unwrap();

    println!("Three-level SORN over 64 racks (pods of 4, clusters of 16):");
    println!("  traffic profile (pod/cluster/fabric): {profile:?}");
    let w = model.optimal_weights();
    println!(
        "  optimal bandwidth split per level: [{:.3}, {:.3}, {:.3}]",
        w[0], w[1], w[2]
    );
    println!(
        "  model: mean hops {:.3}, worst-case throughput {:.3}",
        model.mean_hops(),
        model.optimal_throughput()
    );
    for l in 0..3 {
        println!(
            "  level-{l} traffic: {} hops max, delta_m {:.0} slots",
            l + 2,
            model.class_delta_m(l).ceil()
        );
    }
    println!();

    // Build the schedule at the optimal split and evaluate exactly.
    let spec = model.spec(1000).unwrap();
    let sched = hierarchical_schedule(&spec, 1 << 22).unwrap();
    println!("schedule period: {} slots", sched.period());

    // Demand matching the profile: weight each pair by its class share.
    let n = 64;
    let mut rows = vec![vec![0.0f64; n]; n];
    let mut class_counts = [0usize; 3];
    for s in 0..n {
        for d in 0..n {
            if s != d {
                let l = spec
                    .highest_differing_level(NodeId(s as u32), NodeId(d as u32))
                    .unwrap();
                class_counts[l] += 1;
            }
        }
    }
    for (s, row) in rows.iter_mut().enumerate() {
        for (d, cell) in row.iter_mut().enumerate() {
            if s != d {
                let l = spec
                    .highest_differing_level(NodeId(s as u32), NodeId(d as u32))
                    .unwrap();
                *cell = profile[l] / (class_counts[l] / n) as f64;
            }
        }
    }
    let demand = DemandMatrix::from_rows(rows).unwrap();
    let paths = HierarchicalPaths::new(spec.clone());
    let rep = evaluate(&sched.logical_topology(), &paths, &demand).unwrap();
    println!(
        "exact flow-level: throughput {:.3} (model {:.3}), mean hops {:.3} (model {:.3})",
        rep.throughput,
        model.optimal_throughput(),
        rep.mean_hops,
        model.mean_hops()
    );
    println!();

    // Packet check with pFabric web-search flows.
    let router = HierarchicalRouter::new(spec.clone());
    let mut eng = Engine::new(SimConfig::default(), &sched, &router);
    let wl = PoissonWorkload {
        n,
        load: 0.25,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 1_000_000,
        seed: 4,
    };
    // Spatial model: sample destinations according to the profile.
    struct ProfileSpatial {
        spec: sorn::topology::builders::HierarchySpec,
        profile: Vec<f64>,
    }
    impl sorn::traffic::spatial::SpatialModel for ProfileSpatial {
        fn pick_dst(&self, src: NodeId, rng: &mut rand::rngs::StdRng) -> NodeId {
            use rand::Rng;
            // Pick the class, then a uniform destination within it.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut class = 0;
            for (l, &x) in self.profile.iter().enumerate() {
                acc += x;
                if u < acc {
                    class = l;
                    break;
                }
                class = l;
            }
            loop {
                let d = NodeId(rng.gen_range(0..self.spec.n() as u32));
                if d != src && self.spec.highest_differing_level(src, d) == Some(class) {
                    return d;
                }
            }
        }
        fn name(&self) -> &str {
            "hierarchy-profile"
        }
    }
    let spatial = ProfileSpatial {
        spec: spec.clone(),
        profile,
    };
    let flows = wl.generate(&FlowSizeDist::web_search(), &spatial);
    let count = flows.len();
    eng.add_flows(flows).unwrap();
    let drained = eng.run_until_drained(20_000_000).unwrap();
    let m = eng.metrics();
    println!("packet check (pFabric web-search at load 0.25):");
    println!(
        "  flows: {count}, drained: {drained}, completed: {}",
        m.flows.len()
    );
    println!(
        "  mean hops {:.2} (model {:.2}), mean FCT {:.1} us",
        m.mean_hops(),
        model.mean_hops(),
        m.mean_fct_ns() / 1000.0
    );
}
