//! §6 "Machine Learning Workloads": gravity-weighted inter-clique
//! bandwidth for a shared training cluster.
//!
//! A cluster hosts several training jobs with stable, *non-uniform*
//! aggregate demand between machine groups (parameter-server pods pull
//! more than they push, data pods feed trainer pods, ...). Instead of
//! fine-grained per-job topology optimization — which fragments GPUs and
//! reacts too slowly — the semi-oblivious framework encodes the gravity
//! pattern into the schedule (§5 "Expressivity") via a Birkhoff–von-
//! Neumann decomposition of the clique-level demand.
//!
//! Run with: `cargo run --example ml_cluster`

use sorn::routing::{evaluate, DemandMatrix, SornPaths};
use sorn::topology::builders::{
    gravity_schedule, sorn_schedule, GravityWeights, SornScheduleParams,
};
use sorn::topology::{CliqueMap, NodeId, Ratio};

fn main() {
    // 4 pods of 8 machines running pipeline-parallel training: stage i
    // streams activations heavily to stage i+1, with lighter skip and
    // gradient traffic elsewhere.
    let n = 32;
    let cliques = CliqueMap::contiguous(n, 4);

    // Stable aggregate inter-pod pattern (circulant, so every row and
    // column sums to 6 — the balance the optical layer needs): the next
    // pipeline stage gets weight 4, everything else weight 1.
    let weights = GravityWeights::new(vec![
        // s0 s1 s2 s3
        vec![0, 4, 1, 1], // stage 0
        vec![1, 0, 4, 1], // stage 1
        vec![1, 1, 0, 4], // stage 2
        vec![4, 1, 1, 0], // stage 3
    ])
    .unwrap();

    let q = Ratio::integer(2); // intra gets 2/3 of bandwidth
    let gravity = gravity_schedule(&cliques, q, &weights, 1 << 20).unwrap();
    let uniform = sorn_schedule(&cliques, &SornScheduleParams::with_q(q)).unwrap();

    println!("ML cluster: 4 pipeline stages x 8 machines, gravity-weighted inter-pod bandwidth");
    println!("  gravity schedule period: {} slots", gravity.period());
    println!("  uniform schedule period: {} slots", uniform.period());
    println!();

    let gt = gravity.logical_topology();
    println!("Node 0 (stage 0) inter-pod edges under the gravity schedule:");
    for (dst, cap) in gt.neighbors(NodeId(0)) {
        if dst.0 >= 8 {
            let pod = dst.0 / 8;
            println!("  0 -> {dst} (stage {pod})  capacity {cap:.4}");
        }
    }
    println!("  (the next pipeline stage gets 4x the bandwidth of the others, as demanded)");
    println!();

    // Score both schedules against the *actual* demand: pipeline traffic
    // is inter-heavy (20% intra), split proportional to the gravity
    // weights across pods.
    let intra_share = 0.2;
    let mut rows = vec![vec![0.0f64; n]; n];
    for (s, row) in rows.iter_mut().enumerate() {
        let pod = s / 8;
        for (d, cell) in row.iter_mut().enumerate() {
            if s == d {
                continue;
            }
            let dpod = d / 8;
            *cell = if pod == dpod {
                intra_share / 7.0
            } else {
                let w = weights.weight(pod, dpod) as f64;
                (1.0 - intra_share) * (w / 6.0) / 8.0
            };
        }
    }
    let demand = DemandMatrix::from_rows(rows).unwrap();
    let model = SornPaths::new(cliques.clone());

    let ru = evaluate(&uniform.logical_topology(), &model, &demand).unwrap();
    let rg = evaluate(&gt, &model, &demand).unwrap();
    println!("Throughput against the real (skewed) demand:");
    println!("  uniform inter-pod schedule: {:.3}", ru.throughput);
    println!("  gravity inter-pod schedule: {:.3}", rg.throughput);
    println!(
        "  -> encoding the gravity pattern buys {:.0}% more throughput",
        (rg.throughput / ru.throughput - 1.0) * 100.0
    );
}
