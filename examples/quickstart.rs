//! Quickstart: a guided tour of the SORN library.
//!
//! Reproduces the paper's two introductory artifacts as ASCII — the
//! Figure 1 round-robin schedule and Figure 2(d)'s semi-oblivious
//! topology A — then runs the paper's example flow (0 → 6) through the
//! packet simulator.
//!
//! Run with: `cargo run --example quickstart`

use sorn::core::{SornConfig, SornNetwork};
use sorn::sim::{Flow, FlowId};
use sorn::topology::builders::round_robin;
use sorn::topology::{NodeId, Ratio};

fn main() {
    // ---- Figure 1: an oblivious round-robin schedule for 5 nodes ----
    let rr = round_robin(5).expect("5-node round robin");
    println!("Figure 1 — oblivious round-robin schedule, 5 nodes:");
    println!("(rows are time slots, columns are nodes, entries the peer)");
    println!("{}", rr.render_table());

    // ---- Figure 2(d): topology A — 8 nodes, 2 cliques of 4, q = 3 ----
    let mut cfg = SornConfig::small(8, 2, 0.5);
    cfg.q = Some(Ratio::integer(3));
    let net = SornNetwork::build(cfg).expect("topology A");
    println!("Figure 2(d) — SORN topology A (2 cliques of 4, q = 3):");
    println!("{}", net.schedule().render_table());

    let topo = net.schedule().logical_topology();
    println!("Virtual edges of node 0 (capacity = fraction of bandwidth):");
    for (dst, cap) in topo.neighbors(NodeId(0)) {
        let kind = if dst.0 < 4 { "intra" } else { "inter" };
        println!("  0 -> {dst}  {cap:.2}  ({kind}-clique)");
    }
    println!();

    // ---- Closed-form analysis (§4) ----
    let a = net.analysis();
    println!("Closed-form analysis at q = {}:", a.q);
    println!(
        "  intra-clique delta_m: {:.0} slots",
        a.intra_delta_m.ceil()
    );
    println!(
        "  inter-clique delta_m: {:.0} slots",
        a.inter_delta_m.ceil()
    );
    println!("  worst-case throughput: {:.1}%", a.throughput * 100.0);
    println!();

    // ---- The paper's example flow: 0 -> 6, e.g. via 0 -> 3 -> 7 -> 6 ----
    let flows = vec![Flow {
        id: FlowId(1),
        src: NodeId(0),
        dst: NodeId(6),
        size_bytes: 4 * 1250,
        arrival_ns: 0,
    }];
    let (metrics, drained) = net.simulate(flows, 7, 10_000).expect("simulation");
    assert!(drained, "the tiny flow must drain");
    let f = &metrics.flows[0];
    println!("Simulated the paper's example flow 0 -> 6 (inter-clique):");
    println!("  cells delivered: {}", metrics.delivered_cells);
    println!(
        "  max hops: {} (paper: 3-hop inter-clique routing)",
        f.max_hops
    );
    println!("  completion time: {} ns", f.completion_ns);
    println!("  mean hops per cell: {:.2}", metrics.mean_hops());
}
