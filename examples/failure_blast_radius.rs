//! The §6 practicality study: how far does a single link failure reach?
//!
//! "Flat oblivious designs with many random indirect hops inflate the
//! blast radius of failures since flows between any source-destination
//! pair can be affected by any link/node failure. A modular design
//! reduces this significantly." We quantify it two ways:
//!
//! 1. Statically: each flow's failure *exposure* — the number of
//!    distinct links whose failure can touch it — for flat VLB vs
//!    modular SORN.
//! 2. Dynamically: packet-simulate both designs with one failed link and
//!    check where the affected flows live (in SORN they are confined to
//!    the failed link's cliques; in flat VLB any pair can be hit).
//!
//! Run with: `cargo run --example failure_blast_radius`

use sorn::analysis::blast::blast_radius;
use sorn::core::{SornConfig, SornNetwork};
use sorn::routing::{SornPaths, VlbPaths, VlbRouter};
use sorn::sim::{Engine, Flow, FlowId, SimConfig};
use sorn::topology::builders::round_robin;
use sorn::topology::{CliqueMap, NodeId};

fn mesh_flows(n: u32) -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: 1250,
                    arrival_ns: 0,
                });
                id += 1;
            }
        }
    }
    flows
}

fn main() {
    let n = 32;
    let cliques = CliqueMap::contiguous(n, 4);

    // ---- Static: per-flow failure exposure ----
    let flat = blast_radius(n, &VlbPaths::new(n));
    let sorn = blast_radius(n, &SornPaths::new(cliques.clone()));
    println!("Per-flow failure exposure over {n} nodes");
    println!("(number of distinct links whose failure can touch a flow):");
    println!(
        "  flat 1D ORN + VLB       : mean {:.1}, worst {}",
        flat.mean_exposure, flat.max_exposure
    );
    println!(
        "  modular SORN (4 cliques): mean {:.1}, worst {}",
        sorn.mean_exposure, sorn.max_exposure
    );
    println!(
        "  -> modularity shrinks exposure {:.1}x",
        flat.mean_exposure / sorn.mean_exposure
    );
    println!();

    // ---- Dynamic: fail link 0 -> 1, see where affected flows live ----
    println!("Packet check with link 0 -> 1 failed (full-mesh single-cell flows):");

    // Flat VLB: cells from ANY source can be sprayed through node 0 and
    // then strand on the failed direct link toward node 1.
    let rr = round_robin(n).unwrap();
    let vlb = VlbRouter::new();
    let mut eng = Engine::new(SimConfig::default(), &rr, &vlb);
    let all = mesh_flows(n as u32);
    let total = all.len();
    eng.add_flows(all.clone()).unwrap();
    eng.failures_mut().fail_link(NodeId(0), NodeId(1));
    eng.run_until_drained(200_000).unwrap();
    let affected_flat: Vec<u64> = completed_ids(&eng, total);
    println!(
        "  flat VLB : {} flows stuck; any src-dst pair in the fabric can be hit",
        affected_flat.len()
    );

    // SORN: the failure can only touch flows that route through clique 0
    // or its pinned gateways — a structurally confined set.
    let net = SornNetwork::build(SornConfig::small(n, 4, 0.5)).unwrap();
    let mut eng2 = Engine::new(SimConfig::default(), net.schedule(), net.router());
    eng2.add_flows(all.clone()).unwrap();
    eng2.failures_mut().fail_link(NodeId(0), NodeId(1));
    eng2.run_until_drained(200_000).unwrap();
    let affected_sorn = completed_ids(&eng2, total);
    let confined = affected_sorn.iter().all(|&id| {
        let f = &all[id as usize];
        // Every affected flow must involve clique 0 (nodes 0..8) as
        // source or destination.
        f.src.0 < 8 || f.dst.0 < 8
    });
    println!(
        "  SORN     : {} flows stuck; all involve the failed link's clique: {}",
        affected_sorn.len(),
        confined
    );
    println!();
    println!("(the affected set under SORN is confined and diagnosable — §6's");
    println!(" modularity argument — while flat VLB scatters the risk fabric-wide)");
}

/// Flow ids that did NOT complete.
fn completed_ids(eng: &Engine, total: usize) -> Vec<u64> {
    let done: std::collections::HashSet<u64> = eng.metrics().flows.iter().map(|f| f.id.0).collect();
    (0..total as u64).filter(|id| !done.contains(id)).collect()
}
