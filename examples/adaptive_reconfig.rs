//! The §5 adaptation scenario: the macro-pattern shifts and the control
//! plane periodically re-optimizes cliques and oversubscription.
//!
//! Phase 1 traffic is local to the deployed (contiguous) cliques; phase 2
//! scrambles the communities (node i talks to nodes with the same
//! i mod 4). A static SORN's throughput collapses; the adaptive SORN
//! regroups within a few epochs. Update costs (drained cells, modeled
//! installation time) are reported per §5.
//!
//! Run with: `cargo run --example adaptive_reconfig`

use sorn::analysis::adaptation::run;
use sorn::analysis::render::TextTable;
use sorn::control::ControlConfig;
use sorn::sim::{Flow, FlowId};
use sorn::topology::{NodeId, Ratio};

/// Heavy traffic inside community `group(node)`, light elsewhere.
fn community_flows(n: u32, group: impl Fn(u32) -> u32) -> Vec<Flow> {
    let mut flows = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let bytes = if group(s) == group(d) { 50_000 } else { 500 };
            flows.push(Flow {
                id: FlowId(0),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: bytes,
                arrival_ns: 0,
            });
        }
    }
    flows
}

fn main() {
    let n = 32u32;
    let mut control = ControlConfig::default();
    control.allowed_sizes = vec![4, 8];
    control.alpha = 0.5;

    // Phase 1: contiguous communities (matching the initial deployment).
    let phase1 = community_flows(n, |v| v / 8);
    // Phase 2: scrambled communities (i mod 8) — the initial layout is
    // now maximally wrong.
    let phase2 = community_flows(n, |v| v % 8);

    let epochs = run(
        n as usize,
        4,
        Ratio::integer(4),
        control,
        &[(3, phase1), (6, phase2)],
    )
    .expect("adaptation experiment");

    println!("Static vs adaptive SORN across a macro-pattern shift (32 nodes):");
    let mut t = TextTable::new(&[
        "epoch",
        "static thpt",
        "adaptive thpt",
        "updated?",
        "drained cells",
        "install (ms)",
    ]);
    for e in &epochs {
        t.row(vec![
            e.epoch.to_string(),
            format!("{:.3}", e.static_throughput),
            format!("{:.3}", e.adaptive_throughput),
            if e.updated { "yes".into() } else { "-".into() },
            e.drained_cells.to_string(),
            if e.updated {
                format!("{:.1}", e.installation_ns as f64 / 1e6)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());

    let last = epochs.last().unwrap();
    println!(
        "After the shift: adaptive {:.3} vs static {:.3} ({}x better)",
        last.adaptive_throughput,
        last.static_throughput,
        (last.adaptive_throughput / last.static_throughput.max(1e-9)).round()
    );
    println!("(the pattern shift at epoch 3 tanks the static design; the control");
    println!(" loop detects the drift through its EWMA and regroups the cliques)");
}
