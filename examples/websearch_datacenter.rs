//! The Figure 2(f) scenario: a 128-node, 8-clique SORN carrying
//! pFabric web-search traffic across the locality spectrum.
//!
//! Prints the theoretical `r = 1/(3 - x)` curve next to the exact
//! flow-level throughput of the constructed schedules, then packet-
//! simulates one point with real heavy-tailed flows to confirm the
//! network drains below its predicted capacity.
//!
//! Run with: `cargo run --release --example websearch_datacenter`

use sorn::analysis::fig2f::{generate, validate_point, Fig2fParams};
use sorn::analysis::render::TextTable;

fn main() {
    let params = Fig2fParams::default(); // 128 nodes, 8 cliques
    println!(
        "Figure 2(f): worst-case throughput vs locality ratio ({} nodes, {} cliques)",
        params.n, params.cliques
    );

    let points = generate(&params).expect("figure generation");
    let mut t = TextTable::new(&["x", "theory 1/(3-x)", "schedule (exact)", "mean hops"]);
    for p in &points {
        t.row(vec![
            format!("{:.1}", p.x),
            format!("{:.4}", p.theory),
            format!("{:.4}", p.simulated),
            format!("{:.3}", p.mean_hops),
        ]);
    }
    println!("{}", t.render());
    println!("(throughput rises from 1/3 toward 1/2 as locality grows, as in the paper)");
    println!();

    // Packet-level validation at the paper's median locality with real
    // pFabric web-search flow sizes.
    let x = 0.56;
    let load = 0.30; // below the predicted r = 0.41
    println!("Packet validation at x = {x}, offered load = {load} (pFabric web-search):");
    let v = validate_point(128, 8, x, load, 2_000_000, 42, 1).expect("packet validation");
    println!("  flows completed: {}", v.flows);
    println!("  drained within budget: {}", v.drained);
    println!(
        "  mean hops per cell: {:.2} (model: {:.2})",
        v.mean_hops,
        3.0 - x
    );
    println!(
        "  delivery fraction (throughput proxy): {:.3} (~1/mean_hops = {:.3})",
        v.delivery_fraction,
        1.0 / v.mean_hops
    );
}
