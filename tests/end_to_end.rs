//! End-to-end integration: workload generation → SORN network →
//! packet simulation → metrics, plus the control-plane install path.

use sorn::control::{ControlConfig, ControlLoop, EpochOutcome};
use sorn::core::{SornConfig, SornNetwork};
use sorn::routing::SornRouter;
use sorn::sim::{Engine, SimConfig};
use sorn::topology::builders::{sorn_schedule, SornScheduleParams};
use sorn::topology::{CliqueMap, NodeId, Ratio};
use sorn::traffic::spatial::CliqueLocal;
use sorn::traffic::{measured_locality, FacebookWorkload, FlowSizeDist, PoissonWorkload, Trace};

#[test]
fn facebook_workload_through_sorn_network() {
    let net = SornNetwork::build(SornConfig::small(32, 4, 0.56)).expect("network");
    let mut wl = FacebookWorkload::paper_reference(net.cliques().clone(), 0.2, 300_000, 9);
    wl.node_bandwidth_bytes_per_ns = 12.5;
    let flows = wl.generate();
    assert!(!flows.is_empty());
    let n_flows = flows.len();

    let (metrics, drained) = net.simulate(flows, 1, 2_000_000).expect("simulation");
    assert!(drained, "low-load Facebook workload must drain");
    assert_eq!(metrics.flows.len(), n_flows);
    // SORN routing: between 1 and 3 hops for every flow.
    for f in &metrics.flows {
        assert!(f.max_hops >= 1 && f.max_hops <= 3);
    }
    // Mean hops within the model's [2, 3] band (some 1-hop lucky sprays).
    let mh = metrics.mean_hops();
    assert!(mh > 1.5 && mh <= 3.0, "mean hops {mh}");
}

#[test]
fn recorded_trace_replays_identically() {
    let map = CliqueMap::contiguous(16, 4);
    let wl = PoissonWorkload {
        n: 16,
        load: 0.3,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 200_000,
        seed: 5,
    };
    let flows = wl.generate(
        &FlowSizeDist::web_search(),
        &CliqueLocal::new(map.clone(), 0.5),
    );
    let trace = Trace::record(16, "integration", &flows);
    let json = trace.to_json();
    let replayed = Trace::from_json(&json).unwrap().replay();

    let net = SornNetwork::build(SornConfig::small(16, 4, 0.5)).unwrap();
    let (m1, d1) = net.simulate(flows, 3, 5_000_000).unwrap();
    let (m2, d2) = net.simulate(replayed, 3, 5_000_000).unwrap();
    assert_eq!(d1, d2);
    assert_eq!(m1.delivered_cells, m2.delivered_cells);
    assert_eq!(m1.cell_latency_sum_ns, m2.cell_latency_sum_ns);
}

#[test]
fn control_loop_schedule_installs_into_engine() {
    // Drive the control loop with scrambled traffic, then run the
    // schedule it installed inside the packet engine.
    let n = 16usize;
    let map = CliqueMap::contiguous(n, 4);
    let q = Ratio::integer(2);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
    let mut cfg = ControlConfig::default();
    cfg.allowed_sizes = vec![4];
    cfg.alpha = 1.0;
    let mut ctl = ControlLoop::new(cfg, map, q, sched);

    // Scrambled communities: i % 4.
    let mut observed = Vec::new();
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s != d && s % 4 == d % 4 {
                observed.push(sorn::sim::Flow {
                    id: sorn::sim::FlowId(0),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: 30_000,
                    arrival_ns: 0,
                });
            }
        }
    }
    ctl.observe(&observed);
    let outcome = ctl.end_epoch().unwrap();
    assert!(matches!(outcome, EpochOutcome::Updated { .. }));

    // The installed schedule + matching router must carry the scrambled
    // traffic in at most 2 hops (it is now all intra-clique).
    let router = SornRouter::new(ctl.cliques().clone());
    let mut eng = Engine::new(SimConfig::default(), ctl.schedule(), &router);
    let flows: Vec<sorn::sim::Flow> = observed
        .iter()
        .enumerate()
        .map(|(i, f)| sorn::sim::Flow {
            id: sorn::sim::FlowId(i as u64),
            size_bytes: 2500,
            arrival_ns: i as u64 * 40,
            ..*f
        })
        .collect();
    let count = flows.len();
    eng.add_flows(flows).unwrap();
    assert!(eng.run_until_drained(1_000_000).unwrap());
    assert_eq!(eng.metrics().flows.len(), count);
    for f in &eng.metrics().flows {
        assert!(
            f.max_hops <= 2,
            "after regrouping, community traffic is intra-clique (got {} hops)",
            f.max_hops
        );
    }
}

#[test]
fn locality_measured_on_generated_traffic_matches_request() {
    let map = CliqueMap::contiguous(64, 8);
    let wl = PoissonWorkload {
        n: 64,
        load: 0.4,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 2_000_000,
        seed: 21,
    };
    let flows = wl.generate(
        &FlowSizeDist::fixed(4000),
        &CliqueLocal::new(map.clone(), 0.56),
    );
    let x = measured_locality(&flows, &map);
    assert!((x - 0.56).abs() < 0.04, "measured locality {x}");
}

#[test]
fn failure_recovery_after_restoration() {
    // A failed inter-clique gateway stalls inter traffic; restoring it
    // lets the engine drain without losing anything.
    let net = SornNetwork::build(SornConfig::small(8, 2, 0.5)).unwrap();
    let mut eng = Engine::new(SimConfig::default(), net.schedule(), net.router());
    let flows: Vec<sorn::sim::Flow> = (0..4u32)
        .map(|s| sorn::sim::Flow {
            id: sorn::sim::FlowId(s as u64),
            src: NodeId(s),
            dst: NodeId(s + 4),
            size_bytes: 2500,
            arrival_ns: 0,
        })
        .collect();
    eng.add_flows(flows).unwrap();
    // Fail all inter links (src clique node i -> node i+4).
    for i in 0..4u32 {
        eng.failures_mut().fail_link(NodeId(i), NodeId(i + 4));
    }
    assert!(!eng.run_until_drained(5_000).unwrap());
    let stuck = eng.total_queued();
    assert!(stuck > 0);
    for i in 0..4u32 {
        eng.failures_mut().restore_link(NodeId(i), NodeId(i + 4));
    }
    assert!(eng.run_until_drained(100_000).unwrap());
    assert_eq!(eng.metrics().flows.len(), 4);
}
