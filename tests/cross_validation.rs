//! Model-vs-implementation cross-validation: the closed-form formulas of
//! §4 must agree with measurements on the *actually constructed*
//! schedules and the packet simulator.

use sorn::core::model::{self, InterCliqueLatencyModel};
use sorn::core::{SornConfig, SornNetwork};
use sorn::routing::{evaluate, DemandMatrix, SornPaths};
use sorn::sim::{Flow, FlowId};
use sorn::topology::builders::round_robin;
use sorn::topology::{NodeId, Ratio, StaggeredSchedule};

#[test]
fn measured_intra_wait_matches_delta_m() {
    // δm(intra) = (q+1)/q (C-1) counts circuits including the transmit
    // slot; the constructed schedule's worst-case wait must match within
    // interleaving slack (one inter block).
    for (n, nc, q) in [(16usize, 4usize, 3u64), (32, 4, 2), (24, 3, 4)] {
        let mut cfg = SornConfig::small(n, nc, 0.5);
        cfg.q = Some(Ratio::integer(q));
        let net = SornNetwork::build(cfg).unwrap();
        let sched = net.schedule();
        let c = n / nc;
        let formula = model::intra_delta_m(q as f64, c);
        // Worst intra wait over a few representative pairs.
        let mut worst = 0u64;
        for d in 1..c as u32 {
            worst = worst.max(sched.max_wait(NodeId(0), NodeId(d)).unwrap());
        }
        let measured = (worst + 1) as f64;
        assert!(
            (measured - formula).abs() <= formula * 0.35 + 2.0,
            "n={n} nc={nc} q={q}: measured {measured} vs formula {formula}"
        );
    }
}

#[test]
fn measured_inter_wait_matches_text_variant() {
    // The schedules we construct realize the paper's *prose* formula
    // (q+1)(Nc-1) for the inter hop (see model docs for the published
    // discrepancy).
    for (n, nc, q) in [(16usize, 4usize, 3u64), (32, 8, 2)] {
        let mut cfg = SornConfig::small(n, nc, 0.5);
        cfg.q = Some(Ratio::integer(q));
        let net = SornNetwork::build(cfg).unwrap();
        let sched = net.schedule();
        let c = n / nc;
        // Worst wait for node 0's inter circuits (same intra index in
        // each other clique).
        let mut worst = 0u64;
        for k in 1..nc {
            let target = NodeId((k * c) as u32);
            worst = worst.max(sched.max_wait(NodeId(0), target).unwrap());
        }
        let measured = (worst + 1) as f64;
        let inter_only = (q as f64 + 1.0) * (nc as f64 - 1.0);
        assert!(
            (measured - inter_only).abs() <= inter_only * 0.35 + 2.0,
            "n={n} nc={nc} q={q}: measured {measured} vs text-variant inter wait {inter_only}"
        );
    }
}

#[test]
fn staggered_uplinks_divide_measured_wait() {
    let sched = round_robin(65).unwrap(); // period 64
    let st = StaggeredSchedule::new(sched.clone(), 16).unwrap();
    let single = sched.max_wait(NodeId(0), NodeId(7)).unwrap();
    let staggered = st.max_wait(NodeId(0), NodeId(7)).unwrap();
    // 64-slot period over 16 planes: waits drop ~16x (63 -> <= 4).
    assert_eq!(single, 63);
    assert!(staggered <= 4, "staggered wait {staggered}");
}

#[test]
fn packet_fct_at_least_intrinsic_latency() {
    // A single-cell flow's FCT is bounded below by the *minimum* wait:
    // one slot + per-hop propagation times the hops it took.
    let mut cfg = SornConfig::small(16, 4, 0.5);
    cfg.q = Some(Ratio::integer(4));
    let net = SornNetwork::build(cfg).unwrap();
    let flows: Vec<Flow> = (0..16u32)
        .map(|s| Flow {
            id: FlowId(s as u64),
            src: NodeId(s),
            dst: NodeId((s + 5) % 16),
            size_bytes: 1,
            arrival_ns: (s as u64) * 37,
        })
        .collect();
    let (metrics, drained) = net.simulate(flows, 11, 500_000).unwrap();
    assert!(drained);
    for f in &metrics.flows {
        let floor = f.max_hops as u64 * (100 + 500);
        assert!(
            f.fct_ns() >= floor,
            "flow {:?}: fct {} below physical floor {floor}",
            f.id,
            f.fct_ns()
        );
    }
}

#[test]
fn packet_mean_hops_matches_flow_level_mean_hops() {
    // The packet simulator and the flow-level evaluator must agree on
    // the bandwidth tax for the same topology, routing, and demand.
    let x = 0.5;
    let net = SornNetwork::build(SornConfig::small(32, 4, x)).unwrap();
    let fl = evaluate(
        &net.schedule().logical_topology(),
        &SornPaths::new(net.cliques().clone()),
        &DemandMatrix::clique_local(net.cliques(), x),
    )
    .unwrap();

    let wl = sorn::traffic::PoissonWorkload {
        n: 32,
        load: 0.2,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 1_000_000,
        seed: 13,
    };
    let flows = wl.generate(
        &sorn::traffic::FlowSizeDist::fixed(5000),
        &sorn::traffic::spatial::CliqueLocal::new(net.cliques().clone(), x),
    );
    let (metrics, drained) = net.simulate(flows, 13, 5_000_000).unwrap();
    assert!(drained);
    assert!(
        (metrics.mean_hops() - fl.mean_hops).abs() < 0.1,
        "packet {} vs flow-level {}",
        metrics.mean_hops(),
        fl.mean_hops
    );
}

#[test]
fn throughput_formula_agrees_with_evaluator_at_ideal_q() {
    for &x in &[0.0, 0.25, 0.5, 0.75] {
        let net = SornNetwork::build(SornConfig::small(32, 4, x)).unwrap();
        let rep = net.flow_throughput(x).unwrap();
        let formula = model::optimal_throughput(x);
        assert!(
            (rep.throughput - formula).abs() < 0.05,
            "x={x}: evaluator {} vs formula {}",
            rep.throughput,
            formula
        );
    }
}

#[test]
fn inter_variant_gap_is_exactly_nc_minus_one() {
    // The two published inter-δm variants differ by exactly Nc-1 slots.
    for nc in [8usize, 32, 64] {
        let q = model::ideal_q(0.56);
        let t = model::inter_delta_m(q, nc, 4096 / nc, InterCliqueLatencyModel::Table);
        let x = model::inter_delta_m(q, nc, 4096 / nc, InterCliqueLatencyModel::Text);
        assert!((x - t - (nc as f64 - 1.0)).abs() < 1e-9);
    }
}
