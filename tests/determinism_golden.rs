//! Determinism golden test for the simulation hot path.
//!
//! A fixed 32-node scenario is pushed through two routing schemes and
//! the resulting metrics — `delivered_cells`, `cell_latency_sum_ns`,
//! `transmissions`, and every per-flow `completion_ns` — are compared
//! against snapshotted constants. Any hot-path change (queue layout,
//! arrival calendar, flow bookkeeping) must reproduce these values
//! bit-for-bit: same configuration in, identical `Metrics` out.
//!
//! Both schemes are RNG-free (the engine only touches its seeded RNG
//! inside `Router::decide`), so the constants are independent of the
//! RNG implementation and hold on every platform.
//!
//! To regenerate after an *intentional* semantic change, run
//!
//! ```text
//! cargo test --test determinism_golden -- --ignored --nocapture
//! ```
//!
//! and paste the printed tables over the constants below.

use sorn_sim::{
    Cell, ClassId, DirectRouter, Engine, Flow, FlowId, Metrics, NodeRng, RouteDecision, Router,
    SimConfig,
};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

const N: usize = 32;
const FLOWS: usize = 16;
const MAX_SLOTS: u64 = 100_000;

/// The fixed workload: 16 flows with staggered arrivals, 1–5 cells each.
fn golden_flows() -> Vec<Flow> {
    (0..FLOWS as u64)
        .map(|i| Flow {
            id: FlowId(i),
            src: NodeId(((7 * i) % N as u64) as u32),
            dst: NodeId(((7 * i + 11) % N as u64) as u32),
            size_bytes: (i % 5 + 1) * 1250,
            arrival_ns: i * 230,
        })
        .collect()
}

/// A deterministic two-hop VLB-style scheme: the first hop sprays onto
/// whatever circuit is up (class queue), the second must be the direct
/// circuit to the destination. Never consults the RNG.
struct DetVlb;

const SPRAY: ClassId = ClassId(0);

impl Router for DetVlb {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut NodeRng) -> RouteDecision {
        if node == cell.dst {
            RouteDecision::Deliver
        } else {
            RouteDecision::ToClass(SPRAY)
        }
    }
    fn class_admits(&self, _class: ClassId, cell: &Cell, _from: NodeId, to: NodeId) -> bool {
        cell.hops == 0 || to == cell.dst
    }
    fn classes(&self) -> &[ClassId] {
        &[SPRAY]
    }
    fn max_hops(&self) -> u8 {
        2
    }
    fn name(&self) -> &str {
        "det-vlb"
    }
}

fn run_scheme(router: &dyn Router) -> Metrics {
    run_scheme_threaded(router, 1)
}

fn run_scheme_threaded(router: &dyn Router, engine_threads: usize) -> Metrics {
    let schedule = round_robin(N).expect("schedule");
    let cfg = SimConfig {
        engine_threads,
        ..SimConfig::default()
    };
    let mut eng = Engine::new(cfg, &schedule, router);
    eng.add_flows(golden_flows()).expect("flows in range");
    assert!(
        eng.run_until_drained(MAX_SLOTS).expect("run"),
        "golden scenario must drain"
    );
    eng.metrics().clone()
}

struct Golden {
    delivered_cells: u64,
    cell_latency_sum_ns: u128,
    transmissions: u64,
    /// `(flow id, completion_ns)` in completion order.
    completions: &'static [(u64, u64)],
}

fn check(metrics: &Metrics, want: &Golden, scheme: &str) {
    assert_eq!(
        metrics.delivered_cells, want.delivered_cells,
        "{scheme}: delivered_cells"
    );
    assert_eq!(
        metrics.cell_latency_sum_ns, want.cell_latency_sum_ns,
        "{scheme}: cell_latency_sum_ns"
    );
    assert_eq!(
        metrics.transmissions, want.transmissions,
        "{scheme}: transmissions"
    );
    let got: Vec<(u64, u64)> = metrics
        .flows
        .iter()
        .map(|f| (f.id.0, f.completion_ns))
        .collect();
    assert_eq!(got, want.completions, "{scheme}: per-flow completions");
}

const GOLDEN_DIRECT: Golden = Golden {
    delivered_cells: 46,
    cell_latency_sum_ns: 264700,
    transmissions: 46,
    completions: &[
        (0, 1600),
        (5, 4700),
        (10, 4700),
        (1, 4700),
        (15, 4700),
        (6, 7800),
        (11, 7800),
        (2, 7800),
        (3, 10900),
        (7, 10900),
        (12, 10900),
        (8, 14000),
        (13, 14000),
        (4, 14000),
        (9, 17100),
        (14, 17100),
    ],
};

const GOLDEN_SPRAY: Golden = Golden {
    delivered_cells: 46,
    cell_latency_sum_ns: 130500,
    transmissions: 90,
    completions: &[
        (0, 1500),
        (6, 3300),
        (5, 3500),
        (4, 3600),
        (3, 3900),
        (2, 4100),
        (1, 4300),
        (12, 5000),
        (11, 5200),
        (10, 5500),
        (9, 5700),
        (8, 5900),
        (7, 6000),
        (15, 7300),
        (13, 7500),
        (14, 7500),
    ],
};

#[test]
fn direct_scheme_matches_golden_metrics() {
    check(&run_scheme(&DirectRouter), &GOLDEN_DIRECT, "direct");
}

#[test]
fn spray_scheme_matches_golden_metrics() {
    check(&run_scheme(&DetVlb), &GOLDEN_SPRAY, "spray");
}

/// The parallel engine must reproduce the same golden constants — not
/// just match the serial run, but hit the identical committed snapshot
/// at every thread count.
#[test]
fn parallel_engine_matches_golden_metrics() {
    for threads in [2, 4] {
        check(
            &run_scheme_threaded(&DirectRouter, threads),
            &GOLDEN_DIRECT,
            &format!("direct@{threads}t"),
        );
        check(
            &run_scheme_threaded(&DetVlb, threads),
            &GOLDEN_SPRAY,
            &format!("spray@{threads}t"),
        );
    }
}

/// Regeneration helper: prints the golden constants for the current
/// engine. Ignored in normal runs.
#[test]
#[ignore = "generator for the constants above"]
fn print_golden_constants() {
    for (name, router) in [
        ("GOLDEN_DIRECT", &DirectRouter as &dyn Router),
        ("GOLDEN_SPRAY", &DetVlb as &dyn Router),
    ] {
        let m = run_scheme(router);
        println!("const {name}: Golden = Golden {{");
        println!("    delivered_cells: {},", m.delivered_cells);
        println!("    cell_latency_sum_ns: {},", m.cell_latency_sum_ns);
        println!("    transmissions: {},", m.transmissions);
        println!("    completions: &[");
        for f in &m.flows {
            println!("        ({}, {}),", f.id.0, f.completion_ns);
        }
        println!("    ],");
        println!("}};");
    }
}
