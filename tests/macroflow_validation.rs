//! Fluid-tier cross-validation: the macroflow tier's drain times must
//! track the cell-level engine on golden scenarios, within documented
//! tolerances (see `sorn_sim::macroflow` module docs).
//!
//! The fluid tier ignores propagation delay, slot quantization, and
//! queueing, all of which are bounded per-flow constants, so the
//! relative makespan error shrinks as flows grow. The tolerances pinned
//! here are the documented fidelity contract:
//!
//! - **Direct single-circuit traffic** (each pair served by its
//!   round-robin circuit, no sharing, no spraying): ≤ 5 % makespan
//!   error.
//! - **Sprayed VLB traffic** (randomized two-hop detours, queueing at
//!   intermediates): ≤ 15 % makespan error.

use sorn_routing::{DirectPaths, FlowLevelOracle, VlbPaths, VlbRouter};
use sorn_sim::{DirectRouter, Engine, FaultPlan, Flow, FlowId, FluidStop, FluidTier, SimConfig};
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

const MAX_SLOTS: u64 = 10_000_000;

fn flow(id: u64, src: u32, dst: u32, bytes: u64, at: u64) -> Flow {
    Flow {
        id: FlowId(id),
        src: NodeId(src),
        dst: NodeId(dst),
        size_bytes: bytes,
        arrival_ns: at,
    }
}

/// Cell-level makespan: drain the flows and report the last slot's end.
fn cell_makespan(cfg: SimConfig, router: &dyn sorn_sim::Router, flows: &[Flow], n: usize) -> f64 {
    let schedule = round_robin(n).unwrap();
    let mut eng = Engine::new(cfg, &schedule, router);
    eng.set_fast_forward(true);
    eng.add_flows(flows.to_vec()).unwrap();
    assert!(eng.run_until_drained(MAX_SLOTS).unwrap());
    let makespan = eng
        .metrics()
        .flows
        .iter()
        .map(|r| r.completion_ns)
        .max()
        .unwrap() as f64;
    eng.finish();
    makespan
}

/// Fluid makespan under the flow-level oracle for `model`.
fn fluid_makespan(
    cfg: SimConfig,
    model: &dyn sorn_routing::PathModel,
    flows: &[Flow],
    n: usize,
) -> f64 {
    let topo = round_robin(n).unwrap().logical_topology();
    let oracle = FlowLevelOracle::new(&topo, model);
    let mut tier = FluidTier::new(n, &cfg, oracle);
    tier.add_flows(flows.to_vec());
    assert_eq!(
        tier.advance(cfg.slot_start(MAX_SLOTS), &FaultPlan::new()),
        FluidStop::Drained
    );
    tier.stats()
        .completed
        .iter()
        .map(|r| r.completion_ns)
        .max()
        .unwrap() as f64
}

fn assert_within(cell: f64, fluid: f64, tolerance: f64, what: &str) {
    let err = (cell - fluid).abs() / cell;
    eprintln!(
        "{what}: cell {cell} ns, fluid {fluid} ns, error {:.2} %",
        err * 100.0
    );
    assert!(
        err <= tolerance,
        "{what}: fluid {fluid} ns vs cell {cell} ns — {:.1} % error exceeds {:.0} % tolerance",
        err * 100.0,
        tolerance * 100.0,
    );
}

#[test]
fn direct_circuit_traffic_matches_within_5_percent() {
    // Four disjoint pairs, each drained over its dedicated round-robin
    // circuit (1/(n-1) of line rate). 1.25 MB = 1000 cells per flow.
    let n = 8;
    let cfg = SimConfig::default();
    let flows: Vec<Flow> = (0..4)
        .map(|i| flow(i, 2 * i as u32, 2 * i as u32 + 1, 1_250_000, 0))
        .collect();
    let cell = cell_makespan(cfg, &DirectRouter, &flows, n);
    let fluid = fluid_makespan(cfg, &DirectPaths, &flows, n);
    assert_within(cell, fluid, 0.05, "direct permutation traffic");
}

#[test]
fn direct_traffic_with_source_sharing_matches_within_5_percent() {
    // Two flows leave node 0 for different destinations, plus staggered
    // arrivals elsewhere: exercises fair-share splits and mid-flight
    // rate re-solves against the cell engine's slot interleaving.
    let n = 8;
    let cfg = SimConfig::default();
    let flows = vec![
        flow(0, 0, 1, 1_250_000, 0),
        flow(1, 0, 2, 1_250_000, 0),
        flow(2, 3, 4, 625_000, 100_000),
        flow(3, 5, 6, 1_875_000, 250_000),
    ];
    let cell = cell_makespan(cfg, &DirectRouter, &flows, n);
    let fluid = fluid_makespan(cfg, &DirectPaths, &flows, n);
    assert_within(cell, fluid, 0.05, "direct traffic with shared sources");
}

#[test]
fn sprayed_vlb_traffic_matches_within_15_percent() {
    // All-to-one-neighbor permutation over 2-hop VLB: every flow's
    // cells spray across intermediates, so the fluid rate comes from
    // the VLB path distribution's bottleneck, and the cell engine adds
    // real queueing at the detour hops.
    let n = 8;
    let cfg = SimConfig::default();
    let flows: Vec<Flow> = (0..n as u32)
        .map(|s| flow(s as u64, s, (s + 1) % n as u32, 1_250_000, 0))
        .collect();
    let router = VlbRouter::new();
    let cell = cell_makespan(cfg, &router, &flows, n);
    let fluid = fluid_makespan(cfg, &VlbPaths::new(n), &flows, n);
    assert_within(cell, fluid, 0.15, "sprayed VLB permutation traffic");
}
