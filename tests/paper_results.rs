//! Reproduction assertions: the key quantitative claims of the paper
//! must hold on this implementation (shape and, where printed, values).

use sorn::analysis::blast::blast_radius;
use sorn::analysis::fig2f::{generate, Fig2fParams};
use sorn::analysis::table1::{generate as table1, Table1Params};
use sorn::core::model;
use sorn::routing::{SornPaths, VlbPaths};
use sorn::topology::CliqueMap;

#[test]
fn table1_values_match_the_paper() {
    let rows = table1(&Table1Params::default());
    let find = |sys: &str, var: Option<&str>| {
        rows.iter()
            .find(|r| r.system.contains(sys) && r.variant.as_deref() == var)
            .unwrap_or_else(|| panic!("missing row {sys}/{var:?}"))
    };

    // 1D ORN (Sirius): 2 hops, δm 4095, 26.59 µs, 50%, 2x.
    let sirius = find("1D", None);
    assert_eq!(sirius.max_hops, 2);
    assert_eq!(sirius.delta_m as u64, 4095);
    assert!((sirius.min_latency_ns / 1000.0 - 26.59).abs() < 0.01);
    assert_eq!(sirius.throughput, 0.5);

    // Opera: short 4 hops / δm 0 / 2 µs; bulk 2 hops / δm 4095 /
    // 23,034 µs; both 31.25% and 3.2x.
    let short = find("Opera", Some("short flows"));
    assert_eq!((short.max_hops, short.delta_m as u64), (4, 0));
    assert!((short.min_latency_ns / 1000.0 - 2.0).abs() < 1e-9);
    assert!((short.throughput - 0.3125).abs() < 1e-9);
    let bulk = find("Opera", Some("bulk"));
    assert_eq!(bulk.delta_m as u64, 4095);
    assert!((bulk.min_latency_ns / 1000.0 - 23_034.4).abs() < 1.0);

    // 2D ORN: 4 hops, δm 252, 3.57 µs, 25%, 4x.
    let d2 = find("2D", None);
    assert_eq!((d2.max_hops, d2.delta_m as u64), (4, 252));
    assert!((d2.min_latency_ns / 1000.0 - 3.575).abs() < 0.01);
    assert_eq!(d2.throughput, 0.25);

    // SORN Nc=64: intra 77 slots / 1.48 µs, inter 364 / 3.77 µs,
    // 40.98%, 2.44x. SORN Nc=32: 155 / 1.97 µs, 296 / 3.35 µs.
    let s64i = find("Nc=64", Some("intra-clique"));
    assert_eq!(s64i.delta_m.ceil() as u64, 77);
    assert!((s64i.min_latency_ns / 1000.0 - 1.48).abs() < 0.01);
    assert!((s64i.throughput - 0.4098).abs() < 1e-3);
    assert!((s64i.bw_cost - 2.44).abs() < 1e-9);
    let s64e = find("Nc=64", Some("inter-clique"));
    assert_eq!(s64e.delta_m.ceil() as u64, 364);
    assert!((s64e.min_latency_ns / 1000.0 - 3.77).abs() < 0.01);
    let s32i = find("Nc=32", Some("intra-clique"));
    assert_eq!(s32i.delta_m.ceil() as u64, 155);
    assert!((s32i.min_latency_ns / 1000.0 - 1.97).abs() < 0.01);
    let s32e = find("Nc=32", Some("inter-clique"));
    assert_eq!(s32e.delta_m.ceil() as u64, 296);
    assert!((s32e.min_latency_ns / 1000.0 - 3.35).abs() < 0.01);
}

#[test]
fn table1_shape_who_wins_where() {
    let rows = table1(&Table1Params::default());
    let by = |sys: &str, var: Option<&str>| {
        rows.iter()
            .find(|r| r.system.contains(sys) && r.variant.as_deref() == var)
            .unwrap()
    };
    // Ordering claims from §4's discussion of the table:
    // SORN cuts latency by an order of magnitude vs the 1D ORN.
    assert!(
        by("Nc=64", Some("intra-clique")).min_latency_ns * 10.0 <= by("1D", None).min_latency_ns
    );
    // SORN intra beats both the 2D ORN and Opera bulk.
    assert!(by("Nc=64", Some("intra-clique")).min_latency_ns < by("2D", None).min_latency_ns);
    // Throughput: 1D > SORN > Opera > 2D.
    assert!(by("1D", None).throughput > by("Nc=64", Some("intra-clique")).throughput);
    assert!(by("Nc=64", Some("intra-clique")).throughput > by("Opera", Some("bulk")).throughput);
    assert!(by("Opera", Some("bulk")).throughput > by("2D", None).throughput);
    // Bandwidth cost: inverse ordering.
    assert!(by("1D", None).bw_cost < by("Nc=64", Some("intra-clique")).bw_cost);
    assert!(by("Nc=64", Some("intra-clique")).bw_cost < by("Opera", Some("bulk")).bw_cost);
    assert!(by("Opera", Some("bulk")).bw_cost < by("2D", None).bw_cost);
}

#[test]
fn fig2f_series_reproduces_the_paper_shape() {
    // Full paper-scale figure: 128 nodes, 8 cliques.
    let pts = generate(&Fig2fParams::default()).expect("figure");
    assert_eq!(pts.len(), 10);
    for p in &pts {
        // The constructed schedule achieves (at least) the theory curve.
        assert!(
            (p.simulated - p.theory).abs() < 0.02,
            "x={}: sim {} vs theory {}",
            p.x,
            p.simulated,
            p.theory
        );
    }
    // r bounded between 1/3 and 1/2, increasing in x (§4).
    assert!((pts[0].simulated - 1.0 / 3.0).abs() < 0.01);
    assert!(pts.last().unwrap().simulated < 0.5);
    for w in pts.windows(2) {
        assert!(w[1].simulated > w[0].simulated);
    }
    // At the production median x = 0.56 the model gives ~41%.
    let r56 = model::optimal_throughput(0.56);
    assert!((r56 - 0.4098).abs() < 1e-3);
}

#[test]
fn modularity_shrinks_blast_radius() {
    let n = 64;
    let flat = blast_radius(n, &VlbPaths::new(n));
    let sorn8 = blast_radius(n, &SornPaths::new(CliqueMap::contiguous(n, 8)));
    // §6: modular designs reduce failure exposure significantly.
    assert!(sorn8.mean_exposure * 3.0 < flat.mean_exposure);
}

#[test]
fn ideal_q_maximizes_throughput() {
    // §4: q* = 2/(1-x) balances intra and inter bounds. Check it is the
    // argmax over a grid for several localities.
    for &x in &[0.0, 0.3, 0.56, 0.8] {
        let q_star = model::ideal_q(x);
        let best = model::throughput(q_star, x);
        for i in 1..100 {
            let q = i as f64 * 0.25;
            assert!(
                model::throughput(q, x) <= best + 1e-12,
                "q={q} beats q*={q_star} at x={x}"
            );
        }
    }
}
