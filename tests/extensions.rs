//! Integration tests for the extension features: non-uniform cliques,
//! adaptive routing, Opera frozen-epoch simulation, live schedule
//! updates, and diurnal tracking.

use sorn::routing::{
    AdaptiveSornRouter, GeneralSornRouter, OperaModel, OperaShortRouter, SornRouter, VlbRouter,
};
use sorn::sim::{Engine, Flow, FlowId, SimConfig};
use sorn::topology::builders::{
    nonuniform_sorn_schedule, round_robin, sorn_schedule, SornScheduleParams,
};
use sorn::topology::{CliqueId, CliqueMap, NodeId, Ratio};
use sorn::traffic::{DiurnalPattern, DiurnalWorkload, FlowSizeDist};

fn mesh(n: u32, bytes: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: bytes,
                    arrival_ns: id * 25,
                });
                id += 1;
            }
        }
    }
    flows
}

#[test]
fn nonuniform_cliques_full_mesh_within_three_hops() {
    // Sizes 6/3/3 over 12 nodes.
    let c = |x: u32| CliqueId(x);
    let assignment: Vec<CliqueId> = (0..12)
        .map(|v| {
            if v < 6 {
                c(0)
            } else if v < 9 {
                c(1)
            } else {
                c(2)
            }
        })
        .collect();
    let map = CliqueMap::from_assignment(&assignment);
    let sched = nonuniform_sorn_schedule(&map, Ratio::integer(2), 0, 1 << 20).unwrap();
    let router = GeneralSornRouter::new(map);
    let mut eng = Engine::new(SimConfig::default(), &sched, &router);
    let flows = mesh(12, 2500);
    let count = flows.len();
    eng.add_flows(flows).unwrap();
    assert!(eng.run_until_drained(2_000_000).unwrap());
    assert_eq!(eng.metrics().flows.len(), count);
    for f in &eng.metrics().flows {
        assert!(f.max_hops <= 3);
    }
}

#[test]
fn adaptive_sorn_never_worse_hop_bound_and_lower_tax() {
    let map = CliqueMap::contiguous(16, 4);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).unwrap();
    let plain = SornRouter::new(map.clone());
    let adaptive = AdaptiveSornRouter::new(map.clone(), 8);

    let run = |router: &dyn sorn::sim::Router| {
        let mut eng = Engine::new(SimConfig::default(), &sched, router);
        eng.add_flows(mesh(16, 1250)).unwrap();
        assert!(eng.run_until_drained(2_000_000).unwrap());
        (eng.metrics().mean_hops(), eng.metrics().flows.len())
    };
    let (hops_plain, n1) = run(&plain);
    let (hops_adaptive, n2) = run(&adaptive);
    assert_eq!(n1, n2);
    assert!(
        hops_adaptive < hops_plain,
        "adaptive {hops_adaptive} should beat plain {hops_plain}"
    );
}

#[test]
fn opera_frozen_epoch_short_flows_have_low_latency() {
    // Opera's pitch: short flows see an always-available expander path.
    // At a frozen epoch, single-cell flows complete within (diameter x
    // one active cycle) with no schedule-period wait.
    let om = OperaModel::new(64, 8, 0.75, 4, 9).unwrap();
    let sched = om.frozen_schedule(0, 4).unwrap();
    let router = OperaShortRouter::new(&om, 0, 4).expect("connected");
    let mut eng = Engine::new(SimConfig::default(), &sched, &router);
    let flows: Vec<Flow> = (0..32u32)
        .map(|i| Flow {
            id: FlowId(i as u64),
            src: NodeId(i % 64),
            dst: NodeId((i + 31) % 64),
            size_bytes: 1,
            arrival_ns: i as u64 * 10,
        })
        .collect();
    eng.add_flows(flows).unwrap();
    assert!(eng.run_until_drained(100_000).unwrap());
    let worst_fct = eng
        .metrics()
        .flows
        .iter()
        .map(|f| f.fct_ns())
        .max()
        .unwrap();
    // diameter hops, each waiting at most the 6-slot active cycle.
    let bound = router.diameter() as u64 * (6 * 100 + 500) + 100;
    assert!(worst_fct <= bound, "worst {worst_fct} > bound {bound}");

    // Contrast: the same flows on a 1D round robin wait for the direct
    // circuit — worst case near the full 63-slot period.
    let rr = round_robin(64).unwrap();
    let vlb = VlbRouter::new();
    let mut eng2 = Engine::new(SimConfig::default(), &rr, &vlb);
    eng2.add_flows(
        (0..32u32)
            .map(|i| Flow {
                id: FlowId(i as u64),
                src: NodeId(i % 64),
                dst: NodeId((i + 31) % 64),
                size_bytes: 1,
                arrival_ns: i as u64 * 10,
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert!(eng2.run_until_drained(100_000).unwrap());
    let worst_vlb = eng2
        .metrics()
        .flows
        .iter()
        .map(|f| f.fct_ns())
        .max()
        .unwrap();
    assert!(
        worst_fct < worst_vlb,
        "frozen-expander short flows ({worst_fct}) should beat 1D VLB ({worst_vlb})"
    );
}

#[test]
fn live_update_from_flat_to_cliques_keeps_traffic_flowing() {
    // §5 end-to-end at packet level: start on a flat round robin with
    // VLB, then the operator installs a clique schedule whose router has
    // a different class set — so the drain procedure is: quiesce (run
    // down in-flight), swap schedule+router via a new engine, re-inject
    // leftovers. Here we exercise the supported in-place path: same
    // router classes, new schedule (a q rebalance).
    let map = CliqueMap::contiguous(16, 4);
    let s_q4 = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).unwrap();
    let s_q1 = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(1))).unwrap();
    let router = SornRouter::new(map.clone());
    let mut eng = Engine::new(SimConfig::default(), &s_q4, &router);
    eng.add_flows(mesh(16, 5 * 1250)).unwrap();
    eng.run_slots(50).unwrap();
    let before = eng.metrics().delivered_cells;
    // Install the rebalanced schedule mid-run; routing decisions stay
    // valid (same cliques), so no reroute is strictly needed — but run
    // it anyway to exercise the path.
    eng.install_schedule(&s_q1);
    eng.reroute_queued().unwrap();
    assert!(eng.run_until_drained(2_000_000).unwrap());
    assert!(eng.metrics().delivered_cells > before);
    assert_eq!(eng.metrics().flows.len(), 16 * 15);
}

#[test]
fn diurnal_windows_feed_the_estimator_consistently() {
    let map = CliqueMap::contiguous(16, 4);
    let wl = DiurnalWorkload {
        cliques: map.clone(),
        pattern: DiurnalPattern {
            period_ns: 1_000_000,
            mean_load: 0.3,
            amplitude: 0.5,
            locality_peak: 0.8,
            locality_trough: 0.2,
        },
        sizes: FlowSizeDist::fixed(4_000),
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 1_000_000,
        seed: 23,
    };
    let flows = wl.generate();
    let windows = wl.windows(&flows, 250_000);
    assert_eq!(windows.len(), 4);
    let total: usize = windows.iter().map(|w| w.len()).sum();
    assert_eq!(total, flows.len(), "windowing must not lose flows");

    let mut est = sorn::control::PatternEstimator::new(16, 1.0);
    for w in &windows {
        est.observe_flows(w);
    }
    est.end_epoch();
    let total_bytes: f64 = flows.iter().map(|f| f.size_bytes as f64).sum();
    assert!((est.total() - total_bytes).abs() < 1e-6);
}
