//! End-to-end tests for the `sorn-cli` binary: analyze, schedule,
//! gen-trace → simulate round trip, and error handling.

use std::process::Command;

fn cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sorn-cli"))
        .args(args)
        .output()
        .expect("launch sorn-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn analyze_prints_the_table1_numbers() {
    let (ok, out, _) = cli(&[
        "analyze",
        "--n",
        "4096",
        "--cliques",
        "64",
        "--locality",
        "0.56",
        "--uplinks",
        "16",
    ]);
    assert!(ok);
    assert!(out.contains("77"), "{out}");
    assert!(out.contains("364"), "{out}");
    assert!(out.contains("1.48 us"), "{out}");
    assert!(out.contains("40.98%"), "{out}");
}

#[test]
fn schedule_prints_topology_a() {
    let (ok, out, _) = cli(&["schedule", "--n", "8", "--cliques", "2", "--q", "3"]);
    assert!(ok);
    // 4-slot schedule; slot 4 is the inter matching 0->4.
    assert_eq!(out.lines().count(), 5);
    assert!(out.contains("4\t4\t5\t6\t7\t0\t1\t2\t3"), "{out}");
}

#[test]
fn trace_round_trip_through_files() {
    let dir = std::env::temp_dir().join("sorn-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let trace_s = trace.to_str().unwrap();

    let (ok, out, err) = cli(&[
        "gen-trace",
        "--n",
        "16",
        "--cliques",
        "4",
        "--locality",
        "0.5",
        "--load",
        "0.2",
        "--duration-us",
        "100",
        "--dist",
        "fixed:5000",
        "--seed",
        "3",
        "--out",
        trace_s,
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("wrote"), "{out}");

    let (ok2, out2, err2) = cli(&[
        "simulate",
        "--trace",
        trace_s,
        "--cliques",
        "4",
        "--locality",
        "0.5",
    ]);
    assert!(ok2, "{err2}");
    assert!(out2.contains("drained"), "{out2}");
    assert!(out2.contains("true"), "{out2}");
    assert!(out2.contains("FCT slowdown by flow size"), "{out2}");
}

#[test]
fn table1_subcommand_matches_paper() {
    let (ok, out, _) = cli(&["table1"]);
    assert!(ok);
    assert!(out.contains("26.59 us"), "{out}");
    assert!(out.contains("40.98%"), "{out}");
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let (ok, _, err) = cli(&["bogus-command"]);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");

    let (ok2, _, err2) = cli(&["analyze", "--n", "10", "--cliques", "3"]);
    assert!(!ok2);
    assert!(err2.contains("divide"), "{err2}");

    let (ok3, _, err3) = cli(&["simulate", "--cliques", "4"]);
    assert!(!ok3);
    assert!(err3.contains("--trace"), "{err3}");
}
