//! Offline typecheck stub for `serde_json 1` — signatures only.

use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error)
}
