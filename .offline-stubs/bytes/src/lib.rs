//! Offline typecheck stub (unused in code).
