//! Offline typecheck stub for `criterion 0.5` — API subset, no timing.
#![allow(clippy::new_without_default)]

use std::fmt::Display;
use std::marker::PhantomData;

pub struct Criterion;

impl Criterion {
    pub fn new() -> Self {
        Criterion
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup(PhantomData)
    }
}

pub struct BenchmarkGroup<'a>(PhantomData<&'a ()>);

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: impl IdLike, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }
    pub fn finish(self) {}
}

pub trait IdLike {}
impl IdLike for BenchmarkId {}
impl IdLike for &str {}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<P: Display>(_name: &str, _p: P) -> Self {
        BenchmarkId
    }
    pub fn from_parameter<P: Display>(_p: P) -> Self {
        BenchmarkId
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $cfg;
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
