//! Offline typecheck stub for `rand 0.8` — API-compatible subset.
#![allow(clippy::new_without_default)]

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let span = (self.end - self.start).max(1);
                self.start + (rng.next_u64() % span as u64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                let span = (e - s + 1).max(1);
                s + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

pub trait SampleValue: Sized {
    fn sample_value(rng: &mut dyn RngCore) -> Self;
}
impl SampleValue for f64 {
    fn sample_value(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl SampleValue for u64 {
    fn sample_value(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}
impl SampleValue for bool {
    fn sample_value(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
    #[allow(clippy::should_implement_trait)]
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_value(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64 — deterministic, but NOT the real StdRng stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
