//! Offline typecheck stub for `proptest 1`: the `proptest!` macro
//! swallows its body (property tests are not typechecked offline), while
//! the `Strategy` combinators used by helper functions outside the macro
//! typecheck for real.

use std::marker::PhantomData;

#[macro_export]
macro_rules! proptest {
    ($($t:tt)*) => {};
}

/// Error type returned by `prop_assert!` helpers outside the macro.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::TestCaseError::fail(format!("{:?} != {:?}", a, b)));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

pub trait Strategy: Sized {
    type Value;
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F, T> {
        Map(self, f, PhantomData)
    }
}

pub struct Map<S, F, T>(S, F, PhantomData<T>);

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F, T> {
    type Value = T;
}

impl<T> Strategy for std::ops::Range<T> {
    type Value = T;
}

impl<T> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
}

pub struct VecStrategy<S>(S);

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
}

pub mod collection {
    pub fn vec<S, Z>(element: S, _size: Z) -> super::VecStrategy<S> {
        super::VecStrategy(element)
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T> {
    type Value = T;
}

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

pub struct Just<T>(pub T);

impl<T> Strategy for Just<T> {
    type Value = T;
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Typechecks as the first arm's strategy; alternatives are discarded.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        $(let _ = $rest;)*
        $first
    }};
}

pub mod option {
    pub struct OptionStrategy<S>(S);

    impl<S: super::Strategy> super::Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
    }

    pub fn of<S>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

pub mod prelude {
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{any, Just, Strategy};
}
