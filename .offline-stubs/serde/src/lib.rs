//! Offline typecheck stub for `serde 1` — blanket-implemented traits.

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
