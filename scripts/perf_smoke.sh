#!/usr/bin/env bash
# CI perf smoke: build the perf harness, run the tiny scenario suite in
# parallel, schema-check the emitted report, prove --jobs does not
# change simulation results, and gate against the committed baseline.
#
# `perf_smoke.sh scale` runs only the warehouse-scale stanza instead: a
# truncated --scale16k under wall-clock and peak-RSS budgets, byte-diffed
# serial vs --engine-threads 2.
#
# `perf_smoke.sh horizon` runs only the long-horizon stanza: the tiny
# --horizon scenario with batched fast-forward on and off, asserting
# identical sim results, an engaged skip, a real speedup, and a clean
# wall-per-sim-ns baseline gate.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-full}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Per-scenario slots and delivered cells come from seeded simulations
# and must be byte-identical at any job/thread count; wall times,
# cells/sec, and RSS are machine noise, so strip everything but the sim
# results. Only headline lines carry "N slots, M cells,"; other
# [scenario] lines (trace summaries, recorder notes) are skipped.
deterministic() {
  grep -E '^\[[a-z0-9_]+\]' "$1" | awk '{
    s = ""; c = ""
    for (i = 1; i <= NF; i++) {
      if ($i == "slots,") s = $(i - 1)
      if ($i == "cells,") c = $(i - 1)
    }
    if (s != "" && c != "") print $1, s, c
  }'
}

echo "== build perf harness =="
cargo build --release --bin perf

if [ "$mode" = scale ]; then
  # Budgets are generous (the truncated scenario runs in ~1 s and ~60
  # MiB locally): they gate pathological blowups in the warehouse path,
  # not machine noise.
  wall_budget_s=180
  rss_budget_mib=2048

  echo "== truncated --scale16k under wall/RSS budgets =="
  start_s="$(date +%s)"
  ./target/release/perf --scale16k --tiny --label scale16k \
    --out-dir "$tmpdir/s1" > "$tmpdir/s1.out"
  elapsed_s=$(( $(date +%s) - start_s ))
  cat "$tmpdir/s1.out"
  rss_mib="$(grep -E '^\[scale16k_hier\]' "$tmpdir/s1.out" \
    | grep -o 'peak RSS [0-9.]*' | awk '{print int($3)}')"
  [ -n "$rss_mib" ] || { echo "FAIL: no peak-RSS headline" >&2; exit 1; }
  echo "scale16k smoke: ${elapsed_s}s wall (budget ${wall_budget_s}s), ${rss_mib} MiB peak RSS (budget ${rss_budget_mib} MiB)"
  if [ "$elapsed_s" -gt "$wall_budget_s" ]; then
    echo "FAIL: --scale16k smoke exceeded the wall-clock budget" >&2; exit 1
  fi
  if [ "$rss_mib" -gt "$rss_budget_mib" ]; then
    echo "FAIL: --scale16k smoke exceeded the peak-RSS budget" >&2; exit 1
  fi

  echo "== schema validation =="
  ./target/release/perf --validate "$tmpdir/s1/BENCH_scale16k.json"

  echo "== --engine-threads 2 must reproduce the serial 16k run bit-for-bit =="
  ./target/release/perf --scale16k --tiny --engine-threads 2 --label scale16k-t2 \
    --out-dir "$tmpdir/s2" > "$tmpdir/s2.out"
  diff <(deterministic "$tmpdir/s1.out") <(deterministic "$tmpdir/s2.out")
  echo "engine-threads=1 and engine-threads=2 agree on the 16k scenario's slots and cells."

  echo "scale smoke passed."
  exit 0
fi

if [ "$mode" = horizon ]; then
  echo "== tiny --horizon: fast-forward vs slot-by-slot reference =="
  ./target/release/perf --horizon --tiny --label hz \
    --out-dir "$tmpdir/hz" > "$tmpdir/hz.out"
  ./target/release/perf --horizon --tiny --no-skip --label hz-ref \
    --out-dir "$tmpdir/hzref" > "$tmpdir/hzref.out"
  cat "$tmpdir/hz.out"

  echo "== skipping and per-slot stepping must agree on sim results =="
  diff <(deterministic "$tmpdir/hz.out") <(deterministic "$tmpdir/hzref.out")
  echo "fast-forward and --no-skip agree on the horizon scenario's slots and cells."

  echo "== schema validation =="
  ./target/release/perf --validate "$tmpdir/hz/BENCH_hz.json"

  echo "== the batched skip must actually engage =="
  skipped="$(grep -o '"slots_skipped": [0-9]*' "$tmpdir/hz/BENCH_hz.json" | awk '{print $2}')"
  slots="$(grep -o '"slots": [0-9]*' "$tmpdir/hz/BENCH_hz.json" | awk '{print $2}')"
  echo "horizon_diurnal: $skipped of $slots slots skipped"
  [ -n "$skipped" ] && [ "$skipped" -gt 1000000 ] || {
    echo "FAIL: batched fast-forward did not engage (slots_skipped=$skipped)" >&2; exit 1; }

  echo "== fast-forward must beat per-slot stepping =="
  # The tiny horizon is 2e6 slots; locally the ratio is ~13x. Require a
  # conservative 2x so CI noise cannot flake the gate, only a broken
  # skip can.
  wall() { grep -o '"wall_ns": [0-9]*' "$1" | head -1 | awk '{print $2}'; }
  ff_ns="$(wall "$tmpdir/hz/BENCH_hz.json")"
  ref_ns="$(wall "$tmpdir/hzref/BENCH_hz-ref.json")"
  echo "wall: fast-forward ${ff_ns} ns, per-slot ${ref_ns} ns"
  if [ "$((ff_ns * 2))" -gt "$ref_ns" ]; then
    echo "FAIL: fast-forward under 2x faster than per-slot stepping" >&2; exit 1
  fi

  echo "== wall-per-sim-ns baseline gate: faster must pass =="
  ./target/release/perf --horizon --tiny --label hz-gate --out-dir "$tmpdir/hzgate" \
    --baseline "$tmpdir/hzref/BENCH_hz-ref.json" --threshold 75

  echo "== --engine-threads 2 must reproduce the serial horizon run =="
  ./target/release/perf --horizon --tiny --engine-threads 2 --label hz-t2 \
    --out-dir "$tmpdir/hzt2" > "$tmpdir/hzt2.out"
  diff <(deterministic "$tmpdir/hz.out") <(deterministic "$tmpdir/hzt2.out")
  echo "engine-threads=1 and engine-threads=2 agree on the horizon scenario's slots and cells."

  echo "horizon smoke passed."
  exit 0
fi

echo "== tiny suite, 2 jobs -> BENCH_ci.json =="
./target/release/perf --tiny --label ci --jobs 2

echo "== schema validation =="
./target/release/perf --validate BENCH_ci.json

echo "== --jobs 2 must reproduce --jobs 1 per-scenario sim results =="
./target/release/perf --tiny --label ci-j1 --jobs 1 --out-dir "$tmpdir" > "$tmpdir/j1.out"
./target/release/perf --tiny --label ci-j2 --jobs 2 --out-dir "$tmpdir" > "$tmpdir/j2.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/j2.out")
echo "jobs=1 and jobs=2 agree on every scenario's slots and cells."

echo "== --engine-threads 2 must reproduce the serial engine bit-for-bit =="
# Unlike --jobs (which only reorders whole scenarios), --engine-threads
# shards the slot phases inside each simulation; the deterministic merge
# promises identical sim results, so the same stripped output must match.
./target/release/perf --tiny --label ci-t2 --engine-threads 2 --out-dir "$tmpdir" > "$tmpdir/t2.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/t2.out")
echo "engine-threads=1 and engine-threads=2 agree on every scenario's slots and cells."

echo "== tracing + flight recorder must not change sim results or break the bank =="
# --trace-flows 1 traces every flow and the recorder is always on; the
# stripped sim results must still match the untraced run, and the traced
# span files must be byte-identical at any engine-thread count.
./target/release/perf --tiny --label ci-tr1 --trace-flows 1 --out-dir "$tmpdir/tr1" > "$tmpdir/tr1.out"
./target/release/perf --tiny --label ci-tr4 --trace-flows 1 --engine-threads 4 \
  --out-dir "$tmpdir/tr4" > "$tmpdir/tr4.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/tr1.out")
echo "tracing on and off agree on every scenario's slots and cells."
for f in "$tmpdir"/tr1/TRACE_*.txt; do
  diff "$f" "$tmpdir/tr4/$(basename "$f")"
done
echo "traced spans are byte-identical at engine-threads 1 and 4."

# Overhead guard: fully-traced cells/s must stay within a generous
# factor of the untraced run (tiny scenarios are milliseconds, so the
# bound only catches pathological slowdowns, not noise).
awk_rate() {
  grep -E '^\[[a-z0-9_]+\]' "$1" | awk '
    { for (i = 1; i <= NF; i++) { if ($i == "cells/s,") { r += $(i - 1) } } }
    END { print int(r) }'
}
base_rate="$(awk_rate "$tmpdir/j1.out")"
traced_rate="$(awk_rate "$tmpdir/tr1.out")"
echo "aggregate cells/s: untraced=$base_rate traced=$traced_rate"
if [ "$((traced_rate * 10))" -lt "$((base_rate))" ]; then
  echo "FAIL: tracing overhead above 10x (traced=$traced_rate untraced=$base_rate)" >&2
  exit 1
fi
echo "tracing overhead within bound."

echo "== weather reports must be byte-identical serial vs --engine-threads 2 =="
# --weather rolls engine events up into WEATHER_<scenario>.{txt,json};
# the reports are pure functions of merged sim state, so the serial and
# sharded runs must produce byte-identical files (and the sim results
# themselves must still match the plain run).
./target/release/perf --tiny --label ci-w1 --weather --weather-topk 32 \
  --out-dir "$tmpdir/w1" > "$tmpdir/w1.out"
./target/release/perf --tiny --label ci-w2 --weather --weather-topk 32 \
  --engine-threads 2 --out-dir "$tmpdir/w2" > "$tmpdir/w2.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/w1.out")
echo "weather on and off agree on every scenario's slots and cells."
weather_files=0
for f in "$tmpdir"/w1/WEATHER_*.txt "$tmpdir"/w1/WEATHER_*.json; do
  cmp "$f" "$tmpdir/w2/$(basename "$f")"
  weather_files=$((weather_files + 1))
done
[ "$weather_files" -ge 2 ] || {
  echo "FAIL: expected weather reports, found $weather_files" >&2; exit 1; }
echo "$weather_files weather reports byte-identical at engine-threads 1 and 2."

echo "== live /metrics endpoint must answer a mid-run scrape =="
# Lingering after the suite keeps the endpoint up long enough for the
# scrape even if the tiny suite outruns the curl below.
./target/release/perf --tiny --label ci-serve --serve-metrics 127.0.0.1:19898 \
  --serve-linger-ms 4000 --out-dir "$tmpdir/serve" > "$tmpdir/serve.out" &
serve_pid=$!
scrape=""
for _ in $(seq 1 40); do
  if scrape="$(curl -sf http://127.0.0.1:19898/metrics 2>/dev/null)" && [ -n "$scrape" ]; then
    break
  fi
  sleep 0.1
done
wait "$serve_pid"
[ -n "$scrape" ] || { echo "FAIL: no /metrics scrape answered" >&2; exit 1; }
# Well-formed Prometheus text: at least one TYPE line and a sample.
echo "$scrape" | grep -q '^# TYPE sorn_engine_' || {
  echo "FAIL: scrape missing TYPE lines:"; echo "$scrape"; exit 1; } >&2
echo "$scrape" | grep -Eq '^sorn_engine_[a-z_]+ [0-9]' || {
  echo "FAIL: scrape missing samples:"; echo "$scrape"; exit 1; } >&2
echo "mid-run /metrics scrape is well-formed Prometheus text."

echo "== SIGTERM mid-run + --resume must reproduce the uninterrupted run =="
# The checkpointed perf path runs its direct-engine scenarios
# sequentially (fig2f_vlb + resilience_storm). Reference: the same
# checkpointed configuration, uninterrupted. Then: start a fresh run,
# SIGTERM it mid-flight (exit code 3, final checkpoint on disk), resume
# with --resume (exit 0), and byte-compare the deterministic BENCH
# headline fields and every TRACE file against the reference.
ck_flags=(--trace-flows 1 --weather --checkpoint-every 100)
./target/release/perf --label ck-ref "${ck_flags[@]}" \
  --checkpoint-dir "$tmpdir/ck-ref" --out-dir "$tmpdir/ckref" > "$tmpdir/ckref.out"

interrupted=""
for delay in 0.30 0.15 0.08 0.04 0.02; do
  rm -rf "$tmpdir/ck" "$tmpdir/ckres"
  ./target/release/perf --label ck-int "${ck_flags[@]}" \
    --checkpoint-dir "$tmpdir/ck" --out-dir "$tmpdir/ckres" > "$tmpdir/ckint.out" 2>&1 &
  perf_pid=$!
  sleep "$delay"
  kill -TERM "$perf_pid" 2>/dev/null || true
  rc=0; wait "$perf_pid" || rc=$?
  if [ "$rc" -eq 3 ]; then
    interrupted=yes
    break
  fi
  # rc 0 = the suite outran the signal; retry with a shorter delay.
  [ "$rc" -eq 0 ] || { echo "FAIL: interrupted run exited $rc (want 3)" >&2; exit 1; }
done
[ -n "$interrupted" ] || { echo "FAIL: could not interrupt the run mid-flight" >&2; exit 1; }
ls "$tmpdir"/ck/*/ckpt-*.sorn > /dev/null || {
  echo "FAIL: no checkpoint written on SIGTERM" >&2; exit 1; }
echo "SIGTERM landed mid-run: exit 3 with a final checkpoint on disk."

./target/release/perf --label ck-res "${ck_flags[@]}" \
  --checkpoint-dir "$tmpdir/ck" --out-dir "$tmpdir/ckres" --resume > "$tmpdir/ckres.out"
# Deterministic BENCH headline fields (wall times and RSS are noise):
headline() { grep -o '"slots": [0-9]*\|"cells_delivered": [0-9]*' "$1"; }
diff <(headline "$tmpdir"/ckref/BENCH_ck-ref.json) \
     <(headline "$tmpdir"/ckres/BENCH_ck-res.json)
for f in "$tmpdir"/ckref/TRACE_* "$tmpdir"/ckref/WEATHER_*; do
  cmp "$f" "$tmpdir/ckres/$(basename "$f")"
done
echo "resumed run matches the uninterrupted run byte-for-byte (BENCH headline + traces + weather)."

echo "== committed-baseline comparison (must not regress) =="
# Generous threshold: the tiny scenarios finish in milliseconds, so
# run-to-run noise across CI machines is large. This gates gross
# regressions and exercises the comparison path. Jobs must be 1 here:
# the committed baseline is recorded at --jobs 1, and peak RSS is
# process-wide, so a --jobs 2 run's concurrent set inflates it past
# any sane threshold (the perf doc's "record baselines with --jobs 1"
# caveat cuts both ways).
./target/release/perf --tiny --label ci-rerun --jobs 1 --out-dir "$tmpdir" \
  --baseline results/bench_baseline.json --threshold 75

echo "perf smoke passed."
