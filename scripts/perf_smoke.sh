#!/usr/bin/env bash
# CI perf smoke: build the perf harness, run the tiny scenario suite in
# parallel, schema-check the emitted report, prove --jobs does not
# change simulation results, and gate against the committed baseline.
set -euo pipefail

cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== build perf harness =="
cargo build --release --bin perf

echo "== tiny suite, 2 jobs -> BENCH_ci.json =="
./target/release/perf --tiny --label ci --jobs 2

echo "== schema validation =="
./target/release/perf --validate BENCH_ci.json

echo "== --jobs 2 must reproduce --jobs 1 per-scenario sim results =="
# Per-scenario slots and delivered cells come from seeded simulations
# and must be byte-identical at any job count; wall times, cells/sec,
# and RSS are machine noise, so strip everything but the sim results.
deterministic() {
  grep -E '^\[[a-z0-9_]+\]' "$1" | awk '{
    for (i = 1; i <= NF; i++) {
      if ($i == "slots,") s = $(i - 1)
      if ($i == "cells,") c = $(i - 1)
    }
    print $1, s, c
  }'
}
./target/release/perf --tiny --label ci-j1 --jobs 1 --out-dir "$tmpdir" > "$tmpdir/j1.out"
./target/release/perf --tiny --label ci-j2 --jobs 2 --out-dir "$tmpdir" > "$tmpdir/j2.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/j2.out")
echo "jobs=1 and jobs=2 agree on every scenario's slots and cells."

echo "== --engine-threads 2 must reproduce the serial engine bit-for-bit =="
# Unlike --jobs (which only reorders whole scenarios), --engine-threads
# shards the slot phases inside each simulation; the deterministic merge
# promises identical sim results, so the same stripped output must match.
./target/release/perf --tiny --label ci-t2 --engine-threads 2 --out-dir "$tmpdir" > "$tmpdir/t2.out"
diff <(deterministic "$tmpdir/j1.out") <(deterministic "$tmpdir/t2.out")
echo "engine-threads=1 and engine-threads=2 agree on every scenario's slots and cells."

echo "== committed-baseline comparison (must not regress) =="
# Generous threshold: the tiny scenarios finish in milliseconds, so
# run-to-run noise across CI machines is large. This gates gross
# regressions and exercises the comparison path.
./target/release/perf --tiny --label ci-rerun --jobs 2 --out-dir "$tmpdir" \
  --baseline results/bench_baseline.json --threshold 75

echo "perf smoke passed."
