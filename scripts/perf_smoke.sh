#!/usr/bin/env bash
# CI perf smoke: build the perf harness, run the tiny scenario suite,
# schema-check the emitted BENCH_ci.json, and exercise the baseline
# comparison against the report we just produced (same machine, same
# binary — must pass the regression gate).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== build perf harness =="
cargo build --release --bin perf

echo "== tiny suite -> BENCH_ci.json =="
./target/release/perf --tiny --label ci

echo "== schema validation =="
./target/release/perf --validate BENCH_ci.json

echo "== self-baseline comparison (must not regress) =="
# Generous threshold: the tiny scenarios finish in milliseconds, so
# run-to-run noise on shared CI runners is large. This exercises the
# comparison path, not a real perf gate.
./target/release/perf --tiny --label ci-rerun --baseline BENCH_ci.json --threshold 75

echo "perf smoke passed."
