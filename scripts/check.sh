#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere inside the repo.
#
# Runs every step even when an earlier one fails, prints a per-step
# pass/fail recap, and exits with the first failing step's code.
set -uo pipefail

cd "$(dirname "$0")/.."

STEPS=()
RESULTS=()
FIRST_FAILURE=0

run_step() {
    local name="$1"
    shift
    echo "== ${name} =="
    "$@"
    local code=$?
    STEPS+=("$name")
    if [ "$code" -eq 0 ]; then
        RESULTS+=(pass)
    else
        RESULTS+=("FAIL (exit $code)")
        if [ "$FIRST_FAILURE" -eq 0 ]; then
            FIRST_FAILURE=$code
        fi
    fi
    echo
}

run_step "cargo fmt --check" cargo fmt --all --check
run_step "cargo clippy (deny warnings)" cargo clippy --workspace --all-targets -- -D warnings
run_step "cargo test" cargo test --workspace -q --no-fail-fast

echo "== recap =="
for i in "${!STEPS[@]}"; do
    printf '%-30s %s\n' "${STEPS[$i]}" "${RESULTS[$i]}"
done

if [ "$FIRST_FAILURE" -ne 0 ]; then
    echo "Checks failed."
else
    echo "All checks passed."
fi
exit "$FIRST_FAILURE"
