//! Criterion benches: packet-simulator slot rate under the paper's
//! routing schemes (the substrate cost of every packet-level experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sorn_routing::{AdaptiveVlbRouter, HierarchicalRouter, SornRouter, VlbRouter};
use sorn_sim::{Engine, Flow, FlowId, SimConfig};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, NodeId, Ratio};
use std::hint::black_box;

fn mesh_flows(n: u32, cells_per_flow: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0;
    for s in 0..n {
        for k in 1..4 {
            let d = (s + k * 7 + 1) % n;
            if d != s {
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: cells_per_flow * 1250,
                    arrival_ns: 0,
                });
                id += 1;
            }
        }
    }
    flows
}

fn bench_vlb_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_vlb_slots");
    for n in [32usize, 128] {
        let sched = round_robin(n).unwrap();
        let router = VlbRouter::new();
        let slots = 2_000u64;
        g.throughput(Throughput::Elements(slots));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng = Engine::new(SimConfig::default(), &sched, &router);
                eng.add_flows(mesh_flows(n as u32, 16)).unwrap();
                eng.run_slots(black_box(slots)).unwrap();
                eng.metrics().delivered_cells
            });
        });
    }
    g.finish();
}

fn bench_sorn_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_sorn_slots");
    for (n, nc) in [(32usize, 4usize), (128, 8)] {
        let map = CliqueMap::contiguous(n, nc);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::new(50, 11))).unwrap();
        let router = SornRouter::new(map);
        let slots = 2_000u64;
        g.throughput(Throughput::Elements(slots));
        g.bench_with_input(
            BenchmarkId::new("n_nc", format!("{n}_{nc}")),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut eng = Engine::new(SimConfig::default(), &sched, &router);
                    eng.add_flows(mesh_flows(n as u32, 16)).unwrap();
                    eng.run_slots(black_box(slots)).unwrap();
                    eng.metrics().delivered_cells
                });
            },
        );
    }
    g.finish();
}

fn bench_uplink_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_uplink_scaling");
    let n = 64;
    let sched = round_robin(n).unwrap();
    let router = VlbRouter::new();
    for uplinks in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(uplinks), &uplinks, |b, &u| {
            b.iter(|| {
                let cfg = SimConfig {
                    uplinks: u,
                    ..SimConfig::default()
                };
                let mut eng = Engine::new(cfg, &sched, &router);
                eng.add_flows(mesh_flows(n as u32, 8)).unwrap();
                eng.run_slots(500).unwrap();
                eng.metrics().delivered_cells
            });
        });
    }
    g.finish();
}

fn bench_adaptive_sim(c: &mut Criterion) {
    let n = 64;
    let sched = round_robin(n).unwrap();
    let router = AdaptiveVlbRouter::new(4);
    c.bench_function("sim_adaptive_vlb_64", |b| {
        b.iter(|| {
            let mut eng = Engine::new(SimConfig::default(), &sched, &router);
            eng.add_flows(mesh_flows(n as u32, 8)).unwrap();
            eng.run_slots(black_box(1_000)).unwrap();
            eng.metrics().delivered_cells
        });
    });
}

fn bench_hierarchical_sim(c: &mut Criterion) {
    use sorn_topology::builders::{hierarchical_schedule, HierarchySpec};
    let spec = HierarchySpec::new(vec![4, 4, 4], vec![6, 2, 1]).unwrap();
    let sched = hierarchical_schedule(&spec, 1 << 20).unwrap();
    let router = HierarchicalRouter::new(spec);
    c.bench_function("sim_hierarchical_64", |b| {
        b.iter(|| {
            let mut eng = Engine::new(SimConfig::default(), &sched, &router);
            eng.add_flows(mesh_flows(64, 8)).unwrap();
            eng.run_slots(black_box(1_000)).unwrap();
            eng.metrics().delivered_cells
        });
    });
}

criterion_group!(
    benches,
    bench_vlb_sim,
    bench_sorn_sim,
    bench_uplink_scaling,
    bench_adaptive_sim,
    bench_hierarchical_sim
);
criterion_main!(benches);
