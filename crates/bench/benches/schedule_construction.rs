//! Criterion benches: schedule construction throughput.
//!
//! Building circuit schedules is on the control plane's critical path
//! when the topology adapts (§5): a full reconfiguration recomputes the
//! slot sequence for every node. These benches size that cost across the
//! topology families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorn_topology::builders::{
    gravity_schedule, hdim_orn, hierarchical_schedule, nonuniform_sorn_schedule, round_robin,
    sorn_schedule, GravityWeights, HierarchySpec, SornScheduleParams,
};
use sorn_topology::{CliqueMap, Ratio};
use std::hint::black_box;

fn bench_round_robin(c: &mut Criterion) {
    let mut g = c.benchmark_group("round_robin");
    for n in [64usize, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| round_robin(black_box(n)).unwrap());
        });
    }
    g.finish();
}

fn bench_hdim(c: &mut Criterion) {
    let mut g = c.benchmark_group("hdim_orn");
    for (n, h) in [(256usize, 2u32), (1024, 2), (4096, 2), (4096, 3)] {
        g.bench_with_input(
            BenchmarkId::new("n_h", format!("{n}_{h}")),
            &(n, h),
            |b, &(n, h)| {
                b.iter(|| hdim_orn(black_box(n), black_box(h)).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_sorn(c: &mut Criterion) {
    let mut g = c.benchmark_group("sorn_schedule");
    for (n, nc) in [(128usize, 8usize), (1024, 32), (4096, 64)] {
        let map = CliqueMap::contiguous(n, nc);
        let params = SornScheduleParams::with_q(Ratio::new(50, 11));
        g.bench_with_input(
            BenchmarkId::new("n_nc", format!("{n}_{nc}")),
            &(map, params),
            |b, (map, params)| {
                b.iter(|| sorn_schedule(black_box(map), black_box(params)).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_gravity(c: &mut Criterion) {
    let map = CliqueMap::contiguous(256, 8);
    let w = GravityWeights::uniform(8, 2).unwrap();
    c.bench_function("gravity_schedule_256x8", |b| {
        b.iter(|| {
            gravity_schedule(
                black_box(&map),
                black_box(Ratio::integer(3)),
                black_box(&w),
                1 << 20,
            )
            .unwrap()
        });
    });
}

fn bench_logical_topology(c: &mut Criterion) {
    let map = CliqueMap::contiguous(1024, 32);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::new(50, 11))).unwrap();
    c.bench_function("logical_topology_1024", |b| {
        b.iter(|| black_box(&sched).logical_topology());
    });
}

fn bench_hierarchy(c: &mut Criterion) {
    let spec = HierarchySpec::new(vec![16, 16, 16], vec![9, 3, 1]).unwrap();
    c.bench_function("hierarchical_schedule_16x16x16", |b| {
        b.iter(|| hierarchical_schedule(black_box(&spec), 1 << 22).unwrap());
    });
}

fn bench_nonuniform(c: &mut Criterion) {
    use sorn_topology::CliqueId;
    // 128 nodes: one 64-clique plus four 16-cliques.
    let assignment: Vec<CliqueId> = (0..128u32)
        .map(|v| {
            if v < 64 {
                CliqueId(0)
            } else {
                CliqueId(1 + (v - 64) / 16)
            }
        })
        .collect();
    let map = CliqueMap::from_assignment(&assignment);
    c.bench_function("nonuniform_schedule_128", |b| {
        b.iter(|| {
            nonuniform_sorn_schedule(black_box(&map), Ratio::integer(3), 0, 1 << 22).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_round_robin,
    bench_hdim,
    bench_sorn,
    bench_gravity,
    bench_hierarchy,
    bench_nonuniform,
    bench_logical_topology
);
criterion_main!(benches);
