//! Criterion benches: flow-level throughput evaluation — the engine
//! behind every Figure 2(f) point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorn_routing::{evaluate, DemandMatrix, HdimPaths, SornPaths, VlbPaths};
use sorn_topology::builders::{hdim_orn, round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, Ratio};
use std::hint::black_box;

fn bench_vlb_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowlevel_vlb");
    for n in [32usize, 128] {
        let topo = round_robin(n).unwrap().logical_topology();
        let model = VlbPaths::new(n);
        let demand = DemandMatrix::uniform(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| evaluate(black_box(&topo), black_box(&model), black_box(&demand)).unwrap());
        });
    }
    g.finish();
}

fn bench_sorn_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowlevel_sorn");
    for (n, nc) in [(32usize, 4usize), (128, 8)] {
        let map = CliqueMap::contiguous(n, nc);
        let topo = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::new(50, 11)))
            .unwrap()
            .logical_topology();
        let model = SornPaths::new(map.clone());
        let demand = DemandMatrix::clique_local(&map, 0.56);
        g.bench_with_input(BenchmarkId::new("n_nc", format!("{n}_{nc}")), &n, |b, _| {
            b.iter(|| evaluate(black_box(&topo), black_box(&model), black_box(&demand)).unwrap());
        });
    }
    g.finish();
}

fn bench_hdim_eval(c: &mut Criterion) {
    let n = 64;
    let topo = hdim_orn(n, 2).unwrap().logical_topology();
    let model = HdimPaths::new(n, 2);
    let demand = DemandMatrix::uniform(n);
    c.bench_function("flowlevel_hdim_64", |b| {
        b.iter(|| evaluate(black_box(&topo), black_box(&model), black_box(&demand)).unwrap());
    });
}

criterion_group!(benches, bench_vlb_eval, bench_sorn_eval, bench_hdim_eval);
criterion_main!(benches);
