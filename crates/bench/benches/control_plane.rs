//! Criterion benches: control-plane costs — pattern estimation, clique
//! optimization, and schedule-update preparation (§5's per-epoch work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sorn_control::{assign_cliques, PatternEstimator, ScheduleUpdater, UpdateTiming};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, NodeId, Ratio};
use std::hint::black_box;

/// Synthetic block traffic matrix.
fn block_tm(n: usize, c: usize) -> Vec<f64> {
    let mut tm = vec![0.0; n * n];
    for s in 0..n {
        for d in 0..n {
            if s != d {
                tm[s * n + d] = if s / c == d / c { 10.0 } else { 0.1 };
            }
        }
    }
    tm
}

fn bench_estimator(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimator_epoch");
    for n in [64usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut e = PatternEstimator::new(n, 0.3);
                for s in 0..n as u32 {
                    for k in 1..8u32 {
                        e.observe(NodeId(s), NodeId((s + k) % n as u32), 10_000);
                    }
                }
                e.end_epoch();
                black_box(e.total())
            });
        });
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("clique_assignment");
    for n in [64usize, 128] {
        let tm = block_tm(n, 8);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| assign_cliques(black_box(&tm), n, 8));
        });
    }
    g.finish();
}

fn bench_update_preparation(c: &mut Criterion) {
    let n = 128;
    let map = CliqueMap::contiguous(n, 8);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).unwrap();
    c.bench_function("update_prepare_128", |b| {
        b.iter(|| {
            let mut nics = ScheduleUpdater::bootstrap_nics(&sched);
            let updater = ScheduleUpdater::new(UpdateTiming::default());
            updater
                .prepare(&mut nics, black_box(&map), Ratio::integer(2))
                .unwrap()
                .total_drained
        });
    });
}

criterion_group!(
    benches,
    bench_estimator,
    bench_optimizer,
    bench_update_preparation
);
criterion_main!(benches);
