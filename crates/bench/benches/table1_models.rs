//! Criterion benches: Table 1 generation — the closed-form rows are
//! effectively free; the measured-Opera variant pays for expander BFS.

use criterion::{criterion_group, criterion_main, Criterion};
use sorn_analysis::table1::{generate, render, Table1Params};
use sorn_core::baselines::measured_opera_params;
use std::hint::black_box;

fn bench_closed_form(c: &mut Criterion) {
    c.bench_function("table1_closed_form", |b| {
        let p = Table1Params::default();
        b.iter(|| {
            let rows = generate(black_box(&p));
            render(&rows)
        });
    });
}

fn bench_measured_opera(c: &mut Criterion) {
    // 512 nodes keeps one iteration under a second; the bin target runs
    // the full 4096.
    c.bench_function("opera_expander_measurement_512", |b| {
        b.iter(|| measured_opera_params(black_box(512), 16, 0.75, 90_000.0, 7).unwrap());
    });
}

criterion_group!(benches, bench_closed_form, bench_measured_opera);
criterion_main!(benches);
