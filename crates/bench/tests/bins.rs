//! Smoke tests for the reproduction binaries: run the fast ones and
//! assert the paper-defining strings appear in their output. (The heavy
//! bins — full Table 1 with a 4096-node expander measurement, the
//! 128-node Figure 2(f) sweep — are exercised in release mode by the
//! recorded reproduction runs; debug-mode smoke tests stick to the ones
//! that finish in seconds.)

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin).output().unwrap_or_else(|e| {
        panic!("failed to launch {bin}: {e}");
    });
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn fig1_schedule_prints_the_paper_table() {
    let out = run(env!("CARGO_BIN_EXE_fig1_schedule"));
    // Figure 1's first row: A..E each talk to their +1 neighbor.
    assert!(out.contains("B\tC\tD\tE\tA"), "{out}");
    assert!(out.contains("E\tA\tB\tC\tD"), "{out}");
}

#[test]
fn expressivity_prints_the_paper_clique_sizes() {
    let out = run(env!("CARGO_BIN_EXE_expressivity"));
    assert!(
        out.contains("[1, 16, 32, 64, 128, 256, 512, 1024, 2048]"),
        "{out}"
    );
    assert!(out.contains("full-mesh capable: true"), "{out}");
}

#[test]
fn sync_domains_shows_modularity_gain() {
    let out = run(env!("CARGO_BIN_EXE_sync_domains"));
    assert!(out.contains("flat ORN (4096 nodes)"), "{out}");
    assert!(out.contains("SORN (64 cliques of 64)"), "{out}");
}

#[test]
fn fig2_topologies_prints_matchings_and_both_topologies() {
    let out = run(env!("CARGO_BIN_EXE_fig2_topologies"));
    assert!(out.contains("m1"), "{out}");
    assert!(out.contains("Topology A"), "{out}");
    assert!(out.contains("Topology B"), "{out}");
    assert!(
        out.contains("every cyclic matching within reach = true"),
        "{out}"
    );
}

#[test]
fn hierarchy_bin_reports_both_designs() {
    let out = run(env!("CARGO_BIN_EXE_hierarchy"));
    assert!(out.contains("2-level 64x64"), "{out}");
    assert!(out.contains("3-level 16^3"), "{out}");
    assert!(out.contains("worst hops observed"), "{out}");
}

#[test]
fn nonuniform_bin_shows_tax_reduction() {
    let out = run(env!("CARGO_BIN_EXE_nonuniform_cliques"));
    assert!(out.contains("uniform 4x4"), "{out}");
    assert!(out.contains("non-uniform 8/4/4"), "{out}");
    assert!(
        out.contains("matched cliques cut the bandwidth tax"),
        "{out}"
    );
}
