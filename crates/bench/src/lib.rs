//! # sorn-bench
//!
//! The reproduction harness for every table and figure in the paper's
//! evaluation, plus Criterion performance benches for the library
//! itself.
//!
//! ## Reproduction binaries (one per paper artifact)
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_schedule` | Figure 1 — round-robin ORN schedule |
//! | `fig2_topologies` | Figure 2(a,b,d,e) — matchings and topologies A/B |
//! | `fig2f` | Figure 2(f) — throughput vs locality (theory + simulated) |
//! | `table1` | Table 1 — systems comparison for a 4096-rack DCN |
//! | `expressivity` | §5 — realizable clique sizes on the reference AWGR setup |
//! | `blast_radius` | §6 — failure blast radius, flat vs modular |
//! | `adaptation` | §5 — static vs adaptive across a pattern shift |
//! | `table1_sim_validation` | Table 1's latency column re-measured in the packet simulator |
//! | `ablation_routing` | routing ablation: VLB / adaptive / SORN tax & saturation |
//! | `sync_domains` | §6 — synchronization-domain guard times and efficiency |
//! | `diurnal_tracking` | §6 — q-retuning across a diurnal locality swing |
//! | `nonuniform_cliques` | §5 — non-uniform clique sizes vs forced-uniform |
//! | `hierarchy` | multi-level (pods/clusters/blocks) SORN vs two-level |
//! | `adversarial` | worst-demand search: the semi-oblivious assumption's price & gravity remedy |
//!
//! Run any of them with `cargo run --release -p sorn-bench --bin <name>`.
//!
//! ## Criterion benches
//!
//! `cargo bench -p sorn-bench` measures schedule construction, simulator
//! slot rate, routing decision rate, flow-level evaluation, and control-
//! plane reoptimization.

/// Prints a paper-artifact section header used by the bin targets.
pub fn header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// A unit of work for [`run_jobs`]: boxed so heterogeneous scenario
/// closures fit one task list.
pub type Task<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs `tasks` on up to `jobs` worker threads (std only, no external
/// thread pool), returning results in the tasks' original order.
///
/// `jobs <= 1` — or a single task — runs everything inline on the
/// caller's thread: exactly the code path the sequential binaries
/// always had, so a `--jobs 1` run is trivially identical to the
/// pre-parallel behavior. Workers pull tasks from a shared queue, so
/// uneven task durations still keep all threads busy.
pub fn run_jobs<T: Send>(jobs: usize, tasks: Vec<Task<T>>) -> Vec<T> {
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let n = tasks.len();
    let queue: std::sync::Mutex<std::collections::VecDeque<(usize, Task<T>)>> =
        std::sync::Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                // Pop under the lock, run with it released.
                let next = queue.lock().expect("task queue poisoned").pop_front();
                let Some((i, task)) = next else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

/// Splits a `--jobs N` / `--jobs=N` flag out of an argument list,
/// returning the worker count (default 1) and the remaining arguments
/// for the binary's own parser.
pub fn take_jobs_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    take_count_flag("--jobs", args)
}

/// Splits an `--engine-threads N` / `--engine-threads=N` flag out of an
/// argument list, returning the per-simulation thread count (default 1,
/// the serial engine path) and the remaining arguments.
///
/// `--jobs` parallelizes across scenarios; `--engine-threads` shards the
/// slot phases *inside* one simulation (`SimConfig::engine_threads`).
/// Both are bit-deterministic, so they compose freely — but on a small
/// machine prefer `--jobs` until scenarios run out.
pub fn take_engine_threads_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    take_count_flag("--engine-threads", args)
}

/// Shared parser behind [`take_jobs_flag`] and
/// [`take_engine_threads_flag`]: extracts one positive-count flag,
/// passing every other argument through untouched.
fn take_count_flag(
    name: &str,
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    let mut count = 1usize;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    let prefix = format!("{name}=");
    while let Some(arg) = it.next() {
        let value = if arg == name {
            it.next().ok_or_else(|| format!("{name} needs a value"))?
        } else if let Some(v) = arg.strip_prefix(&prefix) {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        count = value
            .parse()
            .map_err(|_| format!("{name}: bad count {value:?}"))?;
        if count == 0 {
            return Err(format!("{name} must be at least 1"));
        }
    }
    Ok((count, rest))
}

/// Telemetry flags shared by the reproduction binaries.
///
/// - `--trace-out <path>`: write a JSONL run trace (or, for the
///   control-plane binaries, a decision log) to `path`;
/// - `--sample-interval-ns <n>`: simulated time between trace snapshots
///   (default 100 µs);
/// - `--serve-metrics <addr>`: serve live `/metrics`, `/health`, and
///   `/progress` over HTTP while the run executes (port `0` picks a
///   free one);
/// - `--serve-linger-ms <n>`: keep the endpoint up this long after the
///   run finishes, so scrapers can collect the final snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// Where to write the JSONL trace; `None` disables tracing.
    pub trace_out: Option<std::path::PathBuf>,
    /// Snapshot sampling interval in simulated nanoseconds.
    pub sample_interval_ns: u64,
    /// Address for the live metrics endpoint; `None` disables it.
    pub serve_metrics: Option<String>,
    /// How long the endpoint outlives the run, in milliseconds.
    pub serve_linger_ms: u64,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts {
            trace_out: None,
            sample_interval_ns: Self::DEFAULT_INTERVAL_NS,
            serve_metrics: None,
            serve_linger_ms: 0,
        }
    }
}

impl TelemetryOpts {
    /// Default snapshot interval: 100 µs of simulated time.
    pub const DEFAULT_INTERVAL_NS: u64 = 100_000;

    /// Parses the telemetry flags from an argument list (without the
    /// program name). Accepts `--flag value` and `--flag=value` forms;
    /// rejects unknown arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = TelemetryOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let value = |it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().ok_or(format!("{flag} needs a value")),
                }
            };
            match flag.as_str() {
                "--trace-out" => opts.trace_out = Some(value(&mut it)?.into()),
                "--sample-interval-ns" => {
                    let v = value(&mut it)?;
                    let ns: u64 = v
                        .parse()
                        .map_err(|_| format!("--sample-interval-ns: bad number {v:?}"))?;
                    if ns == 0 {
                        return Err("--sample-interval-ns must be positive".to_string());
                    }
                    opts.sample_interval_ns = ns;
                }
                "--serve-metrics" => opts.serve_metrics = Some(value(&mut it)?),
                "--serve-linger-ms" => {
                    let v = value(&mut it)?;
                    opts.serve_linger_ms = v
                        .parse()
                        .map_err(|_| format!("--serve-linger-ms: bad number {v:?}"))?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with a usage message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--trace-out <path>] [--sample-interval-ns <n>] \
                     [--serve-metrics <addr>] [--serve-linger-ms <n>]"
                );
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TelemetryOpts;

    fn parse(args: &[&str]) -> Result<TelemetryOpts, String> {
        TelemetryOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn header_prints() {
        super::header("test");
    }

    fn squares(jobs: usize) -> Vec<usize> {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| -> Box<dyn FnOnce() -> usize + Send> { Box::new(move || i * i) })
            .collect();
        super::run_jobs(jobs, tasks)
    }

    #[test]
    fn run_jobs_preserves_task_order() {
        let want: Vec<usize> = (0..16).map(|i| i * i).collect();
        assert_eq!(squares(1), want);
        assert_eq!(squares(4), want);
        // More workers than tasks is fine.
        assert_eq!(squares(64), want);
    }

    #[test]
    fn jobs_flag_parses_both_forms_and_passes_the_rest() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (jobs, rest) =
            super::take_jobs_flag(args(&["--jobs", "4", "--trace-out", "t"])).unwrap();
        assert_eq!(jobs, 4);
        assert_eq!(rest, args(&["--trace-out", "t"]));
        let (jobs, rest) = super::take_jobs_flag(args(&["--jobs=2"])).unwrap();
        assert_eq!(jobs, 2);
        assert!(rest.is_empty());
        let (jobs, _) = super::take_jobs_flag(args(&[])).unwrap();
        assert_eq!(jobs, 1);
        assert!(super::take_jobs_flag(args(&["--jobs"])).is_err());
        assert!(super::take_jobs_flag(args(&["--jobs", "0"])).is_err());
        assert!(super::take_jobs_flag(args(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn engine_threads_flag_parses_and_composes_with_jobs() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (threads, rest) =
            super::take_engine_threads_flag(args(&["--engine-threads", "4", "--jobs", "2"]))
                .unwrap();
        assert_eq!(threads, 4);
        let (jobs, rest) = super::take_jobs_flag(rest).unwrap();
        assert_eq!(jobs, 2);
        assert!(rest.is_empty());
        let (threads, _) = super::take_engine_threads_flag(args(&["--engine-threads=2"])).unwrap();
        assert_eq!(threads, 2);
        let (threads, _) = super::take_engine_threads_flag(args(&[])).unwrap();
        assert_eq!(threads, 1);
        assert!(super::take_engine_threads_flag(args(&["--engine-threads", "0"])).is_err());
    }

    #[test]
    fn no_args_gives_defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, TelemetryOpts::default());
        assert!(opts.trace_out.is_none());
        assert_eq!(opts.sample_interval_ns, TelemetryOpts::DEFAULT_INTERVAL_NS);
    }

    #[test]
    fn both_flag_forms_parse() {
        let a = parse(&["--trace-out", "t.jsonl", "--sample-interval-ns", "5000"]).unwrap();
        let b = parse(&["--trace-out=t.jsonl", "--sample-interval-ns=5000"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(a.sample_interval_ns, 5000);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--sample-interval-ns", "zero"]).is_err());
        assert!(parse(&["--sample-interval-ns", "0"]).is_err());
        assert!(parse(&["--serve-linger-ms", "soon"]).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let opts = parse(&["--serve-metrics", "127.0.0.1:0", "--serve-linger-ms=250"]).unwrap();
        assert_eq!(opts.serve_metrics.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.serve_linger_ms, 250);
    }
}
