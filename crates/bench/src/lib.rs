//! # sorn-bench
//!
//! The reproduction harness for every table and figure in the paper's
//! evaluation, plus Criterion performance benches for the library
//! itself.
//!
//! ## Reproduction binaries (one per paper artifact)
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_schedule` | Figure 1 — round-robin ORN schedule |
//! | `fig2_topologies` | Figure 2(a,b,d,e) — matchings and topologies A/B |
//! | `fig2f` | Figure 2(f) — throughput vs locality (theory + simulated) |
//! | `table1` | Table 1 — systems comparison for a 4096-rack DCN |
//! | `expressivity` | §5 — realizable clique sizes on the reference AWGR setup |
//! | `blast_radius` | §6 — failure blast radius, flat vs modular |
//! | `adaptation` | §5 — static vs adaptive across a pattern shift |
//! | `table1_sim_validation` | Table 1's latency column re-measured in the packet simulator |
//! | `ablation_routing` | routing ablation: VLB / adaptive / SORN tax & saturation |
//! | `sync_domains` | §6 — synchronization-domain guard times and efficiency |
//! | `diurnal_tracking` | §6 — q-retuning across a diurnal locality swing |
//! | `nonuniform_cliques` | §5 — non-uniform clique sizes vs forced-uniform |
//! | `hierarchy` | multi-level (pods/clusters/blocks) SORN vs two-level |
//! | `adversarial` | worst-demand search: the semi-oblivious assumption's price & gravity remedy |
//!
//! Run any of them with `cargo run --release -p sorn-bench --bin <name>`.
//!
//! ## Criterion benches
//!
//! `cargo bench -p sorn-bench` measures schedule construction, simulator
//! slot rate, routing decision rate, flow-level evaluation, and control-
//! plane reoptimization.

/// Prints a paper-artifact section header used by the bin targets.
pub fn header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn header_prints() {
        super::header("test");
    }
}
