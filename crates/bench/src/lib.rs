//! # sorn-bench
//!
//! The reproduction harness for every table and figure in the paper's
//! evaluation, plus Criterion performance benches for the library
//! itself.
//!
//! ## Reproduction binaries (one per paper artifact)
//!
//! | binary | artifact |
//! |---|---|
//! | `fig1_schedule` | Figure 1 — round-robin ORN schedule |
//! | `fig2_topologies` | Figure 2(a,b,d,e) — matchings and topologies A/B |
//! | `fig2f` | Figure 2(f) — throughput vs locality (theory + simulated) |
//! | `table1` | Table 1 — systems comparison for a 4096-rack DCN |
//! | `expressivity` | §5 — realizable clique sizes on the reference AWGR setup |
//! | `blast_radius` | §6 — failure blast radius, flat vs modular |
//! | `adaptation` | §5 — static vs adaptive across a pattern shift |
//! | `table1_sim_validation` | Table 1's latency column re-measured in the packet simulator |
//! | `ablation_routing` | routing ablation: VLB / adaptive / SORN tax & saturation |
//! | `sync_domains` | §6 — synchronization-domain guard times and efficiency |
//! | `diurnal_tracking` | §6 — q-retuning across a diurnal locality swing |
//! | `nonuniform_cliques` | §5 — non-uniform clique sizes vs forced-uniform |
//! | `hierarchy` | multi-level (pods/clusters/blocks) SORN vs two-level |
//! | `adversarial` | worst-demand search: the semi-oblivious assumption's price & gravity remedy |
//!
//! Run any of them with `cargo run --release -p sorn-bench --bin <name>`.
//!
//! ## Criterion benches
//!
//! `cargo bench -p sorn-bench` measures schedule construction, simulator
//! slot rate, routing decision rate, flow-level evaluation, and control-
//! plane reoptimization.

/// Prints a paper-artifact section header used by the bin targets.
pub fn header(title: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
}

/// A unit of work for [`run_jobs`]: boxed so heterogeneous scenario
/// closures fit one task list.
pub type Task<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs `tasks` on up to `jobs` worker threads (std only, no external
/// thread pool), returning results in the tasks' original order.
///
/// `jobs <= 1` — or a single task — runs everything inline on the
/// caller's thread: exactly the code path the sequential binaries
/// always had, so a `--jobs 1` run is trivially identical to the
/// pre-parallel behavior. Workers pull tasks from a shared queue, so
/// uneven task durations still keep all threads busy.
pub fn run_jobs<T: Send>(jobs: usize, tasks: Vec<Task<T>>) -> Vec<T> {
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let n = tasks.len();
    let queue: std::sync::Mutex<std::collections::VecDeque<(usize, Task<T>)>> =
        std::sync::Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                // Pop under the lock, run with it released.
                let next = queue.lock().expect("task queue poisoned").pop_front();
                let Some((i, task)) = next else { break };
                *slots[i].lock().expect("result slot poisoned") = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran")
        })
        .collect()
}

/// Splits a `--jobs N` / `--jobs=N` flag out of an argument list,
/// returning the worker count (default 1) and the remaining arguments
/// for the binary's own parser.
pub fn take_jobs_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    take_count_flag("--jobs", args)
}

/// Splits an `--engine-threads N` / `--engine-threads=N` flag out of an
/// argument list, returning the per-simulation thread count (default 1,
/// the serial engine path) and the remaining arguments.
///
/// `--jobs` parallelizes across scenarios; `--engine-threads` shards the
/// slot phases *inside* one simulation (`SimConfig::engine_threads`).
/// Both are bit-deterministic, so they compose freely — but on a small
/// machine prefer `--jobs` until scenarios run out.
pub fn take_engine_threads_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    take_count_flag("--engine-threads", args)
}

/// Network-weather flags shared by the reproduction binaries.
///
/// - `--weather`: attach the clique-granularity weather probe and emit
///   `WEATHER_<scheme>.txt`/`.json` run reports;
/// - `--weather-topk <K>`: size of the heavy-hitter sketches (default
///   [`WeatherOpts::DEFAULT_TOPK`]; implies `--weather`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeatherOpts {
    /// True when the weather layer is on.
    pub enabled: bool,
    /// Heavy-hitter slots per sketch.
    pub topk: usize,
}

impl WeatherOpts {
    /// Default sketch capacity, matching `sorn_telemetry::DEFAULT_TOPK`.
    pub const DEFAULT_TOPK: usize = 32;

    /// Splits the weather flags out of an argument list, passing every
    /// other argument through untouched.
    pub fn take(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(WeatherOpts, Vec<String>), String> {
        let mut opts = WeatherOpts {
            enabled: false,
            topk: Self::DEFAULT_TOPK,
        };
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let topk_value = if arg == "--weather-topk" {
                Some(
                    it.next()
                        .ok_or_else(|| "--weather-topk needs a value".to_string())?,
                )
            } else {
                arg.strip_prefix("--weather-topk=").map(str::to_string)
            };
            if let Some(value) = topk_value {
                opts.topk = value
                    .parse()
                    .map_err(|_| format!("--weather-topk: bad count {value:?}"))?;
                if opts.topk == 0 {
                    return Err("--weather-topk must be at least 1".to_string());
                }
                opts.enabled = true;
            } else if arg == "--weather" {
                opts.enabled = true;
            } else {
                rest.push(arg);
            }
        }
        Ok((opts, rest))
    }
}

/// Splits a `--flight-ring N` / `--flight-ring=N` flag out of an
/// argument list: the flight-recorder ring capacity (default
/// [`sorn_telemetry::DEFAULT_CAPACITY`]). Rejects capacities that are
/// not a power of two — the ring masks its head index, and a usage
/// error here must exit 2 like every other bad flag.
pub fn take_flight_ring_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    let mut capacity = sorn_telemetry::DEFAULT_CAPACITY;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--flight-ring" {
            it.next()
                .ok_or_else(|| "--flight-ring needs a value".to_string())?
        } else if let Some(v) = arg.strip_prefix("--flight-ring=") {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        capacity = value
            .parse()
            .map_err(|_| format!("--flight-ring: bad capacity {value:?}"))?;
        if !capacity.is_power_of_two() {
            return Err(format!(
                "--flight-ring must be a power of two, got {capacity}"
            ));
        }
    }
    Ok((capacity, rest))
}

/// Splits a `--trace-flows N` / `--trace-flows=N` flag out of an
/// argument list: causal-trace sampling (`SimConfig::trace_one_in`,
/// roughly one flow in N; 1 traces everything). Default 0 — tracing
/// off; an explicit value must be at least 1.
pub fn take_trace_flows_flag(
    args: impl IntoIterator<Item = String>,
) -> Result<(u64, Vec<String>), String> {
    let mut one_in = 0u64;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let value = if arg == "--trace-flows" {
            it.next()
                .ok_or_else(|| "--trace-flows needs a value".to_string())?
        } else if let Some(v) = arg.strip_prefix("--trace-flows=") {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        one_in = value
            .parse()
            .map_err(|_| format!("--trace-flows: bad count {value:?}"))?;
        if one_in == 0 {
            return Err("--trace-flows must be at least 1 (1 traces all)".to_string());
        }
    }
    Ok((one_in, rest))
}

/// Shared parser behind [`take_jobs_flag`] and
/// [`take_engine_threads_flag`]: extracts one positive-count flag,
/// passing every other argument through untouched.
fn take_count_flag(
    name: &str,
    args: impl IntoIterator<Item = String>,
) -> Result<(usize, Vec<String>), String> {
    let mut count = 1usize;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    let prefix = format!("{name}=");
    while let Some(arg) = it.next() {
        let value = if arg == name {
            it.next().ok_or_else(|| format!("{name} needs a value"))?
        } else if let Some(v) = arg.strip_prefix(&prefix) {
            v.to_string()
        } else {
            rest.push(arg);
            continue;
        };
        count = value
            .parse()
            .map_err(|_| format!("{name}: bad count {value:?}"))?;
        if count == 0 {
            return Err(format!("{name} must be at least 1"));
        }
    }
    Ok((count, rest))
}

/// Telemetry flags shared by the reproduction binaries.
///
/// - `--trace-out <path>`: write a JSONL run trace (or, for the
///   control-plane binaries, a decision log) to `path`;
/// - `--sample-interval-ns <n>`: simulated time between trace snapshots
///   (default 100 µs);
/// - `--serve-metrics <addr>`: serve live `/metrics`, `/health`, and
///   `/progress` over HTTP while the run executes (port `0` picks a
///   free one);
/// - `--serve-linger-ms <n>`: keep the endpoint up this long after the
///   run finishes, so scrapers can collect the final snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// Where to write the JSONL trace; `None` disables tracing.
    pub trace_out: Option<std::path::PathBuf>,
    /// Snapshot sampling interval in simulated nanoseconds.
    pub sample_interval_ns: u64,
    /// Address for the live metrics endpoint; `None` disables it.
    pub serve_metrics: Option<String>,
    /// How long the endpoint outlives the run, in milliseconds.
    pub serve_linger_ms: u64,
}

impl Default for TelemetryOpts {
    fn default() -> Self {
        TelemetryOpts {
            trace_out: None,
            sample_interval_ns: Self::DEFAULT_INTERVAL_NS,
            serve_metrics: None,
            serve_linger_ms: 0,
        }
    }
}

impl TelemetryOpts {
    /// Default snapshot interval: 100 µs of simulated time.
    pub const DEFAULT_INTERVAL_NS: u64 = 100_000;

    /// Parses the telemetry flags from an argument list (without the
    /// program name). Accepts `--flag value` and `--flag=value` forms;
    /// rejects unknown arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = TelemetryOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            let value = |it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().ok_or(format!("{flag} needs a value")),
                }
            };
            match flag.as_str() {
                "--trace-out" => opts.trace_out = Some(value(&mut it)?.into()),
                "--sample-interval-ns" => {
                    let v = value(&mut it)?;
                    let ns: u64 = v
                        .parse()
                        .map_err(|_| format!("--sample-interval-ns: bad number {v:?}"))?;
                    if ns == 0 {
                        return Err("--sample-interval-ns must be positive".to_string());
                    }
                    opts.sample_interval_ns = ns;
                }
                "--serve-metrics" => opts.serve_metrics = Some(value(&mut it)?),
                "--serve-linger-ms" => {
                    let v = value(&mut it)?;
                    opts.serve_linger_ms = v
                        .parse()
                        .map_err(|_| format!("--serve-linger-ms: bad number {v:?}"))?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, exiting with a usage message on
    /// error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: [--trace-out <path>] [--sample-interval-ns <n>] \
                     [--serve-metrics <addr>] [--serve-linger-ms <n>]"
                );
                std::process::exit(2);
            }
        }
    }
}

/// Checkpoint/resume flags shared by the long-running binaries.
///
/// - `--checkpoint-dir <dir>`: keep rolling checkpoint generations in
///   `dir` (created if missing). Enables checkpointing.
/// - `--checkpoint-every <n>`: write a checkpoint every `n` slots
///   (default [`CheckpointOpts::DEFAULT_EVERY_SLOTS`]); requires
///   `--checkpoint-dir`.
/// - `--resume`: before running, load the newest valid checkpoint from
///   `--checkpoint-dir` and continue from it; requires
///   `--checkpoint-dir`. Starting fresh when the directory holds no
///   checkpoint yet is an error (a silent fresh start would masquerade
///   as a resumed run).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckpointOpts {
    /// Rolling checkpoint directory; `None` disables checkpointing.
    pub dir: Option<std::path::PathBuf>,
    /// Slots between periodic checkpoints.
    pub every_slots: Option<u64>,
    /// Resume from the newest valid checkpoint before running.
    pub resume: bool,
}

impl CheckpointOpts {
    /// Default checkpoint cadence when `--checkpoint-dir` is given
    /// without `--checkpoint-every`.
    pub const DEFAULT_EVERY_SLOTS: u64 = 10_000;

    /// True when checkpointing is configured at all.
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The effective checkpoint cadence in slots.
    pub fn cadence(&self) -> u64 {
        self.every_slots.unwrap_or(Self::DEFAULT_EVERY_SLOTS)
    }

    /// Splits the checkpoint flags out of an argument list, returning
    /// the parsed options and the remaining arguments for the binary's
    /// own parser. Accepts `--flag value` and `--flag=value` forms.
    pub fn take(args: impl IntoIterator<Item = String>) -> Result<(Self, Vec<String>), String> {
        let mut opts = CheckpointOpts::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let value = |it: &mut dyn Iterator<Item = String>| -> Result<String, String> {
                match inline.clone() {
                    Some(v) => Ok(v),
                    None => it.next().ok_or(format!("{flag} needs a value")),
                }
            };
            match flag.as_str() {
                "--checkpoint-dir" => opts.dir = Some(value(&mut it)?.into()),
                "--checkpoint-every" => {
                    let v = value(&mut it)?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("--checkpoint-every: bad slot count {v:?}"))?;
                    if n == 0 {
                        return Err("--checkpoint-every must be at least 1".to_string());
                    }
                    opts.every_slots = Some(n);
                }
                "--resume" => opts.resume = true,
                _ => rest.push(arg),
            }
        }
        if opts.dir.is_none() && (opts.every_slots.is_some() || opts.resume) {
            return Err("--checkpoint-every / --resume require --checkpoint-dir".to_string());
        }
        Ok((opts, rest))
    }
}

/// Exit code for a run interrupted by SIGINT/SIGTERM after writing a
/// final checkpoint: distinct from success (0) and usage errors (2) so
/// wrappers can tell "stopped cleanly, resume me" apart from both.
pub const EXIT_INTERRUPTED: i32 = 3;

static STOP_FLAG: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn record_stop_signal(_signum: i32) {
    STOP_FLAG.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that set a stop flag instead of
/// killing the process, and returns that flag.
///
/// The checkpointed run loops poll the flag at slot boundaries: on the
/// first signal the current slot finishes, a final checkpoint is
/// written, sinks are flushed, and the process exits with
/// [`EXIT_INTERRUPTED`]. Installing twice is harmless. On non-unix
/// targets this returns the (never-set) flag without registering
/// handlers.
pub fn install_stop_handler() -> &'static std::sync::atomic::AtomicBool {
    #[cfg(unix)]
    {
        // Raw libc signal(2) via FFI keeps this std-only: the handler
        // merely stores to a static atomic, which is async-signal-safe.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, record_stop_signal as *const () as usize);
            signal(SIGTERM, record_stop_signal as *const () as usize);
        }
    }
    &STOP_FLAG
}

/// Loads the newest valid checkpoint for a resuming run. `Ok(None)`
/// means "not resuming" or "no checkpoint written yet — start fresh"
/// (a scenario may have finished before the interruption; rerunning it
/// is deterministic). A directory whose every generation is corrupt is
/// an error, never a silent fresh start.
pub fn load_resume(
    store: &sorn_sim::CheckpointStore,
    resume: bool,
) -> Result<Option<sorn_sim::LoadOutcome>, String> {
    if !resume {
        return Ok(None);
    }
    match store.load_latest() {
        Ok(out) => Ok(Some(out)),
        Err(sorn_sim::CheckpointError::NoValidCheckpoint { ref skipped, .. })
            if skipped.is_empty() =>
        {
            Ok(None)
        }
        Err(e) => Err(format!("cannot resume: {e}")),
    }
}

/// How far [`drive_checkpointed`] should run the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Run until the engine's absolute slot counter reaches this value
    /// (so a resumed engine continues to the same end slot).
    UntilSlot(u64),
    /// Run until the engine drains, giving up at this absolute slot.
    UntilDrained(u64),
}

/// What ended a [`drive_checkpointed`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriveOutcome {
    /// The run mode's goal was reached.
    Completed {
        /// Whether the engine had drained when the goal was reached.
        drained: bool,
    },
    /// The stop flag was raised; the current slot was finished and a
    /// final checkpoint written to `path`.
    Interrupted {
        /// Slot the final checkpoint captures.
        slot: u64,
        /// Where the final checkpoint landed.
        path: std::path::PathBuf,
    },
}

/// An error from a checkpointed run: the simulation itself failed, or a
/// checkpoint could not be written.
#[derive(Debug)]
pub enum DriveError {
    /// The engine returned an error mid-run.
    Sim(sorn_sim::SimError),
    /// Writing a checkpoint failed.
    Checkpoint(sorn_sim::CheckpointError),
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Sim(e) => write!(f, "simulation failed: {e}"),
            DriveError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for DriveError {}

/// Runs `engine` under periodic checkpointing with graceful-stop
/// support. This is the shared slot loop behind every binary's
/// `--checkpoint-*` flags.
///
/// Every `every_slots` slots (and when `stop` is raised) the engine is
/// snapshotted at a slot boundary, `decorate` may attach sidecar blobs
/// (probe state such as trace or flight-recorder bytes), the snapshot
/// goes through `store`, and `on_written(slot, path, bytes)` fires so
/// the caller can log or publish telemetry. When `stop` is observed the
/// current slot is already complete; a final checkpoint is written and
/// [`DriveOutcome::Interrupted`] returned.
///
/// When the engine has batched fast-forward enabled
/// (`Engine::set_fast_forward`), quiet gaps are jumped in one step —
/// bounded by the next checkpoint boundary, so the snapshot cadence
/// (and therefore every written checkpoint) is identical to the
/// slot-by-slot loop.
#[allow(clippy::too_many_arguments)]
pub fn drive_checkpointed<P, F, FS>(
    engine: &mut sorn_sim::Engine<'_, P, F>,
    mode: RunMode,
    store: &mut sorn_sim::CheckpointStore<FS>,
    every_slots: u64,
    stop: &std::sync::atomic::AtomicBool,
    mut decorate: impl FnMut(&sorn_sim::Engine<'_, P, F>, &mut sorn_sim::Snapshot),
    mut on_written: impl FnMut(u64, &std::path::Path, usize),
) -> Result<DriveOutcome, DriveError>
where
    P: sorn_sim::Probe,
    F: sorn_sim::Profiler,
    FS: sorn_sim::CheckpointFs,
{
    use std::sync::atomic::Ordering;

    let every = every_slots.max(1);
    let mut write =
        |engine: &sorn_sim::Engine<'_, P, F>,
         decorate: &mut dyn FnMut(&sorn_sim::Engine<'_, P, F>, &mut sorn_sim::Snapshot),
         on_written: &mut dyn FnMut(u64, &std::path::Path, usize)|
         -> Result<std::path::PathBuf, DriveError> {
            let mut snap = engine.checkpoint();
            decorate(engine, &mut snap);
            let (path, bytes) = store.write(&snap).map_err(DriveError::Checkpoint)?;
            on_written(engine.now_slot(), &path, bytes);
            Ok(path)
        };

    let mut next_ckpt = engine.now_slot().saturating_add(every);
    loop {
        let done = match mode {
            RunMode::UntilSlot(end) => {
                if engine.now_slot() >= end {
                    Some(DriveOutcome::Completed {
                        drained: engine.is_drained(),
                    })
                } else {
                    None
                }
            }
            RunMode::UntilDrained(max_slot) => {
                if engine.is_drained() {
                    Some(DriveOutcome::Completed { drained: true })
                } else if engine.now_slot() >= max_slot {
                    Some(DriveOutcome::Completed { drained: false })
                } else {
                    None
                }
            }
        };
        if let Some(outcome) = done {
            return Ok(outcome);
        }
        if stop.load(Ordering::SeqCst) {
            let slot = engine.now_slot();
            let path = write(engine, &mut decorate, &mut on_written)?;
            return Ok(DriveOutcome::Interrupted { slot, path });
        }
        // Fast-forward quiet gaps (a no-op unless the engine has
        // `set_fast_forward(true)`), but never past the run goal or the
        // next checkpoint boundary — checkpoint cadence must be
        // identical to the slot-by-slot loop so a resumed run replays
        // the same snapshot sequence.
        let goal = match mode {
            RunMode::UntilSlot(end) => end,
            RunMode::UntilDrained(max_slot) => max_slot,
        };
        if engine.fast_forward_to(goal.min(next_ckpt)) == 0 {
            engine.step().map_err(DriveError::Sim)?;
        }
        if engine.now_slot() >= next_ckpt {
            write(engine, &mut decorate, &mut on_written)?;
            next_ckpt = engine.now_slot().saturating_add(every);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::TelemetryOpts;

    fn parse(args: &[&str]) -> Result<TelemetryOpts, String> {
        TelemetryOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn header_prints() {
        super::header("test");
    }

    fn squares(jobs: usize) -> Vec<usize> {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| -> Box<dyn FnOnce() -> usize + Send> { Box::new(move || i * i) })
            .collect();
        super::run_jobs(jobs, tasks)
    }

    #[test]
    fn run_jobs_preserves_task_order() {
        let want: Vec<usize> = (0..16).map(|i| i * i).collect();
        assert_eq!(squares(1), want);
        assert_eq!(squares(4), want);
        // More workers than tasks is fine.
        assert_eq!(squares(64), want);
    }

    #[test]
    fn jobs_flag_parses_both_forms_and_passes_the_rest() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (jobs, rest) =
            super::take_jobs_flag(args(&["--jobs", "4", "--trace-out", "t"])).unwrap();
        assert_eq!(jobs, 4);
        assert_eq!(rest, args(&["--trace-out", "t"]));
        let (jobs, rest) = super::take_jobs_flag(args(&["--jobs=2"])).unwrap();
        assert_eq!(jobs, 2);
        assert!(rest.is_empty());
        let (jobs, _) = super::take_jobs_flag(args(&[])).unwrap();
        assert_eq!(jobs, 1);
        assert!(super::take_jobs_flag(args(&["--jobs"])).is_err());
        assert!(super::take_jobs_flag(args(&["--jobs", "0"])).is_err());
        assert!(super::take_jobs_flag(args(&["--jobs", "many"])).is_err());
    }

    #[test]
    fn engine_threads_flag_parses_and_composes_with_jobs() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (threads, rest) =
            super::take_engine_threads_flag(args(&["--engine-threads", "4", "--jobs", "2"]))
                .unwrap();
        assert_eq!(threads, 4);
        let (jobs, rest) = super::take_jobs_flag(rest).unwrap();
        assert_eq!(jobs, 2);
        assert!(rest.is_empty());
        let (threads, _) = super::take_engine_threads_flag(args(&["--engine-threads=2"])).unwrap();
        assert_eq!(threads, 2);
        let (threads, _) = super::take_engine_threads_flag(args(&[])).unwrap();
        assert_eq!(threads, 1);
        assert!(super::take_engine_threads_flag(args(&["--engine-threads", "0"])).is_err());
    }

    #[test]
    fn weather_flags_parse_and_imply_each_other() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (opts, rest) = super::WeatherOpts::take(args(&["--weather", "--jobs", "2"])).unwrap();
        assert!(opts.enabled);
        assert_eq!(opts.topk, super::WeatherOpts::DEFAULT_TOPK);
        assert_eq!(rest, args(&["--jobs", "2"]));
        // --weather-topk implies --weather; both value forms work.
        let (opts, _) = super::WeatherOpts::take(args(&["--weather-topk", "8"])).unwrap();
        assert!(opts.enabled);
        assert_eq!(opts.topk, 8);
        let (opts, _) = super::WeatherOpts::take(args(&["--weather-topk=16"])).unwrap();
        assert_eq!(opts.topk, 16);
        let (opts, _) = super::WeatherOpts::take(args(&[])).unwrap();
        assert!(!opts.enabled);
        assert!(super::WeatherOpts::take(args(&["--weather-topk"])).is_err());
        assert!(super::WeatherOpts::take(args(&["--weather-topk", "0"])).is_err());
        assert!(super::WeatherOpts::take(args(&["--weather-topk", "x"])).is_err());
    }

    #[test]
    fn flight_ring_flag_requires_a_power_of_two() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (cap, rest) = super::take_flight_ring_flag(args(&["--flight-ring", "1024"])).unwrap();
        assert_eq!(cap, 1024);
        assert!(rest.is_empty());
        let (cap, _) = super::take_flight_ring_flag(args(&["--flight-ring=64"])).unwrap();
        assert_eq!(cap, 64);
        let (cap, _) = super::take_flight_ring_flag(args(&[])).unwrap();
        assert_eq!(cap, sorn_telemetry::DEFAULT_CAPACITY);
        assert!(super::take_flight_ring_flag(args(&["--flight-ring", "1000"])).is_err());
        assert!(super::take_flight_ring_flag(args(&["--flight-ring", "0"])).is_err());
        assert!(super::take_flight_ring_flag(args(&["--flight-ring"])).is_err());
    }

    #[test]
    fn trace_flows_flag_defaults_off_and_rejects_zero() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (one_in, rest) =
            super::take_trace_flows_flag(args(&["--trace-flows", "4", "--jobs", "2"])).unwrap();
        assert_eq!(one_in, 4);
        assert_eq!(rest, args(&["--jobs", "2"]));
        let (one_in, _) = super::take_trace_flows_flag(args(&["--trace-flows=1"])).unwrap();
        assert_eq!(one_in, 1);
        let (one_in, _) = super::take_trace_flows_flag(args(&[])).unwrap();
        assert_eq!(one_in, 0);
        assert!(super::take_trace_flows_flag(args(&["--trace-flows", "0"])).is_err());
        assert!(super::take_trace_flows_flag(args(&["--trace-flows"])).is_err());
        assert!(super::take_trace_flows_flag(args(&["--trace-flows", "x"])).is_err());
    }

    #[test]
    fn no_args_gives_defaults() {
        let opts = parse(&[]).unwrap();
        assert_eq!(opts, TelemetryOpts::default());
        assert!(opts.trace_out.is_none());
        assert_eq!(opts.sample_interval_ns, TelemetryOpts::DEFAULT_INTERVAL_NS);
    }

    #[test]
    fn both_flag_forms_parse() {
        let a = parse(&["--trace-out", "t.jsonl", "--sample-interval-ns", "5000"]).unwrap();
        let b = parse(&["--trace-out=t.jsonl", "--sample-interval-ns=5000"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            a.trace_out.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(a.sample_interval_ns, 5000);
    }

    #[test]
    fn bad_args_are_rejected() {
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--trace-out"]).is_err());
        assert!(parse(&["--sample-interval-ns", "zero"]).is_err());
        assert!(parse(&["--sample-interval-ns", "0"]).is_err());
        assert!(parse(&["--serve-linger-ms", "soon"]).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let opts = parse(&["--serve-metrics", "127.0.0.1:0", "--serve-linger-ms=250"]).unwrap();
        assert_eq!(opts.serve_metrics.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.serve_linger_ms, 250);
    }

    #[test]
    fn checkpoint_flags_parse_and_pass_the_rest() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (opts, rest) = super::CheckpointOpts::take(args(&[
            "--checkpoint-dir",
            "ckpts",
            "--checkpoint-every=500",
            "--resume",
            "--trace-out",
            "t",
        ]))
        .unwrap();
        assert!(opts.enabled());
        assert_eq!(opts.dir.as_deref(), Some(std::path::Path::new("ckpts")));
        assert_eq!(opts.cadence(), 500);
        assert!(opts.resume);
        assert_eq!(rest, args(&["--trace-out", "t"]));

        let (opts, rest) = super::CheckpointOpts::take(args(&["--foo"])).unwrap();
        assert!(!opts.enabled());
        assert!(!opts.resume);
        assert_eq!(opts.cadence(), super::CheckpointOpts::DEFAULT_EVERY_SLOTS);
        assert_eq!(rest, args(&["--foo"]));
    }

    #[test]
    fn checkpoint_flags_reject_bad_combinations() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(super::CheckpointOpts::take(args(&["--resume"])).is_err());
        assert!(super::CheckpointOpts::take(args(&["--checkpoint-every", "9"])).is_err());
        assert!(super::CheckpointOpts::take(args(&[
            "--checkpoint-dir",
            "d",
            "--checkpoint-every",
            "0"
        ]))
        .is_err());
        assert!(super::CheckpointOpts::take(args(&["--checkpoint-dir"])).is_err());
        assert!(super::CheckpointOpts::take(args(&[
            "--checkpoint-dir",
            "d",
            "--checkpoint-every",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn stop_handler_returns_the_flag() {
        let flag = super::install_stop_handler();
        assert!(!flag.load(std::sync::atomic::Ordering::SeqCst));
        // Idempotent.
        let again = super::install_stop_handler();
        assert!(std::ptr::eq(flag, again));
    }

    fn seeded_flows(n: u32, count: u64) -> Vec<sorn_sim::Flow> {
        use sorn_topology::NodeId;
        (0..count)
            .map(|i| sorn_sim::Flow {
                id: sorn_sim::FlowId(i + 1),
                src: NodeId((i as u32 * 7) % n),
                dst: NodeId((i as u32 * 13 + 3) % n),
                size_bytes: 1250 * (1 + i % 5),
                arrival_ns: 40 * i,
            })
            .map(|f| {
                if f.src == f.dst {
                    sorn_sim::Flow {
                        dst: sorn_topology::NodeId((f.dst.0 + 1) % n),
                        ..f
                    }
                } else {
                    f
                }
            })
            .collect()
    }

    /// Interrupt mid-run, resume from the written checkpoint, and land
    /// on exactly the metrics of an uninterrupted run.
    #[test]
    fn drive_checkpointed_interrupt_then_resume_matches_uninterrupted() {
        use sorn_sim::{CheckpointFaultFs, CheckpointStore, DirectRouter, Engine, SimConfig};
        use sorn_topology::builders::round_robin;
        use std::sync::atomic::{AtomicBool, Ordering};

        let sched = round_robin(8).unwrap();
        let router = DirectRouter;
        let flows = seeded_flows(8, 40);

        // Reference: run to drain, no interruptions.
        let mut reference = Engine::new(SimConfig::default(), &sched, &router);
        reference.add_flows(flows.clone()).unwrap();
        assert!(reference.run_until_drained(100_000).unwrap());
        let want = reference.metrics().clone();

        // Checkpointed run, stopped by the flag partway through.
        let mut store = CheckpointStore::with_fs("ckpt", CheckpointFaultFs::new(), 2);
        let stop = AtomicBool::new(false);
        let mut engine = Engine::new(SimConfig::default(), &sched, &router);
        engine.add_flows(flows).unwrap();
        let mut written = Vec::new();
        // Run a few slots, then raise the flag as if a signal landed.
        let outcome = super::drive_checkpointed(
            &mut engine,
            super::RunMode::UntilSlot(5),
            &mut store,
            2,
            &stop,
            |_, snap| snap.attach_blob("marker", b"x".to_vec()),
            |slot, path, bytes| written.push((slot, path.to_path_buf(), bytes)),
        )
        .unwrap();
        assert_eq!(outcome, super::DriveOutcome::Completed { drained: false });
        assert!(!written.is_empty());
        stop.store(true, Ordering::SeqCst);
        let outcome = super::drive_checkpointed(
            &mut engine,
            super::RunMode::UntilDrained(100_000),
            &mut store,
            2,
            &stop,
            |_, snap| snap.attach_blob("marker", b"x".to_vec()),
            |slot, path, bytes| written.push((slot, path.to_path_buf(), bytes)),
        )
        .unwrap();
        let super::DriveOutcome::Interrupted { slot, .. } = outcome else {
            panic!("expected interruption, got {outcome:?}");
        };
        assert_eq!(slot, 5);
        drop(engine);

        // Resume from the store and finish.
        let loaded = store.load_latest().unwrap();
        assert_eq!(loaded.snapshot.blob("marker"), Some(&b"x"[..]));
        assert_eq!(loaded.snapshot.slot(), 5);
        let mut resumed = Engine::restore(&loaded.snapshot, &sched, &router).unwrap();
        stop.store(false, Ordering::SeqCst);
        let outcome = super::drive_checkpointed(
            &mut resumed,
            super::RunMode::UntilDrained(100_000),
            &mut store,
            1_000,
            &stop,
            |_, _| {},
            |_, _, _| {},
        )
        .unwrap();
        assert_eq!(outcome, super::DriveOutcome::Completed { drained: true });
        assert_eq!(resumed.metrics(), &want);
    }
}
