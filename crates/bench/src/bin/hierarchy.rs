//! Multi-level hierarchy ablation (§3's pods/clusters/blocks, §6's
//! per-level schedules): how does a three-level SORN compare to the
//! paper's two-level design on the same 4096-rack deployment?
//!
//! Analytical comparison at deployment scale plus an end-to-end packet
//! check at 64 nodes.

use sorn_analysis::render::{fmt_latency, fmt_pct, TextTable};
use sorn_bench::header;
use sorn_core::{model, HierarchyModel};
use sorn_routing::HierarchicalRouter;
use sorn_sim::{Engine, Flow, FlowId, SimConfig};
use sorn_topology::builders::hierarchical_schedule;

fn main() {
    header("Hierarchical SORN: two vs three levels, 4096 racks");
    println!("locality split: 56% pod-local; remaining traffic split between");
    println!("cluster-local (24%) and fabric-wide (20%) for the 3-level design\n");

    let p = sorn_core::baselines::DeploymentParams::paper_reference();
    let lat = |dm: f64, hops: u32| {
        model::min_latency_ns(dm, hops, p.slot_ns, p.propagation_ns, p.uplinks)
    };

    let two = HierarchyModel::two_level(64, 64, 0.56).unwrap();
    let three = HierarchyModel::new(vec![16, 16, 16], vec![0.56, 0.24, 0.20]).unwrap();

    let mut t = TextTable::new(&[
        "design",
        "class",
        "delta_m",
        "min latency",
        "thpt",
        "BW cost",
    ]);
    for (name, m) in [("2-level 64x64", &two), ("3-level 16^3", &three)] {
        for l in 0..m.levels() {
            let dm = m.class_delta_m(l);
            t.row(vec![
                name.into(),
                format!("level-{l} traffic ({} hops)", l + 2),
                format!("{:.0}", dm.ceil()),
                fmt_latency(lat(dm, (l + 2) as u32)),
                fmt_pct(m.optimal_throughput()),
                format!("{:.2}x", m.mean_hops()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Three levels cut pod-local latency a further order of magnitude");
    println!("(shorter innermost round robin) at a modest throughput cost for");
    println!("the fabric-wide class — the same tradeoff axis as Table 1.\n");

    header("Packet check: 64 nodes as 4x4x4, weighted (6,2,1)");
    let spec = sorn_topology::builders::HierarchySpec::new(vec![4, 4, 4], vec![6, 2, 1]).unwrap();
    let sched = hierarchical_schedule(&spec, 1 << 20).unwrap();
    let router = HierarchicalRouter::new(spec);
    let mut eng = Engine::new(SimConfig::default(), &sched, &router);
    let flows: Vec<Flow> = (0..64u32)
        .flat_map(|s| [(s, (s + 1) % 64), (s, (s + 5) % 64), (s, (s + 21) % 64)])
        .enumerate()
        .map(|(i, (s, d))| Flow {
            id: FlowId(i as u64),
            src: sorn_topology::NodeId(s),
            dst: sorn_topology::NodeId(d),
            size_bytes: 2 * 1250,
            arrival_ns: i as u64 * 30,
        })
        .collect();
    let count = flows.len();
    eng.add_flows(flows).unwrap();
    let drained = eng.run_until_drained(5_000_000).unwrap();
    let m = eng.metrics();
    println!(
        "flows: {count}, drained: {drained}, completed: {}",
        m.flows.len()
    );
    println!(
        "mean hops: {:.2} (bound {}), mean FCT: {:.2} us",
        m.mean_hops(),
        4,
        m.mean_fct_ns() / 1000.0
    );
    let worst = m.flows.iter().map(|f| f.max_hops).max().unwrap();
    println!("worst hops observed: {worst} (<= levels + 1 = 4)");
}
