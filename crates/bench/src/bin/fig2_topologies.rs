//! Regenerates Figure 2(a,b,d,e): the 8-node wavelength-routed OCS
//! setup, its matchings, and the two logical topologies A and B.

use sorn_analysis::render::TextTable;
use sorn_bench::header;
use sorn_topology::awgr::AwgrSetup;
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, Matching, NodeId, Ratio};

fn print_matchings_table(n: usize, ks: &[usize]) {
    let mut t = TextTable::new(
        &std::iter::once("src".to_string())
            .chain(ks.iter().map(|k| format!("m{k}")))
            .map(|s| Box::leak(s.into_boxed_str()) as &str)
            .collect::<Vec<_>>(),
    );
    let ms: Vec<Matching> = ks.iter().map(|&k| Matching::cyclic(n, k)).collect();
    for s in 0..n as u32 {
        let mut row = vec![s.to_string()];
        for m in &ms {
            row.push(m.raw_dst(NodeId(s)).0.to_string());
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn print_schedule(label: &str, sched: &sorn_topology::CircuitSchedule) {
    println!("{label} (rows = slots, columns = nodes, entries = peer):");
    println!("{}", sched.render_table());
    let topo = sched.logical_topology();
    println!("node 0 virtual edges:");
    for (d, c) in topo.neighbors(NodeId(0)) {
        println!("  0 -> {d}: {c:.3} of node bandwidth");
    }
    println!();
}

fn main() {
    header("Figure 2(a,b) — 8-node wavelength-routed OCS: available matchings");
    println!("wavelength lambda_k implements the cyclic matching m_k (s -> s+k mod 8):\n");
    print_matchings_table(8, &[1, 2, 3, 4, 5]);

    let setup = AwgrSetup {
        nodes: 8,
        ports_per_node: 1,
        grating_ports: 8,
    };
    println!(
        "physical check: every cyclic matching within reach = {}\n",
        (1..8).all(|k| setup.is_realizable(&Matching::cyclic(8, k)))
    );

    header("Figure 2(d) — logical topology A: 2 cliques of 4, q = 3");
    let map_a = CliqueMap::contiguous(8, 2);
    let a = sorn_schedule(&map_a, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
    print_schedule("Topology A", &a);
    println!("Intra-clique bandwidth is 3x the inter-clique bandwidth (q = 3);");
    println!("a flow 0 -> 6 routes e.g. 0 -> 3 -> 7 -> 6 or 0 -> 1 -> 4 -> 6.\n");

    header("Figure 2(e) — logical topology B: 4 cliques of 2");
    let map_b = CliqueMap::contiguous(8, 4);
    let b = sorn_schedule(&map_b, &SornScheduleParams::with_q(Ratio::integer(1))).unwrap();
    print_schedule("Topology B", &b);
    println!("The same physical setup realizes both topologies purely by");
    println!("permuting which matchings appear in the slot schedule (§4).");
}
