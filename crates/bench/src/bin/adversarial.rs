//! Adversarial demand study: what exactly does "semi-oblivious" give up,
//! and how does the framework win it back?
//!
//! §4's throughput bound assumes the clique-aggregate demand matrix is
//! (roughly) uniform — the macro-pattern §3 argues is stable. A demand
//! concentrating one clique's traffic onto a single destination clique
//! violates that assumption and drives throughput down to
//! `1/((q+1)(Nc−1))`. The remedy is exactly §5's expressivity: re-encode
//! the observed aggregate into the schedule (the gravity builder).
//!
//! Pass `--trace-out <file>` to also packet-simulate the worst found
//! permutation on the uniform schedule and record a JSONL run trace.

use sorn_analysis::render::TextTable;
use sorn_bench::{header, TelemetryOpts};
use sorn_routing::{evaluate, worst_demand_search, DemandMatrix, SornPaths, SornRouter, VlbPaths};
use sorn_sim::{Engine, Flow, FlowId, SimConfig};
use sorn_telemetry::{IntervalSampler, JsonlTraceSink};
use sorn_topology::builders::{
    gravity_schedule, round_robin, sorn_schedule, GravityWeights, SornScheduleParams,
};
use sorn_topology::{CliqueMap, NodeId, Ratio};

fn main() {
    let telemetry = TelemetryOpts::from_env();
    header("Adversarial demands: the price and remedy of semi-obliviousness");
    let n = 24;
    let nc = 4;
    let q = Ratio::integer(2);
    let map = CliqueMap::contiguous(n, nc);
    let uniform_sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
    let topo = uniform_sched.logical_topology();
    let model = SornPaths::new(map.clone());

    println!("{n} nodes, {nc} cliques, q = 2 (uniform inter-clique schedule)\n");

    // Baseline guarantees.
    let flat = round_robin(n).unwrap().logical_topology();
    let vlb_res = worst_demand_search(&flat, &VlbPaths::new(n), 400, 4, 17);
    let sorn_res = worst_demand_search(&topo, &model, 600, 6, 17);

    let mut t = TextTable::new(&["scheme", "demand", "throughput"]);
    t.row(vec![
        "flat VLB".into(),
        "adversarial search".into(),
        format!("{:.4} (guarantee 0.5 holds)", vlb_res.worst_throughput),
    ]);
    let assumed = evaluate(&topo, &model, &DemandMatrix::clique_local(&map, 0.0))
        .unwrap()
        .throughput;
    t.row(vec![
        "SORN uniform-inter".into(),
        "uniform aggregate (assumed)".into(),
        format!("{assumed:.4}"),
    ]);
    t.row(vec![
        "SORN uniform-inter".into(),
        "adversarial search".into(),
        format!(
            "{:.4} (= 1/((q+1)(Nc-1)) = {:.4})",
            sorn_res.worst_throughput,
            1.0 / (3.0 * (nc as f64 - 1.0))
        ),
    ]);

    // The remedy: observe the adversarial aggregate, re-encode it as
    // gravity weights, rebuild the schedule.
    let worst = DemandMatrix::permutation(&sorn_res.worst_permutation).unwrap();
    // Clique-aggregate (integer) weights from the worst demand.
    let mut agg = vec![vec![0u64; nc]; nc];
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            let v = worst.get(NodeId(s), NodeId(d));
            if v > 0.0 {
                let a = map.clique_of(NodeId(s)).index();
                let b = map.clique_of(NodeId(d)).index();
                if a != b {
                    agg[a][b] += v.round() as u64;
                }
            }
        }
    }
    match GravityWeights::balanced(agg) {
        Ok(w) => {
            let g = gravity_schedule(&map, q, &w, 1 << 20).unwrap();
            let rg = evaluate(&g.logical_topology(), &model, &worst).unwrap();
            t.row(vec![
                "SORN gravity-matched".into(),
                "same adversarial demand".into(),
                format!("{:.4}", rg.throughput),
            ]);
        }
        Err(e) => {
            // The worst permutation's aggregate may be unbalanced (some
            // clique pair unused); report instead of crashing.
            t.row(vec![
                "SORN gravity-matched".into(),
                "aggregate not balanced".into(),
                format!("({e})"),
            ]);
        }
    }
    println!("{}", t.render());

    // The worst permutation, packet-level: how the aggregate-level
    // collapse actually plays out in the fabric (queue growth is visible
    // in the trace's snapshot events).
    if let Some(path) = &telemetry.trace_out {
        let flows: Vec<Flow> = sorn_res
            .worst_permutation
            .iter()
            .enumerate()
            .filter(|&(i, &d)| i != d)
            .map(|(i, &d)| Flow {
                id: FlowId(i as u64),
                src: NodeId(i as u32),
                dst: NodeId(d as u32),
                size_bytes: 20 * 1250,
                arrival_ns: 0,
            })
            .collect();
        let router = SornRouter::new(map.clone());
        let sink = JsonlTraceSink::create(path).expect("create trace file");
        let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
        let mut eng = Engine::with_probe(SimConfig::default(), &uniform_sched, &router, sampler);
        eng.add_flows(flows).expect("flows in range");
        eng.run_until_drained(100_000).expect("adversarial run");
        let lines = eng.finish().into_sink().finish().expect("flush trace");
        println!(
            "packet trace of the worst permutation: {lines} events -> {}\n",
            path.display()
        );
    }

    println!("Reading: semi-oblivious designs trade worst-case coverage of the");
    println!("*inter-clique aggregate* for bandwidth; when the aggregate shifts,");
    println!("the control plane re-encodes it (gravity schedule) and recovers");
    println!("most of the lost throughput — the paper's adaptation story end to");
    println!("end, including its failure mode.");
}
