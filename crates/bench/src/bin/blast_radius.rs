//! Regenerates the §6 blast-radius ablation: per-flow failure exposure
//! and per-link affected-pair fractions, flat VLB vs modular SORN, across
//! clique counts.

use sorn_analysis::blast::blast_radius;
use sorn_analysis::render::TextTable;
use sorn_bench::header;
use sorn_routing::{SornPaths, VlbPaths};
use sorn_topology::CliqueMap;

fn main() {
    header("§6 — failure blast radius: flat 1D ORN + VLB vs modular SORN");
    let n = 128;
    println!("network: {n} nodes; exposure = links whose failure can touch a flow\n");

    let mut t = TextTable::new(&[
        "scheme",
        "links used",
        "mean exposure",
        "max exposure",
        "mean affected/link",
        "max affected/link",
    ]);

    let flat = blast_radius(n, &VlbPaths::new(n));
    t.row(vec![
        "flat VLB".into(),
        flat.links.to_string(),
        format!("{:.1}", flat.mean_exposure),
        flat.max_exposure.to_string(),
        format!("{:.4}", flat.mean_affected),
        format!("{:.4}", flat.max_affected),
    ]);

    for cliques in [4, 8, 16, 32] {
        let map = CliqueMap::contiguous(n, cliques);
        let r = blast_radius(n, &SornPaths::new(map));
        t.row(vec![
            format!("SORN Nc={cliques}"),
            r.links.to_string(),
            format!("{:.1}", r.mean_exposure),
            r.max_exposure.to_string(),
            format!("{:.4}", r.mean_affected),
            format!("{:.4}", r.max_affected),
        ]);
    }
    println!("{}", t.render());
    println!("More cliques => smaller cliques => each flow is exposed to fewer");
    println!("links, and the affected set of a failure is confined to the failed");
    println!("element's clique(s) — easing diagnosis, as §6 argues.");
}
