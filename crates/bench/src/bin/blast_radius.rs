//! Regenerates the §6 blast-radius ablation: per-flow failure exposure
//! and per-link affected-pair fractions, flat VLB vs modular SORN, across
//! clique counts.

use sorn_analysis::blast::blast_radius;
use sorn_analysis::render::TextTable;
use sorn_analysis::timeseries;
use sorn_bench::{header, TelemetryOpts};
use sorn_core::{SornConfig, SornNetwork};
use sorn_routing::{SornPaths, VlbPaths};
use sorn_sim::{Engine, FaultPlan, SimConfig};
use sorn_telemetry::{read_jsonl, IntervalSampler, JsonlTraceSink};
use sorn_topology::{CliqueMap, NodeId};
use sorn_traffic::{spatial::CliqueLocal, FlowSizeDist, PoissonWorkload};

fn main() {
    let telemetry = TelemetryOpts::from_env();
    header("§6 — failure blast radius: flat 1D ORN + VLB vs modular SORN");
    let n = 128;
    println!("network: {n} nodes; exposure = links whose failure can touch a flow\n");

    let mut t = TextTable::new(&[
        "scheme",
        "links used",
        "mean exposure",
        "max exposure",
        "mean affected/link",
        "max affected/link",
    ]);

    let flat = blast_radius(n, &VlbPaths::new(n));
    t.row(vec![
        "flat VLB".into(),
        flat.links.to_string(),
        format!("{:.1}", flat.mean_exposure),
        flat.max_exposure.to_string(),
        format!("{:.4}", flat.mean_affected),
        format!("{:.4}", flat.max_affected),
    ]);

    for cliques in [4, 8, 16, 32] {
        let map = CliqueMap::contiguous(n, cliques);
        let r = blast_radius(n, &SornPaths::new(map));
        t.row(vec![
            format!("SORN Nc={cliques}"),
            r.links.to_string(),
            format!("{:.1}", r.mean_exposure),
            r.max_exposure.to_string(),
            format!("{:.4}", r.mean_affected),
            format!("{:.4}", r.max_affected),
        ]);
    }
    println!("{}", t.render());
    println!("More cliques => smaller cliques => each flow is exposed to fewer");
    println!("links, and the affected set of a failure is confined to the failed");
    println!("element's clique(s) — easing diagnosis, as §6 argues.");

    if let Some(path) = &telemetry.trace_out {
        header("Telemetry: packet run with a mid-run link failure");
        trace_failure_run(path, telemetry.sample_interval_ns);
    }
}

/// Packet-simulates a 32-node SORN under steady load with a scripted
/// [`FaultPlan`] that fails the 0 -> 1 intra-clique link for the middle
/// third of the workload, and writes the sampled time series to `path`
/// — queue depth rises while the link is down and drains after
/// restoration, and the trace carries the fault events themselves.
fn trace_failure_run(path: &std::path::Path, sample_interval_ns: u64) {
    let net = SornNetwork::build(SornConfig::small(32, 4, 0.5)).expect("network");
    let duration_ns = 500_000u64;
    let wl = PoissonWorkload {
        n: 32,
        load: 0.2,
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns,
        seed: 42,
    };
    let flows = wl.generate(
        &FlowSizeDist::web_search(),
        &CliqueLocal::new(net.cliques().clone(), 0.5),
    );

    let cfg = SimConfig {
        slot_ns: net.config().slot_ns,
        propagation_ns: net.config().propagation_ns,
        uplinks: net.config().uplinks,
        seed: 42,
        ..SimConfig::default()
    };
    let slot_ns = cfg.slot_ns;
    let sink = JsonlTraceSink::create(path).expect("create trace file");
    let sampler = IntervalSampler::new(sink, sample_interval_ns);
    let mut eng = Engine::with_probe(cfg, net.schedule(), net.router(), sampler);
    eng.add_flows(flows).expect("flows in range");

    let third_ns = duration_ns / 3;
    let mut plan = FaultPlan::new();
    plan.link_outage(NodeId(0), NodeId(1), third_ns, 2 * third_ns);
    eng.set_fault_plan(plan);
    let drained = eng
        .run_until_drained(duration_ns / slot_ns * 50)
        .expect("drain phase");
    let metrics = eng.metrics().clone();
    let lines = eng.finish().into_sink().finish().expect("flush trace");

    let events = read_jsonl(path).expect("trace must parse back");
    assert_eq!(events.len() as u64, lines);
    let snapshots = timeseries::snapshots_of(&events);
    let last = snapshots.last().expect("final snapshot present");
    assert_eq!(last.delivered_cells, metrics.delivered_cells);
    println!(
        "wrote {lines} events to {} (link 0->1 down for the middle third; drained: {drained})\n",
        path.display()
    );
    println!("{}", timeseries::summary_table(&snapshots).render());
    let peak = snapshots.iter().map(|s| s.queued_cells).max().unwrap_or(0);
    println!("peak sampled queue depth: {peak} cells (watch it rise while the link is down)");
    println!(
        "failure slots: {} of {}; degraded-goodput ratio: {:.3}",
        metrics.failure_slots,
        metrics.slots,
        metrics.degraded_goodput_ratio()
    );
}
