//! §6 synchronization-domain ablation: guard-time and slot-efficiency
//! impact of modular (clique-local) synchronization vs fabric-wide sync.

use sorn_analysis::render::TextTable;
use sorn_analysis::syncdomains::{flat_sync, sorn_sync, SyncModel};
use sorn_bench::header;

fn main() {
    header("§6 — synchronization domains: flat vs modular slot sync");
    let m = SyncModel::default();
    println!(
        "model: {} m of fiber span per node, {} m/ns, {} ns clock skew, {} ns transmit window\n",
        m.span_per_node_m, m.fiber_m_per_ns, m.clock_skew_ns, m.transmit_ns
    );

    let n = 4096;
    let q = 50.0 / 11.0;
    let mut t = TextTable::new(&[
        "design",
        "intra domain",
        "intra guard (ns)",
        "inter guard (ns)",
        "slot efficiency",
    ]);
    let flat = flat_sync(n, &m);
    t.row(vec![
        flat.design.clone(),
        flat.intra_domain.to_string(),
        format!("{:.0}", flat.intra_guard_ns),
        "-".into(),
        format!("{:.3}", flat.efficiency),
    ]);
    for nc in [16usize, 32, 64, 128] {
        let s = sorn_sync(n, nc, q, &m);
        t.row(vec![
            s.design.clone(),
            s.intra_domain.to_string(),
            format!("{:.0}", s.intra_guard_ns),
            format!("{:.0}", s.inter_guard_ns),
            format!("{:.3}", s.efficiency),
        ]);
    }
    println!("{}", t.render());
    println!("A flat 4096-node fabric pays a fabric-spanning guard on every slot;");
    println!("a SORN only pays it on the 1/(q+1) inter-clique slots, so usable");
    println!("bandwidth rises sharply with modularity (§6's synchronization claim).");
}
