//! §6 synchronization-domain ablation: guard-time and slot-efficiency
//! impact of modular (clique-local) synchronization vs fabric-wide sync.
//!
//! The efficiency model is closed-form; pass `--trace-out <file>` to
//! also record a JSONL reference run of a modular fabric (64 nodes,
//! 8 cliques) whose snapshot events show the slot-by-slot circuit
//! utilization the guard times discount.

use sorn_analysis::render::TextTable;
use sorn_analysis::syncdomains::{flat_sync, sorn_sync, SyncModel};
use sorn_bench::{header, TelemetryOpts};
use sorn_routing::SornRouter;
use sorn_sim::{Engine, SimConfig};
use sorn_telemetry::{IntervalSampler, JsonlTraceSink};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, Ratio};
use sorn_traffic::{spatial::CliqueLocal, FlowSizeDist, PoissonWorkload};

fn main() {
    let telemetry = TelemetryOpts::from_env();
    header("§6 — synchronization domains: flat vs modular slot sync");
    let m = SyncModel::default();
    println!(
        "model: {} m of fiber span per node, {} m/ns, {} ns clock skew, {} ns transmit window\n",
        m.span_per_node_m, m.fiber_m_per_ns, m.clock_skew_ns, m.transmit_ns
    );

    let n = 4096;
    let q = 50.0 / 11.0;
    let mut t = TextTable::new(&[
        "design",
        "intra domain",
        "intra guard (ns)",
        "inter guard (ns)",
        "slot efficiency",
    ]);
    let flat = flat_sync(n, &m);
    t.row(vec![
        flat.design.clone(),
        flat.intra_domain.to_string(),
        format!("{:.0}", flat.intra_guard_ns),
        "-".into(),
        format!("{:.3}", flat.efficiency),
    ]);
    for nc in [16usize, 32, 64, 128] {
        let s = sorn_sync(n, nc, q, &m);
        t.row(vec![
            s.design.clone(),
            s.intra_domain.to_string(),
            format!("{:.0}", s.intra_guard_ns),
            format!("{:.0}", s.inter_guard_ns),
            format!("{:.3}", s.efficiency),
        ]);
    }
    println!("{}", t.render());

    // Packet-level reference run for the modular design: the trace's
    // utilization snapshots show which scheduled circuits actually carry
    // cells — the quantity the guard times above are discounting.
    if let Some(path) = &telemetry.trace_out {
        let ref_n = 64usize;
        let map = CliqueMap::contiguous(ref_n, 8);
        let schedule =
            sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).expect("schedule");
        let wl = PoissonWorkload {
            n: ref_n,
            load: 0.3,
            node_bandwidth_bytes_per_ns: 12.5,
            duration_ns: 50_000,
            seed: 3,
        };
        let flows = wl.generate(
            &FlowSizeDist::fixed(10 * 1250),
            &CliqueLocal::new(map.clone(), 0.5),
        );
        let router = SornRouter::new(map);
        let sink = JsonlTraceSink::create(path).expect("create trace file");
        let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
        let mut eng = Engine::with_probe(SimConfig::default(), &schedule, &router, sampler);
        eng.add_flows(flows).expect("flows in range");
        eng.run_until_drained(100_000).expect("reference run");
        let lines = eng.finish().into_sink().finish().expect("flush trace");
        println!(
            "reference packet run (n={ref_n}, nc=8): {lines} events -> {}\n",
            path.display()
        );
    }

    println!("A flat 4096-node fabric pays a fabric-spanning guard on every slot;");
    println!("a SORN only pays it on the 1/(q+1) inter-clique slots, so usable");
    println!("bandwidth rises sharply with modularity (§6's synchronization claim).");
}
