//! Packet-level validation of Table 1's latency column.
//!
//! Table 1's "Min Latency" is analytical (`δm/uplinks × slot + hops ×
//! propagation`). Here every system is actually run in the packet
//! simulator at a scaled-down 256 nodes (single uplink, no queuing:
//! one single-cell flow at a time, swept over arrival phases to expose
//! the worst-case circuit wait), and the measured worst case is compared
//! to its prediction.

use sorn_analysis::render::TextTable;
use sorn_bench::header;
use sorn_core::model::{self, InterCliqueLatencyModel};
use sorn_routing::{HdimRouter, OperaModel, OperaShortRouter, SornRouter, VlbRouter};
use sorn_sim::{Engine, Flow, FlowId, Router, SimConfig};
use sorn_topology::builders::{hdim_orn, round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId, Ratio};

const N: usize = 256;
const SLOT: u64 = 100;
const PROP: u64 = 500;

/// Worst and mean FCT over (pair, phase) samples for one system.
fn measure(
    sched: &CircuitSchedule,
    router: &dyn Router,
    pairs: &[(u32, u32)],
    phase_stride: u64,
) -> (u64, f64) {
    let mut worst = 0u64;
    let mut sum = 0.0;
    let mut count = 0u64;
    let period = sched.period() as u64;
    let mut phase = 0u64;
    while phase < period {
        for &(s, d) in pairs {
            let mut eng = Engine::new(SimConfig::default(), sched, router);
            eng.add_flows([Flow {
                id: FlowId(0),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: 1,
                arrival_ns: phase * SLOT,
            }])
            .unwrap();
            assert!(eng.run_until_drained(20 * period + 1000).unwrap());
            let fct = eng.metrics().flows[0].fct_ns();
            worst = worst.max(fct);
            sum += fct as f64;
            count += 1;
        }
        phase += phase_stride;
    }
    (worst, sum / count as f64)
}

fn main() {
    header("Table 1 latency column, validated in the packet simulator");
    println!("scaled deployment: {N} nodes, 1 uplink, {SLOT} ns slots, {PROP} ns/hop\n");
    let q = Ratio::new(50, 11); // q* for x = 0.56

    let mut t = TextTable::new(&[
        "system",
        "measured worst (us)",
        "predicted worst (us)",
        "measured mean (us)",
    ]);

    // --- 1D ORN + VLB ---
    let rr = round_robin(N).unwrap();
    let vlb = VlbRouter::new();
    let pairs = [(0u32, 1u32), (3, 130), (7, 200)];
    let (worst, mean) = measure(&rr, &vlb, &pairs, 13);
    // delta_m = N-1 slots for the direct hop + up to 1 slot spray wait.
    let pred = model::min_latency_ns(model::flat_delta_m(N) + 1.0, 2, SLOT as f64, PROP as f64, 1);
    t.row(vec![
        "1D ORN (Sirius-style)".into(),
        format!("{:.2}", worst as f64 / 1000.0),
        format!("{:.2}", pred / 1000.0),
        format!("{:.2}", mean / 1000.0),
    ]);

    // --- 2D ORN ---
    let h2 = hdim_orn(N, 2).unwrap();
    let hr = HdimRouter::new(N, 2);
    let (worst2, mean2) = measure(&h2, &hr, &pairs, 1);
    // delta_m = h^2 (delta-1) for corrections + ~2h slots of spray.
    let pred2 = model::min_latency_ns(
        model::hdim_delta_m(N, 2).unwrap() + 4.0,
        4,
        SLOT as f64,
        PROP as f64,
        1,
    );
    t.row(vec![
        "2D ORN".into(),
        format!("{:.2}", worst2 as f64 / 1000.0),
        format!("{:.2}", pred2 / 1000.0),
        format!("{:.2}", mean2 / 1000.0),
    ]);

    // --- SORN Nc=16 (cliques of 16) ---
    let map = CliqueMap::contiguous(N, 16);
    let ss = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
    let sr = SornRouter::new(map.clone());
    // Intra pairs.
    let intra_pairs = [(0u32, 5u32), (2, 9), (17, 30)];
    let (worst_i, mean_i) = measure(&ss, &sr, &intra_pairs, 17);
    let qf = q.to_f64();
    let pred_i = model::min_latency_ns(
        model::intra_delta_m(qf, 16) + 2.0,
        2,
        SLOT as f64,
        PROP as f64,
        1,
    );
    t.row(vec![
        "SORN Nc=16 intra".into(),
        format!("{:.2}", worst_i as f64 / 1000.0),
        format!("{:.2}", pred_i / 1000.0),
        format!("{:.2}", mean_i / 1000.0),
    ]);
    // Inter pairs.
    let inter_pairs = [(0u32, 100u32), (5, 250), (20, 70)];
    let (worst_e, mean_e) = measure(&ss, &sr, &inter_pairs, 17);
    let pred_e = model::min_latency_ns(
        model::inter_delta_m(qf, 16, 16, InterCliqueLatencyModel::Text) + 2.0,
        3,
        SLOT as f64,
        PROP as f64,
        1,
    );
    t.row(vec![
        "SORN Nc=16 inter".into(),
        format!("{:.2}", worst_e as f64 / 1000.0),
        format!("{:.2}", pred_e / 1000.0),
        format!("{:.2}", mean_e / 1000.0),
    ]);

    // --- Opera short flows on a frozen epoch ---
    let om = OperaModel::new(N, 8, 0.75, 4, 3).unwrap();
    let frozen = om.frozen_schedule(0, 4).unwrap();
    let or = OperaShortRouter::new(&om, 0, 4).expect("connected");
    let (worst_o, mean_o) = measure(&frozen, &or, &pairs, 1);
    // Each hop waits at most one active-set cycle (6 slots).
    let pred_o = or.diameter() as f64 * (6.0 * SLOT as f64 + PROP as f64);
    t.row(vec![
        format!("Opera short (diam {})", or.diameter()),
        format!("{:.2}", worst_o as f64 / 1000.0),
        format!("{:.2}", pred_o / 1000.0),
        format!("{:.2}", mean_o / 1000.0),
    ]);

    println!("{}", t.render());
    println!("Shape check (as in Table 1): SORN intra < 2D ORN < 1D ORN on");
    println!("worst-case latency; measured values sit at or below predictions");
    println!("because the analytical delta_m is a worst case over all phases.");
    assert!(worst_i < worst2, "SORN intra should beat the 2D ORN");
    assert!(worst2 < worst, "2D should beat 1D");
    println!("\nshape assertions passed");
}
