//! Regenerates Figure 2(f): worst-case throughput for the semi-oblivious
//! design with varying traffic locality ratios.
//!
//! Series, as in the paper:
//! - theory: `r = 1/(3 - x)` (bounded between 1/3 and 1/2);
//! - simulation of 128 nodes and 8 cliques — exact flow-level evaluation
//!   of the constructed schedules, plus packet-level validation points
//!   driven by pFabric web-search traffic ("real-world traffic \[2\]").

use sorn_analysis::fig2f::{
    generate, validate_point, validate_point_traced, Fig2fParams, PacketValidation,
};
use sorn_analysis::render::{to_csv, TextTable};
use sorn_analysis::timeseries;
use sorn_bench::{header, run_jobs, take_engine_threads_flag, take_jobs_flag, Task, TelemetryOpts};
use sorn_telemetry::{read_jsonl, IntervalSampler, JsonlTraceSink};

fn main() {
    let parsed = take_jobs_flag(std::env::args().skip(1))
        .and_then(|(jobs, rest)| take_engine_threads_flag(rest).map(|(t, rest)| (jobs, t, rest)))
        .and_then(|(jobs, threads, rest)| TelemetryOpts::parse(rest).map(|t| (jobs, threads, t)));
    let (jobs, engine_threads, telemetry) = match parsed {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: fig2f [--jobs N] [--engine-threads N] [--trace-out <path>] [--sample-interval-ns <n>]"
            );
            std::process::exit(2);
        }
    };
    header("Figure 2(f) — worst-case throughput vs locality ratio");
    let params = Fig2fParams::default();
    println!("network: {} nodes, {} cliques\n", params.n, params.cliques);

    let pts = generate(&params).expect("figure generation");
    let mut t = TextTable::new(&[
        "x",
        "theory 1/(3-x)",
        "sim (128 nodes, 8 cliques)",
        "mean hops",
    ]);
    let mut csv_rows = Vec::new();
    for p in &pts {
        let row = vec![
            format!("{:.1}", p.x),
            format!("{:.4}", p.theory),
            format!("{:.4}", p.simulated),
            format!("{:.3}", p.mean_hops),
        ];
        csv_rows.push(row.clone());
        t.row(row);
    }
    println!("{}", t.render());
    // Plot-ready data alongside the table.
    let csv = to_csv(&["x", "theory", "simulated", "mean_hops"], &csv_rows);
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/fig2f.csv", &csv).is_ok()
    {
        println!("(series written to results/fig2f.csv)\n");
    }

    header("Packet-level validation (pFabric web-search flows)");
    println!("offered load 0.3 per node; a load below r must drain:\n");
    let mut v = TextTable::new(&["x", "flows", "drained", "mean hops", "delivery fraction"]);
    // The packet runs dominate the wall time and are independent seeded
    // simulations — fan them out under --jobs; rows land in x order.
    const POINTS: [f64; 3] = [0.2, 0.56, 0.8];
    let tasks: Vec<Task<PacketValidation>> = POINTS
        .iter()
        .map(|&x| -> Task<PacketValidation> {
            Box::new(move || {
                validate_point(128, 8, x, 0.3, 2_000_000, 42, engine_threads)
                    .expect("validation point")
            })
        })
        .collect();
    for (x, p) in POINTS.iter().zip(run_jobs(jobs, tasks)) {
        v.row(vec![
            format!("{x:.2}"),
            p.flows.to_string(),
            p.drained.to_string(),
            format!("{:.3}", p.mean_hops),
            format!("{:.3}", p.delivery_fraction),
        ]);
    }
    println!("{}", v.render());
    println!("(delivery fraction ~= 1/mean_hops; mean hops ~= 3 - x, so the");
    println!(" measured packet-level throughput tracks the theory curve)");

    if let Some(path) = &telemetry.trace_out {
        header("Telemetry: traced re-run of the x = 0.56 validation point");
        let sink = JsonlTraceSink::create(path).expect("create trace file");
        let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
        let (_, metrics, sampler) =
            validate_point_traced(128, 8, 0.56, 0.3, 2_000_000, 42, engine_threads, sampler)
                .expect("traced validation point");
        let lines = sampler.into_sink().finish().expect("flush trace");

        let events = read_jsonl(path).expect("trace must parse back");
        assert_eq!(events.len() as u64, lines);
        let snapshots = timeseries::snapshots_of(&events);
        let last = snapshots.last().expect("final snapshot present");
        assert_eq!(
            last.delivered_cells, metrics.delivered_cells,
            "final snapshot must agree with the run's aggregate metrics"
        );
        println!(
            "wrote {lines} events to {} (sample interval {} ns)",
            path.display(),
            telemetry.sample_interval_ns
        );
        println!(
            "final snapshot: {} delivered cells == metrics aggregate\n",
            last.delivered_cells
        );
        println!("{}", timeseries::summary_table(&snapshots).render());
    }
}
