//! §5 non-uniform clique sizes: when the workload's communities have
//! unequal sizes, matching the clique sizes to the communities keeps
//! their traffic on 2-hop intra paths instead of splitting a community
//! across cliques and paying 3 hops.
//!
//! Workload: 16 nodes in communities of sizes {8, 4, 4} with heavy
//! intra-community traffic. Design A forces uniform cliques of 4 (the
//! 8-community is split); design B uses non-uniform cliques {8, 4, 4}.

use sorn_analysis::render::TextTable;
use sorn_bench::header;
use sorn_routing::{GeneralSornRouter, SornRouter};
use sorn_sim::{Engine, Flow, FlowId, Metrics, Router, SimConfig};
use sorn_topology::builders::{nonuniform_sorn_schedule, sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueId, CliqueMap, NodeId, Ratio};

/// Communities: nodes 0..8 together, 8..12, 12..16.
fn community_of(v: u32) -> u32 {
    match v {
        0..=7 => 0,
        8..=11 => 1,
        _ => 2,
    }
}

fn workload() -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0u64;
    for rep in 0..4u64 {
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let heavy = community_of(s) == community_of(d);
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: NodeId(d),
                    size_bytes: if heavy { 5 * 1250 } else { 1250 },
                    arrival_ns: rep * 40_000 + id % 97 * 53,
                });
                id += 1;
            }
        }
    }
    flows
}

fn run(sched: &CircuitSchedule, router: &dyn Router) -> (Metrics, bool) {
    let mut eng = Engine::new(SimConfig::default(), sched, router);
    eng.add_flows(workload()).unwrap();
    let drained = eng.run_until_drained(10_000_000).unwrap();
    (eng.metrics().clone(), drained)
}

fn main() {
    header("§5 — non-uniform clique sizes vs forced-uniform grouping");
    println!("16 nodes; communities of sizes 8/4/4 with 5x intra traffic\n");

    // Design A: uniform cliques of 4 (community 0 split into two).
    let uniform_map = CliqueMap::contiguous(16, 4);
    let uniform_sched =
        sorn_schedule(&uniform_map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
    let uniform_router = SornRouter::new(uniform_map);

    // Design B: cliques matched to the communities.
    let c = |x: u32| CliqueId(x);
    let assignment: Vec<CliqueId> = (0..16).map(|v| c(community_of(v))).collect();
    let matched_map = CliqueMap::from_assignment(&assignment);
    let matched_sched =
        nonuniform_sorn_schedule(&matched_map, Ratio::integer(3), 0, 1 << 20).unwrap();
    let matched_router = GeneralSornRouter::new(matched_map.clone());

    let (mu, du) = run(&uniform_sched, &uniform_router);
    let (mm, dm) = run(&matched_sched, &matched_router);

    let mut t = TextTable::new(&[
        "design",
        "drained",
        "mean hops",
        "delivery fraction",
        "mean FCT (us)",
    ]);
    t.row(vec![
        "uniform 4x4 (community split)".into(),
        du.to_string(),
        format!("{:.3}", mu.mean_hops()),
        format!("{:.3}", mu.delivery_fraction()),
        format!("{:.1}", mu.mean_fct_ns() / 1000.0),
    ]);
    t.row(vec![
        "non-uniform 8/4/4 (matched)".into(),
        dm.to_string(),
        format!("{:.3}", mm.mean_hops()),
        format!("{:.3}", mm.delivery_fraction()),
        format!("{:.1}", mm.mean_fct_ns() / 1000.0),
    ]);
    println!("{}", t.render());
    println!(
        "matched cliques cut the bandwidth tax {:.1}% (the split community's",
        (1.0 - mm.mean_hops() / mu.mean_hops()) * 100.0
    );
    println!("heavy traffic rides 2-hop intra paths instead of 3-hop inter ones)");
}
