//! Regenerates the §5 "Expressivity" analysis: which clique sizes the
//! reference physical setup (4096 nodes, 16 ports per node, 256-port
//! gratings) can schedule, and how much matching headroom remains.

use sorn_analysis::render::TextTable;
use sorn_bench::header;
use sorn_topology::awgr::AwgrSetup;

fn main() {
    header("§5 Expressivity — realizable clique sizes on the reference AWGR setup");
    let setup = AwgrSetup::paper_reference();
    println!(
        "setup: {} nodes, {} ports/node, {}-port gratings (shift coverage {})",
        setup.nodes,
        setup.ports_per_node,
        setup.grating_ports,
        setup.coverage()
    );
    println!("full-mesh capable: {}\n", setup.full_mesh_capable());

    let e = setup.expressivity();
    let sizes = e.clique_sizes();
    println!(
        "clique sizes schedulable (paper: \"1 (flat network) 16, 32, 64 up to 2048\"):\n  {:?}\n",
        sizes
    );

    let mut t = TextTable::new(&[
        "clique size",
        "cliques",
        "intra matchings",
        "inter matchings",
        "spare matchings",
    ]);
    for &c in &sizes {
        let nc = setup.nodes / c;
        let intra = c.saturating_sub(1);
        let inter = nc.saturating_sub(1);
        t.row(vec![
            c.to_string(),
            nc.to_string(),
            intra.to_string(),
            inter.to_string(),
            e.spare_matchings(intra + inter).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Hundreds-to-thousands of spare matchings remain for non-uniform");
    println!("inter-clique connectivity, gravity models, or anti-affinity (§5).");
}
