//! Routing ablation: what each piece of the design buys.
//!
//! Compares pure 2-hop VLB, queue-adaptive (direct-first) VLB, SORN, and
//! queue-adaptive SORN on the same fabric across three axes DESIGN.md
//! calls out: bandwidth tax at low load, packet-measured saturation
//! load, and worst-case (flow-level) throughput.

use sorn_analysis::render::TextTable;
use sorn_analysis::saturation::{find_saturation, LoadedWorkload};
use sorn_bench::header;
use sorn_routing::{AdaptiveSornRouter, AdaptiveVlbRouter, SornRouter, VlbRouter};
use sorn_sim::{Engine, Flow, FlowId, Router, SimConfig};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId, Ratio};

const N: usize = 32;
const X: f64 = 0.56;

/// Clique-local deterministic workload at a given load.
struct CliqueWorkload {
    cliques: CliqueMap,
    duration_ns: u64,
}

impl LoadedWorkload for CliqueWorkload {
    fn flows_at(&self, load: f64) -> Vec<Flow> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use sorn_traffic::spatial::{CliqueLocal, SpatialModel};
        let mut rng = StdRng::seed_from_u64(77);
        let spatial = CliqueLocal::new(self.cliques.clone(), X);
        let slots = self.duration_ns / 100;
        let mut flows = Vec::new();
        let mut id = 0u64;
        for s in 0..self.cliques.n() as u32 {
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                t += -u.ln() / load;
                if t as u64 >= slots {
                    break;
                }
                flows.push(Flow {
                    id: FlowId(id),
                    src: NodeId(s),
                    dst: spatial.pick_dst(NodeId(s), &mut rng),
                    size_bytes: 1250,
                    arrival_ns: (t as u64) * 100,
                });
                id += 1;
            }
        }
        flows.sort_by_key(|f| f.arrival_ns);
        flows
    }
    fn duration_ns(&self) -> u64 {
        self.duration_ns
    }
}

fn low_load_tax(
    schedule: &CircuitSchedule,
    router: &dyn Router,
    wl: &CliqueWorkload,
) -> (f64, f64) {
    let mut eng = Engine::new(SimConfig::default(), schedule, router);
    eng.add_flows(wl.flows_at(0.1)).unwrap();
    eng.run_until_drained(10_000_000).unwrap();
    (
        eng.metrics().mean_hops(),
        eng.metrics().mean_fct_ns() / 1000.0,
    )
}

fn main() {
    header("Routing ablation: bandwidth tax, latency, and saturation");
    println!("fabric: {N} nodes; clique designs use 4 cliques, x = {X}\n");

    let flat = round_robin(N).unwrap();
    let map = CliqueMap::contiguous(N, 4);
    let q = Ratio::approximate(2.0 / (1.0 - X), 64);
    let sorn_sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
    let wl = CliqueWorkload {
        cliques: map.clone(),
        duration_ns: 300_000,
    };

    let vlb = VlbRouter::new();
    let avlb = AdaptiveVlbRouter::new(4);
    let sorn = SornRouter::new(map.clone());
    let asorn = AdaptiveSornRouter::new(map.clone(), 4);

    let mut t = TextTable::new(&[
        "scheme",
        "mean hops @ load 0.1",
        "mean FCT (us) @ 0.1",
        "saturation load (measured)",
    ]);

    let cases: Vec<(&str, &CircuitSchedule, &dyn Router)> = vec![
        ("flat + VLB", &flat, &vlb),
        ("flat + adaptive VLB", &flat, &avlb),
        ("SORN", &sorn_sched, &sorn),
        ("SORN + adaptive intra", &sorn_sched, &asorn),
    ];

    for (name, sched, router) in cases {
        let (hops, fct) = low_load_tax(sched, router, &wl);
        let sat = find_saturation(sched, router, SimConfig::default(), &wl, 0.15, 0.85, 4, 60);
        t.row(vec![
            name.into(),
            format!("{hops:.2}"),
            format!("{fct:.1}"),
            format!("{:.2}", sat.stable_load),
        ]);
    }
    println!("{}", t.render());
    println!("Reading: adaptive (direct-first) routing removes the spray tax at");
    println!("low load; SORN's clique schedule turns the locality into throughput;");
    println!("combining both gives the lowest tax without losing the guarantees.");
}
