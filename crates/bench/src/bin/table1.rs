//! Regenerates Table 1: a comparison of latency and throughput between
//! existing oblivious designs and SORN for a 4096-rack DCN.
//!
//! Parameters, as in the paper: 4096 racks, 16 uplinks each, AWGR-based
//! OCS layer, 100 ns time slots, 500 ns propagation per hop, no queuing;
//! 56% locality ratio and 75% short-flow share (production medians); for
//! Opera, 90 µs slots and a quarter of the uplinks reconfiguring.
//!
//! Two Opera parameterizations are printed: the paper-consistent
//! constants, and constants measured from an actually sampled 4096-node
//! rotor expander.

use sorn_analysis::table1::{generate, render, Table1Params};
use sorn_bench::header;
use sorn_core::baselines::measured_opera_params;
use sorn_core::model::InterCliqueLatencyModel;

fn main() {
    header("Table 1 — latency/throughput comparison, 4096-rack DCN");
    let params = Table1Params::default();
    println!("{}", render(&generate(&params)));

    println!("Notes:");
    println!("- SORN rows use q* = 2/(1-0.56) = 50/11 and the Table delta_m variant;");
    println!("  the paper's prose formula gives inter delta_m larger by (q+1-q)(Nc-1).");
    println!();

    // Text-variant appendix.
    let mut text = Table1Params::default();
    text.inter_model = InterCliqueLatencyModel::Text;
    header("Appendix — SORN inter-clique rows under the Text delta_m variant");
    let rows = generate(&text);
    println!("{}", render(&rows[4..]));

    // Measured Opera expander statistics at full scale.
    header("Appendix — Opera constants re-derived from a sampled 4096-node expander");
    println!("(sampling 16 uplinks, 1/4 reconfiguring; BFS over the active union)");
    match measured_opera_params(4096, 16, 0.75, 90_000.0, 7) {
        Some(o) => {
            let mean_hops = 0.75 * o.mean_expander_hops + 0.25 * 2.0;
            println!(
                "  measured mean expander path length: {:.3} (paper-consistent: 3.6)",
                o.mean_expander_hops
            );
            println!(
                "  measured max expander hops: {} (paper: 4)",
                o.max_expander_hops
            );
            println!(
                "  resulting throughput: {:.2}% (paper: 31.25%), BW cost {:.2}x (paper: 3.2x)",
                100.0 / mean_hops,
                mean_hops
            );
            let mut measured = Table1Params::default();
            measured.opera = o;
            let rows = generate(&measured);
            println!();
            println!("{}", render(&rows[1..3]));
        }
        None => println!("  expander sampling failed (disconnected sample)"),
    }
}
