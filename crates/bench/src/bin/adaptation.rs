//! Regenerates the §5 adaptation ablation: a macro-pattern shift hits a
//! static SORN and an adaptive SORN (control loop enabled); we track the
//! exact flow-level throughput of each system's installed configuration
//! per epoch, plus update costs.

use sorn_analysis::adaptation::run_with_decisions;
use sorn_analysis::render::TextTable;
use sorn_bench::{header, TelemetryOpts};
use sorn_control::ControlConfig;
use sorn_sim::{Flow, FlowId};
use sorn_topology::{NodeId, Ratio};

fn community_flows(n: u32, group: impl Fn(u32) -> u32, heavy: u64, light: u64) -> Vec<Flow> {
    let mut flows = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            flows.push(Flow {
                id: FlowId(0),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: if group(s) == group(d) { heavy } else { light },
                arrival_ns: 0,
            });
        }
    }
    flows
}

fn main() {
    let telemetry = TelemetryOpts::from_env();
    header("§5 — adapting the topology: static vs adaptive across a pattern shift");
    let n = 64u32;
    let mut control = ControlConfig::default();
    control.allowed_sizes = vec![4, 8, 16];
    control.alpha = 0.5;

    // Phase 1 matches the deployed contiguous cliques of 8; phase 2
    // scrambles communities to i mod 8; phase 3 shifts the locality
    // strength rather than the grouping.
    let phases = vec![
        (3usize, community_flows(n, |v| v / 8, 50_000, 500)),
        (8usize, community_flows(n, |v| v % 8, 50_000, 500)),
        (4usize, community_flows(n, |v| v % 8, 10_000, 2_000)),
    ];

    let (epochs, decisions) =
        run_with_decisions(n as usize, 8, Ratio::integer(4), control, &phases).expect("experiment");

    let mut t = TextTable::new(&[
        "epoch",
        "static thpt",
        "adaptive thpt",
        "updated",
        "drained cells",
        "install (ms)",
    ]);
    for e in &epochs {
        t.row(vec![
            e.epoch.to_string(),
            format!("{:.3}", e.static_throughput),
            format!("{:.3}", e.adaptive_throughput),
            if e.updated { "yes".into() } else { "-".into() },
            e.drained_cells.to_string(),
            if e.updated {
                format!("{:.0}", e.installation_ns as f64 / 1e6)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());

    let post_shift: Vec<_> = epochs.iter().skip(5).take(6).collect();
    let adaptive_mean: f64 = post_shift
        .iter()
        .map(|e| e.adaptive_throughput)
        .sum::<f64>()
        / post_shift.len() as f64;
    let static_mean: f64 =
        post_shift.iter().map(|e| e.static_throughput).sum::<f64>() / post_shift.len() as f64;
    println!(
        "post-shift steady state: adaptive {:.3} vs static {:.3} ({:.1}x)",
        adaptive_mean,
        static_mean,
        adaptive_mean / static_mean.max(1e-9)
    );
    println!("(updates are installed in seconds-scale control-plane time and the");
    println!(" EWMA+hysteresis keeps the loop from chasing noise — §5, §6)");

    if let Some(path) = &telemetry.trace_out {
        decisions.write_jsonl(path).expect("write decision log");
        let outcome_count = |o: &str| decisions.records.iter().filter(|r| r.outcome == o).count();
        println!(
            "\ndecision log: {} epochs ({} updated, {} held, {} no-plan) -> {}",
            decisions.len(),
            outcome_count("updated"),
            outcome_count("held"),
            outcome_count("no_plan"),
            path.display()
        );
    }
}
