//! Regenerates Figure 1: an oblivious reconfigurable network for 5
//! nodes, with a round-robin schedule of connections.

use sorn_bench::header;
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;

fn main() {
    header("Figure 1 — oblivious round-robin schedule, 5 nodes");
    let s = round_robin(5).expect("5-node round robin");
    // The paper labels nodes A..E; print with letters for fidelity.
    let name = |n: NodeId| (b'A' + n.0 as u8) as char;
    print!("Time slot");
    for v in 0..5u32 {
        print!("\t{}", name(NodeId(v)));
    }
    println!();
    for t in 0..s.period() as u64 {
        print!("{}", t + 1);
        for v in 0..5u32 {
            let d = s.dst_at(t, NodeId(v)).expect("round robin never idles");
            print!("\t{}", name(d));
        }
        println!();
    }
    println!();
    println!("Every node cycles through every peer once per period: full");
    println!(
        "uniform connectivity with period N-1 = {} slots.",
        s.period()
    );
}
