//! §6 "Other Structural Patterns" ablation: a diurnal workload swings
//! load and locality over a day; the control plane retunes the
//! oversubscription ratio `q` over fixed cliques as its EWMA estimate
//! follows. Compares a fixed-`q` SORN against the tracking one, scoring
//! each window with the exact flow-level throughput (no lookahead: each
//! window is scored with the configuration installed *before* it).
//!
//! Pass `--trace-out <file>` to also packet-simulate the first busy
//! window on the fixed-q fabric and record a JSONL run trace
//! (`--sample-interval-ns` sets the snapshot cadence).

use sorn_analysis::render::TextTable;
use sorn_bench::{header, TelemetryOpts};
use sorn_control::PatternEstimator;
use sorn_core::model;
use sorn_routing::{evaluate, DemandMatrix, SornPaths, SornRouter};
use sorn_sim::{Engine, Flow, SimConfig};
use sorn_telemetry::{IntervalSampler, JsonlTraceSink};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, Ratio};
use sorn_traffic::{DiurnalPattern, DiurnalWorkload, FlowSizeDist};

fn main() {
    let telemetry = TelemetryOpts::from_env();
    header("§6 — diurnal tracking: fixed q vs control-loop retuning");
    let n = 32usize;
    let cliques = CliqueMap::contiguous(n, 4);
    let pattern = DiurnalPattern {
        period_ns: 8_000_000,
        mean_load: 0.3,
        amplitude: 0.5,
        locality_peak: 0.8,
        locality_trough: 0.2,
    };
    let wl = DiurnalWorkload {
        cliques: cliques.clone(),
        pattern,
        sizes: FlowSizeDist::fixed(4_000),
        node_bandwidth_bytes_per_ns: 12.5,
        duration_ns: 16_000_000, // two days
        seed: 5,
    };
    let flows = wl.generate();
    // 16 control epochs per day — the paper's premise is that macro-
    // patterns drift slowly relative to the control loop, so each epoch
    // sees a nearly stationary locality.
    let windows = wl.windows(&flows, 500_000);

    // Fixed design: q tuned once for the mean locality 0.5.
    let fixed_q = Ratio::integer(4);
    let build = |q: Ratio| -> CircuitSchedule {
        sorn_schedule(&cliques, &SornScheduleParams::with_q(q)).unwrap()
    };
    let fixed_sched = build(fixed_q);

    // Tracking design: same cliques, q re-derived each epoch from the
    // EWMA locality estimate.
    let mut estimator = PatternEstimator::new(n, 0.8);
    let mut track_q = fixed_q;
    let mut track_sched = fixed_sched.clone();

    let path_model = SornPaths::new(cliques.clone());
    let score = |sched: &CircuitSchedule, demand: &DemandMatrix| {
        evaluate(&sched.logical_topology(), &path_model, demand)
            .map(|r| r.throughput)
            .unwrap_or(0.0)
    };

    let mut t = TextTable::new(&[
        "window",
        "locality x(t)",
        "fixed-q thpt",
        "tracking thpt",
        "q in use",
    ]);
    let mut fixed_sum = 0.0;
    let mut track_sum = 0.0;
    let mut scored = 0usize;
    for (i, window) in windows.iter().enumerate() {
        if window.is_empty() {
            continue;
        }
        let rows = sorn_traffic::empirical_matrix(window, n);
        let Ok(demand) = DemandMatrix::from_rows(rows) else {
            continue;
        };
        let x = sorn_traffic::measured_locality(window, &cliques);
        let fixed_score = score(&fixed_sched, &demand);
        let track_score = score(&track_sched, &demand);
        fixed_sum += fixed_score;
        track_sum += track_score;
        scored += 1;
        t.row(vec![
            i.to_string(),
            format!("{x:.2}"),
            format!("{fixed_score:.3}"),
            format!("{track_score:.3}"),
            format!("{:.2}", track_q.to_f64()),
        ]);

        // End of epoch: fold observations, re-derive q for the next one.
        estimator.observe_flows(window);
        estimator.end_epoch();
        let x_hat = estimator.locality(&cliques).clamp(0.0, 0.9);
        let q_new = Ratio::approximate(model::ideal_q(x_hat), 64);
        if (q_new.to_f64() - track_q.to_f64()).abs() / track_q.to_f64() > 0.05 {
            track_q = q_new;
            track_sched = build(track_q);
        }
    }
    println!("{}", t.render());

    // Packet-level companion: trace the first busy window on the fixed-q
    // fabric (arrivals rebased to the window start).
    if let Some(path) = &telemetry.trace_out {
        if let Some(window) = windows.iter().find(|w| !w.is_empty()) {
            let t0 = window.iter().map(|f| f.arrival_ns).min().unwrap_or(0);
            let flows: Vec<Flow> = window
                .iter()
                .map(|f| Flow {
                    arrival_ns: f.arrival_ns - t0,
                    ..*f
                })
                .collect();
            let router = SornRouter::new(cliques.clone());
            let sink = JsonlTraceSink::create(path).expect("create trace file");
            let sampler = IntervalSampler::new(sink, telemetry.sample_interval_ns);
            let mut eng = Engine::with_probe(SimConfig::default(), &fixed_sched, &router, sampler);
            eng.add_flows(flows).expect("flows in range");
            eng.run_until_drained(100_000).expect("window run");
            let lines = eng.finish().into_sink().finish().expect("flush trace");
            println!(
                "packet trace of window 0 on the fixed-q fabric: {lines} events -> {}\n",
                path.display()
            );
        }
    }

    let gain = (track_sum / fixed_sum - 1.0) * 100.0;
    println!(
        "day-average throughput: fixed q {:.3}, tracking {:.3} ({gain:+.1}%)",
        fixed_sum / scored as f64,
        track_sum / scored as f64,
    );
    if gain > 0.0 {
        println!("(tuning q to the diurnal locality swing recovers bandwidth at both");
        println!(" extremes — the §6 'other structural patterns' idea; the gain grows");
        println!(" as the swing slows relative to the control epoch)");
    } else {
        println!("(at this swing speed the one-epoch estimation lag eats the tuning");
        println!(" gain — §6's premise that patterns must be stable relative to the");
        println!(" control period, demonstrated from the failing side)");
    }
}
