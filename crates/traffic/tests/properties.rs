//! Property-based tests for workload generation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sorn_topology::{CliqueMap, NodeId};
use sorn_traffic::spatial::{CliqueLocal, SpatialModel, Uniform};
use sorn_traffic::{FlowSizeDist, PoissonWorkload, Trace};

proptest! {
    /// Quantiles are monotone in the probability argument.
    #[test]
    fn quantiles_are_monotone(u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let ws = FlowSizeDist::web_search();
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(ws.quantile(lo) <= ws.quantile(hi));
    }

    /// Samples always fall inside the CDF's support.
    #[test]
    fn samples_stay_in_support(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for dist in [FlowSizeDist::web_search(), FlowSizeDist::data_mining()] {
            for _ in 0..50 {
                let s = dist.sample(&mut rng);
                prop_assert!(s >= 100, "{} from {}", s, dist.name());
                prop_assert!(s <= 1_000_000_000, "{} from {}", s, dist.name());
            }
        }
    }

    /// fraction_below is a proper CDF: monotone, 0 at 0, 1 at the max.
    #[test]
    fn fraction_below_is_monotone(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let dm = FlowSizeDist::data_mining();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(dm.fraction_below(lo) <= dm.fraction_below(hi) + 1e-12);
        prop_assert_eq!(dm.fraction_below(0.0), 0.0);
        prop_assert!((dm.fraction_below(1e12) - 1.0).abs() < 1e-12);
    }

    /// Spatial models never return the source itself.
    #[test]
    fn spatial_models_avoid_self(
        n_cliques in 2usize..5,
        size in 1usize..5,
        x in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let n = n_cliques * size;
        if n < 2 { return Ok(()); }
        let mut rng = StdRng::seed_from_u64(seed);
        let uni = Uniform::new(n);
        let cl = CliqueLocal::new(CliqueMap::contiguous(n, n_cliques), x);
        for s in 0..n as u32 {
            prop_assert_ne!(uni.pick_dst(NodeId(s), &mut rng), NodeId(s));
            prop_assert_ne!(cl.pick_dst(NodeId(s), &mut rng), NodeId(s));
        }
    }

    /// Trace record/replay round-trips through JSON bit-exactly.
    #[test]
    fn trace_round_trips(
        n in 2usize..16,
        load in 1u32..10,
        seed in 0u64..200,
    ) {
        let w = PoissonWorkload {
            n,
            load: load as f64 / 10.0,
            node_bandwidth_bytes_per_ns: 12.5,
            duration_ns: 50_000,
            seed,
        };
        let flows = w.generate(&FlowSizeDist::fixed(3000), &Uniform::new(n));
        let t = Trace::record(n, "prop", &flows);
        let back = Trace::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(back.replay(), flows);
    }

    /// Workload arrival times respect the duration bound and flows are
    /// sorted.
    #[test]
    fn workload_respects_duration(n in 2usize..10, seed in 0u64..200) {
        let w = PoissonWorkload {
            n,
            load: 0.5,
            node_bandwidth_bytes_per_ns: 12.5,
            duration_ns: 100_000,
            seed,
        };
        let flows = w.generate(&FlowSizeDist::fixed(2000), &Uniform::new(n));
        for pair in flows.windows(2) {
            prop_assert!(pair[0].arrival_ns <= pair[1].arrival_ns);
        }
        for f in &flows {
            prop_assert!(f.arrival_ns < 100_000);
            prop_assert_ne!(f.src, f.dst);
        }
    }
}
