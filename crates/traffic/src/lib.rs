//! # sorn-traffic
//!
//! Datacenter workload generation for SORN experiments.
//!
//! §3 of the paper argues that while individual flows are unpredictable,
//! *macro-scale* structure — spatial locality within cliques, aggregated
//! inter-group traffic matrices, and flow-size mixes — is stable and
//! exploitable. This crate generates workloads with exactly those knobs:
//!
//! - [`FlowSizeDist`]: empirical CDF samplers, including the pFabric
//!   web-search and data-mining workloads used by Figure 2(f).
//! - [`spatial`]: destination models — uniform, clique-local with a
//!   locality ratio `x`, clique-level gravity, hotspots, permutations.
//! - [`PoissonWorkload`]: open-loop arrivals at a target offered load.
//! - [`FacebookWorkload`]: the cluster-role workload standing in for the
//!   production trace behind Table 1's constants (x = 0.56, 75% short).
//! - [`Trace`]: JSON record/replay of generated workloads.

#![warn(missing_docs)]

mod dist;
mod diurnal;
mod facebook;
pub mod spatial;
mod trace;
mod workload;

pub use dist::{DistError, FlowSizeDist};
pub use diurnal::{DiurnalPattern, DiurnalWorkload};
pub use facebook::{short_volume_share, ClusterRole, FacebookWorkload};
pub use trace::{Trace, TraceFlow};
pub use workload::{empirical_matrix, measured_locality, stats, PoissonWorkload, WorkloadStats};
