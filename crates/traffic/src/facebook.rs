//! A Facebook-like cluster-role workload (substitute for the production
//! trace of Roy et al. [23] used in Table 1 and §3).
//!
//! The paper takes two scalars from that trace: a median intra-cluster
//! locality ratio of 56% and a short-flow traffic share of 75%. This
//! module synthesizes a workload with those knobs: each clique is
//! assigned a *role* (web, cache, hadoop) with a role-specific flow-size
//! mix, traffic is clique-local with ratio `x`, and the share of short
//! flows is controlled by mixing a request-sized distribution with a bulk
//! distribution.

use crate::dist::FlowSizeDist;
use crate::spatial::{CliqueLocal, SpatialModel};
use crate::workload::PoissonWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sorn_sim::{Flow, FlowId, Nanos};
use sorn_topology::CliqueMap;

/// Cluster roles observed in the production trace: machines in a cluster
/// serve a distinct function (§3, \[23\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterRole {
    /// User-facing web servers: many small request/response flows.
    Web,
    /// Cache followers/leaders: medium objects, read-heavy.
    Cache,
    /// Hadoop/batch: large shuffles and bulk reads.
    Hadoop,
}

impl ClusterRole {
    /// The flow-size distribution characteristic of this role.
    pub fn size_dist(&self) -> FlowSizeDist {
        match self {
            // Request/response traffic: kilobyte-scale, light tail.
            ClusterRole::Web => FlowSizeDist::from_cdf(
                "fb-web",
                &[
                    (500.0, 0.30),
                    (2_000.0, 0.60),
                    (10_000.0, 0.85),
                    (100_000.0, 0.97),
                    (1_000_000.0, 1.00),
                ],
            )
            .expect("static CDF"),
            // Cached-object traffic: tens of kilobytes typical.
            ClusterRole::Cache => FlowSizeDist::from_cdf(
                "fb-cache",
                &[
                    (1_000.0, 0.15),
                    (10_000.0, 0.50),
                    (70_000.0, 0.85),
                    (1_000_000.0, 0.98),
                    (10_000_000.0, 1.00),
                ],
            )
            .expect("static CDF"),
            // Batch traffic: pFabric's data-mining heavy tail.
            ClusterRole::Hadoop => FlowSizeDist::data_mining(),
        }
    }
}

/// Parameters of the Facebook-like workload.
#[derive(Debug, Clone)]
pub struct FacebookWorkload {
    /// Clique (cluster) assignment.
    pub cliques: CliqueMap,
    /// Intra-clique locality ratio; the production median is 0.56.
    pub locality: f64,
    /// Fraction of traffic volume in latency-sensitive short flows; the
    /// production median is 0.75.
    pub short_share: f64,
    /// Role of each clique, cycled if shorter than the clique count.
    pub roles: Vec<ClusterRole>,
    /// Offered load per node (fraction of node bandwidth).
    pub load: f64,
    /// Node bandwidth in bytes/ns.
    pub node_bandwidth_bytes_per_ns: f64,
    /// Duration in nanoseconds.
    pub duration_ns: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl FacebookWorkload {
    /// The paper's reference parameterization (x = 0.56, short = 0.75)
    /// over the given cliques.
    pub fn paper_reference(cliques: CliqueMap, load: f64, duration_ns: Nanos, seed: u64) -> Self {
        FacebookWorkload {
            cliques,
            locality: 0.56,
            short_share: 0.75,
            roles: vec![ClusterRole::Web, ClusterRole::Cache, ClusterRole::Hadoop],
            load,
            node_bandwidth_bytes_per_ns: 200.0, // 16 uplinks x 100 Gb/s
            duration_ns,
            seed,
        }
    }

    /// Role of clique `c`.
    pub fn role_of(&self, c: usize) -> ClusterRole {
        self.roles[c % self.roles.len()]
    }

    /// Generates the flow list.
    ///
    /// Short/bulk mixing: each flow is short (role-distribution sample
    /// capped at the short cutoff) with probability chosen so the
    /// *volume* share of short flows approximates `short_share`.
    pub fn generate(&self) -> Vec<Flow> {
        let spatial = CliqueLocal::new(self.cliques.clone(), self.locality);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Per-clique role distributions.
        let dists: Vec<FlowSizeDist> = (0..self.cliques.cliques())
            .map(|c| self.role_of(c).size_dist())
            .collect();
        let bulk = FlowSizeDist::data_mining();

        // Mean size of the blended distribution, for the arrival rate.
        let mean_role: f64 = dists.iter().map(|d| d.mean_bytes()).sum::<f64>() / dists.len() as f64;
        // Choose the per-flow short probability p s.t.
        // p*mean_role / (p*mean_role + (1-p)*mean_bulk) = short_share.
        let mb = bulk.mean_bytes();
        let s = self.short_share.clamp(0.0, 1.0);
        let p_short = if s >= 1.0 {
            1.0
        } else {
            (s * mb) / (s * mb + (1.0 - s) * mean_role)
        };
        let mean_blend = p_short * mean_role + (1.0 - p_short) * mb;

        let rate = self.load * self.node_bandwidth_bytes_per_ns / mean_blend;
        let mut flows = Vec::new();
        for src in 0..self.cliques.n() as u32 {
            let src = sorn_topology::NodeId(src);
            let clique = self.cliques.clique_of(src).index();
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                t += -u.ln() / rate;
                if t >= self.duration_ns as f64 {
                    break;
                }
                let dst = spatial.pick_dst(src, &mut rng);
                let size = if rng.gen::<f64>() < p_short {
                    dists[clique].sample(&mut rng)
                } else {
                    bulk.sample(&mut rng)
                };
                flows.push(Flow {
                    id: FlowId(0),
                    src,
                    dst,
                    size_bytes: size,
                    arrival_ns: t as Nanos,
                });
            }
        }
        flows.sort_by_key(|f| (f.arrival_ns, f.src.0, f.dst.0, f.size_bytes));
        for (i, f) in flows.iter_mut().enumerate() {
            f.id = FlowId(i as u64);
        }
        flows
    }

    /// The equivalent plain Poisson workload (for rate comparisons).
    pub fn as_poisson(&self) -> PoissonWorkload {
        PoissonWorkload {
            n: self.cliques.n(),
            load: self.load,
            node_bandwidth_bytes_per_ns: self.node_bandwidth_bytes_per_ns,
            duration_ns: self.duration_ns,
            seed: self.seed,
        }
    }
}

/// Volume share of flows at or below `cutoff_bytes`.
pub fn short_volume_share(flows: &[Flow], cutoff_bytes: u64) -> f64 {
    let mut short = 0u64;
    let mut total = 0u64;
    for f in flows {
        total += f.size_bytes;
        if f.size_bytes <= cutoff_bytes {
            short += f.size_bytes;
        }
    }
    if total == 0 {
        0.0
    } else {
        short as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::measured_locality;

    fn small_reference() -> FacebookWorkload {
        let map = CliqueMap::contiguous(32, 4);
        let mut w = FacebookWorkload::paper_reference(map, 0.3, 2_000_000, 5);
        w.node_bandwidth_bytes_per_ns = 12.5;
        w
    }

    #[test]
    fn locality_matches_configuration() {
        let w = small_reference();
        let flows = w.generate();
        assert!(!flows.is_empty());
        // Flow-count locality tracks the configured ratio tightly.
        // (Byte-weighted locality needs far longer runs to converge: the
        // data-mining tail reaches 1 GB, so a handful of bulk flows can
        // dominate total bytes in a 2 ms sample.)
        let local = flows
            .iter()
            .filter(|f| w.cliques.same_clique(f.src, f.dst))
            .count() as f64
            / flows.len() as f64;
        assert!((local - 0.56).abs() < 0.05, "flow-count locality {local}");
        // Byte-weighted locality is still a valid number in [0, 1].
        let x = measured_locality(&flows, &w.cliques);
        assert!((0.0..=1.0).contains(&x));
    }

    #[test]
    fn roles_cycle_over_cliques() {
        let w = small_reference();
        assert_eq!(w.role_of(0), ClusterRole::Web);
        assert_eq!(w.role_of(1), ClusterRole::Cache);
        assert_eq!(w.role_of(2), ClusterRole::Hadoop);
        assert_eq!(w.role_of(3), ClusterRole::Web);
    }

    #[test]
    fn role_distributions_are_ordered_by_size() {
        let web = ClusterRole::Web.size_dist().mean_bytes();
        let cache = ClusterRole::Cache.size_dist().mean_bytes();
        let hadoop = ClusterRole::Hadoop.size_dist().mean_bytes();
        assert!(web < cache, "web {web} < cache {cache}");
        assert!(cache < hadoop, "cache {cache} < hadoop {hadoop}");
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let w = small_reference();
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a, b);
        for p in a.windows(2) {
            assert!(p[0].arrival_ns <= p[1].arrival_ns);
        }
    }

    #[test]
    fn short_volume_share_is_between_zero_and_one() {
        let w = small_reference();
        let flows = w.generate();
        let share = short_volume_share(&flows, 100_000);
        assert!((0.0..=1.0).contains(&share));
        assert_eq!(short_volume_share(&[], 100), 0.0);
    }
}
