//! Spatial traffic models: who talks to whom.
//!
//! §3 identifies the macro-patterns a SORN optimizes for: *spatial
//! locality* (a known fraction of traffic stays inside each clique) and
//! *aggregated traffic matrices* (stable gravity weights between groups).
//! This module provides destination pickers for those patterns plus the
//! standard adversarial/synthetic ones (uniform, permutation, hotspot).

use rand::rngs::StdRng;
use rand::Rng;
use sorn_topology::{CliqueId, CliqueMap, NodeId};

/// A spatial model: picks a destination for traffic from a given source.
pub trait SpatialModel {
    /// Picks a destination `!= src`.
    fn pick_dst(&self, src: NodeId, rng: &mut StdRng) -> NodeId;
    /// Model name for reports.
    fn name(&self) -> &str;
}

/// Uniform all-to-all: destination uniform over all other nodes.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    n: usize,
}

impl Uniform {
    /// Uniform over `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        Uniform { n }
    }
}

impl SpatialModel for Uniform {
    fn pick_dst(&self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let r = rng.gen_range(0..self.n - 1) as u32;
        if r >= src.0 {
            NodeId(r + 1)
        } else {
            NodeId(r)
        }
    }
    fn name(&self) -> &str {
        "uniform"
    }
}

/// Clique-local traffic with locality ratio `x`: with probability `x` the
/// destination is uniform inside the source's clique, otherwise uniform
/// over all nodes in other cliques (§3 "Spatial Locality").
#[derive(Debug, Clone)]
pub struct CliqueLocal {
    cliques: CliqueMap,
    x: f64,
}

impl CliqueLocal {
    /// Builds the model; `x` is the intra-clique traffic fraction.
    ///
    /// # Panics
    /// Panics when `x` is outside `[0, 1]`.
    pub fn new(cliques: CliqueMap, x: f64) -> Self {
        assert!((0.0..=1.0).contains(&x), "locality must be in [0,1]");
        CliqueLocal { cliques, x }
    }

    /// The configured locality ratio.
    pub fn locality(&self) -> f64 {
        self.x
    }
}

impl SpatialModel for CliqueLocal {
    fn pick_dst(&self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let c = self.cliques.clique_of(src);
        let members = self.cliques.members(c);
        let csize = members.len();
        let n = self.cliques.n();
        let go_local = csize > 1 && (n == csize || rng.gen::<f64>() < self.x);
        if go_local {
            // Uniform over clique members != src.
            loop {
                let m = members[rng.gen_range(0..csize)];
                if m != src {
                    return m;
                }
            }
        } else {
            // Uniform over nodes outside the clique.
            loop {
                let d = NodeId(rng.gen_range(0..n) as u32);
                if !self.cliques.same_clique(src, d) {
                    return d;
                }
            }
        }
    }
    fn name(&self) -> &str {
        "clique-local"
    }
}

/// Gravity model between cliques: inter-clique destinations are drawn
/// with probability proportional to a per-clique weight (§3 "Aggregated
/// Traffic Matrices"); intra-clique traffic keeps ratio `x`.
#[derive(Debug, Clone)]
pub struct CliqueGravity {
    cliques: CliqueMap,
    x: f64,
    /// Relative attraction weight of each clique.
    weights: Vec<f64>,
    total_weight: f64,
}

impl CliqueGravity {
    /// Builds the model from per-clique attraction weights.
    ///
    /// # Panics
    /// Panics when the weight vector length mismatches the clique count,
    /// weights are negative, or all weights are zero.
    pub fn new(cliques: CliqueMap, x: f64, weights: Vec<f64>) -> Self {
        assert!((0.0..=1.0).contains(&x));
        assert_eq!(weights.len(), cliques.cliques(), "one weight per clique");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be >= 0");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one positive weight");
        assert!(
            weights.iter().filter(|&&w| w > 0.0).count() >= 2,
            "need positive weight in at least two cliques (inter-clique \
             destinations must exist from every source clique)"
        );
        CliqueGravity {
            cliques,
            x,
            weights,
            total_weight: total,
        }
    }

    fn pick_clique_except(&self, exclude: CliqueId, rng: &mut StdRng) -> CliqueId {
        let excluded_w = self.weights[exclude.index()];
        let total = self.total_weight - excluded_w;
        debug_assert!(
            total > 0.0,
            "gravity needs weight outside the source clique"
        );
        let mut t = rng.gen::<f64>() * total;
        for (i, &w) in self.weights.iter().enumerate() {
            if i == exclude.index() {
                continue;
            }
            t -= w;
            if t <= 0.0 {
                return CliqueId(i as u32);
            }
        }
        // Floating point slack: last non-excluded clique.
        CliqueId(
            (0..self.weights.len())
                .rev()
                .find(|&i| i != exclude.index())
                .expect("at least two cliques") as u32,
        )
    }
}

impl SpatialModel for CliqueGravity {
    fn pick_dst(&self, src: NodeId, rng: &mut StdRng) -> NodeId {
        let c = self.cliques.clique_of(src);
        let members = self.cliques.members(c);
        if members.len() > 1 && rng.gen::<f64>() < self.x {
            loop {
                let m = members[rng.gen_range(0..members.len())];
                if m != src {
                    return m;
                }
            }
        }
        let target = self.pick_clique_except(c, rng);
        let tm = self.cliques.members(target);
        tm[rng.gen_range(0..tm.len())]
    }
    fn name(&self) -> &str {
        "clique-gravity"
    }
}

/// Hotspot traffic: a fraction `beta` of traffic targets a small hot set,
/// the rest is uniform. The short-lived pattern §3 argues reconfiguration
/// should *not* chase.
#[derive(Debug, Clone)]
pub struct Hotspot {
    n: usize,
    hot: Vec<NodeId>,
    beta: f64,
}

impl Hotspot {
    /// Builds the model: `beta` of traffic goes to `hot` targets.
    ///
    /// # Panics
    /// Panics when `hot` is empty or `beta` outside `[0, 1]`.
    pub fn new(n: usize, hot: Vec<NodeId>, beta: f64) -> Self {
        assert!(!hot.is_empty(), "need at least one hotspot");
        assert!((0.0..=1.0).contains(&beta));
        assert!(hot.iter().all(|h| h.index() < n));
        Hotspot { n, hot, beta }
    }
}

impl SpatialModel for Hotspot {
    fn pick_dst(&self, src: NodeId, rng: &mut StdRng) -> NodeId {
        if rng.gen::<f64>() < self.beta {
            // A hot target other than the source, if one exists.
            for _ in 0..32 {
                let h = self.hot[rng.gen_range(0..self.hot.len())];
                if h != src {
                    return h;
                }
            }
        }
        Uniform::new(self.n).pick_dst(src, rng)
    }
    fn name(&self) -> &str {
        "hotspot"
    }
}

/// Fixed permutation traffic: node `i` always sends to `perm[i]` — the
/// adversarial pattern for direct-routing schemes.
#[derive(Debug, Clone)]
pub struct Permutation {
    perm: Vec<NodeId>,
}

impl Permutation {
    /// Builds from an explicit permutation (must have no fixed points).
    ///
    /// # Panics
    /// Panics on fixed points or out-of-range entries.
    pub fn new(perm: Vec<NodeId>) -> Self {
        for (i, p) in perm.iter().enumerate() {
            assert!(p.index() < perm.len(), "perm out of range");
            assert!(p.index() != i, "permutation has a fixed point at {i}");
        }
        Permutation { perm }
    }

    /// The cyclic shift `i -> i + k mod n`.
    pub fn shift(n: usize, k: usize) -> Self {
        assert!(!k.is_multiple_of(n), "shift must move every node");
        Permutation {
            perm: (0..n).map(|i| NodeId(((i + k) % n) as u32)).collect(),
        }
    }
}

impl SpatialModel for Permutation {
    fn pick_dst(&self, src: NodeId, _rng: &mut StdRng) -> NodeId {
        self.perm[src.index()]
    }
    fn name(&self) -> &str {
        "permutation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_picks_self_and_covers_all() {
        let m = Uniform::new(8);
        let mut rng = rng();
        let mut seen = [false; 8];
        for _ in 0..500 {
            let d = m.pick_dst(NodeId(3), &mut rng);
            assert_ne!(d, NodeId(3));
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn clique_local_respects_locality_statistically() {
        let map = CliqueMap::contiguous(32, 4);
        let m = CliqueLocal::new(map.clone(), 0.7);
        let mut rng = rng();
        let trials = 20_000;
        let mut local = 0;
        for i in 0..trials {
            let src = NodeId((i % 32) as u32);
            let d = m.pick_dst(src, &mut rng);
            assert_ne!(d, src);
            if map.same_clique(src, d) {
                local += 1;
            }
        }
        let frac = local as f64 / trials as f64;
        assert!((frac - 0.7).abs() < 0.02, "locality {frac}");
    }

    #[test]
    fn clique_local_degenerates_gracefully() {
        // Singleton cliques: everything inter.
        let map = CliqueMap::contiguous(4, 4);
        let m = CliqueLocal::new(map.clone(), 0.9);
        let mut rng = rng();
        for _ in 0..50 {
            let d = m.pick_dst(NodeId(0), &mut rng);
            assert_ne!(d, NodeId(0));
        }
        // Single clique: everything intra.
        let map1 = CliqueMap::contiguous(4, 1);
        let m1 = CliqueLocal::new(map1, 0.0);
        for _ in 0..50 {
            let d = m1.pick_dst(NodeId(2), &mut rng);
            assert_ne!(d, NodeId(2));
        }
    }

    #[test]
    fn gravity_skews_toward_heavy_cliques() {
        let map = CliqueMap::contiguous(16, 4);
        // Clique 3 is 8x more attractive than the others.
        let m = CliqueGravity::new(map.clone(), 0.0, vec![1.0, 1.0, 1.0, 8.0]);
        let mut rng = rng();
        let mut to_c3 = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let d = m.pick_dst(NodeId(0), &mut rng);
            if map.clique_of(d) == CliqueId(3) {
                to_c3 += 1;
            }
        }
        let frac = to_c3 as f64 / trials as f64;
        assert!((frac - 0.8).abs() < 0.03, "clique-3 share {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two cliques")]
    fn gravity_rejects_single_positive_weight() {
        let map = CliqueMap::contiguous(8, 2);
        let _ = CliqueGravity::new(map, 0.5, vec![1.0, 0.0]);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let m = Hotspot::new(16, vec![NodeId(5)], 0.9);
        let mut rng = rng();
        let mut hits = 0;
        for _ in 0..1000 {
            if m.pick_dst(NodeId(0), &mut rng) == NodeId(5) {
                hits += 1;
            }
        }
        assert!(hits > 800, "hotspot hits {hits}");
        // The hotspot itself never sends to itself.
        for _ in 0..200 {
            assert_ne!(m.pick_dst(NodeId(5), &mut rng), NodeId(5));
        }
    }

    #[test]
    fn permutation_is_deterministic() {
        let m = Permutation::shift(8, 3);
        let mut rng = rng();
        assert_eq!(m.pick_dst(NodeId(0), &mut rng), NodeId(3));
        assert_eq!(m.pick_dst(NodeId(7), &mut rng), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "fixed point")]
    fn permutation_rejects_fixed_points() {
        let _ = Permutation::new(vec![NodeId(0), NodeId(2), NodeId(1)]);
    }
}
