//! Diurnal (time-varying) workloads — §6 "Other Structural Patterns".
//!
//! "Diurnal utilization patterns or the distribution of latency-
//! sensitive vs bulk traffic could help tune the number of indirect hops
//! in reconfigurable topologies." This module generates workloads whose
//! offered load and locality ratio swing smoothly over a configurable
//! period, so the control plane's tracking behaviour (and the value of
//! retuning `q` over a day) can be studied.
//!
//! Arrivals are a non-homogeneous Poisson process, sampled by thinning
//! against the peak rate.

use crate::dist::FlowSizeDist;
use crate::spatial::{CliqueLocal, SpatialModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sorn_sim::{Flow, FlowId, Nanos};
use sorn_topology::{CliqueMap, NodeId};

/// A sinusoidal day/night modulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalPattern {
    /// Length of one full day/night cycle in nanoseconds.
    pub period_ns: Nanos,
    /// Mean offered load per node (fraction of node bandwidth).
    pub mean_load: f64,
    /// Relative load swing: instantaneous load =
    /// `mean_load * (1 + amplitude * sin(2πt/period))`.
    pub amplitude: f64,
    /// Locality ratio at the load peak (daytime: user-facing traffic,
    /// high locality).
    pub locality_peak: f64,
    /// Locality ratio at the load trough (nighttime: batch shuffles,
    /// low locality).
    pub locality_trough: f64,
}

impl DiurnalPattern {
    /// Validates the pattern.
    pub fn validate(&self) -> Result<(), String> {
        if self.period_ns == 0 {
            return Err("period must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.amplitude) {
            return Err(format!("amplitude {} outside [0,1]", self.amplitude));
        }
        if self.mean_load <= 0.0 || self.mean_load * (1.0 + self.amplitude) > 1.0 {
            return Err(format!(
                "peak load {} outside (0,1]",
                self.mean_load * (1.0 + self.amplitude)
            ));
        }
        for x in [self.locality_peak, self.locality_trough] {
            if !(0.0..=1.0).contains(&x) {
                return Err(format!("locality {x} outside [0,1]"));
            }
        }
        Ok(())
    }

    /// Phase in `[0, 1)` at time `t`.
    fn phase(&self, t: Nanos) -> f64 {
        (t % self.period_ns) as f64 / self.period_ns as f64
    }

    /// Instantaneous load multiplier (relative to `mean_load`).
    pub fn load_factor(&self, t: Nanos) -> f64 {
        1.0 + self.amplitude * (2.0 * std::f64::consts::PI * self.phase(t)).sin()
    }

    /// Instantaneous offered load at time `t`.
    pub fn load_at(&self, t: Nanos) -> f64 {
        self.mean_load * self.load_factor(t)
    }

    /// Instantaneous locality ratio at time `t`: tracks the load swing
    /// between trough and peak localities.
    pub fn locality_at(&self, t: Nanos) -> f64 {
        let s = (2.0 * std::f64::consts::PI * self.phase(t)).sin(); // [-1, 1]
        let w = (s + 1.0) / 2.0; // 0 at trough, 1 at peak
        self.locality_trough + w * (self.locality_peak - self.locality_trough)
    }
}

/// A diurnal workload generator.
#[derive(Debug, Clone)]
pub struct DiurnalWorkload {
    /// Clique layout (locality is defined against it).
    pub cliques: CliqueMap,
    /// The modulation.
    pub pattern: DiurnalPattern,
    /// Flow sizes.
    pub sizes: FlowSizeDist,
    /// Node bandwidth in bytes per nanosecond.
    pub node_bandwidth_bytes_per_ns: f64,
    /// Total duration (typically a few periods).
    pub duration_ns: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl DiurnalWorkload {
    /// Generates the flow list via thinning against the peak rate.
    ///
    /// # Panics
    /// Panics when the pattern fails validation.
    pub fn generate(&self) -> Vec<Flow> {
        self.pattern.validate().expect("valid diurnal pattern");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let peak_load = self.pattern.mean_load * (1.0 + self.pattern.amplitude);
        let peak_rate = peak_load * self.node_bandwidth_bytes_per_ns / self.sizes.mean_bytes();

        let mut flows = Vec::new();
        for src in 0..self.cliques.n() as u32 {
            let src = NodeId(src);
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                t += -u.ln() / peak_rate;
                if t >= self.duration_ns as f64 {
                    break;
                }
                let now = t as Nanos;
                // Thinning: accept with prob rate(t)/peak_rate.
                let accept = self.pattern.load_at(now) / peak_load;
                if rng.gen::<f64>() >= accept {
                    continue;
                }
                let x = self.pattern.locality_at(now);
                let spatial = CliqueLocal::new(self.cliques.clone(), x);
                let dst = spatial.pick_dst(src, &mut rng);
                flows.push(Flow {
                    id: FlowId(0),
                    src,
                    dst,
                    size_bytes: self.sizes.sample(&mut rng),
                    arrival_ns: now,
                });
            }
        }
        flows.sort_by_key(|f| (f.arrival_ns, f.src.0, f.dst.0, f.size_bytes));
        for (i, f) in flows.iter_mut().enumerate() {
            f.id = FlowId(i as u64);
        }
        flows
    }

    /// Splits generated flows into windows of `window_ns` for per-epoch
    /// analysis (e.g. feeding the control loop one window at a time).
    pub fn windows(&self, flows: &[Flow], window_ns: Nanos) -> Vec<Vec<Flow>> {
        assert!(window_ns > 0);
        let count = self.duration_ns.div_ceil(window_ns) as usize;
        let mut out = vec![Vec::new(); count];
        for f in flows {
            let w = (f.arrival_ns / window_ns) as usize;
            if w < count {
                out[w].push(*f);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::measured_locality;

    fn pattern() -> DiurnalPattern {
        DiurnalPattern {
            period_ns: 1_000_000,
            mean_load: 0.3,
            amplitude: 0.5,
            locality_peak: 0.8,
            locality_trough: 0.2,
        }
    }

    fn workload() -> DiurnalWorkload {
        DiurnalWorkload {
            cliques: CliqueMap::contiguous(16, 4),
            pattern: pattern(),
            sizes: FlowSizeDist::fixed(4_000),
            node_bandwidth_bytes_per_ns: 12.5,
            duration_ns: 2_000_000,
            seed: 17,
        }
    }

    #[test]
    fn pattern_validation() {
        assert!(pattern().validate().is_ok());
        let mut p = pattern();
        p.amplitude = 1.5;
        assert!(p.validate().is_err());
        let mut p = pattern();
        p.mean_load = 0.8; // peak 1.2 > 1
        assert!(p.validate().is_err());
        let mut p = pattern();
        p.period_ns = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn load_swings_around_the_mean() {
        let p = pattern();
        // Peak at a quarter period, trough at three quarters.
        let peak = p.load_at(250_000);
        let trough = p.load_at(750_000);
        assert!((peak - 0.45).abs() < 1e-9, "peak {peak}");
        assert!((trough - 0.15).abs() < 1e-9, "trough {trough}");
        assert!((p.load_at(0) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn locality_tracks_the_swing() {
        let p = pattern();
        assert!((p.locality_at(250_000) - 0.8).abs() < 1e-9);
        assert!((p.locality_at(750_000) - 0.2).abs() < 1e-9);
        assert!((p.locality_at(0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn generated_volume_peaks_during_the_day() {
        let w = workload();
        let flows = w.generate();
        assert!(flows.len() > 100, "too few flows: {}", flows.len());
        let windows = w.windows(&flows, 500_000);
        assert_eq!(windows.len(), 4);
        // Window 0 covers the rising peak half, window 1 the trough.
        assert!(
            windows[0].len() > windows[1].len(),
            "day {} vs night {}",
            windows[0].len(),
            windows[1].len()
        );
    }

    #[test]
    fn locality_is_higher_in_peak_windows() {
        let w = workload();
        let flows = w.generate();
        let windows = w.windows(&flows, 500_000);
        let day = measured_locality(&windows[0], &w.cliques);
        let night = measured_locality(&windows[1], &w.cliques);
        assert!(day > night + 0.1, "day {day} vs night {night}");
    }

    #[test]
    fn generation_is_deterministic() {
        let w = workload();
        assert_eq!(w.generate(), w.generate());
    }
}
