//! Trace recording and replay.
//!
//! Workloads serialize to a small JSON format so experiments can be
//! re-run bit-for-bit, shared, or generated once and swept over many
//! topologies. The format stores exactly what [`sorn_sim::Flow`] needs.

use serde::{Deserialize, Serialize};
use sorn_sim::{Flow, FlowId, Nanos};
use sorn_topology::NodeId;

/// One serialized flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFlow {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Size in bytes.
    pub bytes: u64,
    /// Arrival time in nanoseconds.
    pub at_ns: Nanos,
}

/// A recorded workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of nodes the trace was generated for.
    pub nodes: usize,
    /// Free-form description (workload name, parameters).
    pub description: String,
    /// The flows, sorted by arrival time.
    pub flows: Vec<TraceFlow>,
}

impl Trace {
    /// Records a flow list.
    pub fn record(nodes: usize, description: &str, flows: &[Flow]) -> Self {
        Trace {
            nodes,
            description: description.to_string(),
            flows: flows
                .iter()
                .map(|f| TraceFlow {
                    src: f.src.0,
                    dst: f.dst.0,
                    bytes: f.size_bytes,
                    at_ns: f.arrival_ns,
                })
                .collect(),
        }
    }

    /// Replays into simulator flows (ids renumbered densely).
    pub fn replay(&self) -> Vec<Flow> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, t)| Flow {
                id: FlowId(i as u64),
                src: NodeId(t.src),
                dst: NodeId(t.dst),
                size_bytes: t.bytes,
                arrival_ns: t.at_ns,
            })
            .collect()
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows() -> Vec<Flow> {
        vec![
            Flow {
                id: FlowId(0),
                src: NodeId(1),
                dst: NodeId(2),
                size_bytes: 5000,
                arrival_ns: 10,
            },
            Flow {
                id: FlowId(1),
                src: NodeId(3),
                dst: NodeId(0),
                size_bytes: 99,
                arrival_ns: 20,
            },
        ]
    }

    #[test]
    fn record_replay_round_trips() {
        let fs = flows();
        let t = Trace::record(4, "test workload", &fs);
        let replayed = t.replay();
        assert_eq!(replayed, fs);
    }

    #[test]
    fn json_round_trips() {
        let t = Trace::record(4, "json test", &flows());
        let json = t.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, t);
        assert!(json.contains("\"nodes\":4"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Trace::from_json("{not json").is_err());
        assert!(Trace::from_json("{}").is_err());
    }
}
