//! Flow-size distributions.
//!
//! Figure 2(f)'s simulation uses "real-world traffic [2]" — the pFabric
//! workloads. Those are defined by empirical flow-size CDFs: the
//! *web-search* distribution (from DCTCP's production measurements) and
//! the *data-mining* distribution (from VL2). We encode the standard
//! published CDF points and sample by inverse transform with linear
//! interpolation inside each segment (the common practice in DCN
//! simulators; see DESIGN.md substitutions).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

/// Errors building a distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// CDF points must be non-empty, sorted, and end at probability 1.
    InvalidCdf(String),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidCdf(m) => write!(f, "invalid CDF: {m}"),
        }
    }
}

impl std::error::Error for DistError {}

/// A flow-size distribution defined by an empirical CDF.
///
/// ```
/// use sorn_traffic::FlowSizeDist;
///
/// let ws = FlowSizeDist::web_search();
/// // Median web-search flow is tens of kilobytes; the mean is dominated
/// // by the multi-megabyte tail.
/// assert!(ws.quantile(0.5) > 20_000);
/// assert!(ws.mean_bytes() > 1.0e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSizeDist {
    name: String,
    /// `(size_bytes, cumulative_probability)` points, sorted in both
    /// coordinates, last probability = 1.
    points: Vec<(f64, f64)>,
}

impl FlowSizeDist {
    /// Builds a distribution from CDF points `(size_bytes, cum_prob)`.
    ///
    /// The first point's probability may be positive (an atom at the
    /// minimum size); probabilities must be non-decreasing and end at 1.
    pub fn from_cdf(name: &str, points: &[(f64, f64)]) -> Result<Self, DistError> {
        if points.is_empty() {
            return Err(DistError::InvalidCdf("no points".into()));
        }
        let mut prev = (0.0f64, -1.0f64);
        for &(s, p) in points {
            if !s.is_finite() || s <= 0.0 {
                return Err(DistError::InvalidCdf(format!("size {s} must be positive")));
            }
            if !(0.0..=1.0).contains(&p) {
                return Err(DistError::InvalidCdf(format!(
                    "probability {p} outside [0,1]"
                )));
            }
            if s < prev.0 || p < prev.1 {
                return Err(DistError::InvalidCdf(
                    "points must be sorted in size and probability".into(),
                ));
            }
            prev = (s, p);
        }
        if (prev.1 - 1.0).abs() > 1e-9 {
            return Err(DistError::InvalidCdf(format!(
                "last probability {} must be 1",
                prev.1
            )));
        }
        Ok(FlowSizeDist {
            name: name.to_string(),
            points: points.to_vec(),
        })
    }

    /// Every flow has the same size.
    pub fn fixed(bytes: u64) -> Self {
        FlowSizeDist {
            name: format!("fixed-{bytes}B"),
            points: vec![(bytes as f64, 1.0)],
        }
    }

    /// Uniform between `lo` and `hi` bytes.
    ///
    /// # Panics
    /// Panics if `lo` is zero or `lo > hi`.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        assert!(lo > 0 && lo <= hi, "need 0 < lo <= hi");
        FlowSizeDist {
            name: format!("uniform-{lo}-{hi}B"),
            points: vec![(lo as f64, 0.0), (hi as f64, 1.0)],
        }
    }

    /// The pFabric *web-search* workload (DCTCP production CDF):
    /// a mix of small latency-sensitive requests and multi-megabyte
    /// responses; mean ≈ 1.6 MB.
    pub fn web_search() -> Self {
        const KB: f64 = 1e3;
        Self::from_cdf(
            "pfabric-web-search",
            &[
                (6.0 * KB, 0.15),
                (13.0 * KB, 0.20),
                (19.0 * KB, 0.30),
                (33.0 * KB, 0.40),
                (53.0 * KB, 0.53),
                (133.0 * KB, 0.60),
                (667.0 * KB, 0.70),
                (1_333.0 * KB, 0.80),
                (3_333.0 * KB, 0.90),
                (6_667.0 * KB, 0.95),
                (20_000.0 * KB, 0.98),
                (30_000.0 * KB, 1.00),
            ],
        )
        .expect("static CDF is valid")
    }

    /// The pFabric *data-mining* workload (VL2 CDF): extremely heavy
    /// tailed — half the flows are under ~1 KB while a tiny fraction
    /// reach a gigabyte.
    pub fn data_mining() -> Self {
        Self::from_cdf(
            "pfabric-data-mining",
            &[
                (100.0, 0.00),
                (180.0, 0.10),
                (250.0, 0.20),
                (560.0, 0.30),
                (900.0, 0.40),
                (1_100.0, 0.50),
                (1_870.0, 0.60),
                (3_160.0, 0.70),
                (10_000.0, 0.80),
                (400_000.0, 0.90),
                (3.16e6, 0.95),
                (1.0e8, 0.98),
                (1.0e9, 1.00),
            ],
        )
        .expect("static CDF is valid")
    }

    /// Distribution name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Samples one flow size in bytes.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// The `u`-quantile (inverse CDF), `u` in `[0, 1]`.
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0.round() as u64;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 == p0 {
                    return s1.round() as u64;
                }
                let frac = (u - p0) / (p1 - p0);
                return (s0 + frac * (s1 - s0)).round().max(1.0) as u64;
            }
        }
        self.points.last().expect("nonempty").0.round() as u64
    }

    /// Analytical mean of the (piecewise-linear) distribution, in bytes.
    pub fn mean_bytes(&self) -> f64 {
        let first = self.points[0];
        let mut mean = first.1 * first.0; // atom at the minimum size
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            mean += (p1 - p0) * (s0 + s1) / 2.0;
        }
        mean
    }

    /// Fraction of flows at or below `bytes` — e.g. the "short flow"
    /// share given a cutoff.
    pub fn fraction_below(&self, bytes: f64) -> f64 {
        let first = self.points[0];
        if bytes < first.0 {
            return 0.0;
        }
        let mut last = first;
        for &(s, p) in &self.points {
            if bytes < s {
                // Interpolate within (last, (s, p)).
                if s == last.0 {
                    return p;
                }
                let frac = (bytes - last.0) / (s - last.0);
                return last.1 + frac * (p - last.1);
            }
            last = (s, p);
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_uniform_basics() {
        let f = FlowSizeDist::fixed(5000);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(f.sample(&mut rng), 5000);
        assert!((f.mean_bytes() - 5000.0).abs() < 1e-9);

        let u = FlowSizeDist::uniform(100, 300);
        assert!((u.mean_bytes() - 200.0).abs() < 1e-9);
        for _ in 0..100 {
            let s = u.sample(&mut rng);
            assert!((100..=300).contains(&s));
        }
    }

    #[test]
    fn quantiles_hit_cdf_points() {
        let ws = FlowSizeDist::web_search();
        assert_eq!(ws.quantile(0.15), 6_000);
        assert_eq!(ws.quantile(0.80), 1_333_000);
        assert_eq!(ws.quantile(1.0), 30_000_000);
        // Below the first probability: the minimum size atom.
        assert_eq!(ws.quantile(0.01), 6_000);
    }

    #[test]
    fn web_search_mean_is_about_1_6_mb() {
        let m = FlowSizeDist::web_search().mean_bytes();
        assert!(m > 1.2e6 && m < 2.2e6, "mean {m}");
    }

    #[test]
    fn data_mining_is_heavier_tailed_than_web_search() {
        let dm = FlowSizeDist::data_mining();
        let ws = FlowSizeDist::web_search();
        // Median: data mining ~1.1 KB, web search ~43 KB.
        assert!(dm.quantile(0.5) < 2_000);
        assert!(ws.quantile(0.5) > 20_000);
        // Yet the data-mining tail is larger.
        assert!(dm.quantile(1.0) > ws.quantile(1.0));
    }

    #[test]
    fn sample_statistics_match_mean() {
        let ws = FlowSizeDist::web_search();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let total: f64 = (0..n).map(|_| ws.sample(&mut rng) as f64).sum();
        let emp = total / n as f64;
        let ana = ws.mean_bytes();
        assert!(
            (emp / ana - 1.0).abs() < 0.05,
            "empirical {emp} vs analytical {ana}"
        );
    }

    #[test]
    fn fraction_below_interpolates() {
        let ws = FlowSizeDist::web_search();
        assert_eq!(ws.fraction_below(1.0), 0.0);
        assert!((ws.fraction_below(6_000.0) - 0.15).abs() < 1e-9);
        assert!((ws.fraction_below(30_000_000.0) - 1.0).abs() < 1e-9);
        let mid = ws.fraction_below(9_500.0);
        assert!(mid > 0.15 && mid < 0.20);
    }

    #[test]
    fn invalid_cdfs_rejected() {
        assert!(FlowSizeDist::from_cdf("e", &[]).is_err());
        assert!(FlowSizeDist::from_cdf("e", &[(100.0, 0.5)]).is_err()); // doesn't end at 1
        assert!(FlowSizeDist::from_cdf("e", &[(100.0, 0.7), (50.0, 1.0)]).is_err()); // unsorted
        assert!(FlowSizeDist::from_cdf("e", &[(0.0, 1.0)]).is_err()); // zero size
        assert!(FlowSizeDist::from_cdf("e", &[(10.0, 1.2)]).is_err()); // bad prob
    }

    #[test]
    fn deterministic_sampling() {
        let ws = FlowSizeDist::web_search();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(ws.sample(&mut a), ws.sample(&mut b));
        }
    }
}
