//! Workload generation: composing arrivals, sizes, and spatial models
//! into concrete flow lists for the simulator.

use crate::dist::FlowSizeDist;
use crate::spatial::SpatialModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sorn_sim::{Flow, FlowId, Nanos};
use sorn_topology::NodeId;

/// A Poisson open-loop workload at a target offered load.
#[derive(Debug, Clone)]
pub struct PoissonWorkload {
    /// Number of source nodes.
    pub n: usize,
    /// Offered load per node as a fraction of node bandwidth (1.0 =
    /// every node offers its full line rate).
    pub load: f64,
    /// Node bandwidth in bytes per nanosecond (e.g. 16 uplinks at
    /// 100 Gb/s = 200 B/ns).
    pub node_bandwidth_bytes_per_ns: f64,
    /// Workload duration in nanoseconds.
    pub duration_ns: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonWorkload {
    /// Per-node flow arrival rate (flows per nanosecond) implied by the
    /// load and the mean flow size.
    pub fn arrival_rate(&self, dist: &FlowSizeDist) -> f64 {
        self.load * self.node_bandwidth_bytes_per_ns / dist.mean_bytes()
    }

    /// Generates the flow list: per-node Poisson arrivals, sizes from
    /// `dist`, destinations from `spatial`. Flows are sorted by arrival
    /// time and numbered densely.
    pub fn generate(&self, dist: &FlowSizeDist, spatial: &dyn SpatialModel) -> Vec<Flow> {
        assert!(self.load > 0.0, "load must be positive");
        assert!(self.node_bandwidth_bytes_per_ns > 0.0);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rate = self.arrival_rate(dist);
        let mut flows = Vec::new();
        for src in 0..self.n as u32 {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival gap.
                let u: f64 = rng.gen::<f64>().max(1e-300);
                t += -u.ln() / rate;
                if t >= self.duration_ns as f64 {
                    break;
                }
                let src = NodeId(src);
                let dst = spatial.pick_dst(src, &mut rng);
                flows.push(Flow {
                    id: FlowId(0), // renumbered below
                    src,
                    dst,
                    size_bytes: dist.sample(&mut rng),
                    arrival_ns: t as Nanos,
                });
            }
        }
        flows.sort_by_key(|f| (f.arrival_ns, f.src.0, f.dst.0, f.size_bytes));
        for (i, f) in flows.iter_mut().enumerate() {
            f.id = FlowId(i as u64);
        }
        flows
    }
}

/// Summary statistics of a flow list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadStats {
    /// Number of flows.
    pub flows: usize,
    /// Total bytes across flows.
    pub total_bytes: u64,
    /// Mean flow size in bytes.
    pub mean_bytes: f64,
    /// Measured offered load per node (fraction of node bandwidth),
    /// given the bandwidth and duration used at generation.
    pub offered_load: f64,
}

/// Computes summary statistics for a generated flow list.
pub fn stats(
    flows: &[Flow],
    n: usize,
    node_bandwidth_bytes_per_ns: f64,
    duration_ns: Nanos,
) -> WorkloadStats {
    let total_bytes: u64 = flows.iter().map(|f| f.size_bytes).sum();
    let mean = if flows.is_empty() {
        0.0
    } else {
        total_bytes as f64 / flows.len() as f64
    };
    let capacity = n as f64 * node_bandwidth_bytes_per_ns * duration_ns as f64;
    WorkloadStats {
        flows: flows.len(),
        total_bytes,
        mean_bytes: mean,
        offered_load: if capacity > 0.0 {
            total_bytes as f64 / capacity
        } else {
            0.0
        },
    }
}

/// Measured intra-clique byte fraction of a flow list (the empirical
/// locality ratio `x` of §3).
pub fn measured_locality(flows: &[Flow], cliques: &sorn_topology::CliqueMap) -> f64 {
    let mut intra = 0u64;
    let mut total = 0u64;
    for f in flows {
        total += f.size_bytes;
        if cliques.same_clique(f.src, f.dst) {
            intra += f.size_bytes;
        }
    }
    if total == 0 {
        0.0
    } else {
        intra as f64 / total as f64
    }
}

/// Builds an empirical node-to-node demand matrix (rows normalized so the
/// busiest node offers 1.0) from a flow list.
pub fn empirical_matrix(flows: &[Flow], n: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0f64; n]; n];
    for f in flows {
        if f.src != f.dst {
            m[f.src.index()][f.dst.index()] += f.size_bytes as f64;
        }
    }
    let max_row: f64 = m.iter().map(|r| r.iter().sum::<f64>()).fold(0.0, f64::max);
    if max_row > 0.0 {
        for row in &mut m {
            for v in row.iter_mut() {
                *v /= max_row;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::{CliqueLocal, Uniform};
    use sorn_topology::CliqueMap;

    fn workload() -> PoissonWorkload {
        PoissonWorkload {
            n: 16,
            load: 0.3,
            node_bandwidth_bytes_per_ns: 12.5, // 100 Gb/s
            duration_ns: 1_000_000,            // 1 ms
            seed: 3,
        }
    }

    #[test]
    fn offered_load_matches_target() {
        let w = workload();
        let dist = FlowSizeDist::fixed(10_000);
        let flows = w.generate(&dist, &Uniform::new(16));
        let s = stats(&flows, 16, w.node_bandwidth_bytes_per_ns, w.duration_ns);
        assert!(
            (s.offered_load / 0.3 - 1.0).abs() < 0.1,
            "offered load {} vs target 0.3",
            s.offered_load
        );
        assert!((s.mean_bytes - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn flows_are_sorted_and_densely_numbered() {
        let w = workload();
        let flows = w.generate(&FlowSizeDist::fixed(1000), &Uniform::new(16));
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(f.id, FlowId(i as u64));
            assert!(f.arrival_ns < w.duration_ns);
            assert_ne!(f.src, f.dst);
            if i > 0 {
                assert!(flows[i - 1].arrival_ns <= f.arrival_ns);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let w = workload();
        let a = w.generate(&FlowSizeDist::web_search(), &Uniform::new(16));
        let b = w.generate(&FlowSizeDist::web_search(), &Uniform::new(16));
        assert_eq!(a, b);
    }

    #[test]
    fn locality_measurement_tracks_spatial_model() {
        let map = CliqueMap::contiguous(16, 4);
        let w = PoissonWorkload {
            n: 16,
            load: 0.5,
            node_bandwidth_bytes_per_ns: 12.5,
            duration_ns: 4_000_000,
            seed: 11,
        };
        let flows = w.generate(
            &FlowSizeDist::fixed(5_000),
            &CliqueLocal::new(map.clone(), 0.6),
        );
        let x = measured_locality(&flows, &map);
        assert!((x - 0.6).abs() < 0.05, "measured locality {x}");
    }

    #[test]
    fn empirical_matrix_normalizes_busiest_row() {
        let w = workload();
        let flows = w.generate(&FlowSizeDist::fixed(1000), &Uniform::new(16));
        let m = empirical_matrix(&flows, 16);
        let max_row: f64 = m.iter().map(|r| r.iter().sum::<f64>()).fold(0.0, f64::max);
        assert!((max_row - 1.0).abs() < 1e-9);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
        }
    }

    #[test]
    fn empty_flow_list_stats() {
        let s = stats(&[], 4, 1.0, 100);
        assert_eq!(s.flows, 0);
        assert_eq!(s.offered_load, 0.0);
        let map = CliqueMap::contiguous(4, 2);
        assert_eq!(measured_locality(&[], &map), 0.0);
    }
}
