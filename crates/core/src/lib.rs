//! # sorn-core
//!
//! The primary contribution of *"Semi-Oblivious Reconfigurable Datacenter
//! Networks"* (HotNets '24): a circuit-switched datacenter fabric that is
//! oblivious at fine time scales — a fixed schedule of matchings, VLB-
//! style routing, no per-flow control loop — but periodically re-balances
//! its schedule to match *macro-scale* traffic structure: spatial
//! locality within cliques of nodes and aggregated inter-clique demand.
//!
//! The crate exposes:
//!
//! - [`SornConfig`] / [`SornNetwork`]: build a semi-oblivious network
//!   (clique map + schedule + router) and evaluate it three ways —
//!   closed-form analysis, exact flow-level throughput, and packet
//!   simulation.
//! - [`model`]: §4's formulas (`q* = 2/(1−x)`, `r = 1/(3−x)`, intrinsic
//!   latency `δm`), including both published variants of the
//!   inter-clique latency (see the module docs for the discrepancy).
//! - [`baselines`]: closed-form Table 1 rows for Sirius-style 1D ORNs,
//!   h-dimensional optimal ORNs, and Opera.
//! - [`nic`]: Figure 2(c)'s node hardware state and the §5 schedule-
//!   update semantics (fixed neighbor superset, drain accounting).
//!
//! ## Quickstart
//!
//! ```
//! use sorn_core::{SornConfig, SornNetwork};
//!
//! // 128 racks in 8 cliques, 56% expected locality (the paper's median).
//! let net = SornNetwork::build(SornConfig::small(128, 8, 0.56)).unwrap();
//! let analysis = net.analysis();
//! assert!((analysis.throughput - 1.0 / (3.0 - 0.56)).abs() < 1e-9);
//!
//! // Exact flow-level worst-case throughput at the same locality.
//! let fl = net.flow_throughput(0.56).unwrap();
//! assert!(fl.throughput >= analysis.throughput - 1e-9);
//! ```

#![warn(missing_docs)]

pub mod baselines;
mod config;
pub mod hierarchy;
pub mod model;
mod network;
pub mod nic;

pub use config::{CoreError, SornConfig};
pub use hierarchy::HierarchyModel;
pub use model::InterCliqueLatencyModel;
pub use network::{SornAnalysis, SornNetwork};
