//! Node (NIC) hardware state and schedule updates — Figure 2(c), §5.
//!
//! In a Sirius-like deployment the circuit schedule lives entirely at the
//! nodes: each NIC stores, per time slot, which wavelength to emit (i.e.
//! which neighbor the slot reaches) and keeps per-neighbor queues. §5
//! argues updates are cheap because the semi-oblivious abstraction keeps
//! a *fixed superset of neighbors* per node and only rebalances how many
//! slots each neighbor gets; queues never need to be created or destroyed
//! for rebalance-only updates, and drain work is limited to neighbors
//! whose slot share went to zero.

use sorn_topology::{CircuitSchedule, NodeId};
use std::collections::BTreeMap;

/// Per-neighbor NIC state: which slots of the schedule reach it and how
/// much traffic is queued toward it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborState {
    /// Slot indices (within the schedule period) whose circuit goes to
    /// this neighbor.
    pub slots: Vec<u32>,
    /// Cells currently queued for this neighbor.
    pub queued_cells: u64,
}

/// What a schedule update did to one node's NIC state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicUpdateReport {
    /// Neighbors that gained a queue (violate the fixed-superset goal).
    pub added: Vec<NodeId>,
    /// Neighbors whose slot share dropped to zero.
    pub removed: Vec<NodeId>,
    /// Neighbors present before and after.
    pub retained: usize,
    /// Cells that were queued toward removed neighbors and must drain or
    /// re-route.
    pub drained_cells: u64,
}

impl NicUpdateReport {
    /// True when the update only rebalanced bandwidth over the existing
    /// neighbor superset — the cheap case §5 designs for.
    pub fn is_rebalance_only(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// The schedule-related state of one node's NIC (Figure 2(c)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicState {
    node: NodeId,
    /// Schedule version, bumped on every applied update.
    version: u64,
    period: u32,
    neighbors: BTreeMap<u32, NeighborState>,
}

impl NicState {
    /// Extracts the NIC state of `node` from a schedule.
    pub fn from_schedule(schedule: &CircuitSchedule, node: NodeId) -> Self {
        let mut neighbors: BTreeMap<u32, NeighborState> = BTreeMap::new();
        for t in 0..schedule.period() as u64 {
            if let Some(d) = schedule.dst_at(t, node) {
                neighbors
                    .entry(d.0)
                    .or_insert_with(|| NeighborState {
                        slots: Vec::new(),
                        queued_cells: 0,
                    })
                    .slots
                    .push(t as u32);
            }
        }
        NicState {
            node,
            version: 0,
            period: schedule.period() as u32,
            neighbors,
        }
    }

    /// The node this state belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current schedule version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Schedule period this state was built against.
    pub fn period(&self) -> u32 {
        self.period
    }

    /// Number of neighbors with at least one slot.
    pub fn neighbor_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbor state, if present.
    pub fn neighbor(&self, n: NodeId) -> Option<&NeighborState> {
        self.neighbors.get(&n.0)
    }

    /// Fraction of the period allotted to `n`.
    pub fn bandwidth_share(&self, n: NodeId) -> f64 {
        self.neighbor(n)
            .map(|s| s.slots.len() as f64 / self.period as f64)
            .unwrap_or(0.0)
    }

    /// Records queued traffic toward a neighbor (test/telemetry hook;
    /// the simulator keeps its own authoritative queues).
    pub fn set_queue_depth(&mut self, n: NodeId, cells: u64) {
        if let Some(s) = self.neighbors.get_mut(&n.0) {
            s.queued_cells = cells;
        }
    }

    /// Applies a new schedule, returning what changed. Queue depths carry
    /// over for retained neighbors; drained cells are counted for
    /// removed ones.
    pub fn apply_update(&mut self, new_schedule: &CircuitSchedule) -> NicUpdateReport {
        let fresh = NicState::from_schedule(new_schedule, self.node);
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let mut retained = 0;
        let mut drained = 0;

        for (&n, old) in &self.neighbors {
            if fresh.neighbors.contains_key(&n) {
                retained += 1;
            } else {
                removed.push(NodeId(n));
                drained += old.queued_cells;
            }
        }
        for &n in fresh.neighbors.keys() {
            if !self.neighbors.contains_key(&n) {
                added.push(NodeId(n));
            }
        }

        // Install, carrying queue depths for retained neighbors.
        let mut installed = fresh.neighbors;
        for (n, s) in &mut installed {
            if let Some(old) = self.neighbors.get(n) {
                s.queued_cells = old.queued_cells;
            }
        }
        self.neighbors = installed;
        self.period = new_schedule.period() as u32;
        self.version += 1;

        NicUpdateReport {
            added,
            removed,
            retained,
            drained_cells: drained,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
    use sorn_topology::{CliqueMap, Ratio};

    fn topology(q: u64) -> CircuitSchedule {
        let map = CliqueMap::contiguous(8, 2);
        sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(q))).unwrap()
    }

    #[test]
    fn state_reflects_schedule_slots() {
        let s = topology(3);
        let nic = NicState::from_schedule(&s, NodeId(0));
        // Topology A: neighbors 1,2,3 (intra) and 4 (inter), 1 slot each.
        assert_eq!(nic.neighbor_count(), 4);
        assert_eq!(nic.period(), 4);
        for n in [1u32, 2, 3, 4] {
            assert!((nic.bandwidth_share(NodeId(n)) - 0.25).abs() < 1e-12);
        }
        assert_eq!(nic.bandwidth_share(NodeId(6)), 0.0);
    }

    #[test]
    fn rebalance_keeps_neighbor_superset() {
        // q=3 -> q=1 over the same cliques only rebalances slot shares.
        let mut nic = NicState::from_schedule(&topology(3), NodeId(0));
        nic.set_queue_depth(NodeId(1), 10);
        let report = nic.apply_update(&topology(1));
        assert!(report.is_rebalance_only(), "{report:?}");
        assert_eq!(report.retained, 4);
        assert_eq!(report.drained_cells, 0);
        // Queue depth carried over; version bumped.
        assert_eq!(nic.neighbor(NodeId(1)).unwrap().queued_cells, 10);
        assert_eq!(nic.version(), 1);
        // q=1 topology: intra 3 slots over shifts 1..3 plus inter 3 slots
        // => share of each intra neighbor 1/6... intra total = inter total.
        let intra: f64 = (1..4).map(|n| nic.bandwidth_share(NodeId(n))).sum();
        let inter = nic.bandwidth_share(NodeId(4));
        assert!((intra - inter).abs() < 1e-12);
    }

    #[test]
    fn restructure_reports_added_and_removed() {
        // Moving from 2 cliques of 4 to the flat round robin adds the
        // neighbors node 0 never had (5, 6, 7).
        let mut nic = NicState::from_schedule(&topology(3), NodeId(0));
        nic.set_queue_depth(NodeId(4), 7);
        let flat = round_robin(8).unwrap();
        let report = nic.apply_update(&flat);
        assert!(!report.is_rebalance_only());
        assert_eq!(report.added, vec![NodeId(5), NodeId(6), NodeId(7)]);
        assert!(report.removed.is_empty());
        assert_eq!(report.retained, 4);
        assert_eq!(report.drained_cells, 0);
        assert_eq!(nic.neighbor_count(), 7);
    }

    #[test]
    fn removed_neighbors_count_drained_cells() {
        // Flat -> cliques: node 0 loses neighbors 5..7.
        let flat = round_robin(8).unwrap();
        let mut nic = NicState::from_schedule(&flat, NodeId(0));
        nic.set_queue_depth(NodeId(6), 5);
        nic.set_queue_depth(NodeId(2), 3);
        let report = nic.apply_update(&topology(3));
        assert_eq!(report.removed, vec![NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(report.drained_cells, 5);
        // Retained neighbor keeps its queue.
        assert_eq!(nic.neighbor(NodeId(2)).unwrap().queued_cells, 3);
    }
}
