//! SORN network configuration.

use crate::model::{ideal_q, InterCliqueLatencyModel};
use sorn_topology::{Ratio, TopologyError};
use std::fmt;

/// Errors building a SORN network.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Configuration parameter out of domain.
    InvalidConfig(String),
    /// Underlying topology construction failed.
    Topology(TopologyError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(m) => write!(f, "invalid SORN config: {m}"),
            CoreError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

/// Configuration of a semi-oblivious reconfigurable network.
#[derive(Debug, Clone)]
pub struct SornConfig {
    /// Number of nodes (ToRs or hosts).
    pub n: usize,
    /// Number of equal-sized cliques (`Nc`); must divide `n`.
    pub cliques: usize,
    /// Expected intra-clique traffic fraction `x`, used to derive the
    /// ideal oversubscription when `q` is `None`.
    pub locality: f64,
    /// Explicit oversubscription ratio; `None` selects `q* = 2/(1−x)`.
    pub q: Option<Ratio>,
    /// Uplinks (staggered OCS planes) per node.
    pub uplinks: usize,
    /// Slot duration in nanoseconds.
    pub slot_ns: u64,
    /// Per-hop propagation delay in nanoseconds.
    pub propagation_ns: u64,
    /// Which published δm formula the analysis uses for inter-clique
    /// latency (see `model` module docs).
    pub inter_latency_model: InterCliqueLatencyModel,
    /// Threads the packet engine shards each slot across
    /// (`SimConfig::engine_threads`); `1` is the serial path, and any
    /// value yields bit-identical results.
    pub engine_threads: usize,
    /// Causal flow tracing (`SimConfig::trace_one_in`): trace roughly
    /// one flow in this many; `0` disables tracing.
    pub trace_one_in: u64,
}

impl SornConfig {
    /// A configuration with the paper's deployment constants (100 ns
    /// slots, 500 ns propagation, 16 uplinks, x = 0.56).
    pub fn paper_reference(n: usize, cliques: usize) -> Self {
        SornConfig {
            n,
            cliques,
            locality: 0.56,
            q: None,
            uplinks: 16,
            slot_ns: 100,
            propagation_ns: 500,
            inter_latency_model: InterCliqueLatencyModel::Table,
            engine_threads: 1,
            trace_one_in: 0,
        }
    }

    /// A small configuration convenient for tests and examples: one
    /// uplink, default timing.
    pub fn small(n: usize, cliques: usize, locality: f64) -> Self {
        SornConfig {
            n,
            cliques,
            locality,
            q: None,
            uplinks: 1,
            slot_ns: 100,
            propagation_ns: 500,
            inter_latency_model: InterCliqueLatencyModel::Table,
            engine_threads: 1,
            trace_one_in: 0,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.n < 2 {
            return Err(CoreError::InvalidConfig("need at least 2 nodes".into()));
        }
        if self.cliques == 0 || !self.n.is_multiple_of(self.cliques) {
            return Err(CoreError::InvalidConfig(format!(
                "clique count {} must divide node count {}",
                self.cliques, self.n
            )));
        }
        if !(0.0..1.0).contains(&self.locality) {
            return Err(CoreError::InvalidConfig(format!(
                "locality {} must be in [0,1)",
                self.locality
            )));
        }
        if let Some(q) = self.q {
            if q.to_f64() <= 0.0 {
                return Err(CoreError::InvalidConfig("q must be positive".into()));
            }
        }
        if self.uplinks == 0 {
            return Err(CoreError::InvalidConfig("need at least one uplink".into()));
        }
        if self.slot_ns == 0 {
            return Err(CoreError::InvalidConfig("slot must be positive".into()));
        }
        Ok(())
    }

    /// Clique size `C = n / Nc`.
    pub fn clique_size(&self) -> usize {
        self.n / self.cliques
    }

    /// The oversubscription ratio in effect: the explicit `q` if set,
    /// otherwise the throughput-optimal `q* = 2/(1−x)` approximated to a
    /// rational with denominator ≤ 1000.
    pub fn effective_q(&self) -> Ratio {
        self.q
            .unwrap_or_else(|| Ratio::approximate(ideal_q(self.locality), 1000))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_validates() {
        let c = SornConfig::paper_reference(4096, 64);
        c.validate().unwrap();
        assert_eq!(c.clique_size(), 64);
        let q = c.effective_q();
        assert_eq!((q.num(), q.den()), (50, 11));
    }

    #[test]
    fn explicit_q_wins() {
        let mut c = SornConfig::small(8, 2, 0.5);
        c.q = Some(Ratio::integer(3));
        assert_eq!(c.effective_q(), Ratio::integer(3));
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(SornConfig::small(1, 1, 0.5).validate().is_err());
        assert!(SornConfig::small(10, 3, 0.5).validate().is_err());
        assert!(SornConfig::small(8, 2, 1.0).validate().is_err());
        let mut c = SornConfig::small(8, 2, 0.5);
        c.uplinks = 0;
        assert!(c.validate().is_err());
        let mut c = SornConfig::small(8, 2, 0.5);
        c.slot_ns = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_display_and_source() {
        let e = CoreError::InvalidConfig("boom".into());
        assert!(e.to_string().contains("boom"));
        let te: CoreError = TopologyError::EmptySchedule.into();
        assert!(te.to_string().contains("no slots"));
        use std::error::Error;
        assert!(te.source().is_some());
    }
}
