//! `SornNetwork`: the assembled semi-oblivious network.
//!
//! Ties a [`SornConfig`] to its clique map, circuit schedule, and router,
//! and offers the three evaluations the paper performs: closed-form
//! analysis (Table 1), flow-level worst-case throughput (Figure 2(f)),
//! and packet simulation.

use crate::config::{CoreError, SornConfig};
use crate::model;
use sorn_routing::{evaluate, DemandMatrix, SornPaths, SornRouter, ThroughputReport};
use sorn_sim::{
    Engine, Flow, Metrics, NoopProbe, NoopProfiler, Probe, Profiler, SimConfig, SimError,
};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap};

/// Closed-form analysis of a SORN configuration (one Table 1 block).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SornAnalysis {
    /// Oversubscription ratio in effect.
    pub q: f64,
    /// Intra-clique intrinsic latency, slots.
    pub intra_delta_m: f64,
    /// Inter-clique intrinsic latency, slots.
    pub inter_delta_m: f64,
    /// Intra-clique worst-case single-packet latency, nanoseconds.
    pub intra_latency_ns: f64,
    /// Inter-clique worst-case single-packet latency, nanoseconds.
    pub inter_latency_ns: f64,
    /// Worst-case throughput `r`.
    pub throughput: f64,
    /// Mean hops (= normalized bandwidth cost).
    pub mean_hops: f64,
}

/// An assembled semi-oblivious reconfigurable network.
#[derive(Debug, Clone)]
pub struct SornNetwork {
    config: SornConfig,
    cliques: CliqueMap,
    schedule: CircuitSchedule,
    router: SornRouter,
}

impl SornNetwork {
    /// Builds the network: validates the config, lays out contiguous
    /// cliques, constructs the clique schedule at the effective `q`, and
    /// instantiates the router.
    pub fn build(config: SornConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let cliques = CliqueMap::contiguous(config.n, config.cliques);
        let params = SornScheduleParams::with_q(config.effective_q());
        let schedule = sorn_schedule(&cliques, &params)?;
        let router = SornRouter::new(cliques.clone());
        Ok(SornNetwork {
            config,
            cliques,
            schedule,
            router,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SornConfig {
        &self.config
    }

    /// The clique assignment.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }

    /// The circuit schedule.
    pub fn schedule(&self) -> &CircuitSchedule {
        &self.schedule
    }

    /// The router.
    pub fn router(&self) -> &SornRouter {
        &self.router
    }

    /// Closed-form analysis (§4's formulas at this configuration).
    pub fn analysis(&self) -> SornAnalysis {
        let q = self.config.effective_q().to_f64();
        let c = self.config.clique_size();
        let nc = self.config.cliques;
        let x = self.config.locality;
        let intra = model::intra_delta_m(q, c);
        let inter = model::inter_delta_m(q, nc, c, self.config.inter_latency_model);
        SornAnalysis {
            q,
            intra_delta_m: intra,
            inter_delta_m: inter,
            intra_latency_ns: model::min_latency_ns(
                intra,
                2,
                self.config.slot_ns as f64,
                self.config.propagation_ns as f64,
                self.config.uplinks,
            ),
            inter_latency_ns: model::min_latency_ns(
                inter,
                3,
                self.config.slot_ns as f64,
                self.config.propagation_ns as f64,
                self.config.uplinks,
            ),
            throughput: model::throughput(q, x),
            mean_hops: model::mean_hops(x),
        }
    }

    /// Exact flow-level worst-case throughput under a clique-local demand
    /// with locality `x` (a Figure 2(f) point).
    pub fn flow_throughput(&self, x: f64) -> Result<ThroughputReport, CoreError> {
        let demand = DemandMatrix::clique_local(&self.cliques, x);
        let topo = self.schedule.logical_topology();
        let model = SornPaths::new(self.cliques.clone());
        evaluate(&topo, &model, &demand)
            .map_err(|e| CoreError::InvalidConfig(format!("flow-level evaluation failed: {e}")))
    }

    /// Exact flow-level throughput for an arbitrary demand matrix.
    pub fn flow_throughput_for(
        &self,
        demand: &DemandMatrix,
    ) -> Result<ThroughputReport, CoreError> {
        let topo = self.schedule.logical_topology();
        let model = SornPaths::new(self.cliques.clone());
        evaluate(&topo, &model, demand)
            .map_err(|e| CoreError::InvalidConfig(format!("flow-level evaluation failed: {e}")))
    }

    /// Packet-simulates the given flows until drained (or `max_slots`),
    /// returning the metrics. `seed` controls routing randomness.
    pub fn simulate(
        &self,
        flows: Vec<Flow>,
        seed: u64,
        max_slots: u64,
    ) -> Result<(Metrics, bool), SimError> {
        let (metrics, drained, NoopProbe) =
            self.simulate_with_probe(flows, seed, max_slots, NoopProbe)?;
        Ok((metrics, drained))
    }

    /// Like [`SornNetwork::simulate`], but with a telemetry probe
    /// observing the run. Fires the probe's run-end hook after the last
    /// slot and hands the probe back alongside the metrics.
    pub fn simulate_with_probe<P: Probe>(
        &self,
        flows: Vec<Flow>,
        seed: u64,
        max_slots: u64,
        probe: P,
    ) -> Result<(Metrics, bool, P), SimError> {
        self.simulate_instrumented(flows, seed, max_slots, probe, NoopProfiler)
            .map(|(metrics, drained, probe, NoopProfiler)| (metrics, drained, probe))
    }

    /// Like [`SornNetwork::simulate_with_probe`], but also attaches a
    /// self-profiler to the engine's scoped phase timers. Hands both
    /// instruments back so the caller can read the phase breakdown.
    pub fn simulate_instrumented<P: Probe, F: Profiler>(
        &self,
        flows: Vec<Flow>,
        seed: u64,
        max_slots: u64,
        probe: P,
        profiler: F,
    ) -> Result<(Metrics, bool, P, F), SimError> {
        let cfg = SimConfig {
            slot_ns: self.config.slot_ns,
            propagation_ns: self.config.propagation_ns,
            uplinks: self.config.uplinks,
            seed,
            engine_threads: self.config.engine_threads,
            trace_one_in: self.config.trace_one_in,
            ..SimConfig::default()
        };
        let mut engine =
            Engine::with_probe_and_profiler(cfg, &self.schedule, &self.router, probe, profiler);
        engine.add_flows(flows)?;
        let drained = engine.run_until_drained(max_slots)?;
        let metrics = engine.metrics().clone();
        let profiler = engine.profiler().clone();
        Ok((metrics, drained, engine.finish(), profiler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;
    use sorn_topology::{NodeId, Ratio};

    fn topology_a_network() -> SornNetwork {
        let mut cfg = SornConfig::small(8, 2, 0.5);
        cfg.q = Some(Ratio::integer(3));
        SornNetwork::build(cfg).unwrap()
    }

    #[test]
    fn build_produces_consistent_components() {
        let net = topology_a_network();
        assert_eq!(net.schedule().period(), 4);
        assert_eq!(net.cliques().cliques(), 2);
        assert_eq!(net.router().cliques().n(), 8);
    }

    #[test]
    fn analysis_matches_model_formulas() {
        let net = topology_a_network();
        let a = net.analysis();
        assert!((a.q - 3.0).abs() < 1e-12);
        // intra δm = (4/3)*3 = 4 slots.
        assert!((a.intra_delta_m - 4.0).abs() < 1e-12);
        // Table variant: 3*1 + 4 = 7 slots.
        assert!((a.inter_delta_m - 7.0).abs() < 1e-12);
        // 1 uplink: intra latency = 4*100 + 2*500 = 1400 ns.
        assert!((a.intra_latency_ns - 1400.0).abs() < 1e-9);
        assert!((a.inter_latency_ns - (700.0 + 1500.0)).abs() < 1e-9);
    }

    #[test]
    fn flow_throughput_beats_one_third_at_zero_locality() {
        let cfg = SornConfig::small(16, 4, 0.0);
        let net = SornNetwork::build(cfg).unwrap();
        let rep = net.flow_throughput(0.0).unwrap();
        assert!(rep.throughput >= 1.0 / 3.0 - 1e-9, "r = {}", rep.throughput);
    }

    #[test]
    fn simulate_delivers_everything() {
        let net = topology_a_network();
        let flows = vec![
            Flow {
                id: FlowId(0),
                src: NodeId(0),
                dst: NodeId(2),
                size_bytes: 3 * 1250,
                arrival_ns: 0,
            },
            Flow {
                id: FlowId(1),
                src: NodeId(1),
                dst: NodeId(6),
                size_bytes: 2 * 1250,
                arrival_ns: 100,
            },
        ];
        let (m, drained) = net.simulate(flows, 42, 10_000).unwrap();
        assert!(drained);
        assert_eq!(m.flows.len(), 2);
        assert_eq!(m.delivered_cells, 5);
    }

    #[test]
    fn build_rejects_invalid_configs() {
        assert!(SornNetwork::build(SornConfig::small(10, 3, 0.5)).is_err());
    }

    #[test]
    fn default_q_is_locality_optimal() {
        let cfg = SornConfig::small(32, 4, 0.5);
        let net = SornNetwork::build(cfg).unwrap();
        assert!((net.analysis().q - 4.0).abs() < 1e-12);
        assert!((net.analysis().throughput - 0.4).abs() < 1e-12);
    }
}
