//! Closed-form model for multi-level hierarchical SORNs.
//!
//! Generalizes §4's two-level analysis. Define the *traffic profile*
//! `x[l]` = fraction of demand whose highest differing level is `l`
//! (so `x[0]` is innermost-group-local traffic and `sum x = 1`).
//! Routing takes `l + 2` hops for class-`l` traffic (one spray, then one
//! correction per level from `l` down to 0, all assumed to differ in the
//! worst case), so:
//!
//! - mean hops (= normalized bandwidth cost) `H = 2 + Σ l·x[l]`;
//! - level-`j` links carry load `2` for `j = 0` (every cell sprays and
//!   takes a final level-0 correction) and `Σ_{l ≥ j} x[l]` for `j ≥ 1`;
//! - splitting bandwidth in proportion to those loads is
//!   throughput-optimal and gives `r* = 1/H` — for two levels this is
//!   exactly the paper's `q* = 2/(1 − x)` and `r* = 1/(3 − x)`.

use crate::config::CoreError;
use sorn_topology::builders::HierarchySpec;

/// The hierarchical generalization of the §4 model.
///
/// ```
/// use sorn_core::HierarchyModel;
///
/// // The paper's two-level design at the production-median locality:
/// let m = HierarchyModel::two_level(64, 64, 0.56).unwrap();
/// assert!((m.optimal_throughput() - 1.0 / (3.0 - 0.56)).abs() < 1e-12);
///
/// // Three levels: throughput 1/(2 + sum l*x_l).
/// let m3 = HierarchyModel::new(vec![16, 16, 16], vec![0.5, 0.3, 0.2]).unwrap();
/// assert!((m3.optimal_throughput() - 1.0 / 2.7).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchyModel {
    /// Branching factor per level, innermost first.
    pub radices: Vec<usize>,
    /// Traffic profile: fraction of demand per highest-differing level.
    pub profile: Vec<f64>,
}

impl HierarchyModel {
    /// Builds and validates the model.
    pub fn new(radices: Vec<usize>, profile: Vec<f64>) -> Result<Self, CoreError> {
        if radices.len() != profile.len() || radices.is_empty() {
            return Err(CoreError::InvalidConfig(
                "need one profile entry per level".into(),
            ));
        }
        if radices.iter().any(|&b| b < 2) {
            return Err(CoreError::InvalidConfig("radices must be >= 2".into()));
        }
        if profile.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
            return Err(CoreError::InvalidConfig("profile entries in [0,1]".into()));
        }
        let total: f64 = profile.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(CoreError::InvalidConfig(format!(
                "profile must sum to 1, got {total}"
            )));
        }
        Ok(HierarchyModel { radices, profile })
    }

    /// The two-level model of the paper: locality ratio `x` intra-clique.
    pub fn two_level(clique_size: usize, cliques: usize, x: f64) -> Result<Self, CoreError> {
        HierarchyModel::new(vec![clique_size, cliques], vec![x, 1.0 - x])
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.radices.len()
    }

    /// Mean hops `2 + Σ l·x[l]` (= normalized bandwidth cost).
    pub fn mean_hops(&self) -> f64 {
        2.0 + self
            .profile
            .iter()
            .enumerate()
            .map(|(l, &x)| l as f64 * x)
            .sum::<f64>()
    }

    /// Worst-case load on level-`j` links at unit demand.
    pub fn level_load(&self, j: usize) -> f64 {
        if j == 0 {
            2.0
        } else {
            self.profile[j..].iter().sum()
        }
    }

    /// Throughput-optimal bandwidth share per level (`w[j] ∝ load[j]`).
    pub fn optimal_weights(&self) -> Vec<f64> {
        let loads: Vec<f64> = (0..self.levels()).map(|j| self.level_load(j)).collect();
        let total: f64 = loads.iter().sum();
        loads.into_iter().map(|l| l / total).collect()
    }

    /// Worst-case throughput at the optimal split: `1 / mean_hops`.
    pub fn optimal_throughput(&self) -> f64 {
        1.0 / self.mean_hops()
    }

    /// Worst-case throughput for an arbitrary bandwidth split `w`
    /// (fractions summing to 1): `min_j w[j] / load[j]`.
    pub fn throughput_for_weights(&self, w: &[f64]) -> Result<f64, CoreError> {
        if w.len() != self.levels() {
            return Err(CoreError::InvalidConfig("one weight per level".into()));
        }
        let mut r = f64::INFINITY;
        for (j, &wj) in w.iter().enumerate() {
            if wj <= 0.0 {
                return Err(CoreError::InvalidConfig("weights must be positive".into()));
            }
            r = r.min(wj / self.level_load(j));
        }
        Ok(r)
    }

    /// Intrinsic latency (slots) for class-`l` traffic at the optimal
    /// split: one targeted hop per level `j ≤ l`, each waiting through
    /// `(b_j − 1)/w[j]` circuits; the spray hop is free.
    pub fn class_delta_m(&self, l: usize) -> f64 {
        let w = self.optimal_weights();
        (0..=l).map(|j| (self.radices[j] as f64 - 1.0) / w[j]).sum()
    }

    /// Integer slot weights for the schedule builder, approximating the
    /// optimal split with denominator `resolution`.
    pub fn schedule_weights(&self, resolution: u64) -> Vec<u64> {
        self.optimal_weights()
            .iter()
            .map(|&w| ((w * resolution as f64).round() as u64).max(1))
            .collect()
    }

    /// A [`HierarchySpec`] at the optimal split.
    pub fn spec(&self, resolution: u64) -> Result<HierarchySpec, CoreError> {
        HierarchySpec::new(self.radices.clone(), self.schedule_weights(resolution))
            .map_err(CoreError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;

    #[test]
    fn two_levels_reduce_to_the_paper() {
        let x = 0.56;
        let m = HierarchyModel::two_level(64, 64, x).unwrap();
        // Mean hops = 3 - x; throughput = 1/(3-x).
        assert!((m.mean_hops() - (3.0 - x)).abs() < 1e-12);
        assert!((m.optimal_throughput() - model::optimal_throughput(x)).abs() < 1e-12);
        // Optimal weights = (q, 1)/(q+1) with q = 2/(1-x).
        let w = m.optimal_weights();
        let q = w[0] / w[1];
        assert!((q - model::ideal_q(x)).abs() < 1e-9);
        // Class-0 delta_m matches the paper's intra formula.
        assert!((m.class_delta_m(0) - model::intra_delta_m(q, 64)).abs() < 1e-6);
        // Class-1 delta_m matches the Text-variant inter formula.
        let expect = model::inter_delta_m(q, 64, 64, model::InterCliqueLatencyModel::Text);
        assert!(
            (m.class_delta_m(1) - expect).abs() < 1e-6,
            "{} vs {}",
            m.class_delta_m(1),
            expect
        );
    }

    #[test]
    fn three_levels_beat_two_on_latency_for_local_traffic() {
        // 4096 nodes as 64x64 (two-level) or 16x16x16 (three-level) with
        // strongly local traffic.
        let two = HierarchyModel::two_level(64, 64, 0.56).unwrap();
        let three = HierarchyModel::new(vec![16, 16, 16], vec![0.56, 0.24, 0.2]).unwrap();
        // Innermost-class latency: much shorter round robin at level 0.
        assert!(three.class_delta_m(0) < two.class_delta_m(0));
        // But the deepest class pays more hops: throughput dips slightly.
        assert!(three.optimal_throughput() < two.optimal_throughput());
        assert!(three.optimal_throughput() > 1.0 / 4.0);
    }

    #[test]
    fn optimal_weights_are_the_argmax() {
        let m = HierarchyModel::new(vec![8, 4, 4], vec![0.5, 0.3, 0.2]).unwrap();
        let best = m.throughput_for_weights(&m.optimal_weights()).unwrap();
        assert!((best - m.optimal_throughput()).abs() < 1e-12);
        // Perturbations only lose throughput.
        for delta in [-0.05f64, 0.05] {
            let mut w = m.optimal_weights();
            w[0] += delta;
            w[1] -= delta;
            if w.iter().all(|&v| v > 0.0) {
                assert!(m.throughput_for_weights(&w).unwrap() <= best + 1e-12);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(HierarchyModel::new(vec![4], vec![0.5]).is_err()); // sum != 1
        assert!(HierarchyModel::new(vec![4, 4], vec![1.0]).is_err()); // length
        assert!(HierarchyModel::new(vec![1, 4], vec![0.5, 0.5]).is_err()); // radix
        assert!(HierarchyModel::new(vec![4, 4], vec![1.5, -0.5]).is_err()); // range
        let m = HierarchyModel::new(vec![4, 4], vec![0.5, 0.5]).unwrap();
        assert!(m.throughput_for_weights(&[1.0]).is_err());
        assert!(m.throughput_for_weights(&[0.5, 0.0]).is_err());
    }

    #[test]
    fn spec_round_trips_into_builder() {
        use sorn_topology::builders::hierarchical_schedule;
        let m = HierarchyModel::new(vec![4, 4, 8], vec![0.6, 0.25, 0.15]).unwrap();
        let spec = m.spec(100).unwrap();
        assert_eq!(spec.n(), 128);
        let sched = hierarchical_schedule(&spec, 1 << 22).unwrap();
        sched.validate().unwrap();
    }

    /// Builds the model's schedule at `n` nodes and checks the §6
    /// structural invariants: the schedule validates (every slot a
    /// perfect matching), each node's port fans out to exactly
    /// `sum(radix - 1)` distinct neighbors over one period (one
    /// single-digit shift per slot), and single-level peers are
    /// directly reachable while multi-level pairs are not (routing
    /// corrects one digit per hop).
    fn check_hierarchy_at(radices: Vec<usize>, profile: Vec<f64>, n: usize) {
        use sorn_topology::builders::hierarchical_schedule;
        use sorn_topology::NodeId;
        let expected_degree: usize = radices.iter().map(|r| r - 1).sum();
        let m = HierarchyModel::new(radices, profile).unwrap();
        let spec = m.spec(100).unwrap();
        assert_eq!(spec.n(), n);
        let sched = hierarchical_schedule(&spec, 1 << 22).unwrap();
        sched.validate().unwrap();
        let topo = sched.logical_topology();
        assert_eq!(topo.n(), n);
        for node in 0..n {
            assert_eq!(
                topo.degree(NodeId(node as u32)),
                expected_degree,
                "node {node} port count"
            );
        }
        // Node 0's level-0 peer (digit shift) has a direct circuit;
        // the diagonal peer differing at every level never does.
        assert!(sched.max_wait(NodeId(0), NodeId(1)).is_some());
        assert!(sched.max_wait(NodeId(0), NodeId((n - 1) as u32)).is_none());
    }

    #[test]
    fn hierarchy_512_nodes_is_structurally_sound() {
        check_hierarchy_at(vec![8, 8, 8], vec![0.6, 0.25, 0.15], 512);
    }

    #[test]
    fn hierarchy_4096_nodes_is_structurally_sound() {
        check_hierarchy_at(vec![16, 16, 16], vec![0.56, 0.24, 0.2], 4096);
    }

    /// The warehouse-scale variant of [`check_hierarchy_at`]: the full
    /// logical topology is O(period x n), so at 16k/65k nodes the same
    /// invariants are checked on sampled nodes instead — over one
    /// period each sample meets every single-digit shift (and only
    /// those), giving exactly `sum(radix - 1)` distinct peers, none of
    /// them itself; routing reachability is spot-checked as before.
    fn check_hierarchy_sampled(radices: Vec<usize>, profile: Vec<f64>, n: usize, sample: &[u32]) {
        use sorn_topology::builders::hierarchical_schedule;
        use sorn_topology::NodeId;
        let expected_degree: usize = radices.iter().map(|r| r - 1).sum();
        let m = HierarchyModel::new(radices.clone(), profile).unwrap();
        let spec = m.spec(100).unwrap();
        assert_eq!(spec.n(), n);
        let sched = hierarchical_schedule(&spec, 1 << 22).unwrap();
        sched.validate().unwrap();
        for &v in sample {
            let node = NodeId(v);
            let mut peers = std::collections::BTreeSet::new();
            for t in 0..sched.period() as u64 {
                let d = sched.matching_at(t).raw_dst(node);
                assert_ne!(d, node, "node {v} matched to itself at slot {t}");
                assert_eq!(
                    spec.highest_differing_level(node, d)
                        .map(|l| (0..l).all(|j| spec.digit(node, j) == spec.digit(d, j))),
                    Some(true),
                    "node {v} slot {t}: circuit must shift exactly one digit"
                );
                peers.insert(d.0);
            }
            assert_eq!(peers.len(), expected_degree, "node {v} distinct peers");
        }
        assert!(sched.max_wait(NodeId(0), NodeId(1)).is_some());
        assert!(sched.max_wait(NodeId(0), NodeId((n - 1) as u32)).is_none());
    }

    #[test]
    fn hierarchy_16k_nodes_is_structurally_sound() {
        check_hierarchy_sampled(
            vec![16, 32, 32],
            vec![0.6, 0.25, 0.15],
            16384,
            &[0, 17, 8191, 16383],
        );
    }

    #[test]
    fn hierarchy_65k_nodes_is_structurally_sound() {
        check_hierarchy_sampled(
            vec![16, 64, 64],
            vec![0.56, 0.24, 0.2],
            65536,
            &[0, 65, 32767, 65535],
        );
    }
}
