//! The paper's closed-form latency/throughput model (§4).
//!
//! Definitions (all from §4):
//!
//! - `q ≥ 1`: oversubscription ratio — node bandwidth on intra-clique
//!   links divided by bandwidth on inter-clique links.
//! - `x ∈ [0, 1]`: fraction of total demand that is intra-clique.
//! - `Nc`: number of (equal-sized) cliques; clique size `C = N/Nc`.
//! - *Intrinsic latency* `δm`: the maximum number of circuits to cycle
//!   through across all hops — the minimum worst-case latency of a
//!   topology/routing pair, independent of other deployment parameters.
//! - *Throughput* `r`: the fraction of total bandwidth used to deliver
//!   traffic on its final hop.
//!
//! ## The paper's δm inconsistency
//!
//! §4's prose gives the inter-clique intrinsic latency as
//! `δm = (q+1)(Nc−1) + (q+1)/q·(C−1)`, but Table 1's printed values
//! (364 and 296) only follow from `δm = q(Nc−1) + (q+1)/q·(C−1)`.
//! [`InterCliqueLatencyModel`] selects the variant; the default is
//! [`InterCliqueLatencyModel::Table`] so the reproduction matches the
//! published table. Our measured schedules (worst-case circuit waits on
//! actually constructed slot sequences) match the *Text* variant.

/// Which published formula to use for the inter-clique intrinsic latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterCliqueLatencyModel {
    /// `q(Nc−1) + (q+1)/q·(C−1)` — reproduces Table 1's printed numbers.
    #[default]
    Table,
    /// `(q+1)(Nc−1) + (q+1)/q·(C−1)` — §4's prose formula, and what the
    /// constructed schedules actually achieve.
    Text,
}

/// The throughput-optimal oversubscription ratio `q* = 2/(1−x)` (§4).
///
/// # Panics
/// Panics when `x` is not in `[0, 1)`.
pub fn ideal_q(x: f64) -> f64 {
    assert!((0.0..1.0).contains(&x), "locality must be in [0,1)");
    2.0 / (1.0 - x)
}

/// Worst-case throughput for a given `q` and locality `x`:
/// `r = min( q/(2q+2), 1/((1−x)(q+1)) )` (§4 "Throughput").
///
/// The first bound is the intra-clique links (all traffic crosses them
/// twice); the second is the inter-clique links (used directly by the
/// `1−x` inter-clique share).
pub fn throughput(q: f64, x: f64) -> f64 {
    assert!(q > 0.0, "q must be positive");
    assert!((0.0..=1.0).contains(&x));
    let intra_bound = q / (2.0 * q + 2.0);
    if x >= 1.0 {
        return intra_bound;
    }
    let inter_bound = 1.0 / ((1.0 - x) * (q + 1.0));
    intra_bound.min(inter_bound)
}

/// Worst-case throughput at the ideal `q`: `r* = 1/(3−x)` (§4).
///
/// Bounded between 1/3 (no locality) and 1/2 (all-local), which is the
/// theoretical line of Figure 2(f).
pub fn optimal_throughput(x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x));
    1.0 / (3.0 - x)
}

/// Mean hops of SORN routing under locality `x`: intra-clique traffic
/// takes 2 hops, inter-clique 3, so `2x + 3(1−x) = 3 − x`. This equals
/// the normalized bandwidth cost (Table 1's last column) and is the
/// reciprocal of [`optimal_throughput`].
pub fn mean_hops(x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x));
    3.0 - x
}

/// Intra-clique intrinsic latency in slots:
/// `δm = (q+1)/q · (C−1)` (§4 "Latency").
///
/// Intra-clique links occupy `q/(q+1)` of the slots spread over `C−1`
/// destinations, so the targeted second hop waits through that many
/// circuits; the load-balancing first hop is free.
pub fn intra_delta_m(q: f64, clique_size: usize) -> f64 {
    assert!(q > 0.0);
    assert!(clique_size >= 1);
    (q + 1.0) / q * (clique_size as f64 - 1.0)
}

/// Inter-clique intrinsic latency in slots, per the selected model.
pub fn inter_delta_m(
    q: f64,
    cliques: usize,
    clique_size: usize,
    model: InterCliqueLatencyModel,
) -> f64 {
    assert!(q > 0.0);
    assert!(cliques >= 1);
    let inter_part = match model {
        InterCliqueLatencyModel::Table => q * (cliques as f64 - 1.0),
        InterCliqueLatencyModel::Text => (q + 1.0) * (cliques as f64 - 1.0),
    };
    inter_part + intra_delta_m(q, clique_size)
}

/// Converts an intrinsic latency to wall-clock worst-case latency for a
/// single packet (Table 1's "Min Latency" column):
/// `δm/uplinks × slot + hops × propagation`, in nanoseconds.
///
/// Dividing by the uplink count models Sirius-style phase-staggered
/// planes (16 in Table 1), which cut the circuit wait proportionally.
pub fn min_latency_ns(
    delta_m: f64,
    hops: u32,
    slot_ns: f64,
    propagation_ns: f64,
    uplinks: usize,
) -> f64 {
    assert!(uplinks >= 1);
    delta_m / uplinks as f64 * slot_ns + hops as f64 * propagation_ns
}

/// Intrinsic latency of a flat 1D round robin (Sirius): `δm = N − 1`.
pub fn flat_delta_m(n: usize) -> f64 {
    (n as f64) - 1.0
}

/// Intrinsic latency of an h-dimensional optimal ORN: `h² (Δ−1)` slots
/// where `Δ = N^{1/h}` — each of the `h` targeted correction hops waits
/// up to a full dimension cycle of `h(Δ−1)` slots... divided across the
/// interleaved schedule this bounds to `h²(Δ−1)` total. For `h = 2` and
/// `N = 4096` this gives Table 1's 252.
pub fn hdim_delta_m(n: usize, h: u32) -> Option<f64> {
    let delta = (n as f64).powf(1.0 / h as f64).round() as usize;
    if delta.checked_pow(h) != Some(n) {
        return None;
    }
    Some((h * h) as f64 * (delta as f64 - 1.0))
}

/// Worst-case throughput of an h-dimensional optimal ORN: `1/(2h)` (§2).
pub fn hdim_throughput(h: u32) -> f64 {
    1.0 / (2.0 * h as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: f64 = 0.56; // Table 1's locality ratio

    #[test]
    fn ideal_q_at_paper_locality() {
        let q = ideal_q(X);
        assert!((q - 50.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_bounds_meet_at_ideal_q() {
        let q = ideal_q(X);
        let r = throughput(q, X);
        // At q*, both bounds equal 1/(3-x).
        assert!((r - optimal_throughput(X)).abs() < 1e-12);
        assert!((r - 0.4098).abs() < 1e-4, "r = {r}");
    }

    #[test]
    fn throughput_below_ideal_q_is_inter_limited() {
        // q too small: intra links starve... actually intra-bound shrinks
        // with q; inter-bound shrinks as q grows. Check monotone pieces.
        let q_star = ideal_q(0.5); // 4
        let r_low = throughput(2.0, 0.5);
        let r_star = throughput(q_star, 0.5);
        let r_high = throughput(8.0, 0.5);
        assert!(r_low < r_star, "{r_low} < {r_star}");
        assert!(r_high < r_star, "{r_high} < {r_star}");
    }

    #[test]
    fn optimal_throughput_range_matches_figure_2f() {
        assert!((optimal_throughput(0.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((optimal_throughput(1.0) - 0.5).abs() < 1e-12);
        // Monotone increasing in x.
        let mut last = 0.0;
        for i in 0..=10 {
            let r = optimal_throughput(i as f64 / 10.0);
            assert!(r > last);
            last = r;
        }
    }

    #[test]
    fn table1_sorn_nc64_row() {
        let q = ideal_q(X);
        let n = 4096;
        let nc = 64;
        let c = n / nc;
        let intra = intra_delta_m(q, c);
        assert_eq!(intra.ceil() as u64, 77);
        let inter = inter_delta_m(q, nc, c, InterCliqueLatencyModel::Table);
        assert_eq!(inter.ceil() as u64, 364);
        // Latencies: 1.48 us and 3.77 us.
        let lat_intra = min_latency_ns(intra, 2, 100.0, 500.0, 16);
        assert!((lat_intra / 1000.0 - 1.48).abs() < 0.01, "{lat_intra}");
        let lat_inter = min_latency_ns(inter, 3, 100.0, 500.0, 16);
        assert!((lat_inter / 1000.0 - 3.77).abs() < 0.01, "{lat_inter}");
    }

    #[test]
    fn table1_sorn_nc32_row() {
        let q = ideal_q(X);
        let (n, nc) = (4096, 32);
        let c = n / nc;
        let intra = intra_delta_m(q, c);
        assert_eq!(intra.ceil() as u64, 155);
        let inter = inter_delta_m(q, nc, c, InterCliqueLatencyModel::Table);
        assert_eq!(inter.ceil() as u64, 296);
        let lat_intra = min_latency_ns(intra, 2, 100.0, 500.0, 16);
        assert!((lat_intra / 1000.0 - 1.97).abs() < 0.01);
        let lat_inter = min_latency_ns(inter, 3, 100.0, 500.0, 16);
        assert!((lat_inter / 1000.0 - 3.35).abs() < 0.01);
    }

    #[test]
    fn table1_1d_orn_row() {
        let dm = flat_delta_m(4096);
        assert_eq!(dm, 4095.0);
        let lat = min_latency_ns(dm, 2, 100.0, 500.0, 16);
        assert!((lat / 1000.0 - 26.59).abs() < 0.01, "{lat}");
    }

    #[test]
    fn table1_2d_orn_row() {
        let dm = hdim_delta_m(4096, 2).unwrap();
        assert_eq!(dm, 252.0);
        let lat = min_latency_ns(dm, 4, 100.0, 500.0, 16);
        assert!((lat / 1000.0 - 3.57).abs() < 0.01, "{lat}");
        assert!((hdim_throughput(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn text_variant_is_larger() {
        let q = ideal_q(X);
        let t = inter_delta_m(q, 64, 64, InterCliqueLatencyModel::Table);
        let x = inter_delta_m(q, 64, 64, InterCliqueLatencyModel::Text);
        assert!(x > t);
        assert!((x - t - 63.0).abs() < 1e-9); // differs by exactly Nc-1
    }

    #[test]
    fn mean_hops_and_bandwidth_cost() {
        assert!((mean_hops(X) - 2.44).abs() < 1e-12);
        assert!((mean_hops(X) * optimal_throughput(X) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hdim_delta_m_rejects_non_powers() {
        assert_eq!(hdim_delta_m(4095, 2), None);
        assert_eq!(hdim_delta_m(4096, 3), Some(9.0 * 15.0));
    }

    #[test]
    fn latency_scales_inversely_with_uplinks() {
        let one = min_latency_ns(4095.0, 2, 100.0, 500.0, 1);
        let sixteen = min_latency_ns(4095.0, 2, 100.0, 500.0, 16);
        assert!((one - 1000.0) / (sixteen - 1000.0) > 15.9);
    }
}
