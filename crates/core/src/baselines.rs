//! Closed-form baseline models for Table 1's comparison systems.
//!
//! Each function produces [`SystemRow`]s with the same columns as the
//! paper's Table 1: max hops, intrinsic latency `δm`, worst-case
//! single-packet latency, worst-case throughput, and normalized
//! bandwidth cost (reciprocal of throughput = mean hops paid per
//! delivered cell).

use crate::model;
use sorn_routing::OperaModel;

/// Shared deployment parameters (Table 1: 4096 racks, 16 uplinks, 100 ns
/// slots, 500 ns propagation per hop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentParams {
    /// Number of racks (nodes).
    pub n: usize,
    /// Uplinks per node.
    pub uplinks: usize,
    /// Slot duration in nanoseconds.
    pub slot_ns: f64,
    /// Propagation per hop in nanoseconds.
    pub propagation_ns: f64,
}

impl DeploymentParams {
    /// Table 1's reference deployment.
    pub fn paper_reference() -> Self {
        DeploymentParams {
            n: 4096,
            uplinks: 16,
            slot_ns: 100.0,
            propagation_ns: 500.0,
        }
    }
}

/// One row of the Table 1 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemRow {
    /// System name ("Optimal ORN 1D (Sirius)", …).
    pub system: String,
    /// Traffic class within the system, when split ("intra-clique", …).
    pub variant: Option<String>,
    /// Maximum hops per packet.
    pub max_hops: u32,
    /// Intrinsic latency in slots.
    pub delta_m: f64,
    /// Worst-case single-packet latency in nanoseconds.
    pub min_latency_ns: f64,
    /// Worst-case throughput (0..1).
    pub throughput: f64,
    /// Normalized bandwidth cost (overprovisioning factor).
    pub bw_cost: f64,
}

/// The flat 1D optimal ORN (Sirius): 2-hop VLB over an `N−1`-slot round
/// robin; 50% throughput, 2× bandwidth cost.
pub fn sirius_1d(p: &DeploymentParams) -> SystemRow {
    let dm = model::flat_delta_m(p.n);
    SystemRow {
        system: "Optimal ORN 1D (Sirius)".into(),
        variant: None,
        max_hops: 2,
        delta_m: dm,
        min_latency_ns: model::min_latency_ns(dm, 2, p.slot_ns, p.propagation_ns, p.uplinks),
        throughput: 0.5,
        bw_cost: 2.0,
    }
}

/// An h-dimensional optimal ORN; `h = 2` is Table 1's "Optimal ORN 2D".
/// Returns `None` when `n` is not a perfect h-th power.
pub fn hdim_orn_row(p: &DeploymentParams, h: u32) -> Option<SystemRow> {
    let dm = model::hdim_delta_m(p.n, h)?;
    let hops = 2 * h;
    Some(SystemRow {
        system: format!("Optimal ORN {h}D"),
        variant: None,
        max_hops: hops,
        delta_m: dm,
        min_latency_ns: model::min_latency_ns(dm, hops, p.slot_ns, p.propagation_ns, p.uplinks),
        throughput: model::hdim_throughput(h),
        bw_cost: 2.0 * h as f64,
    })
}

/// Opera parameters for the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperaParams {
    /// Opera's much longer slots (90 µs in Table 1, from the original
    /// paper: long enough to route short flows over a quasi-static
    /// expander).
    pub slot_ns: f64,
    /// Fraction of traffic volume that is latency-sensitive (75%).
    pub short_share: f64,
    /// Mean expander path length for short flows. Derive it from a
    /// sampled expander with [`measured_opera_params`] or use the
    /// paper-consistent default of 3.6.
    pub mean_expander_hops: f64,
    /// Worst-case expander hops (Table 1 lists 4).
    pub max_expander_hops: u32,
}

impl OperaParams {
    /// Table 1's Opera configuration with the paper-consistent expander
    /// statistics (mean 3.6 hops; `0.75·3.6 + 0.25·2 = 3.2`, matching the
    /// printed 3.2× bandwidth cost and 31.25% throughput).
    pub fn paper_reference() -> Self {
        OperaParams {
            slot_ns: 90_000.0,
            short_share: 0.75,
            mean_expander_hops: 3.6,
            max_expander_hops: 4,
        }
    }
}

/// Measures Opera expander statistics from an actually sampled rotor
/// expander (instead of trusting the published constants).
pub fn measured_opera_params(
    n: usize,
    uplinks: usize,
    short_share: f64,
    slot_ns: f64,
    seed: u64,
) -> Option<OperaParams> {
    let model = OperaModel::new(n, uplinks, short_share, 4, seed).ok()?;
    Some(OperaParams {
        slot_ns,
        short_share,
        mean_expander_hops: model.mean_expander_hops(1)?,
        max_expander_hops: model.max_expander_hops(1)?,
    })
}

/// Opera's two Table 1 rows (short flows on the expander, bulk on rotor
/// VLB) sharing throughput and bandwidth cost.
pub fn opera_rows(p: &DeploymentParams, o: &OperaParams) -> [SystemRow; 2] {
    let mean_hops = o.short_share * o.mean_expander_hops + (1.0 - o.short_share) * 2.0;
    let throughput = 1.0 / mean_hops;
    // Short flows never wait for reconfiguration (expander paths are
    // always up): δm = 0, latency = propagation only.
    let short = SystemRow {
        system: "Opera".into(),
        variant: Some("short flows".into()),
        max_hops: o.max_expander_hops,
        delta_m: 0.0,
        min_latency_ns: o.max_expander_hops as f64 * p.propagation_ns,
        throughput,
        bw_cost: mean_hops,
    };
    // Bulk waits for direct rotor circuits: a full N−1 rotation of 90 µs
    // slots (divided over the staggered uplinks).
    let dm = model::flat_delta_m(p.n);
    let bulk = SystemRow {
        system: "Opera".into(),
        variant: Some("bulk".into()),
        max_hops: 2,
        delta_m: dm,
        min_latency_ns: model::min_latency_ns(dm, 2, o.slot_ns, p.propagation_ns, p.uplinks),
        throughput,
        bw_cost: mean_hops,
    };
    [short, bulk]
}

/// The SORN rows (intra- and inter-clique) for a clique count `nc`,
/// locality `x`, at the ideal oversubscription.
pub fn sorn_rows(
    p: &DeploymentParams,
    nc: usize,
    x: f64,
    inter_model: model::InterCliqueLatencyModel,
) -> [SystemRow; 2] {
    let q = model::ideal_q(x);
    let c = p.n / nc;
    let throughput = model::optimal_throughput(x);
    let bw = model::mean_hops(x);
    let intra_dm = model::intra_delta_m(q, c);
    let inter_dm = model::inter_delta_m(q, nc, c, inter_model);
    [
        SystemRow {
            system: format!("SORN Nc={nc}"),
            variant: Some("intra-clique".into()),
            max_hops: 2,
            delta_m: intra_dm,
            min_latency_ns: model::min_latency_ns(
                intra_dm,
                2,
                p.slot_ns,
                p.propagation_ns,
                p.uplinks,
            ),
            throughput,
            bw_cost: bw,
        },
        SystemRow {
            system: format!("SORN Nc={nc}"),
            variant: Some("inter-clique".into()),
            max_hops: 3,
            delta_m: inter_dm,
            min_latency_ns: model::min_latency_ns(
                inter_dm,
                3,
                p.slot_ns,
                p.propagation_ns,
                p.uplinks,
            ),
            throughput,
            bw_cost: bw,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InterCliqueLatencyModel;

    fn p() -> DeploymentParams {
        DeploymentParams::paper_reference()
    }

    #[test]
    fn sirius_row_matches_table1() {
        let r = sirius_1d(&p());
        assert_eq!(r.max_hops, 2);
        assert_eq!(r.delta_m, 4095.0);
        assert!((r.min_latency_ns / 1000.0 - 26.59).abs() < 0.01);
        assert_eq!(r.throughput, 0.5);
        assert_eq!(r.bw_cost, 2.0);
    }

    #[test]
    fn orn_2d_row_matches_table1() {
        let r = hdim_orn_row(&p(), 2).unwrap();
        assert_eq!(r.max_hops, 4);
        assert_eq!(r.delta_m, 252.0);
        assert!((r.min_latency_ns / 1000.0 - 3.57).abs() < 0.01);
        assert_eq!(r.throughput, 0.25);
        assert_eq!(r.bw_cost, 4.0);
    }

    #[test]
    fn opera_rows_match_table1() {
        let [short, bulk] = opera_rows(&p(), &OperaParams::paper_reference());
        assert_eq!(short.max_hops, 4);
        assert_eq!(short.delta_m, 0.0);
        assert!((short.min_latency_ns - 2000.0).abs() < 1e-9); // 2 us
        assert!((short.throughput - 0.3125).abs() < 1e-9); // 31.25%
        assert!((short.bw_cost - 3.2).abs() < 1e-9);
        assert_eq!(bulk.max_hops, 2);
        assert_eq!(bulk.delta_m, 4095.0);
        assert!((bulk.min_latency_ns / 1000.0 - 23_034.4).abs() < 1.0);
    }

    #[test]
    fn sorn_rows_match_table1() {
        let [intra64, inter64] = sorn_rows(&p(), 64, 0.56, InterCliqueLatencyModel::Table);
        assert_eq!(intra64.delta_m.ceil() as u64, 77);
        assert_eq!(inter64.delta_m.ceil() as u64, 364);
        assert!((intra64.min_latency_ns / 1000.0 - 1.48).abs() < 0.01);
        assert!((inter64.min_latency_ns / 1000.0 - 3.77).abs() < 0.01);
        assert!((intra64.throughput - 0.4098).abs() < 1e-3);
        assert!((intra64.bw_cost - 2.44).abs() < 1e-9);

        let [intra32, inter32] = sorn_rows(&p(), 32, 0.56, InterCliqueLatencyModel::Table);
        assert_eq!(intra32.delta_m.ceil() as u64, 155);
        assert_eq!(inter32.delta_m.ceil() as u64, 296);
        assert!((intra32.min_latency_ns / 1000.0 - 1.97).abs() < 0.01);
        assert!((inter32.min_latency_ns / 1000.0 - 3.35).abs() < 0.01);
    }

    #[test]
    fn measured_opera_is_close_to_paper_constants() {
        // A 256-node sample keeps the test fast; the mean expander path
        // length lands near the paper's 3.6 only at full 4096 scale, so
        // just sanity-check the plumbing and plausible ranges here.
        let o = measured_opera_params(256, 16, 0.75, 90_000.0, 1).unwrap();
        assert!(o.mean_expander_hops > 1.5 && o.mean_expander_hops < 4.0);
        assert!(o.max_expander_hops >= 2 && o.max_expander_hops <= 6);
    }

    #[test]
    fn ordering_of_bandwidth_costs_matches_paper() {
        // 1D (2x) < SORN (2.44x) < Opera (3.2x) < 2D (4x).
        let sirius = sirius_1d(&p()).bw_cost;
        let sorn = sorn_rows(&p(), 64, 0.56, InterCliqueLatencyModel::Table)[0].bw_cost;
        let opera = opera_rows(&p(), &OperaParams::paper_reference())[0].bw_cost;
        let d2 = hdim_orn_row(&p(), 2).unwrap().bw_cost;
        assert!(sirius < sorn && sorn < opera && opera < d2);
    }
}
