//! Property-based tests for the §4 closed-form model.

use proptest::prelude::*;
use sorn_core::model::{self, InterCliqueLatencyModel};
use sorn_core::{SornConfig, SornNetwork};

proptest! {
    /// The ideal q maximizes throughput over a fine grid, for any
    /// locality.
    #[test]
    fn ideal_q_is_the_argmax(xi in 0usize..99) {
        let x = xi as f64 / 100.0;
        let q_star = model::ideal_q(x);
        let best = model::throughput(q_star, x);
        for i in 1..400 {
            let q = i as f64 * 0.1;
            prop_assert!(model::throughput(q, x) <= best + 1e-12,
                "q={q} beats q*={q_star} at x={x}");
        }
    }

    /// Throughput at ideal q equals 1/(3-x) exactly.
    #[test]
    fn throughput_at_ideal_q_closed_form(xi in 0usize..100) {
        let x = xi as f64 / 100.0;
        if x >= 1.0 { return Ok(()); }
        let r = model::throughput(model::ideal_q(x), x);
        prop_assert!((r - model::optimal_throughput(x)).abs() < 1e-12);
    }

    /// Throughput and bandwidth cost are exact reciprocals at ideal q.
    #[test]
    fn throughput_times_mean_hops_is_one(xi in 0usize..100) {
        let x = xi as f64 / 100.0;
        prop_assert!((model::optimal_throughput(x) * model::mean_hops(x) - 1.0).abs() < 1e-12);
    }

    /// Intrinsic latencies are monotone: more cliques lowers intra delta
    /// but raises the inter part.
    #[test]
    fn delta_m_monotonicity(q10 in 11u32..100) {
        let q = q10 as f64 / 10.0; // q > 1
        let n = 4096;
        let mut last_intra = f64::INFINITY;
        let mut last_inter_part = 0.0;
        for nc in [8usize, 16, 32, 64, 128] {
            let c = n / nc;
            let intra = model::intra_delta_m(q, c);
            prop_assert!(intra < last_intra);
            last_intra = intra;
            let inter = model::inter_delta_m(q, nc, c, InterCliqueLatencyModel::Table) - intra;
            prop_assert!(inter > last_inter_part);
            last_inter_part = inter;
        }
    }

    /// Latency conversion is linear in delta_m and inversely linear in
    /// uplinks.
    #[test]
    fn latency_conversion_scales(dm in 1u32..10_000, uplinks in 1usize..32) {
        let dm = dm as f64;
        let base = model::min_latency_ns(dm, 2, 100.0, 500.0, uplinks);
        let double = model::min_latency_ns(2.0 * dm, 2, 100.0, 500.0, uplinks);
        // Slope: doubling dm doubles the slot component.
        prop_assert!((double - base - dm / uplinks as f64 * 100.0).abs() < 1e-6);
    }

    /// Built networks agree with the closed forms for arbitrary valid
    /// configurations.
    #[test]
    fn network_analysis_matches_model(
        cliques in 2usize..5,
        size in 2usize..5,
        xi in 0usize..9,
    ) {
        let x = xi as f64 / 10.0;
        let cfg = SornConfig::small(cliques * size, cliques, x);
        let net = SornNetwork::build(cfg).unwrap();
        let a = net.analysis();
        let q = a.q;
        prop_assert!((a.intra_delta_m - model::intra_delta_m(q, size)).abs() < 1e-9);
        prop_assert!((a.throughput - model::throughput(q, x)).abs() < 1e-9);
        prop_assert!((a.mean_hops - (3.0 - x)).abs() < 1e-9);
    }

    /// The flow-level evaluation of any built network is at least the
    /// closed-form worst case (the formula is a bound).
    #[test]
    fn evaluator_at_least_closed_form(cliques in 2usize..5, size in 2usize..5, xi in 0usize..9) {
        let x = xi as f64 / 10.0;
        let cfg = SornConfig::small(cliques * size, cliques, x);
        let net = SornNetwork::build(cfg).unwrap();
        let rep = net.flow_throughput(x).unwrap();
        prop_assert!(
            rep.throughput >= net.analysis().throughput - 1e-9,
            "evaluator {} below closed form {}",
            rep.throughput,
            net.analysis().throughput
        );
    }
}
