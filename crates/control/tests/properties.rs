//! Property-based tests for the control plane.

use proptest::prelude::*;
use sorn_control::{assign_cliques, locality_of, optimize, PatternEstimator};
use sorn_topology::{CliqueId, NodeId};

/// A random non-negative traffic matrix with zero diagonal.
fn tm_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] = 0.0;
        }
        v
    })
}

proptest! {
    /// Greedy assignment always yields a valid partition into cliques of
    /// the requested size.
    #[test]
    fn assignment_is_a_valid_partition(
        cliques in 2usize..5,
        size in 1usize..5,
        seed_tm in tm_strategy(4 * 4),
    ) {
        // Scale the random 4x4 block up to n x n by tiling.
        let n = cliques * size;
        let mut tm = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    tm[s * n + d] = seed_tm[(s % 4) * 4 + (d % 4)] + 0.01;
                }
            }
        }
        let map = assign_cliques(&tm, n, size);
        prop_assert_eq!(map.n(), n);
        prop_assert_eq!(map.cliques(), cliques);
        prop_assert_eq!(map.uniform_size(), Some(size));
        // Every node appears exactly once.
        let mut seen = vec![false; n];
        for c in 0..cliques {
            for m in map.members(CliqueId(c as u32)) {
                prop_assert!(!seen[m.index()], "node {m} assigned twice");
                seen[m.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// locality_of is always in [0, 1] and equals 1 when all traffic is
    /// intra-clique.
    #[test]
    fn locality_bounds(cliques in 2usize..5, size in 2usize..5) {
        let n = cliques * size;
        let map = sorn_topology::CliqueMap::contiguous(n, cliques);
        // Pure intra traffic.
        let mut tm = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d && map.same_clique(NodeId(s as u32), NodeId(d as u32)) {
                    tm[s * n + d] = 1.0;
                }
            }
        }
        prop_assert!((locality_of(&tm, n, &map) - 1.0).abs() < 1e-12);
        // Pure inter traffic.
        let mut tm2 = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d && !map.same_clique(NodeId(s as u32), NodeId(d as u32)) {
                    tm2[s * n + d] = 1.0;
                }
            }
        }
        prop_assert_eq!(locality_of(&tm2, n, &map), 0.0);
    }

    /// optimize returns a plan whose reported locality matches its
    /// assignment and whose q stays finite under the clamp.
    #[test]
    fn optimize_reports_consistent_plan(
        seed_tm in tm_strategy(4 * 4),
        max_locality in 0.5f64..0.95,
    ) {
        let n = 16;
        let mut tm = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    tm[s * n + d] = seed_tm[(s % 4) * 4 + (d % 4)] + 0.01;
                }
            }
        }
        let plan = optimize(&tm, n, &[2, 4, 8], max_locality).unwrap();
        let x = locality_of(&tm, n, &plan.cliques);
        prop_assert!((x - plan.locality).abs() < 1e-12);
        // q derived from the clamped locality: at most 2/(1-max).
        prop_assert!(plan.q.to_f64() <= 2.0 / (1.0 - max_locality) + 0.01);
        prop_assert!(plan.throughput > 1.0 / 3.0 - 1e-9);
        prop_assert!(plan.throughput <= 0.5);
    }

    /// The estimator is linear: observing the same flows twice doubles
    /// the epoch contribution (with alpha = 1).
    #[test]
    fn estimator_is_linear(obs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..10_000), 1..20)) {
        let mut once = PatternEstimator::new(8, 1.0);
        let mut twice = PatternEstimator::new(8, 1.0);
        for &(s, d, b) in &obs {
            once.observe(NodeId(s), NodeId(d), b);
            twice.observe(NodeId(s), NodeId(d), b);
            twice.observe(NodeId(s), NodeId(d), b);
        }
        once.end_epoch();
        twice.end_epoch();
        prop_assert!((twice.total() - 2.0 * once.total()).abs() < 1e-6);
    }

    /// EWMA total is a convex combination: never exceeds the max of the
    /// epoch totals.
    #[test]
    fn ewma_stays_within_observed_range(
        epochs in proptest::collection::vec(0u64..100_000, 2..8),
        alpha_pct in 1u32..100,
    ) {
        let alpha = alpha_pct as f64 / 100.0;
        let mut est = PatternEstimator::new(4, alpha);
        let mut max_total = 0.0f64;
        for &volume in &epochs {
            est.observe(NodeId(0), NodeId(1), volume);
            est.end_epoch();
            max_total = max_total.max(volume as f64);
            prop_assert!(est.total() <= max_total + 1e-6);
        }
    }
}
