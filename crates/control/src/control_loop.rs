//! The periodic control loop: estimate → optimize → decide → install.
//!
//! §5's control plane runs on the order of minutes or hours. Each epoch
//! it folds observed traffic into the [`PatternEstimator`], asks the
//! [`optimizer`](crate::optimizer) for the best clique plan, and installs
//! it only when the modeled throughput gain clears a hysteresis threshold
//! — §6 notes the design "does not require precise predictions,
//! maintaining guarantees within a healthy estimation error margin", and
//! hysteresis is what keeps estimation noise from thrashing the fabric.

use crate::decision::{DecisionLog, DecisionRecord, FailureResponse, ScheduleDiff};
use crate::estimator::PatternEstimator;
use crate::optimizer::{self, OptimizedPlan};
use crate::updater::{ScheduleUpdater, UpdatePlan, UpdateTiming};
use sorn_core::model;
use sorn_core::nic::NicState;
use sorn_sim::{FailureSet, Flow};
use sorn_topology::{CircuitSchedule, CliqueId, CliqueMap, Ratio, TopologyError};

/// Control loop configuration.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// EWMA weight of the newest epoch.
    pub alpha: f64,
    /// Clique sizes the physical layer can realize (from
    /// `sorn_topology::awgr::Expressivity`).
    pub allowed_sizes: Vec<usize>,
    /// Minimum modeled-throughput gain before an update is installed.
    pub hysteresis: f64,
    /// Cap on the locality used to derive `q` (keeps `q` finite).
    pub max_locality: f64,
    /// Installation timing model.
    pub timing: UpdateTiming,
    /// Total installation attempts per epoch before the loop gives up
    /// and keeps the old schedule (must be at least 1).
    pub max_install_attempts: u32,
    /// Modeled backoff before the first installation retry; doubles per
    /// further retry.
    pub retry_backoff_ns: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            alpha: 0.3,
            allowed_sizes: vec![2, 4, 8, 16, 32, 64],
            hysteresis: 0.02,
            max_locality: 0.9,
            timing: UpdateTiming::default(),
            max_install_attempts: 3,
            retry_backoff_ns: 50_000_000,
        }
    }
}

/// What the loop did at the end of an epoch.
#[derive(Debug, Clone)]
pub enum EpochOutcome {
    /// No observation yet or no realizable plan.
    NoPlan,
    /// The best plan did not beat the current one by the hysteresis.
    Held {
        /// Modeled throughput of the current configuration.
        current: f64,
        /// Modeled throughput of the best candidate.
        candidate: f64,
    },
    /// A new schedule was installed.
    Updated {
        /// The installed plan's modeled throughput.
        throughput: f64,
        /// The installation diff.
        update: UpdatePlan,
    },
    /// Installation kept failing mid-reconfiguration; after the bounded
    /// retries the loop kept the old schedule.
    InstallFailed {
        /// Attempts made (equals the configured maximum).
        attempts: u32,
        /// Modeled throughput of the abandoned candidate.
        candidate: f64,
    },
}

/// A failure-response record with nothing reported yet — the starting
/// point when only installation trouble (not data-plane failures) needs
/// recording.
fn empty_response() -> FailureResponse {
    FailureResponse {
        failed_nodes: Vec::new(),
        failed_links: Vec::new(),
        masked_demand_fraction: 0.0,
        install_attempts: 0,
        install_backoff_ns: 0,
        gave_up: false,
    }
}

/// The periodic semi-oblivious control loop.
pub struct ControlLoop {
    config: ControlConfig,
    estimator: PatternEstimator,
    updater: ScheduleUpdater,
    cliques: CliqueMap,
    q: Ratio,
    schedule: CircuitSchedule,
    nics: Vec<NicState>,
    updates_installed: u64,
    decisions: DecisionLog,
    health: FailureSet,
    forced_install_failures: u32,
}

impl ControlLoop {
    /// Starts the loop from an initial deployment.
    pub fn new(
        config: ControlConfig,
        cliques: CliqueMap,
        q: Ratio,
        schedule: CircuitSchedule,
    ) -> Self {
        let nics = ScheduleUpdater::bootstrap_nics(&schedule);
        let n = cliques.n();
        ControlLoop {
            estimator: PatternEstimator::new(n, config.alpha),
            updater: ScheduleUpdater::new(config.timing),
            config,
            cliques,
            q,
            schedule,
            nics,
            updates_installed: 0,
            decisions: DecisionLog::new(),
            health: FailureSet::none(),
            forced_install_failures: 0,
        }
    }

    /// Replaces the loop's view of data-plane health. Call when the
    /// fabric reports failures (e.g. from a [`sorn_sim::LinkHealth`]
    /// snapshot); demand touching failed nodes is masked out of the next
    /// optimization.
    pub fn report_failures(&mut self, failures: &FailureSet) {
        self.health = failures.clone();
    }

    /// The loop's current view of data-plane health.
    pub fn health(&self) -> &FailureSet {
        &self.health
    }

    /// Forces the next `count` installation attempts to fail — a test
    /// and chaos-drill hook exercising the bounded retry/backoff path.
    pub fn inject_install_failures(&mut self, count: u32) {
        self.forced_install_failures = count;
    }

    /// The per-epoch decision log.
    pub fn decisions(&self) -> &DecisionLog {
        &self.decisions
    }

    /// The currently installed schedule.
    pub fn schedule(&self) -> &CircuitSchedule {
        &self.schedule
    }

    /// The current clique assignment.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }

    /// The current oversubscription ratio.
    pub fn q(&self) -> Ratio {
        self.q
    }

    /// Number of updates installed so far.
    pub fn updates_installed(&self) -> u64 {
        self.updates_installed
    }

    /// The traffic estimator (for observation feeding).
    pub fn estimator_mut(&mut self) -> &mut PatternEstimator {
        &mut self.estimator
    }

    /// Records observed flows for the current epoch.
    pub fn observe(&mut self, flows: &[Flow]) {
        self.estimator.observe_flows(flows);
    }

    /// Modeled throughput of the configuration currently installed,
    /// against the current estimate.
    pub fn current_modeled_throughput(&self) -> f64 {
        let x = self
            .estimator
            .locality(&self.cliques)
            .min(self.config.max_locality);
        model::throughput(self.q.to_f64(), x)
    }

    /// Ends the epoch: folds observations, optimizes, and installs a new
    /// schedule when it clears the hysteresis.
    pub fn end_epoch(&mut self) -> Result<EpochOutcome, TopologyError> {
        self.estimator.end_epoch();
        let mut record = DecisionRecord {
            epoch: self.estimator.epochs_seen(),
            outcome: "no_plan".to_string(),
            total_estimated_bytes: self.estimator.total(),
            inter_clique_demand: self.estimator.clique_matrix(&self.cliques),
            current_throughput: self.current_modeled_throughput(),
            candidate_throughput: None,
            candidate_locality: None,
            candidate_q: None,
            candidate_clique_sizes: None,
            schedule_diff: None,
            failure_response: None,
        };
        // Mask demand touching failed nodes out of the optimizer's input:
        // a dead node contributes no deliverable traffic, and planning
        // cliques around it would chase demand that cannot flow.
        let n = self.estimator.n();
        let mut demand = self.estimator.matrix().to_vec();
        if !self.health.is_empty() {
            let total: f64 = demand.iter().sum();
            for node in self.health.failed_node_ids() {
                let i = node.0 as usize;
                if i >= n {
                    continue;
                }
                for j in 0..n {
                    demand[i * n + j] = 0.0;
                    demand[j * n + i] = 0.0;
                }
            }
            let masked_total: f64 = demand.iter().sum();
            record.failure_response = Some(FailureResponse {
                failed_nodes: self.health.failed_node_ids().iter().map(|v| v.0).collect(),
                failed_links: self
                    .health
                    .failed_link_ids()
                    .iter()
                    .map(|&(a, b)| [a.0, b.0])
                    .collect(),
                masked_demand_fraction: if total > 0.0 {
                    (total - masked_total) / total
                } else {
                    0.0
                },
                install_attempts: 0,
                install_backoff_ns: 0,
                gave_up: false,
            });
        }
        if self.estimator.total() == 0.0 {
            self.decisions.push(record);
            return Ok(EpochOutcome::NoPlan);
        }
        let Some(plan): Option<OptimizedPlan> = optimizer::optimize(
            &demand,
            n,
            &self.config.allowed_sizes,
            self.config.max_locality,
        ) else {
            self.decisions.push(record);
            return Ok(EpochOutcome::NoPlan);
        };

        record.candidate_throughput = Some(plan.throughput);
        record.candidate_locality = Some(plan.locality);
        record.candidate_q = Some([plan.q.num(), plan.q.den()]);
        record.candidate_clique_sizes = Some(
            (0..plan.cliques.cliques())
                .map(|c| plan.cliques.clique_size(CliqueId(c as u32)))
                .collect(),
        );

        let current = self.current_modeled_throughput();
        if plan.throughput <= current + self.config.hysteresis {
            record.outcome = "held".to_string();
            self.decisions.push(record);
            return Ok(EpochOutcome::Held {
                current,
                candidate: plan.throughput,
            });
        }

        let period_before = self.schedule.period();
        // Installation can fail mid-reconfiguration (a straggler NIC, a
        // lost control message). Retry with exponential backoff, and give
        // up — keeping the old, still-consistent schedule — after the
        // configured attempt budget.
        let max_attempts = self.config.max_install_attempts.max(1);
        let mut attempts = 0u32;
        let mut backoff_ns = 0u64;
        let update = loop {
            attempts += 1;
            if self.forced_install_failures > 0 {
                self.forced_install_failures -= 1;
                if attempts >= max_attempts {
                    record.outcome = "install_failed".to_string();
                    let fr = record.failure_response.get_or_insert_with(empty_response);
                    fr.install_attempts = attempts;
                    fr.install_backoff_ns = backoff_ns;
                    fr.gave_up = true;
                    self.decisions.push(record);
                    return Ok(EpochOutcome::InstallFailed {
                        attempts,
                        candidate: plan.throughput,
                    });
                }
                backoff_ns += self.config.retry_backoff_ns << (attempts - 1);
                continue;
            }
            break self
                .updater
                .prepare(&mut self.nics, &plan.cliques, plan.q)?;
        };
        record.outcome = "updated".to_string();
        if attempts > 1 || record.failure_response.is_some() {
            let fr = record.failure_response.get_or_insert_with(empty_response);
            fr.install_attempts = attempts;
            fr.install_backoff_ns = backoff_ns;
        }
        record.schedule_diff = Some(ScheduleDiff {
            period_before,
            period_after: update.schedule.period(),
            nics_changed: update
                .reports
                .iter()
                .filter(|r| !r.is_rebalance_only())
                .count(),
            drained_cells: update.total_drained,
            rebalance_only: update.rebalance_only,
            // Retries delay the rollout; fold the backoff into the
            // modeled installation time.
            installation_ns: update.installation_ns + backoff_ns,
        });
        self.decisions.push(record);
        self.cliques = plan.cliques;
        self.q = plan.q;
        self.schedule = update.schedule.clone();
        self.updates_installed += 1;
        Ok(EpochOutcome::Updated {
            throughput: plan.throughput,
            update,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;
    use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
    use sorn_topology::NodeId;

    fn flow(src: u32, dst: u32, bytes: u64) -> Flow {
        Flow {
            id: FlowId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: 0,
        }
    }

    fn start_loop(n: usize, cliques: usize) -> ControlLoop {
        let map = CliqueMap::contiguous(n, cliques);
        let q = Ratio::integer(2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
        let mut cfg = ControlConfig::default();
        cfg.allowed_sizes = vec![2, 4];
        ControlLoop::new(cfg, map, q, sched)
    }

    /// Traffic concentrated in non-contiguous groups (i % 4).
    fn scrambled_flows(n: usize) -> Vec<Flow> {
        let mut flows = Vec::new();
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                if s != d && s % 4 == d % 4 {
                    flows.push(flow(s, d, 10_000));
                } else if s != d {
                    flows.push(flow(s, d, 100));
                }
            }
        }
        flows
    }

    #[test]
    fn empty_epoch_is_no_plan() {
        let mut l = start_loop(8, 2);
        assert!(matches!(l.end_epoch().unwrap(), EpochOutcome::NoPlan));
    }

    #[test]
    fn loop_regroups_to_match_scrambled_traffic() {
        let mut l = start_loop(16, 4);
        l.observe(&scrambled_flows(16));
        let outcome = l.end_epoch().unwrap();
        let EpochOutcome::Updated { throughput, .. } = outcome else {
            panic!("expected an update, got {outcome:?}");
        };
        assert!(throughput > 0.45, "modeled throughput {throughput}");
        assert_eq!(l.updates_installed(), 1);
        // The new cliques group the i%4 communities.
        let map = l.cliques();
        for com in 0..4u32 {
            let c = map.clique_of(NodeId(com));
            for j in 1..4u32 {
                assert_eq!(map.clique_of(NodeId(com + 4 * j)), c);
            }
        }
    }

    #[test]
    fn hysteresis_holds_when_already_optimal() {
        let mut l = start_loop(16, 4);
        l.observe(&scrambled_flows(16));
        l.end_epoch().unwrap();
        // Same pattern again: the installed config is already right.
        l.observe(&scrambled_flows(16));
        let outcome = l.end_epoch().unwrap();
        assert!(
            matches!(outcome, EpochOutcome::Held { .. }),
            "expected Held, got {outcome:?}"
        );
        assert_eq!(l.updates_installed(), 1);
    }

    #[test]
    fn decision_log_records_every_epoch() {
        let mut l = start_loop(16, 4);
        // Epoch 1: nothing observed.
        l.end_epoch().unwrap();
        // Epoch 2: scrambled traffic forces an update.
        l.observe(&scrambled_flows(16));
        l.end_epoch().unwrap();
        // Epoch 3: same pattern is held.
        l.observe(&scrambled_flows(16));
        l.end_epoch().unwrap();

        let log = l.decisions();
        assert_eq!(log.len(), 3, "one record per epoch");
        assert_eq!(log.records[0].outcome, "no_plan");
        assert_eq!(log.records[0].total_estimated_bytes, 0.0);
        assert_eq!(log.records[1].outcome, "updated");
        assert_eq!(log.records[2].outcome, "held");

        let updated = &log.records[1];
        // Demand was aggregated over the 4 cliques installed at the time.
        assert_eq!(updated.inter_clique_demand.len(), 4);
        let q = updated.candidate_q.expect("candidate existed");
        assert!(q[1] > 0);
        assert_eq!(
            updated.candidate_clique_sizes.as_deref(),
            Some(&[4, 4, 4, 4][..])
        );
        let diff = updated.schedule_diff.as_ref().expect("installed");
        // SORN's fixed neighbor superset makes regrouping a pure
        // bandwidth rebalance: no NIC gains or loses a queue.
        assert_eq!(diff.nics_changed, 0);
        assert!(diff.rebalance_only);
        assert!(diff.period_after > 0);
        // Held and no-plan epochs carry no diff.
        assert!(log.records[0].schedule_diff.is_none());
        assert!(log.records[2].schedule_diff.is_none());
    }

    #[test]
    fn failed_nodes_are_masked_from_optimization() {
        let mut l = start_loop(16, 4);
        // The dominant demand touches node 0; a smaller pair doesn't.
        l.observe(&[flow(0, 8, 10_000), flow(1, 4, 5_000)]);
        let mut failures = FailureSet::none();
        failures.fail_node(NodeId(0));
        l.report_failures(&failures);
        let outcome = l.end_epoch().unwrap();
        assert!(
            matches!(outcome, EpochOutcome::Updated { .. }),
            "expected an update, got {outcome:?}"
        );
        // With node 0's demand masked, the optimizer plans around the
        // surviving 1<->4 pair.
        let map = l.cliques();
        assert_eq!(map.clique_of(NodeId(1)), map.clique_of(NodeId(4)));

        let record = l.decisions().records.last().unwrap();
        let fr = record.failure_response.as_ref().expect("failures reported");
        assert_eq!(fr.failed_nodes, vec![0]);
        assert!(fr.failed_links.is_empty());
        // 10_000 of 15_000 bytes were masked.
        assert!((fr.masked_demand_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(fr.install_attempts, 1, "clean install");
        assert_eq!(fr.install_backoff_ns, 0);
        assert!(!fr.gave_up);
    }

    #[test]
    fn install_failure_retries_then_succeeds() {
        let mut l = start_loop(16, 4);
        l.observe(&scrambled_flows(16));
        l.inject_install_failures(2);
        let outcome = l.end_epoch().unwrap();
        assert!(
            matches!(outcome, EpochOutcome::Updated { .. }),
            "expected an update after retries, got {outcome:?}"
        );
        assert_eq!(l.updates_installed(), 1);

        let record = l.decisions().records.last().unwrap();
        assert_eq!(record.outcome, "updated");
        let fr = record.failure_response.as_ref().expect("retries recorded");
        assert_eq!(fr.install_attempts, 3, "two failures + one success");
        // Exponential backoff: 50ms + 100ms.
        assert_eq!(fr.install_backoff_ns, 150_000_000);
        assert!(!fr.gave_up);
        let diff = record.schedule_diff.as_ref().expect("installed");
        assert!(diff.installation_ns >= fr.install_backoff_ns);
    }

    #[test]
    fn install_failure_gives_up_after_bounded_retries() {
        let mut l = start_loop(16, 4);
        let period_before = l.schedule().period();
        l.observe(&scrambled_flows(16));
        l.inject_install_failures(5);
        let outcome = l.end_epoch().unwrap();
        let EpochOutcome::InstallFailed {
            attempts,
            candidate,
        } = outcome
        else {
            panic!("expected InstallFailed, got {outcome:?}");
        };
        assert_eq!(attempts, 3);
        assert!(candidate > 0.0);
        assert_eq!(l.updates_installed(), 0, "old schedule kept");
        assert_eq!(l.schedule().period(), period_before);

        let record = l.decisions().records.last().unwrap();
        assert_eq!(record.outcome, "install_failed");
        assert!(record.schedule_diff.is_none());
        let fr = record.failure_response.as_ref().expect("give-up recorded");
        assert_eq!(fr.install_attempts, 3);
        assert!(fr.gave_up);

        // The epoch after the storm recovers: the two leftover forced
        // failures are absorbed by the retry budget.
        l.observe(&scrambled_flows(16));
        let outcome = l.end_epoch().unwrap();
        assert!(
            matches!(outcome, EpochOutcome::Updated { .. }),
            "expected recovery, got {outcome:?}"
        );
        assert_eq!(l.updates_installed(), 1);
        let record = l.decisions().records.last().unwrap();
        let fr = record.failure_response.as_ref().expect("retries recorded");
        assert_eq!(fr.install_attempts, 3);
        assert!(!fr.gave_up);
    }

    #[test]
    fn shift_in_pattern_triggers_reconfiguration() {
        let mut l = start_loop(16, 4);
        // Phase 1: contiguous locality — matches the initial layout.
        let mut phase1 = Vec::new();
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s != d && s / 4 == d / 4 {
                    phase1.push(flow(s, d, 10_000));
                } else if s != d {
                    phase1.push(flow(s, d, 100));
                }
            }
        }
        l.observe(&phase1);
        let first = l.end_epoch().unwrap();
        // Initial q=2 is not locality-optimal, so the loop may retune.
        let installed_after_phase1 = l.updates_installed();
        drop(first);
        // Phase 2: pattern shifts to scrambled communities; repeat epochs
        // until the EWMA follows.
        for _ in 0..6 {
            l.observe(&scrambled_flows(16));
            l.end_epoch().unwrap();
        }
        assert!(
            l.updates_installed() > installed_after_phase1,
            "loop never adapted to the shifted pattern"
        );
        let map = l.cliques();
        assert_eq!(map.clique_of(NodeId(0)), map.clique_of(NodeId(4)));
    }
}
