//! Clique assignment optimization.
//!
//! Given an estimated traffic matrix and the clique sizes the physical
//! setup can realize (§5 "Expressivity"), choose a grouping of nodes that
//! maximizes the intra-clique traffic fraction `x` — which directly
//! maximizes the model throughput `r = 1/(3 − x)` — and derive the ideal
//! oversubscription `q* = 2/(1 − x)`.
//!
//! The assignment uses a deterministic greedy seed-and-grow heuristic:
//! repeatedly take the unassigned node with the largest remaining traffic
//! and grow its clique by the node with the strongest affinity (traffic
//! in both directions) to the clique's current members. The exact
//! partitioning problem is NP-hard (graph partitioning); greedy is what a
//! deployment-scale controller would run per epoch.

use sorn_core::model;
use sorn_topology::{CliqueId, CliqueMap, NodeId, Ratio};

/// Outcome of a clique optimization.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen assignment.
    pub cliques: CliqueMap,
    /// Estimated locality ratio under the assignment.
    pub locality: f64,
    /// Ideal oversubscription ratio for that locality.
    pub q: Ratio,
    /// Model worst-case throughput at the ideal `q`.
    pub throughput: f64,
}

/// Greedy clique assignment of `n` nodes into cliques of size `c`.
///
/// `tm` is a row-major `n×n` traffic matrix (any non-negative scale).
///
/// # Panics
/// Panics when `tm` is not `n×n` or `c` does not divide `n`.
pub fn assign_cliques(tm: &[f64], n: usize, c: usize) -> CliqueMap {
    assert_eq!(tm.len(), n * n, "traffic matrix must be n*n");
    assert!(c >= 1 && n.is_multiple_of(c), "clique size must divide n");
    let sym = |a: usize, b: usize| tm[a * n + b] + tm[b * n + a];

    let mut assigned: Vec<Option<CliqueId>> = vec![None; n];
    let mut next_clique = 0u32;

    // Node total traffic, for seed ordering.
    let mut volume: Vec<(f64, usize)> = (0..n)
        .map(|v| {
            let vol: f64 = (0..n).map(|u| sym(v, u)).sum();
            (vol, v)
        })
        .collect();
    volume.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));

    for &(_, seed) in &volume {
        if assigned[seed].is_some() {
            continue;
        }
        let clique = CliqueId(next_clique);
        next_clique += 1;
        let mut members = vec![seed];
        assigned[seed] = Some(clique);
        while members.len() < c {
            // Strongest affinity to current members among unassigned.
            let mut best: Option<(f64, usize)> = None;
            for (v, slot) in assigned.iter().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let aff: f64 = members.iter().map(|&m| sym(v, m)).sum();
                match best {
                    Some((b, bv)) if aff < b || (aff == b && v > bv) => {}
                    _ => best = Some((aff, v)),
                }
            }
            let (_, v) = best.expect("n % c == 0 guarantees enough nodes");
            assigned[v] = Some(clique);
            members.push(v);
        }
    }

    let assignment: Vec<CliqueId> = assigned
        .into_iter()
        .map(|a| a.expect("all assigned"))
        .collect();
    CliqueMap::from_assignment(&assignment)
}

/// Locality ratio of a traffic matrix under an assignment.
pub fn locality_of(tm: &[f64], n: usize, cliques: &CliqueMap) -> f64 {
    let mut intra = 0.0;
    let mut total = 0.0;
    for s in 0..n {
        for d in 0..n {
            let v = tm[s * n + d];
            total += v;
            if cliques.same_clique(NodeId(s as u32), NodeId(d as u32)) {
                intra += v;
            }
        }
    }
    if total == 0.0 {
        0.0
    } else {
        intra / total
    }
}

/// Tries every allowed clique size, greedily assigns cliques, and keeps
/// the plan with the best model throughput (ties broken toward smaller
/// cliques, which have lower intra-clique latency).
///
/// Locality is clamped to `max_locality` when deriving `q` so a
/// perfectly-split workload does not demand an unbounded
/// oversubscription ratio.
pub fn optimize(
    tm: &[f64],
    n: usize,
    allowed_sizes: &[usize],
    max_locality: f64,
) -> Option<OptimizedPlan> {
    let mut best: Option<OptimizedPlan> = None;
    for &c in allowed_sizes {
        if c == 0 || !n.is_multiple_of(c) || c > n {
            continue;
        }
        let cliques = assign_cliques(tm, n, c);
        let x_raw = locality_of(tm, n, &cliques);
        let x = x_raw.min(max_locality).max(0.0);
        let throughput = model::optimal_throughput(x);
        let q = Ratio::approximate(model::ideal_q(x), 1000);
        let better = match &best {
            None => true,
            Some(b) => throughput > b.throughput + 1e-12,
        };
        if better {
            best = Some(OptimizedPlan {
                cliques,
                locality: x_raw,
                q,
                throughput,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A block traffic matrix: heavy inside groups of `c`, light outside.
    fn block_tm(n: usize, c: usize, heavy: f64, light: f64) -> Vec<f64> {
        let mut tm = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                tm[s * n + d] = if s / c == d / c { heavy } else { light };
            }
        }
        tm
    }

    #[test]
    fn recovers_planted_blocks() {
        let n = 16;
        let tm = block_tm(n, 4, 10.0, 0.1);
        let map = assign_cliques(&tm, n, 4);
        // Every planted group must land in one clique.
        for g in 0..4 {
            let c = map.clique_of(NodeId((g * 4) as u32));
            for j in 1..4 {
                assert_eq!(map.clique_of(NodeId((g * 4 + j) as u32)), c, "group {g}");
            }
        }
        let x = locality_of(&tm, n, &map);
        assert!(x > 0.9, "locality {x}");
    }

    #[test]
    fn recovers_scrambled_blocks() {
        // Planted communities that are NOT contiguous: node i belongs to
        // community i % 4.
        let n = 16;
        let mut tm = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s != d && s % 4 == d % 4 {
                    tm[s * n + d] = 5.0;
                } else if s != d {
                    tm[s * n + d] = 0.05;
                }
            }
        }
        let map = assign_cliques(&tm, n, 4);
        for com in 0..4 {
            let members: Vec<NodeId> = (0..4).map(|j| NodeId((com + 4 * j) as u32)).collect();
            let c = map.clique_of(members[0]);
            for m in &members[1..] {
                assert_eq!(map.clique_of(*m), c);
            }
        }
    }

    #[test]
    fn optimize_picks_the_matching_size() {
        let n = 16;
        let tm = block_tm(n, 4, 10.0, 0.1);
        let plan = optimize(&tm, n, &[2, 4, 8], 0.95).unwrap();
        assert_eq!(plan.cliques.uniform_size(), Some(4));
        assert!(plan.locality > 0.9);
        assert!(plan.throughput > 0.48); // close to 1/(3-0.95)
    }

    #[test]
    fn optimize_clamps_locality_for_q() {
        let n = 8;
        // All traffic intra-block: raw locality 1.0 would give q = inf.
        let tm = block_tm(n, 4, 1.0, 0.0);
        let plan = optimize(&tm, n, &[4], 0.9).unwrap();
        assert!((plan.locality - 1.0).abs() < 1e-12);
        // q derived from the clamped 0.9: 2/0.1 = 20.
        assert!((plan.q.to_f64() - 20.0).abs() < 1e-6);
    }

    #[test]
    fn optimize_skips_invalid_sizes() {
        let n = 8;
        let tm = block_tm(n, 4, 1.0, 0.1);
        // 3 does not divide 8; 16 exceeds n.
        let plan = optimize(&tm, n, &[3, 16, 4], 0.9).unwrap();
        assert_eq!(plan.cliques.uniform_size(), Some(4));
        assert!(optimize(&tm, n, &[3], 0.9).is_none());
    }

    #[test]
    fn uniform_traffic_yields_low_locality() {
        let n = 16;
        let tm = block_tm(n, 1, 0.0, 1.0); // fully uniform
        let map = assign_cliques(&tm, n, 4);
        let x = locality_of(&tm, n, &map);
        // 3 intra partners of 15 total: x = 0.2.
        assert!((x - 0.2).abs() < 1e-9, "locality {x}");
    }

    #[test]
    fn assignment_is_deterministic() {
        let n = 12;
        let tm = block_tm(n, 3, 2.0, 0.3);
        let a = assign_cliques(&tm, n, 3);
        let b = assign_cliques(&tm, n, 3);
        assert_eq!(a, b);
    }
}
