//! The control-plane decision log.
//!
//! Every epoch the [`ControlLoop`](crate::ControlLoop) records what it
//! saw (estimated inter-clique demand), what it chose (the candidate
//! plan's q and clique sizes), and what happened (held, updated, or no
//! plan) — the §5 control plane's equivalent of a flight recorder.
//! Records serialize to JSON Lines for offline inspection next to the
//! data-plane run traces from `sorn-telemetry`.

use serde::{Deserialize, Serialize};
use std::io::{self, Write};
use std::path::Path;

/// What changed in the installed schedule when an update went out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDiff {
    /// Schedule period before the update.
    pub period_before: usize,
    /// Schedule period after the update.
    pub period_after: usize,
    /// NICs whose neighbor set changed (beyond pure bandwidth
    /// rebalancing).
    pub nics_changed: usize,
    /// Cells drained across all NICs during installation.
    pub drained_cells: u64,
    /// True when the update only rebalanced bandwidth shares.
    pub rebalance_only: bool,
    /// Modeled installation time.
    pub installation_ns: u64,
}

/// How the loop responded to reported failures (and to installation
/// trouble) during one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureResponse {
    /// Nodes reported failed when the epoch ended.
    pub failed_nodes: Vec<u32>,
    /// Directed links reported failed, as `[src, dst]`.
    pub failed_links: Vec<[u32; 2]>,
    /// Fraction of estimated demand masked out of the optimizer's input
    /// because an endpoint was failed.
    pub masked_demand_fraction: f64,
    /// Installation attempts made this epoch (0 = no install tried,
    /// 1 = clean install, >1 = retries happened).
    pub install_attempts: u32,
    /// Modeled backoff delay added by installation retries.
    pub install_backoff_ns: u64,
    /// True when installation was abandoned after the bounded retries.
    pub gave_up: bool,
}

/// One epoch's decision, as recorded by the control loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Epochs folded into the estimator when the decision was made.
    pub epoch: u64,
    /// `"no_plan"`, `"held"`, or `"updated"`.
    pub outcome: String,
    /// Total estimated demand (bytes) across the EWMA matrix.
    pub total_estimated_bytes: f64,
    /// Estimated demand aggregated between the cliques installed at
    /// decision time (row = source clique, column = destination).
    pub inter_clique_demand: Vec<Vec<f64>>,
    /// Modeled throughput of the configuration installed when the epoch
    /// ended.
    pub current_throughput: f64,
    /// Modeled throughput of the optimizer's best candidate, when one
    /// existed.
    pub candidate_throughput: Option<f64>,
    /// The candidate plan's traffic locality.
    pub candidate_locality: Option<f64>,
    /// The candidate plan's intra:inter slot ratio, as `[num, den]`.
    pub candidate_q: Option<[u64; 2]>,
    /// The candidate plan's clique sizes.
    pub candidate_clique_sizes: Option<Vec<usize>>,
    /// Populated when the candidate was installed.
    pub schedule_diff: Option<ScheduleDiff>,
    /// Populated when failures were reported or installation needed
    /// retries this epoch.
    pub failure_response: Option<FailureResponse>,
}

/// An append-only log of per-epoch control decisions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DecisionLog {
    /// The decisions, one per completed epoch, in order.
    pub records: Vec<DecisionRecord>,
}

impl DecisionLog {
    /// An empty log.
    pub fn new() -> Self {
        DecisionLog::default()
    }

    /// Appends one epoch's record.
    pub fn push(&mut self, record: DecisionRecord) {
        self.records.push(record);
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the log as JSON Lines, one record per line.
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&serde_json::to_string(r)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// Writes the log as a JSONL file at `path`.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let text = self
            .to_jsonl()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut f = std::fs::File::create(path)?;
        f.write_all(text.as_bytes())
    }

    /// Parses a log back from JSONL text; blank lines are skipped.
    pub fn parse_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let records = s
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(serde_json::from_str)
            .collect::<Result<Vec<DecisionRecord>, _>>()?;
        Ok(DecisionLog { records })
    }

    /// Exports the log's aggregate view into a metric registry under
    /// `sorn_control_*`: epochs by outcome, installation retry totals,
    /// and the latest epoch's modeled throughput and demand masking.
    pub fn export_metrics(&self, registry: &mut sorn_telemetry::MetricRegistry) {
        registry.set_counter("sorn_control_epochs_total", self.records.len() as u64);
        for outcome in ["no_plan", "held", "updated", "install_failed"] {
            let count = self.records.iter().filter(|r| r.outcome == outcome).count();
            registry.set_counter(
                &format!("sorn_control_epochs_{outcome}_total"),
                count as u64,
            );
        }
        let attempts: u64 = self
            .records
            .iter()
            .filter_map(|r| r.failure_response.as_ref())
            .map(|f| f.install_attempts as u64)
            .sum();
        let retries = attempts.saturating_sub(
            self.records
                .iter()
                .filter_map(|r| r.failure_response.as_ref())
                .filter(|f| f.install_attempts > 0)
                .count() as u64,
        );
        registry.set_counter("sorn_control_install_attempts_total", attempts);
        registry.set_counter("sorn_control_install_retries_total", retries);
        registry.set_counter(
            "sorn_control_install_abandoned_total",
            self.records
                .iter()
                .filter_map(|r| r.failure_response.as_ref())
                .filter(|f| f.gave_up)
                .count() as u64,
        );
        if let Some(last) = self.records.last() {
            registry.set_gauge("sorn_control_current_throughput", last.current_throughput);
            if let Some(f) = &last.failure_response {
                registry.set_gauge(
                    "sorn_control_masked_demand_fraction",
                    f.masked_demand_fraction,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epoch: u64, outcome: &str) -> DecisionRecord {
        DecisionRecord {
            epoch,
            outcome: outcome.to_string(),
            total_estimated_bytes: 1000.0,
            inter_clique_demand: vec![vec![0.0, 500.0], vec![500.0, 0.0]],
            current_throughput: 0.5,
            candidate_throughput: Some(0.6),
            candidate_locality: Some(0.8),
            candidate_q: Some([3, 1]),
            candidate_clique_sizes: Some(vec![4, 4]),
            schedule_diff: None,
            failure_response: Some(FailureResponse {
                failed_nodes: vec![3],
                failed_links: vec![[0, 1]],
                masked_demand_fraction: 0.25,
                install_attempts: 2,
                install_backoff_ns: 50_000_000,
                gave_up: false,
            }),
        }
    }

    #[test]
    fn log_accumulates_in_order() {
        let mut log = DecisionLog::new();
        assert!(log.is_empty());
        log.push(record(1, "held"));
        log.push(record(2, "updated"));
        assert_eq!(log.len(), 2);
        assert_eq!(log.records[0].epoch, 1);
        assert_eq!(log.records[1].outcome, "updated");
    }

    #[test]
    fn jsonl_has_one_line_per_record() {
        let mut log = DecisionLog::new();
        log.push(record(1, "held"));
        log.push(record(2, "updated"));
        let text = log.to_jsonl().unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn export_metrics_counts_outcomes_and_retries() {
        let mut log = DecisionLog::new();
        log.push(record(1, "held"));
        log.push(record(2, "updated"));
        log.push(record(3, "updated"));
        let mut reg = sorn_telemetry::MetricRegistry::new();
        log.export_metrics(&mut reg);
        assert_eq!(reg.counter("sorn_control_epochs_total"), Some(3));
        assert_eq!(reg.counter("sorn_control_epochs_updated_total"), Some(2));
        assert_eq!(reg.counter("sorn_control_epochs_held_total"), Some(1));
        assert_eq!(reg.counter("sorn_control_epochs_no_plan_total"), Some(0));
        // Each record's failure response made 2 attempts = 1 retry.
        assert_eq!(reg.counter("sorn_control_install_attempts_total"), Some(6));
        assert_eq!(reg.counter("sorn_control_install_retries_total"), Some(3));
        assert_eq!(reg.counter("sorn_control_install_abandoned_total"), Some(0));
        assert_eq!(reg.gauge("sorn_control_current_throughput"), Some(0.5));
        assert_eq!(reg.gauge("sorn_control_masked_demand_fraction"), Some(0.25));
    }

    #[test]
    fn jsonl_round_trips() {
        let mut log = DecisionLog::new();
        log.push(record(1, "no_plan"));
        log.push(record(2, "updated"));
        let text = log.to_jsonl().unwrap();
        let back = DecisionLog::parse_jsonl(&text).unwrap();
        assert_eq!(back, log);
    }
}
