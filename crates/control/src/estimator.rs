//! Macro-pattern estimation (§3, §5).
//!
//! The control plane does not try to predict flows. It maintains an
//! exponentially weighted moving average of the node-to-node traffic
//! matrix, observed per epoch (minutes to hours in deployment), and
//! derives from it the two macro-patterns a SORN consumes: the locality
//! ratio under a clique assignment and the aggregated clique-to-clique
//! matrix.

use sorn_sim::Flow;
use sorn_topology::{CliqueMap, NodeId};

/// EWMA estimator of the traffic matrix.
#[derive(Debug, Clone)]
pub struct PatternEstimator {
    n: usize,
    alpha: f64,
    /// EWMA bytes per (src, dst), row-major.
    ewma: Vec<f64>,
    /// Bytes observed in the current epoch.
    epoch: Vec<f64>,
    epochs_seen: u64,
}

impl PatternEstimator {
    /// Creates an estimator over `n` nodes with EWMA weight `alpha`
    /// (weight of the newest epoch; `1.0` = only the last epoch counts).
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]` or `n < 2`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n >= 2);
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        PatternEstimator {
            n,
            alpha,
            ewma: vec![0.0; n * n],
            epoch: vec![0.0; n * n],
            epochs_seen: 0,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Epochs folded so far.
    pub fn epochs_seen(&self) -> u64 {
        self.epochs_seen
    }

    /// Records observed flows into the current epoch buffer.
    pub fn observe_flows<'a>(&mut self, flows: impl IntoIterator<Item = &'a Flow>) {
        for f in flows {
            if f.src != f.dst && f.src.index() < self.n && f.dst.index() < self.n {
                self.epoch[f.src.index() * self.n + f.dst.index()] += f.size_bytes as f64;
            }
        }
    }

    /// Records one observed transfer directly.
    pub fn observe(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        if src != dst && src.index() < self.n && dst.index() < self.n {
            self.epoch[src.index() * self.n + dst.index()] += bytes as f64;
        }
    }

    /// Folds the epoch buffer into the EWMA and clears it.
    pub fn end_epoch(&mut self) {
        if self.epochs_seen == 0 {
            // Bootstrap: adopt the first epoch wholesale.
            self.ewma.copy_from_slice(&self.epoch);
        } else {
            for (e, cur) in self.ewma.iter_mut().zip(&self.epoch) {
                *e = (1.0 - self.alpha) * *e + self.alpha * cur;
            }
        }
        self.epoch.iter_mut().for_each(|v| *v = 0.0);
        self.epochs_seen += 1;
    }

    /// Estimated bytes from `s` to `d`.
    pub fn estimate(&self, s: NodeId, d: NodeId) -> f64 {
        self.ewma[s.index() * self.n + d.index()]
    }

    /// Total estimated traffic.
    pub fn total(&self) -> f64 {
        self.ewma.iter().sum()
    }

    /// Estimated locality ratio under a clique assignment.
    pub fn locality(&self, cliques: &CliqueMap) -> f64 {
        let mut intra = 0.0;
        let mut total = 0.0;
        for s in 0..self.n {
            for d in 0..self.n {
                let v = self.ewma[s * self.n + d];
                total += v;
                if cliques.same_clique(NodeId(s as u32), NodeId(d as u32)) {
                    intra += v;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            intra / total
        }
    }

    /// Aggregated clique-to-clique matrix (§3 "Aggregated Traffic
    /// Matrices"): entry `[a][b]` is the estimated bytes from clique `a`
    /// to clique `b` (diagonal = intra-clique bytes).
    pub fn clique_matrix(&self, cliques: &CliqueMap) -> Vec<Vec<f64>> {
        let k = cliques.cliques();
        let mut m = vec![vec![0.0; k]; k];
        for s in 0..self.n {
            for d in 0..self.n {
                let v = self.ewma[s * self.n + d];
                if v > 0.0 {
                    let a = cliques.clique_of(NodeId(s as u32)).index();
                    let b = cliques.clique_of(NodeId(d as u32)).index();
                    m[a][b] += v;
                }
            }
        }
        m
    }

    /// The raw estimated node matrix (row-major, `n*n`).
    pub fn matrix(&self) -> &[f64] {
        &self.ewma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;

    fn flow(src: u32, dst: u32, bytes: u64) -> Flow {
        Flow {
            id: FlowId(0),
            src: NodeId(src),
            dst: NodeId(dst),
            size_bytes: bytes,
            arrival_ns: 0,
        }
    }

    #[test]
    fn first_epoch_bootstraps() {
        let mut e = PatternEstimator::new(4, 0.1);
        e.observe(NodeId(0), NodeId(1), 1000);
        e.end_epoch();
        assert_eq!(e.estimate(NodeId(0), NodeId(1)), 1000.0);
        assert_eq!(e.epochs_seen(), 1);
    }

    #[test]
    fn ewma_converges_toward_new_pattern() {
        let mut e = PatternEstimator::new(4, 0.5);
        e.observe(NodeId(0), NodeId(1), 1000);
        e.end_epoch();
        // Pattern shifts: traffic moves to (0,2).
        for _ in 0..10 {
            e.observe(NodeId(0), NodeId(2), 1000);
            e.end_epoch();
        }
        assert!(e.estimate(NodeId(0), NodeId(2)) > 900.0);
        assert!(e.estimate(NodeId(0), NodeId(1)) < 10.0);
    }

    #[test]
    fn observe_flows_ignores_out_of_range_and_self() {
        let mut e = PatternEstimator::new(4, 1.0);
        e.observe_flows(&[flow(0, 0, 500), flow(0, 9, 500), flow(1, 2, 700)]);
        e.end_epoch();
        assert_eq!(e.total(), 700.0);
    }

    #[test]
    fn locality_and_clique_matrix() {
        let map = CliqueMap::contiguous(4, 2);
        let mut e = PatternEstimator::new(4, 1.0);
        e.observe(NodeId(0), NodeId(1), 300); // intra clique 0
        e.observe(NodeId(0), NodeId(2), 100); // inter 0 -> 1
        e.end_epoch();
        assert!((e.locality(&map) - 0.75).abs() < 1e-12);
        let cm = e.clique_matrix(&map);
        assert_eq!(cm[0][0], 300.0);
        assert_eq!(cm[0][1], 100.0);
        assert_eq!(cm[1][0], 0.0);
    }

    #[test]
    fn empty_estimator_locality_is_zero() {
        let e = PatternEstimator::new(4, 0.5);
        let map = CliqueMap::contiguous(4, 2);
        assert_eq!(e.locality(&map), 0.0);
    }
}
