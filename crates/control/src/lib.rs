//! # sorn-control
//!
//! The semi-oblivious control plane (§5 of the paper): a logically
//! centralized loop that periodically adapts the circuit schedule to
//! macro-scale traffic structure — without ever scheduling individual
//! flows.
//!
//! Pipeline, one epoch at a time (minutes to hours in deployment):
//!
//! 1. [`PatternEstimator`] — EWMA of the observed node-to-node traffic
//!    matrix; derives locality ratios and clique-aggregated matrices.
//! 2. [`optimizer`] — greedy clique assignment over the allowed clique
//!    sizes (from the AWGR expressivity analysis), maximizing the model
//!    throughput `1/(3 − x)`.
//! 3. [`ControlLoop`] — installs a new plan only when it clears a
//!    hysteresis threshold, since §6 stresses robustness to estimation
//!    error over chasing noise.
//! 4. [`ScheduleUpdater`] — builds the schedule, diffs every node's NIC
//!    state (Figure 2(c)), verifies the fixed-neighbor-superset property,
//!    counts drained cells, and models installation time.
//!
//! Every completed epoch also lands in a [`DecisionLog`]: the estimated
//! inter-clique demand, the candidate plan, and the installed diff, all
//! exportable as JSON Lines for offline analysis.

#![warn(missing_docs)]

mod control_loop;
mod decision;
mod estimator;
pub mod optimizer;
mod updater;

pub use control_loop::{ControlConfig, ControlLoop, EpochOutcome};
pub use decision::{DecisionLog, DecisionRecord, FailureResponse, ScheduleDiff};
pub use estimator::PatternEstimator;
pub use optimizer::{assign_cliques, locality_of, optimize, OptimizedPlan};
pub use updater::{ScheduleUpdater, UpdatePlan, UpdateTiming};
