//! Schedule installation (§5 "Adapting the Topology").
//!
//! Updates are infrequent (minutes to hours) and installed by a logically
//! centralized control plane within seconds (Orion-style [9]). The
//! updater builds the new schedule, diffs every node's NIC state against
//! it (Figure 2(c)), and reports the cost: whether the update was a pure
//! bandwidth rebalance over the fixed neighbor superset, how many queued
//! cells sat toward removed neighbors, and a simple installation-time
//! model (per-node state write plus a synchronization barrier).

use sorn_core::nic::{NicState, NicUpdateReport};
use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
use sorn_topology::{CircuitSchedule, CliqueMap, NodeId, Ratio, TopologyError};

/// Timing model for an update installation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateTiming {
    /// Time to write one node's schedule state (wavelength table +
    /// routing entries), nanoseconds.
    pub per_node_ns: u64,
    /// Fabric-wide synchronization barrier, nanoseconds.
    pub barrier_ns: u64,
    /// Nodes updated in parallel per control-plane round.
    pub parallelism: usize,
}

impl Default for UpdateTiming {
    fn default() -> Self {
        UpdateTiming {
            per_node_ns: 1_000_000,  // 1 ms per node state write
            barrier_ns: 100_000_000, // 100 ms synchronization
            parallelism: 64,
        }
    }
}

/// A prepared schedule update.
#[derive(Debug, Clone)]
pub struct UpdatePlan {
    /// The schedule to install.
    pub schedule: CircuitSchedule,
    /// The clique map it was built for.
    pub cliques: CliqueMap,
    /// The oversubscription ratio it realizes.
    pub q: Ratio,
    /// Per-node NIC diffs.
    pub reports: Vec<NicUpdateReport>,
    /// Total cells queued toward neighbors that lost all slots.
    pub total_drained: u64,
    /// True when every node's update was a pure rebalance (the cheap
    /// path §5 designs for).
    pub rebalance_only: bool,
    /// Modeled installation time in nanoseconds.
    pub installation_ns: u64,
}

/// Builds and diffs schedule updates.
#[derive(Debug, Clone)]
pub struct ScheduleUpdater {
    timing: UpdateTiming,
}

impl ScheduleUpdater {
    /// An updater with the given timing model.
    pub fn new(timing: UpdateTiming) -> Self {
        ScheduleUpdater { timing }
    }

    /// Prepares an update from `old` (with live NIC queue state) to a new
    /// SORN schedule over `cliques` at ratio `q`, mutating the given NIC
    /// states as the install would.
    pub fn prepare(
        &self,
        nics: &mut [NicState],
        cliques: &CliqueMap,
        q: Ratio,
    ) -> Result<UpdatePlan, TopologyError> {
        let schedule = sorn_schedule(cliques, &SornScheduleParams::with_q(q))?;
        let mut reports = Vec::with_capacity(nics.len());
        let mut total_drained = 0;
        let mut rebalance_only = true;
        for nic in nics.iter_mut() {
            let r = nic.apply_update(&schedule);
            total_drained += r.drained_cells;
            rebalance_only &= r.is_rebalance_only();
            reports.push(r);
        }
        let n = nics.len().max(1);
        let rounds = n.div_ceil(self.timing.parallelism) as u64;
        let installation_ns = rounds * self.timing.per_node_ns + self.timing.barrier_ns;
        Ok(UpdatePlan {
            schedule,
            cliques: cliques.clone(),
            q,
            reports,
            total_drained,
            rebalance_only,
            installation_ns,
        })
    }

    /// Extracts fresh NIC states from a schedule (deployment bootstrap).
    pub fn bootstrap_nics(schedule: &CircuitSchedule) -> Vec<NicState> {
        (0..schedule.n())
            .map(|v| NicState::from_schedule(schedule, NodeId(v as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(q: u64, cliques: usize) -> (CircuitSchedule, CliqueMap) {
        let map = CliqueMap::contiguous(8, cliques);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(q))).unwrap();
        (s, map)
    }

    #[test]
    fn rebalance_update_is_cheap() {
        let (old, map) = build(3, 2);
        let mut nics = ScheduleUpdater::bootstrap_nics(&old);
        nics[0].set_queue_depth(NodeId(1), 42);
        let updater = ScheduleUpdater::new(UpdateTiming::default());
        // Same cliques, new q: pure rebalance.
        let plan = updater.prepare(&mut nics, &map, Ratio::integer(1)).unwrap();
        assert!(plan.rebalance_only);
        assert_eq!(plan.total_drained, 0);
        assert_eq!(plan.reports.len(), 8);
        // Queue state survived.
        assert_eq!(nics[0].neighbor(NodeId(1)).unwrap().queued_cells, 42);
    }

    #[test]
    fn regrouping_reports_drains() {
        let (old, _) = build(3, 2);
        let mut nics = ScheduleUpdater::bootstrap_nics(&old);
        // Node 0 has cells queued toward its inter neighbor 4.
        nics[0].set_queue_depth(NodeId(4), 9);
        // New grouping: 4 cliques of 2; node 0's neighbors change.
        let new_map = CliqueMap::contiguous(8, 4);
        let updater = ScheduleUpdater::new(UpdateTiming::default());
        let plan = updater
            .prepare(&mut nics, &new_map, Ratio::integer(1))
            .unwrap();
        assert!(!plan.rebalance_only);
        // Neighbor 4 survives in the new topology (0 and 4 share intra
        // index 0 across cliques 0 and 2): check drain accounting against
        // the actual report rather than assuming.
        let drained: u64 = plan.reports.iter().map(|r| r.drained_cells).sum();
        assert_eq!(plan.total_drained, drained);
    }

    #[test]
    fn installation_time_scales_with_rounds() {
        let (old, map) = build(3, 2);
        let mut nics = ScheduleUpdater::bootstrap_nics(&old);
        let timing = UpdateTiming {
            per_node_ns: 1_000,
            barrier_ns: 10_000,
            parallelism: 4,
        };
        let updater = ScheduleUpdater::new(timing);
        let plan = updater.prepare(&mut nics, &map, Ratio::integer(2)).unwrap();
        // 8 nodes / 4 parallel = 2 rounds * 1000 + 10000 barrier.
        assert_eq!(plan.installation_ns, 12_000);
    }

    #[test]
    fn bootstrap_covers_all_nodes() {
        let (old, _) = build(3, 2);
        let nics = ScheduleUpdater::bootstrap_nics(&old);
        assert_eq!(nics.len(), 8);
        for (i, nic) in nics.iter().enumerate() {
            assert_eq!(nic.node(), NodeId(i as u32));
            assert!(nic.neighbor_count() > 0);
        }
    }
}
