//! # sorn-topology
//!
//! Circuit-switched topology substrate for semi-oblivious reconfigurable
//! datacenter networks (SORN, HotNets '24).
//!
//! Reconfigurable datacenter networks time-share optical circuit switch
//! ports across a *schedule of matchings* to emulate a static logical
//! topology (§2 of the paper). This crate provides:
//!
//! - [`Matching`] and [`CircuitSchedule`]: the core schedule abstraction,
//!   including worst-case circuit-wait queries that underlie the paper's
//!   *intrinsic latency* metric.
//! - [`builders`]: schedule constructions for every topology family the
//!   paper evaluates — flat round robin (Figure 1 / Sirius),
//!   h-dimensional optimal ORNs, semi-oblivious clique schedules
//!   (Figure 2(d)/(e)), and gravity-weighted inter-clique schedules.
//! - [`expander`]: Opera-style rotating expanders (baseline).
//! - [`awgr`]: the wavelength-routed physical-layer model and the §5
//!   expressivity analysis.
//!
//! ## Example
//!
//! Build Figure 2(d)'s topology A — 8 nodes, two cliques of four, with
//! three quarters of each node's bandwidth kept inside its clique:
//!
//! ```
//! use sorn_topology::{CliqueMap, NodeId, Ratio};
//! use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
//!
//! let cliques = CliqueMap::contiguous(8, 2);
//! let params = SornScheduleParams::with_q(Ratio::integer(3));
//! let schedule = sorn_schedule(&cliques, &params).unwrap();
//!
//! assert_eq!(schedule.period(), 4);
//! let topo = schedule.logical_topology();
//! // Intra-clique virtual edges get 3x the inter-clique bandwidth.
//! let intra: f64 = (1..4).map(|d| topo.capacity(NodeId(0), NodeId(d))).sum();
//! let inter: f64 = (4..8).map(|d| topo.capacity(NodeId(0), NodeId(d))).sum();
//! assert!((intra / inter - 3.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod awgr;
pub mod builders;
mod error;
pub mod expander;
pub mod graph;
mod matching;
mod node;
mod rational;
mod schedule;

pub use error::{Result, TopologyError};
pub use matching::Matching;
pub use node::{CliqueId, CliqueMap, NodeId};
pub use rational::Ratio;
pub use schedule::{CircuitSchedule, LogicalTopology, StaggeredSchedule};
