//! Opera-style rotating expander topologies (baseline substrate).
//!
//! Opera \[18\] shortens the circuit schedule by giving each ToR `u` uplinks
//! that slowly rotate through a family of matchings; at every instant the
//! union of the active uplink matchings forms a `u`-regular expander, and
//! latency-sensitive traffic rides multi-hop expander paths while bulk
//! traffic waits for direct (rotor) circuits. A quarter of the uplinks are
//! reconfiguring at any given time in the Table 1 configuration, so only
//! `3u/4` matchings are simultaneously usable.

use crate::error::{invalid, Result};
use crate::graph::DiGraph;
use crate::matching::Matching;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A rotating-matching expander network in the style of Opera.
#[derive(Debug, Clone)]
pub struct RotorExpander {
    n: usize,
    uplinks: usize,
    matchings: Vec<Matching>,
}

impl RotorExpander {
    /// Samples a rotor expander over `n` nodes with `uplinks` planes.
    ///
    /// Generates `n - 1` random perfect matchings (fixed-point-free
    /// permutations) with a seeded RNG; uplink `j` starts `j·(n-1)/u`
    /// positions into the rotation so the active set is spread across the
    /// family, as in Opera's offline matching selection.
    pub fn sample(n: usize, uplinks: usize, seed: u64) -> Result<Self> {
        if n < 4 {
            return Err(invalid("n", "rotor expander needs at least 4 nodes"));
        }
        if uplinks == 0 || uplinks >= n {
            return Err(invalid("uplinks", "must be in 1..n"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let matchings = (0..n - 1)
            .map(|_| random_perfect_matching(n, &mut rng))
            .collect();
        Ok(RotorExpander {
            n,
            uplinks,
            matchings,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of uplinks (planes) per node.
    pub fn uplinks(&self) -> usize {
        self.uplinks
    }

    /// The full matching family being rotated through.
    pub fn matchings(&self) -> &[Matching] {
        &self.matchings
    }

    /// Matching index used by uplink `j` at rotation epoch `e`.
    pub fn matching_index(&self, epoch: u64, uplink: usize) -> usize {
        let m = self.matchings.len();
        ((epoch as usize) + uplink * m / self.uplinks) % m
    }

    /// Uplinks that are *reconfiguring* (down) at epoch `e`, given that a
    /// fraction `1/reconfig_groups` of uplinks reconfigures at a time.
    ///
    /// Uplink `j` is down when `e mod reconfig_groups == j mod
    /// reconfig_groups` — uplinks take turns in groups, as in Opera.
    pub fn reconfiguring(&self, epoch: u64, reconfig_groups: usize) -> Vec<usize> {
        if reconfig_groups == 0 {
            return Vec::new();
        }
        (0..self.uplinks)
            .filter(|j| (epoch as usize) % reconfig_groups == j % reconfig_groups)
            .collect()
    }

    /// The expander graph available at epoch `e`: the union of all active
    /// uplink matchings, skipping uplinks that are reconfiguring.
    pub fn graph_at(&self, epoch: u64, reconfig_groups: usize) -> DiGraph {
        let down = self.reconfiguring(epoch, reconfig_groups);
        let mut g = DiGraph::new(self.n);
        for j in 0..self.uplinks {
            if down.contains(&j) {
                continue;
            }
            let m = &self.matchings[self.matching_index(epoch, j)];
            for (s, d) in m.circuits() {
                g.add_edge(s, d);
            }
        }
        g
    }

    /// Mean shortest-path length of the active expander, averaged over
    /// `epochs` rotation steps. This is the statistic behind Opera's
    /// normalized bandwidth cost in Table 1.
    pub fn mean_path_length(&self, epochs: u64, reconfig_groups: usize) -> Option<f64> {
        let mut total = 0.0;
        for e in 0..epochs {
            total += self.graph_at(e, reconfig_groups).mean_path_length()?;
        }
        Some(total / epochs as f64)
    }

    /// Maximum hop count needed by the active expander (its diameter),
    /// averaged epochs not taken: returns the worst diameter over the
    /// sampled epochs.
    pub fn worst_diameter(&self, epochs: u64, reconfig_groups: usize) -> Option<u32> {
        let mut worst = 0;
        for e in 0..epochs {
            worst = worst.max(self.graph_at(e, reconfig_groups).diameter()?);
        }
        Some(worst)
    }
}

/// Samples a uniformly random fixed-point-free permutation (perfect
/// matching) by shuffling and repairing fixed points with swaps.
fn random_perfect_matching(n: usize, rng: &mut StdRng) -> Matching {
    let mut dst: Vec<u32> = (0..n as u32).collect();
    dst.shuffle(rng);
    // Repair fixed points: swap each with a neighbor position; a single
    // pass leaves at most one fixed point, the final swap clears it.
    for i in 0..n {
        if dst[i] == i as u32 {
            let j = if i + 1 < n { i + 1 } else { 0 };
            dst.swap(i, j);
        }
    }
    // The wrap swap could have re-created a fixed point at position 0's
    // partner; verify and fall back to a rotation of the identity if the
    // repair failed (vanishingly rare, but determinism beats retry loops).
    let fixed = dst.iter().enumerate().any(|(i, &d)| d == i as u32);
    if fixed {
        let rot: Vec<u32> = (0..n).map(|i| ((i + 1) % n) as u32).collect();
        return Matching::from_permutation(rot).expect("rotation is a permutation");
    }
    Matching::from_permutation(dst).expect("repaired shuffle is a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn sampled_matchings_are_perfect() {
        let ex = RotorExpander::sample(64, 8, 7).unwrap();
        assert_eq!(ex.matchings().len(), 63);
        for m in ex.matchings() {
            assert!(m.is_perfect());
        }
    }

    #[test]
    fn rotation_spreads_uplinks() {
        let ex = RotorExpander::sample(16, 4, 1).unwrap();
        let idx: Vec<usize> = (0..4).map(|j| ex.matching_index(0, j)).collect();
        // 15 matchings / 4 uplinks: offsets 0, 3, 7, 11.
        assert_eq!(idx, vec![0, 3, 7, 11]);
        // Advancing the epoch shifts all indices by one.
        let idx1: Vec<usize> = (0..4).map(|j| ex.matching_index(1, j)).collect();
        assert_eq!(idx1, vec![1, 4, 8, 12]);
    }

    #[test]
    fn active_expander_has_low_diameter() {
        // 128 nodes, 8 uplinks, 1/4 reconfiguring => 6 active matchings.
        let ex = RotorExpander::sample(128, 8, 42).unwrap();
        let g = ex.graph_at(0, 4);
        // Every node keeps close to 6 active out-edges (random matchings
        // occasionally duplicate an edge, which the graph deduplicates).
        for v in 0..128u32 {
            let deg = g.degree(NodeId(v));
            assert!((4..=6).contains(&deg), "node {v} degree {deg}");
        }
        let diam = g.diameter().expect("expander should be connected");
        assert!(
            diam <= 5,
            "diameter {diam} too large for a 6-regular expander"
        );
    }

    #[test]
    fn mean_path_length_is_logarithmic() {
        let ex = RotorExpander::sample(128, 8, 3).unwrap();
        let mpl = ex.mean_path_length(4, 4).unwrap();
        assert!(mpl > 1.0 && mpl < 4.5, "mean path length {mpl} implausible");
    }

    #[test]
    fn reconfiguring_groups_take_turns() {
        let ex = RotorExpander::sample(32, 8, 9).unwrap();
        let down0 = ex.reconfiguring(0, 4);
        let down1 = ex.reconfiguring(1, 4);
        assert_eq!(down0, vec![0, 4]);
        assert_eq!(down1, vec![1, 5]);
        // A quarter of uplinks down at any epoch.
        assert_eq!(down0.len(), 2);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(RotorExpander::sample(2, 1, 0).is_err());
        assert!(RotorExpander::sample(16, 0, 0).is_err());
        assert!(RotorExpander::sample(16, 16, 0).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = RotorExpander::sample(32, 4, 5).unwrap();
        let b = RotorExpander::sample(32, 4, 5).unwrap();
        assert_eq!(a.matchings(), b.matchings());
    }
}
