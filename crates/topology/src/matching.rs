//! Matchings: single-slot circuit configurations of the OCS layer.
//!
//! In a wavelength-routed optical circuit switch (paper §4, Figure 2(a)),
//! each wavelength `λi` implements a *matching* `mi` between input and
//! output ports: a permutation that connects every source node to exactly
//! one destination node for the duration of a time slot. A node mapped to
//! itself holds no circuit in that slot (it is idle).

use crate::error::{Result, TopologyError};
use crate::node::NodeId;

/// A matching between `n` nodes: a permutation `src -> dst`.
///
/// Entries with `dst == src` denote an idle port (no circuit). The paper's
/// example setup (Figure 2(b)) uses the *cyclic* family
/// `m_k(s) = (s + k) mod n`, which wavelength-routed AWGRs provide
/// naturally; arbitrary permutations are supported for generality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matching {
    dst: Vec<u32>,
}

impl Matching {
    /// Builds a matching from an explicit destination vector.
    ///
    /// `dst[i]` is the node that node `i` connects to. The vector must be a
    /// permutation of `0..dst.len()`.
    pub fn from_permutation(dst: Vec<u32>) -> Result<Self> {
        let n = dst.len();
        let mut seen = vec![false; n];
        for &d in &dst {
            if (d as usize) >= n || seen[d as usize] {
                return Err(TopologyError::NotAPermutation { n, dup: d });
            }
            seen[d as usize] = true;
        }
        Ok(Matching { dst })
    }

    /// The cyclic matching `m_k`: node `i` connects to `(i + k) mod n`.
    ///
    /// `k = 0` is the identity matching (all ports idle). The round-robin
    /// schedule of Figure 1 cycles `k` through `1..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn cyclic(n: usize, k: usize) -> Self {
        assert!(n > 0, "matching needs at least one node");
        let dst = (0..n).map(|i| ((i + k) % n) as u32).collect();
        Matching { dst }
    }

    /// The identity matching (every port idle).
    pub fn identity(n: usize) -> Self {
        Matching::cyclic(n, 0)
    }

    /// Number of nodes (ports).
    #[inline]
    pub fn n(&self) -> usize {
        self.dst.len()
    }

    /// Destination of `src` under this matching.
    ///
    /// Returns `None` when the port is idle (mapped to itself).
    #[inline]
    pub fn dst_of(&self, src: NodeId) -> Option<NodeId> {
        let d = self.dst[src.index()];
        if d as usize == src.index() {
            None
        } else {
            Some(NodeId(d))
        }
    }

    /// Destination of `src`, treating an idle port as a self-loop.
    #[inline]
    pub fn raw_dst(&self, src: NodeId) -> NodeId {
        NodeId(self.dst[src.index()])
    }

    /// Source that reaches `dst` under this matching, if any.
    pub fn src_of(&self, dst: NodeId) -> Option<NodeId> {
        // Matchings are permutations, so invert by scan; callers that need
        // repeated inversion should build an inverse once via `invert`.
        self.dst
            .iter()
            .position(|&d| d == dst.0)
            .map(NodeId::from)
            .filter(|&s| s != dst)
    }

    /// The inverse matching (`dst -> src`).
    pub fn invert(&self) -> Matching {
        let mut inv = vec![0u32; self.dst.len()];
        for (s, &d) in self.dst.iter().enumerate() {
            inv[d as usize] = s as u32;
        }
        Matching { dst: inv }
    }

    /// True when this matching connects `src` to `dst`.
    #[inline]
    pub fn connects(&self, src: NodeId, dst: NodeId) -> bool {
        src != dst && self.dst[src.index()] == dst.0
    }

    /// Iterates over active circuits `(src, dst)` (idle ports skipped).
    pub fn circuits(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.dst
            .iter()
            .enumerate()
            .filter(|(s, &d)| *s != d as usize)
            .map(|(s, &d)| (NodeId(s as u32), NodeId(d)))
    }

    /// Number of active (non-idle) circuits.
    pub fn active_circuits(&self) -> usize {
        self.circuits().count()
    }

    /// True when no port is idle.
    pub fn is_perfect(&self) -> bool {
        self.dst.iter().enumerate().all(|(s, &d)| s != d as usize)
    }

    /// True when this is the identity (all ports idle).
    pub fn is_identity(&self) -> bool {
        self.dst.iter().enumerate().all(|(s, &d)| s == d as usize)
    }

    /// Raw destination slice (`dst[i]` = destination of node `i`).
    pub fn as_slice(&self) -> &[u32] {
        &self.dst
    }

    /// Composes two matchings: `self.compose(&g)` maps `i` to `g(self(i))`.
    ///
    /// Useful for reasoning about multi-hop reachability within a schedule.
    pub fn compose(&self, g: &Matching) -> Result<Matching> {
        if self.n() != g.n() {
            return Err(TopologyError::SizeMismatch {
                expected: self.n(),
                actual: g.n(),
            });
        }
        let dst = self.dst.iter().map(|&mid| g.dst[mid as usize]).collect();
        Matching::from_permutation(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_matchings_match_paper_figure_2b() {
        // Figure 2(b): for 8 nodes, matching m1 sends node s to s+1, etc.
        let n = 8;
        for k in 1..=5 {
            let m = Matching::cyclic(n, k);
            for s in 0..n as u32 {
                assert_eq!(
                    m.dst_of(NodeId(s)),
                    Some(NodeId(((s as usize + k) % n) as u32))
                );
            }
            assert!(m.is_perfect());
        }
    }

    #[test]
    fn identity_is_all_idle() {
        let m = Matching::identity(5);
        assert!(m.is_identity());
        assert!(!m.is_perfect());
        assert_eq!(m.active_circuits(), 0);
        assert_eq!(m.dst_of(NodeId(2)), None);
    }

    #[test]
    fn from_permutation_rejects_duplicates_and_range() {
        assert!(Matching::from_permutation(vec![0, 0, 2]).is_err());
        assert!(Matching::from_permutation(vec![0, 5, 2]).is_err());
        assert!(Matching::from_permutation(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn invert_round_trips() {
        let m = Matching::cyclic(7, 3);
        let inv = m.invert();
        for i in 0..7u32 {
            let d = m.raw_dst(NodeId(i));
            assert_eq!(inv.raw_dst(d), NodeId(i));
        }
    }

    #[test]
    fn src_of_finds_the_unique_source() {
        let m = Matching::cyclic(6, 2);
        assert_eq!(m.src_of(NodeId(0)), Some(NodeId(4)));
        assert_eq!(m.src_of(NodeId(5)), Some(NodeId(3)));
        let id = Matching::identity(4);
        assert_eq!(id.src_of(NodeId(1)), None);
    }

    #[test]
    fn connects_is_directional_and_ignores_self() {
        let m = Matching::cyclic(4, 1);
        assert!(m.connects(NodeId(0), NodeId(1)));
        assert!(!m.connects(NodeId(1), NodeId(0)));
        let id = Matching::identity(4);
        assert!(!id.connects(NodeId(2), NodeId(2)));
    }

    #[test]
    fn compose_adds_cyclic_shifts() {
        let a = Matching::cyclic(10, 3);
        let b = Matching::cyclic(10, 4);
        let c = a.compose(&b).unwrap();
        assert_eq!(c, Matching::cyclic(10, 7));
    }

    #[test]
    fn compose_rejects_size_mismatch() {
        let a = Matching::cyclic(4, 1);
        let b = Matching::cyclic(5, 1);
        assert!(a.compose(&b).is_err());
    }

    #[test]
    fn circuits_enumerates_active_pairs() {
        let m = Matching::cyclic(3, 1);
        let pairs: Vec<_> = m.circuits().collect();
        assert_eq!(
            pairs,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(0))
            ]
        );
    }
}
