//! Schedule builders for every topology family the paper evaluates.
//!
//! - [`round_robin`]: the flat 1D round robin of Figure 1 (Sirius-like).
//! - [`sorn_schedule`]: the semi-oblivious two-level clique schedule of
//!   §4 — `q` units of intra-clique bandwidth per unit of inter-clique
//!   bandwidth, with inter circuits aligned by intra index
//!   (Figure 2(d)/(e)).
//! - [`nonuniform_sorn_schedule`]: §5 expressivity — cliques of unequal
//!   sizes, with a global rotation block for full cross-clique reach.
//! - [`hierarchical_schedule`]: §6 multi-level generalization — one
//!   digit-shift family per hierarchy level, slot counts split by
//!   integer weights.
//! - [`gravity_schedule`]: §5/§6 gravity-weighted inter-clique
//!   bandwidth via a Birkhoff–von-Neumann decomposition of the
//!   clique-level demand aggregate ([`GravityWeights`]).
//! - [`hdim_orn`]: h-dimensional optimal oblivious ORN schedules
//!   (the latency-throughput tradeoff baseline, §2).
//!
//! All builders produce a [`CircuitSchedule`] whose slot sequence
//! spreads each matching family as evenly as possible across the
//! period, which keeps the worst-case circuit wait (the paper's
//! intrinsic latency `δm`) near its ideal value.

use crate::error::{invalid, Result, TopologyError};
use crate::graph::bipartite_matching;
use crate::matching::Matching;
use crate::node::{CliqueMap, NodeId};
use crate::rational::Ratio;
use crate::schedule::CircuitSchedule;

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Smallest `t` such that `unit | value * t` (and `t >= 1`).
fn stretch(value: u64, unit: u64) -> u64 {
    if unit == 0 {
        1
    } else {
        unit / gcd(value, unit)
    }
}

/// Merges several slot streams so that each stream's entries are spread
/// as evenly as possible across the combined sequence. Each stream's
/// `k`-th entry has deadline `(k + 1) / len` (its ideal fraction of the
/// period); the earliest deadline goes next, ties broken toward the
/// earlier stream. Streams drain exactly; order within a stream is kept.
fn interleave(streams: Vec<Vec<usize>>) -> Vec<usize> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut next = vec![0usize; streams.len()];
    let mut out = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (i, s) in streams.iter().enumerate() {
            if next[i] >= s.len() {
                continue;
            }
            let better = match best {
                None => true,
                // deadline_i < deadline_b, cross-multiplied.
                Some(b) => {
                    ((next[i] + 1) as u128) * (streams[b].len() as u128)
                        < ((next[b] + 1) as u128) * (s.len() as u128)
                }
            };
            if better {
                best = Some(i);
            }
        }
        let b = best.expect("streams drain exactly at the end");
        out.push(streams[b][next[b]]);
        next[b] += 1;
    }
    out
}

/// The flat 1D round-robin schedule of Figure 1: `n - 1` slots cycling
/// the matchings `m_1 .. m_{n-1}`, connecting every ordered pair exactly
/// once per period.
///
/// # Errors
/// Fails when `n < 2`.
pub fn round_robin(n: usize) -> Result<CircuitSchedule> {
    if n < 2 {
        return Err(invalid("n", "round robin needs at least 2 nodes"));
    }
    let matchings = (1..n).map(|k| Matching::cyclic(n, k)).collect();
    CircuitSchedule::from_matchings(matchings)
}

/// Parameters for [`sorn_schedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SornScheduleParams {
    /// Intra- to inter-clique bandwidth ratio `q` (§4), kept exact so
    /// slot counts come out as integers.
    pub q: Ratio,
    /// Upper bound on the schedule period, guarding against ratios whose
    /// exact realization would need an impractically long period.
    pub max_period: usize,
}

impl SornScheduleParams {
    /// Parameters with ratio `q` and the default period bound (`2^22`).
    pub fn with_q(q: Ratio) -> Self {
        SornScheduleParams {
            q,
            max_period: 1 << 22,
        }
    }
}

/// Builds the semi-oblivious clique schedule of §4 over uniform cliques.
///
/// With clique size `s` and `c` cliques, the schedule cycles the `s - 1`
/// intra-clique rotations and the `c - 1` inter-clique rotations
/// (aligned by intra index: the node at offset `j` of clique `a` links
/// to the node at offset `j` of clique `a + r`), giving intra circuits
/// exactly `q` times the slots of inter circuits. Inter slots are spread
/// evenly through the period.
///
/// Degenerate shapes: a single clique yields the intra rotation alone
/// (a flat round robin of the clique), and singleton cliques yield the
/// inter rotation alone; `q` is ignored in both cases since only one
/// circuit family exists.
///
/// ```
/// use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
/// use sorn_topology::{CliqueMap, NodeId, Ratio};
///
/// // Figure 2(d) topology A: 2 cliques of 4, q = 3.
/// let map = CliqueMap::contiguous(8, 2);
/// let s = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
/// assert_eq!(s.period(), 4);
/// // Node 0: intra neighbors 1,2,3 and the aligned inter neighbor 4.
/// let topo = s.logical_topology();
/// for d in [1u32, 2, 3, 4] {
///     assert!((topo.capacity(NodeId(0), NodeId(d)) - 0.25).abs() < 1e-12);
/// }
/// ```
///
/// # Errors
/// Fails when the map is not uniform (use [`nonuniform_sorn_schedule`]),
/// has fewer than 2 nodes, or the exact realization of `q` exceeds
/// `params.max_period`.
pub fn sorn_schedule(map: &CliqueMap, params: &SornScheduleParams) -> Result<CircuitSchedule> {
    let n = map.n();
    if n < 2 {
        return Err(invalid("map", "schedule needs at least 2 nodes"));
    }
    let Some(s) = map.uniform_size() else {
        return Err(TopologyError::NotRealizable {
            reason: "sorn_schedule requires uniform cliques; use nonuniform_sorn_schedule".into(),
        });
    };
    let c = map.cliques();
    let intra = intra_rotations(map, s);
    let inter = aligned_inter_rotations(map, c);

    if c == 1 || s == 1 {
        // Only one circuit family exists; q is moot.
        let only = if c == 1 { intra } else { inter };
        return CircuitSchedule::from_matchings(only);
    }

    let q = params.q;
    let t = lcm(
        stretch(q.num(), (s - 1) as u64),
        stretch(q.den(), (c - 1) as u64),
    );
    let intra_slots = q.num() * t;
    let inter_slots = q.den() * t;
    let period = intra_slots + inter_slots;
    if period > params.max_period as u64 {
        return Err(invalid(
            "max_period",
            format!("exact q={q} needs period {period} > {}", params.max_period),
        ));
    }

    let pool_split = intra.len();
    let mut pool = intra;
    pool.extend(inter);
    let intra_stream = cycle_indices(0, pool_split, intra_slots as usize);
    let inter_stream = cycle_indices(pool_split, pool.len() - pool_split, inter_slots as usize);
    CircuitSchedule::new(pool, interleave(vec![intra_stream, inter_stream]))
}

/// The `s - 1` per-clique rotation matchings (offset `j` to offset
/// `j + k mod s_clique` within each clique). For non-uniform maps, a
/// clique of size `s'` idles in rotations with `k % s' == 0`.
fn intra_rotations(map: &CliqueMap, s_max: usize) -> Vec<Matching> {
    let n = map.n();
    (1..s_max)
        .map(|k| {
            let mut dst: Vec<u32> = (0..n as u32).collect();
            for (node, clique) in map.iter() {
                let size = map.clique_size(clique);
                let j = map.intra_index(node) as usize;
                let to = map
                    .node_at(clique, ((j + k) % size) as u32)
                    .expect("rotation stays in clique");
                dst[node.index()] = to.0;
            }
            Matching::from_permutation(dst).expect("per-clique rotation is a permutation")
        })
        .collect()
}

/// The `c - 1` index-aligned inter-clique rotation matchings over a
/// uniform map: offset `j` of clique `a` to offset `j` of clique
/// `a + r mod c`.
fn aligned_inter_rotations(map: &CliqueMap, c: usize) -> Vec<Matching> {
    let n = map.n();
    (1..c)
        .map(|r| {
            let mut dst: Vec<u32> = (0..n as u32).collect();
            for (node, clique) in map.iter() {
                let j = map.intra_index(node);
                let target = crate::node::CliqueId(((clique.index() + r) % c) as u32);
                let to = map
                    .node_at(target, j)
                    .expect("uniform cliques share offsets");
                dst[node.index()] = to.0;
            }
            Matching::from_permutation(dst).expect("aligned clique rotation is a permutation")
        })
        .collect()
}

/// `count` slot entries cycling matching-pool indices
/// `base .. base + len`.
fn cycle_indices(base: usize, len: usize, count: usize) -> Vec<usize> {
    (0..count).map(|i| base + i % len).collect()
}

/// Builds a SORN schedule over cliques of unequal sizes (§5
/// "Expressivity": "cliques of different sizes are possible").
///
/// Intra-clique bandwidth comes from per-clique rotations as in
/// [`sorn_schedule`] (smaller cliques idle in rotations beyond their
/// size). Because intra offsets no longer align across cliques, inter
/// bandwidth instead uses the global rotation block `m_1 .. m_{n-1}`,
/// which gives every ordered node pair a circuit — the general routers
/// rely on that reach. Intra and inter slot counts keep the exact ratio
/// `q`; `phase` rotates the slot sequence (0 = canonical), letting
/// side-by-side deployments decorrelate their schedules.
///
/// # Errors
/// Fails when the map has fewer than 2 nodes or the exact realization
/// of `q` would exceed `max_period` slots.
pub fn nonuniform_sorn_schedule(
    map: &CliqueMap,
    q: Ratio,
    phase: u64,
    max_period: usize,
) -> Result<CircuitSchedule> {
    let n = map.n();
    if n < 2 {
        return Err(invalid("map", "schedule needs at least 2 nodes"));
    }
    let s_max = (0..map.cliques())
        .map(|c| map.clique_size(crate::node::CliqueId(c as u32)))
        .max()
        .expect("cliques are non-empty");
    let inter: Vec<Matching> = (1..n).map(|k| Matching::cyclic(n, k)).collect();
    if s_max == 1 {
        // No intra circuits exist; the global rotation is the schedule.
        return CircuitSchedule::from_matchings(inter);
    }
    let intra = intra_rotations(map, s_max);
    let t = lcm(
        stretch(q.num(), (s_max - 1) as u64),
        stretch(q.den(), (n - 1) as u64),
    );
    let intra_slots = q.num() * t;
    let inter_slots = q.den() * t;
    let period = intra_slots + inter_slots;
    if period > max_period as u64 {
        return Err(invalid(
            "max_period",
            format!("exact q={q} needs period {period} > {max_period}"),
        ));
    }
    let pool_split = intra.len();
    let mut pool = intra;
    pool.extend(inter);
    let intra_stream = cycle_indices(0, pool_split, intra_slots as usize);
    let inter_stream = cycle_indices(pool_split, pool.len() - pool_split, inter_slots as usize);
    let mut slots = interleave(vec![intra_stream, inter_stream]);
    let rot = (phase % slots.len() as u64) as usize;
    slots.rotate_left(rot);
    CircuitSchedule::new(pool, slots)
}

/// A multi-level hierarchy: nodes are mixed-radix numbers whose digit at
/// level `l` (level 0 innermost / least significant) addresses the
/// branch within that level, plus integer bandwidth weights per level.
///
/// `HierarchySpec::new(vec![4, 2], vec![3, 1])` is Figure 2(d)'s
/// topology A: 8 nodes as 2 cliques of 4, intra weighted 3:1 over inter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchySpec {
    /// Branching factor per level, innermost first (each `>= 2`).
    pub radices: Vec<usize>,
    /// Relative slot weight per level (each `>= 1`).
    pub weights: Vec<u64>,
}

impl HierarchySpec {
    /// Validates and builds a spec.
    ///
    /// # Errors
    /// Fails when the vectors are empty or of different lengths, a radix
    /// is below 2, or a weight is zero.
    pub fn new(radices: Vec<usize>, weights: Vec<u64>) -> Result<Self> {
        if radices.is_empty() || radices.len() != weights.len() {
            return Err(invalid("radices", "need one weight per level"));
        }
        if radices.iter().any(|&r| r < 2) {
            return Err(invalid("radices", "every level needs branching >= 2"));
        }
        if weights.contains(&0) {
            return Err(invalid("weights", "level weights must be positive"));
        }
        Ok(HierarchySpec { radices, weights })
    }

    /// Total number of nodes (product of the radices).
    pub fn n(&self) -> usize {
        self.radices.iter().product()
    }

    /// Number of hierarchy levels.
    pub fn levels(&self) -> usize {
        self.radices.len()
    }

    /// The digit of `node` at `level`.
    pub fn digit(&self, node: NodeId, level: usize) -> usize {
        let mut x = node.index();
        for &r in &self.radices[..level] {
            x /= r;
        }
        x % self.radices[level]
    }

    /// `node` with its digit at `level` replaced by `digit`.
    pub fn with_digit(&self, node: NodeId, level: usize, digit: usize) -> NodeId {
        debug_assert!(digit < self.radices[level]);
        let stride: usize = self.radices[..level].iter().product();
        let old = self.digit(node, level);
        NodeId((node.index() + stride * digit - stride * old) as u32)
    }

    /// The highest level at which `a` and `b` differ, or `None` when
    /// equal. Routing corrects digits from this level downward.
    pub fn highest_differing_level(&self, a: NodeId, b: NodeId) -> Option<usize> {
        (0..self.levels())
            .rev()
            .find(|&l| self.digit(a, l) != self.digit(b, l))
    }
}

/// Builds the multi-level schedule for a [`HierarchySpec`] (§6
/// "independent schedules on each hierarchical level").
///
/// Each slot shifts exactly one level's digit by a constant `k` in
/// `1 .. radix`, so every circuit connects nodes differing in a single
/// level. Slot counts per level are exactly proportional to the spec's
/// weights (each level's count must also divide evenly over its
/// `radix - 1` shifts; the builder finds the smallest period that
/// satisfies both). Levels are interleaved evenly through the period.
///
/// # Errors
/// Fails when the smallest exact period exceeds `max_period`.
pub fn hierarchical_schedule(spec: &HierarchySpec, max_period: usize) -> Result<CircuitSchedule> {
    let n = spec.n();
    let levels = spec.levels();
    // Reduce the weights, then find the smallest common multiplier K so
    // that each level's slot count w_l * K divides over its shifts.
    let wg = spec.weights.iter().copied().fold(0, gcd);
    let weights: Vec<u64> = spec.weights.iter().map(|w| w / wg).collect();
    let mut k = 1u64;
    for (l, &w) in weights.iter().enumerate() {
        k = lcm(k, stretch(w, (spec.radices[l] - 1) as u64));
    }
    // Per-shift repeat counts, reduced by their common factor.
    let mut per_shift: Vec<u64> = (0..levels)
        .map(|l| weights[l] * k / (spec.radices[l] - 1) as u64)
        .collect();
    let pg = per_shift.iter().copied().fold(0, gcd);
    for c in &mut per_shift {
        *c /= pg;
    }
    let period: u64 = (0..levels)
        .map(|l| per_shift[l] * (spec.radices[l] - 1) as u64)
        .sum();
    if period > max_period as u64 {
        return Err(invalid(
            "max_period",
            format!("exact level weights need period {period} > {max_period}"),
        ));
    }

    let mut pool = Vec::new();
    let mut streams = Vec::with_capacity(levels);
    for (l, &r) in spec.radices.iter().enumerate() {
        let base = pool.len();
        for shift in 1..r {
            let dst: Vec<u32> = (0..n as u32)
                .map(|x| {
                    let node = NodeId(x);
                    let d = spec.digit(node, l);
                    spec.with_digit(node, l, (d + shift) % r).0
                })
                .collect();
            pool.push(Matching::from_permutation(dst).expect("digit shift is a permutation"));
        }
        streams.push(cycle_indices(
            base,
            r - 1,
            (per_shift[l] * (r - 1) as u64) as usize,
        ));
    }
    CircuitSchedule::new(pool, interleave(streams))
}

/// A clique-of-cliques fabric: every hierarchy level is a full clique
/// that round-robins its digit shifts with equal slot weight, so the
/// schedule's logical topology is the complete graph within each group
/// at each level (the warehouse-scale shape of §6 — e.g. `[128, 128]`
/// is 16 384 nodes as 128 racks of 128, `[256, 256]` is 65 536).
///
/// Equivalent to [`hierarchical_schedule`] on a [`HierarchySpec`] with
/// unit weights; exposed separately so scale scenarios and tests can
/// name the shape without constructing a spec.
///
/// # Errors
/// Fails on invalid radices (fewer than one level, or branching below
/// 2) or when the exact schedule's period exceeds `max_period`.
pub fn clique_of_cliques(radices: Vec<usize>, max_period: usize) -> Result<CircuitSchedule> {
    let weights = vec![1u64; radices.len()];
    hierarchical_schedule(&HierarchySpec::new(radices, weights)?, max_period)
}

/// An integer clique-level demand aggregate with equal row and column
/// sums — the matrix form the optical layer can encode as inter-clique
/// slot shares (§5 "Expressivity", §6 "Machine Learning Workloads").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GravityWeights {
    w: Vec<Vec<u64>>,
}

impl GravityWeights {
    /// Wraps an already-balanced matrix (every row and column sums to
    /// the same positive value).
    ///
    /// # Errors
    /// Fails when the matrix is empty, not square, all-zero, or its
    /// line sums are unequal.
    pub fn new(w: Vec<Vec<u64>>) -> Result<Self> {
        let nc = w.len();
        if nc < 2 || w.iter().any(|row| row.len() != nc) {
            return Err(invalid("weights", "need a square matrix over >= 2 cliques"));
        }
        let s: u64 = w[0].iter().sum();
        if s == 0 {
            return Err(invalid("weights", "line sums must be positive"));
        }
        for i in 0..nc {
            let row: u64 = w[i].iter().sum();
            let col: u64 = w.iter().map(|r| r[i]).sum();
            if row != s || col != s {
                return Err(invalid(
                    "weights",
                    format!("row/column {i} sums to {row}/{col}, expected {s}"),
                ));
            }
        }
        Ok(GravityWeights { w })
    }

    /// Pads an arbitrary non-negative aggregate up to the smallest
    /// balanced matrix that dominates it entry-wise (extra weight goes
    /// to under-full clique pairs, the diagonal only as a last resort —
    /// diagonal weight becomes idle slots).
    ///
    /// # Errors
    /// Fails when the matrix is empty, not square, or all-zero.
    pub fn balanced(mut w: Vec<Vec<u64>>) -> Result<Self> {
        let nc = w.len();
        if nc < 2 || w.iter().any(|row| row.len() != nc) {
            return Err(invalid("weights", "need a square matrix over >= 2 cliques"));
        }
        let row_sum = |w: &[Vec<u64>], i: usize| -> u64 { w[i].iter().sum() };
        let col_sum = |w: &[Vec<u64>], j: usize| -> u64 { w.iter().map(|r| r[j]).sum() };
        let s = (0..nc)
            .map(|i| row_sum(&w, i).max(col_sum(&w, i)))
            .max()
            .unwrap_or(0);
        if s == 0 {
            return Err(invalid("weights", "aggregate is all-zero"));
        }
        while let Some(i) = (0..nc).find(|&i| row_sum(&w, i) < s) {
            let j = (0..nc)
                .find(|&j| col_sum(&w, j) < s && j != i)
                .or_else(|| (col_sum(&w, i) < s).then_some(i))
                .expect("total row deficit equals total column deficit");
            let add = (s - row_sum(&w, i)).min(s - col_sum(&w, j));
            w[i][j] += add;
        }
        GravityWeights::new(w)
    }

    /// The uniform aggregate: weight `w` on every ordered clique pair.
    ///
    /// # Errors
    /// Fails when `nc < 2` or `w == 0`.
    pub fn uniform(nc: usize, w: u64) -> Result<Self> {
        if w == 0 {
            return Err(invalid("weights", "uniform weight must be positive"));
        }
        let m = (0..nc)
            .map(|i| (0..nc).map(|j| if i == j { 0 } else { w }).collect())
            .collect();
        GravityWeights::new(m)
    }

    /// Number of cliques.
    pub fn cliques(&self) -> usize {
        self.w.len()
    }

    /// The weight of the clique pair `i -> j`.
    pub fn weight(&self, i: usize, j: usize) -> u64 {
        self.w[i][j]
    }

    /// The common row/column sum.
    pub fn line_sum(&self) -> u64 {
        self.w[0].iter().sum()
    }

    /// Birkhoff–von-Neumann decomposition: clique-level matchings with
    /// multiplicities that sum the matrix back up. Counts total
    /// [`GravityWeights::line_sum`]; diagonal entries appear as idle
    /// ports in their part's matching.
    ///
    /// # Errors
    /// Fails when no perfect matching exists over the positive entries —
    /// impossible for a balanced matrix, kept as a guard.
    pub fn decompose(&self) -> Result<Vec<(Matching, u64)>> {
        let nc = self.cliques();
        let mut w = self.w.clone();
        let mut parts = Vec::new();
        loop {
            let adj: Vec<Vec<usize>> = (0..nc)
                .map(|i| (0..nc).filter(|&j| w[i][j] > 0).collect())
                .collect();
            if adj.iter().all(Vec::is_empty) {
                break;
            }
            let matched = bipartite_matching(nc, nc, &adj);
            let mut perm = vec![0u32; nc];
            let mut count = u64::MAX;
            for (i, m) in matched.iter().enumerate() {
                let Some(j) = *m else {
                    return Err(TopologyError::NotRealizable {
                        reason: "gravity aggregate is not decomposable".into(),
                    });
                };
                perm[i] = j as u32;
                count = count.min(w[i][j]);
            }
            for (i, &j) in perm.iter().enumerate() {
                w[i][j as usize] -= count;
            }
            parts.push((Matching::from_permutation(perm)?, count));
        }
        Ok(parts)
    }
}

/// Builds a clique schedule whose inter-clique bandwidth follows a
/// gravity aggregate instead of the uniform rotation: each part of the
/// Birkhoff decomposition becomes an index-aligned clique-permutation
/// matching holding slots proportional to its multiplicity, while intra
/// slots keep the exact ratio `q` against the inter total.
///
/// # Errors
/// Fails when the map is not uniform, the weight matrix does not match
/// the clique count, or the exact realization exceeds `max_period`.
pub fn gravity_schedule(
    map: &CliqueMap,
    q: Ratio,
    weights: &GravityWeights,
    max_period: usize,
) -> Result<CircuitSchedule> {
    let Some(s) = map.uniform_size() else {
        return Err(TopologyError::NotRealizable {
            reason: "gravity_schedule requires uniform cliques".into(),
        });
    };
    let c = map.cliques();
    if weights.cliques() != c {
        return Err(invalid(
            "weights",
            format!(
                "aggregate covers {} cliques, map has {c}",
                weights.cliques()
            ),
        ));
    }
    let parts = weights.decompose()?;
    let total = weights.line_sum();
    let n = map.n();

    // Inter matchings: node at offset j of clique a links to offset j of
    // clique P(a); cliques mapped to themselves idle in that part.
    let inter: Vec<Matching> = parts
        .iter()
        .map(|(p, _)| {
            let mut dst: Vec<u32> = (0..n as u32).collect();
            for (node, clique) in map.iter() {
                let target = p.raw_dst(NodeId(clique.index() as u32));
                if target.index() != clique.index() {
                    let to = map
                        .node_at(crate::node::CliqueId(target.0), map.intra_index(node))
                        .expect("uniform cliques share offsets");
                    dst[node.index()] = to.0;
                }
            }
            Matching::from_permutation(dst).expect("aligned clique permutation is a permutation")
        })
        .collect();

    if s == 1 {
        let slots = part_stream_slots(&parts, 1);
        let streams: Vec<Vec<usize>> = slots
            .into_iter()
            .enumerate()
            .map(|(p, count)| vec![p; count])
            .collect();
        return CircuitSchedule::new(inter, interleave(streams));
    }

    let t = lcm(stretch(q.num(), (s - 1) as u64), stretch(q.den(), total));
    let intra_slots = q.num() * t;
    let inter_slots = q.den() * t;
    let period = intra_slots + inter_slots;
    if period > max_period as u64 {
        return Err(invalid(
            "max_period",
            format!("exact q={q} over line sum {total} needs period {period} > {max_period}"),
        ));
    }
    let repeat = inter_slots / total;

    let intra = intra_rotations(map, s);
    let pool_split = intra.len();
    let mut pool = intra;
    pool.extend(inter);

    let mut streams = vec![cycle_indices(0, pool_split, intra_slots as usize)];
    for (p, count) in part_stream_slots(&parts, repeat).into_iter().enumerate() {
        streams.push(vec![pool_split + p; count]);
    }
    CircuitSchedule::new(pool, interleave(streams))
}

/// Slot counts per decomposition part at `repeat` slots per weight unit.
fn part_stream_slots(parts: &[(Matching, u64)], repeat: u64) -> Vec<usize> {
    parts.iter().map(|(_, m)| (m * repeat) as usize).collect()
}

/// Builds the h-dimensional optimal ORN schedule over `n = Δ^h` nodes
/// (§2's latency-throughput tradeoff family): nodes are h-digit base-Δ
/// numbers and each slot advances exactly one digit by a constant,
/// giving period `h · (Δ - 1)`.
///
/// # Errors
/// Fails when `h == 0` or `n` is not a perfect `h`-th power with
/// `Δ >= 2`.
pub fn hdim_orn(n: usize, h: u32) -> Result<CircuitSchedule> {
    if h == 0 {
        return Err(invalid("h", "need at least one dimension"));
    }
    let delta = (n as f64).powf(1.0 / h as f64).round() as usize;
    if delta < 2 || delta.checked_pow(h) != Some(n) {
        return Err(invalid(
            "n",
            format!("{n} is not a perfect {h}-th power of a base >= 2"),
        ));
    }
    let spec = HierarchySpec::new(vec![delta; h as usize], vec![1; h as usize])?;
    hierarchical_schedule(&spec, h as usize * (delta - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::CliqueId;

    #[test]
    fn round_robin_connects_all_pairs_once() {
        let s = round_robin(6).unwrap();
        assert_eq!(s.period(), 5);
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    let ups = (0..5)
                        .filter(|&t| s.matching_at(t).connects(NodeId(a), NodeId(b)))
                        .count();
                    assert_eq!(ups, 1, "{a}->{b}");
                }
            }
        }
        assert!(round_robin(1).is_err());
    }

    #[test]
    fn sorn_topology_a_matches_figure2d() {
        let map = CliqueMap::contiguous(8, 2);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        assert_eq!(s.period(), 4);
        let topo = s.logical_topology();
        // Exactly neighbors 1,2,3 (intra) and 4 (aligned inter).
        assert_eq!(topo.degree(NodeId(0)), 4);
        for d in [1u32, 2, 3, 4] {
            assert!((topo.capacity(NodeId(0), NodeId(d)) - 0.25).abs() < 1e-12);
        }
        assert!((topo.total_capacity(NodeId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sorn_fractional_q_is_exact() {
        let map = CliqueMap::contiguous(32, 4);
        let q = Ratio::new(50, 11);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
        let (mut intra, mut inter) = (0u64, 0u64);
        for t in 0..s.period() as u64 {
            let d = s.matching_at(t).raw_dst(NodeId(0));
            if map.same_clique(NodeId(0), d) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert_eq!(intra * q.den(), inter * q.num());
    }

    #[test]
    fn sorn_q1_balances_intra_and_inter() {
        // q = 1 over 2 cliques of 4: 3 intra shifts + 3 inter slots.
        let map = CliqueMap::contiguous(8, 2);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(1))).unwrap();
        assert_eq!(s.period(), 6);
        let topo = s.logical_topology();
        assert!((topo.capacity(NodeId(0), NodeId(4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sorn_rejects_nonuniform_and_tight_periods() {
        let map = CliqueMap::from_assignment(&[CliqueId(0), CliqueId(0), CliqueId(1)]);
        assert!(matches!(
            sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(2))),
            Err(TopologyError::NotRealizable { .. })
        ));
        let map = CliqueMap::contiguous(32, 4);
        let mut p = SornScheduleParams::with_q(Ratio::new(50, 11));
        p.max_period = 8;
        assert!(sorn_schedule(&map, &p).is_err());
    }

    #[test]
    fn sorn_degenerate_shapes() {
        // One clique: intra rotation only (flat round robin).
        let s = sorn_schedule(
            &CliqueMap::contiguous(5, 1),
            &SornScheduleParams::with_q(Ratio::integer(3)),
        )
        .unwrap();
        assert_eq!(s.period(), 4);
        // Singleton cliques: inter rotation only.
        let s = sorn_schedule(
            &CliqueMap::contiguous(5, 5),
            &SornScheduleParams::with_q(Ratio::integer(3)),
        )
        .unwrap();
        assert_eq!(s.period(), 4);
        for t in 0..4 {
            assert!(s.matching_at(t).is_perfect());
        }
    }

    #[test]
    fn nonuniform_covers_all_pairs() {
        let map = CliqueMap::from_assignment(&[
            CliqueId(0),
            CliqueId(0),
            CliqueId(0),
            CliqueId(1),
            CliqueId(1),
            CliqueId(2),
        ]);
        let s = nonuniform_sorn_schedule(&map, Ratio::new(3, 2), 0, 1 << 20).unwrap();
        s.validate().unwrap();
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    assert!(
                        s.next_circuit(NodeId(a), NodeId(b), 0).is_some(),
                        "{a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn nonuniform_phase_rotates_slots() {
        let map = CliqueMap::from_assignment(&[CliqueId(0), CliqueId(0), CliqueId(1)]);
        let a = nonuniform_sorn_schedule(&map, Ratio::integer(1), 0, 1 << 20).unwrap();
        let b = nonuniform_sorn_schedule(&map, Ratio::integer(1), 1, 1 << 20).unwrap();
        assert_eq!(a.period(), b.period());
        assert_eq!(a.matching_at(1), b.matching_at(0));
    }

    #[test]
    fn hierarchy_digits_round_trip() {
        let spec = HierarchySpec::new(vec![4, 2], vec![3, 1]).unwrap();
        assert_eq!(spec.n(), 8);
        assert_eq!(spec.digit(NodeId(6), 0), 2);
        assert_eq!(spec.digit(NodeId(6), 1), 1);
        assert_eq!(spec.with_digit(NodeId(6), 0, 0), NodeId(4));
        assert_eq!(spec.with_digit(NodeId(6), 1, 0), NodeId(2));
        assert_eq!(spec.highest_differing_level(NodeId(0), NodeId(2)), Some(0));
        assert_eq!(spec.highest_differing_level(NodeId(0), NodeId(6)), Some(1));
        assert_eq!(spec.highest_differing_level(NodeId(3), NodeId(3)), None);
        assert!(HierarchySpec::new(vec![1, 2], vec![1, 1]).is_err());
        assert!(HierarchySpec::new(vec![2, 2], vec![1]).is_err());
        assert!(HierarchySpec::new(vec![2, 2], vec![1, 0]).is_err());
    }

    #[test]
    fn hierarchical_two_level_reduces_to_topology_a() {
        let spec = HierarchySpec::new(vec![4, 2], vec![3, 1]).unwrap();
        let s = hierarchical_schedule(&spec, 1 << 20).unwrap();
        assert_eq!(s.period(), 4);
        let topo = s.logical_topology();
        for d in [1u32, 2, 3, 4] {
            assert!((topo.capacity(NodeId(0), NodeId(d)) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn hierarchical_weights_are_exact() {
        let spec = HierarchySpec::new(vec![3, 4, 2], vec![5, 2, 3]).unwrap();
        let s = hierarchical_schedule(&spec, 1 << 20).unwrap();
        let mut per_level = [0u64; 3];
        for t in 0..s.period() as u64 {
            let d = s.matching_at(t).raw_dst(NodeId(0));
            per_level[spec.highest_differing_level(NodeId(0), d).unwrap()] += 1;
        }
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    per_level[i] * spec.weights[j],
                    per_level[j] * spec.weights[i]
                );
            }
        }
    }

    #[test]
    fn hdim_orn_shifts_one_digit_per_slot() {
        let s = hdim_orn(16, 2).unwrap();
        assert_eq!(s.period(), 6);
        let spec = HierarchySpec::new(vec![4, 4], vec![1, 1]).unwrap();
        for t in 0..6 {
            let m = s.matching_at(t);
            assert!(m.is_perfect());
            for v in 0..16u32 {
                let d = m.raw_dst(NodeId(v));
                let differing = (0..2)
                    .filter(|&j| spec.digit(NodeId(v), j) != spec.digit(d, j))
                    .count();
                assert_eq!(differing, 1);
            }
        }
        assert!(hdim_orn(10, 2).is_err());
        assert!(hdim_orn(16, 0).is_err());
    }

    /// Checks a clique-of-cliques schedule by sampling nodes: over one
    /// period each sampled node meets exactly `sum(radix - 1)` distinct
    /// peers (every single-digit shift exactly once, never itself), its
    /// level-0 neighbor has a direct circuit, and the all-digits-differ
    /// diagonal peer has none. Sampling keeps the warehouse-scale cases
    /// (16k/65k nodes) off the O(period x n) full-topology walk.
    fn check_clique_of_cliques(radices: Vec<usize>, sample: &[u32]) {
        let n: usize = radices.iter().product();
        let expected_degree: usize = radices.iter().map(|r| r - 1).sum();
        let s = clique_of_cliques(radices, 1 << 20).unwrap();
        s.validate().unwrap();
        assert_eq!(
            s.period(),
            expected_degree,
            "unit weights: one slot per shift"
        );
        for &v in sample {
            let node = NodeId(v);
            let peers: std::collections::BTreeSet<u32> = (0..s.period() as u64)
                .map(|t| s.matching_at(t).raw_dst(node).0)
                .collect();
            assert_eq!(peers.len(), expected_degree, "node {v} distinct peers");
            assert!(!peers.contains(&v), "node {v} matched to itself");
        }
        assert!(s.max_wait(NodeId(0), NodeId(1)).is_some());
        assert!(s.max_wait(NodeId(0), NodeId((n - 1) as u32)).is_none());
    }

    #[test]
    fn clique_of_cliques_small_matches_hierarchical_schedule() {
        let s = clique_of_cliques(vec![4, 3], 1 << 20).unwrap();
        let spec = HierarchySpec::new(vec![4, 3], vec![1, 1]).unwrap();
        let reference = hierarchical_schedule(&spec, 1 << 20).unwrap();
        assert_eq!(s.period(), reference.period());
        for t in 0..s.period() as u64 {
            for v in 0..12u32 {
                assert_eq!(
                    s.matching_at(t).raw_dst(NodeId(v)),
                    reference.matching_at(t).raw_dst(NodeId(v))
                );
            }
        }
        assert!(clique_of_cliques(vec![], 1 << 20).is_err());
        assert!(clique_of_cliques(vec![4, 1], 1 << 20).is_err());
    }

    #[test]
    fn clique_of_cliques_16k_nodes_is_structurally_sound() {
        // 128 racks of 128: 16 384 nodes, period 254.
        check_clique_of_cliques(vec![128, 128], &[0, 129, 8191, 16383]);
    }

    #[test]
    fn clique_of_cliques_65k_nodes_is_structurally_sound() {
        // 256 groups of 256: 65 536 nodes, period 510.
        check_clique_of_cliques(vec![256, 256], &[0, 257, 32768, 65535]);
    }

    #[test]
    fn gravity_balancing_and_decomposition() {
        let w =
            GravityWeights::balanced(vec![vec![0, 5, 0], vec![1, 0, 2], vec![0, 1, 0]]).unwrap();
        let s = w.line_sum();
        for i in 0..3 {
            let row: u64 = (0..3).map(|j| w.weight(i, j)).sum();
            let col: u64 = (0..3).map(|j| w.weight(j, i)).sum();
            assert_eq!(row, s);
            assert_eq!(col, s);
        }
        assert!(w.weight(0, 1) >= 5);
        let parts = w.decompose().unwrap();
        let total: u64 = parts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, s);
        // Parts reassemble the matrix.
        let mut re = vec![vec![0u64; 3]; 3];
        for (p, c) in &parts {
            for i in 0..3u32 {
                re[i as usize][p.raw_dst(NodeId(i)).index()] += c;
            }
        }
        for (i, row) in re.iter().enumerate() {
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, w.weight(i, j));
            }
        }
        assert!(GravityWeights::balanced(vec![vec![0, 0], vec![0, 0]]).is_err());
        assert!(GravityWeights::new(vec![vec![0, 2], vec![1, 0]]).is_err());
    }

    #[test]
    fn gravity_schedule_shares_follow_weights() {
        let map = CliqueMap::contiguous(8, 4);
        let w = GravityWeights::new(vec![
            vec![0, 2, 1, 1],
            vec![1, 0, 2, 1],
            vec![1, 1, 0, 2],
            vec![2, 1, 1, 0],
        ])
        .unwrap();
        let s = gravity_schedule(&map, Ratio::integer(1), &w, 1 << 20).unwrap();
        s.validate().unwrap();
        let topo = s.logical_topology();
        // Node 0 (clique 0, offset 0): aligned peers 2, 4, 6 at weights
        // 2, 1, 1 of the inter half of the bandwidth.
        let c2 = topo.capacity(NodeId(0), NodeId(2));
        let c4 = topo.capacity(NodeId(0), NodeId(4));
        let c6 = topo.capacity(NodeId(0), NodeId(6));
        assert!((c2 - 2.0 * c4).abs() < 1e-12);
        assert!((c4 - c6).abs() < 1e-12);
        // Intra equals inter at q = 1.
        let intra = topo.capacity(NodeId(0), NodeId(1));
        assert!((intra - (c2 + c4 + c6)).abs() < 1e-12);
    }

    #[test]
    fn interleave_spreads_minority_stream() {
        let slots = interleave(vec![vec![0; 6], vec![1, 1]]);
        assert_eq!(slots.len(), 8);
        let first = slots.iter().position(|&x| x == 1).unwrap();
        let last = slots.iter().rposition(|&x| x == 1).unwrap();
        assert!(last - first >= 3, "inter slots bunched: {slots:?}");
    }
}
