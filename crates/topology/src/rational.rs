//! A tiny positive rational type for exact schedule ratios.
//!
//! Schedule construction needs the oversubscription ratio `q` (§4) as an
//! exact fraction so that intra- and inter-clique slot counts come out as
//! integers. The paper's ideal `q* = 2/(1-x)` is rational whenever the
//! locality ratio `x` is, so exact construction is the common case;
//! [`Ratio::approximate`] handles arbitrary floats via continued fractions.

use std::fmt;

/// A positive rational number `num/den` in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// Builds `num/den`, reduced to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0` or `num == 0` (schedule ratios are positive).
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "denominator must be nonzero");
        assert!(num != 0, "schedule ratios must be positive");
        let g = gcd(num, den);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// An integer ratio `k/1`.
    pub fn integer(k: u64) -> Self {
        Ratio::new(k, 1)
    }

    /// Numerator (lowest terms).
    #[inline]
    pub fn num(self) -> u64 {
        self.num
    }

    /// Denominator (lowest terms).
    #[inline]
    pub fn den(self) -> u64 {
        self.den
    }

    /// Value as `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Best rational approximation of `x` with denominator at most
    /// `max_den`, via the continued-fraction convergents of `x`.
    ///
    /// # Panics
    /// Panics if `x <= 0`, is not finite, or `max_den == 0`.
    pub fn approximate(x: f64, max_den: u64) -> Self {
        assert!(
            x.is_finite() && x > 0.0,
            "ratio must be positive and finite"
        );
        assert!(max_den > 0, "max_den must be positive");
        // Continued fraction expansion tracking convergents h/k.
        let (mut h0, mut k0, mut h1, mut k1) = (1u64, 0u64, x.floor() as u64, 1u64);
        let mut frac = x - x.floor();
        // Track the best convergent seen so far whose denominator fits.
        let (mut best_h, mut best_k) = (h1.max(1), k1);
        for _ in 0..64 {
            if frac.abs() < 1e-15 {
                break;
            }
            let r = 1.0 / frac;
            let a = r.floor() as u64;
            frac = r - r.floor();
            let h2 = a.saturating_mul(h1).saturating_add(h0);
            let k2 = a.saturating_mul(k1).saturating_add(k0);
            if k2 > max_den {
                break;
            }
            h0 = h1;
            k0 = k1;
            h1 = h2;
            k1 = k2;
            best_h = h1.max(1);
            best_k = k1;
        }
        Ratio::new(best_h, best_k.max(1))
    }

    /// The reciprocal `den/num`.
    pub fn recip(self) -> Self {
        Ratio::new(self.den, self.num)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let r = Ratio::new(50, 11);
        assert_eq!((r.num(), r.den()), (50, 11));
        let r = Ratio::new(6, 4);
        assert_eq!((r.num(), r.den()), (3, 2));
    }

    #[test]
    fn ideal_q_for_paper_locality() {
        // x = 0.56 => q = 2/0.44 = 200/44 = 50/11.
        let q = Ratio::new(200, 44);
        assert_eq!((q.num(), q.den()), (50, 11));
        assert!((q.to_f64() - 4.5454545).abs() < 1e-6);
    }

    #[test]
    fn approximate_recovers_simple_fractions() {
        let r = Ratio::approximate(0.75, 100);
        assert_eq!((r.num(), r.den()), (3, 4));
        let r = Ratio::approximate(50.0 / 11.0, 100);
        assert_eq!((r.num(), r.den()), (50, 11));
        let r = Ratio::approximate(3.0, 10);
        assert_eq!((r.num(), r.den()), (3, 1));
    }

    #[test]
    fn approximate_respects_max_denominator() {
        let r = Ratio::approximate(std::f64::consts::PI, 100);
        assert!(r.den() <= 100);
        // Best convergent with den <= 100 is 22/7 (error ~1.3e-3).
        assert_eq!((r.num(), r.den()), (22, 7));
        assert!((r.to_f64() - std::f64::consts::PI).abs() < 1.5e-3);
    }

    #[test]
    fn recip_and_display() {
        let r = Ratio::new(3, 2);
        assert_eq!(r.recip(), Ratio::new(2, 3));
        assert_eq!(r.to_string(), "3/2");
        assert_eq!(Ratio::integer(4).to_string(), "4");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_rejected() {
        let _ = Ratio::new(0, 5);
    }
}
