//! Small graph utilities shared by topology builders and analyses.
//!
//! These are deliberately simple, allocation-friendly implementations: the
//! graphs here are logical topologies over at most a few thousand nodes.

use crate::node::NodeId;

/// A directed graph in adjacency-list form over dense node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
}

impl DiGraph {
    /// An empty graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from directed edges.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = DiGraph::new(n);
        for (s, d) in edges {
            g.add_edge(s, d);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Adds the directed edge `s → d` (duplicates kept out).
    pub fn add_edge(&mut self, s: NodeId, d: NodeId) {
        let row = &mut self.adj[s.index()];
        if !row.contains(&d.0) {
            row.push(d.0);
        }
    }

    /// Out-neighbors of `s`.
    pub fn neighbors(&self, s: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[s.index()].iter().map(|&d| NodeId(d))
    }

    /// Out-degree of `s`.
    pub fn degree(&self, s: NodeId) -> usize {
        self.adj[s.index()].len()
    }

    /// BFS distances (in hops) from `src`; `None` for unreachable nodes.
    pub fn bfs_distances(&self, src: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.n()];
        let mut queue = std::collections::VecDeque::new();
        dist[src.index()] = Some(0);
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()].unwrap();
            for v in self.adj[u.index()].clone() {
                let v = NodeId(v);
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// One shortest path `src → dst` (inclusive), or `None` if unreachable.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.n()];
        let mut seen = vec![false; self.n()];
        let mut queue = std::collections::VecDeque::new();
        seen[src.index()] = true;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u.index()] {
                let v = NodeId(v);
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    prev[v.index()] = Some(u);
                    if v == dst {
                        let mut path = vec![dst];
                        let mut cur = dst;
                        while let Some(p) = prev[cur.index()] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Diameter in hops (max finite BFS distance over all pairs).
    ///
    /// Returns `None` when the graph is not strongly connected.
    pub fn diameter(&self) -> Option<u32> {
        let mut diam = 0;
        for s in 0..self.n() as u32 {
            let d = self.bfs_distances(NodeId(s));
            for v in d {
                match v {
                    Some(x) => diam = diam.max(x),
                    None => return None,
                }
            }
        }
        Some(diam)
    }

    /// Mean shortest-path length over all ordered pairs of distinct nodes.
    ///
    /// Returns `None` when some pair is unreachable. This is the statistic
    /// used to derive Opera's expected expander path length in Table 1.
    pub fn mean_path_length(&self) -> Option<f64> {
        let n = self.n();
        if n < 2 {
            return Some(0.0);
        }
        let mut total = 0u64;
        for s in 0..n as u32 {
            let d = self.bfs_distances(NodeId(s));
            for (v, dist) in d.iter().enumerate() {
                if v != s as usize {
                    total += (*dist)? as u64;
                }
            }
        }
        Some(total as f64 / (n * (n - 1)) as f64)
    }
}

/// Maximum-cardinality bipartite matching (Kuhn's augmenting paths).
///
/// `adj[l]` lists the right-side vertices admissible for left vertex `l`.
/// Returns `match_of_left[l] = Some(r)` assignments. Used by the
/// Birkhoff–von-Neumann decomposition in the gravity schedule builder.
pub fn bipartite_matching(left: usize, right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    assert_eq!(adj.len(), left, "adjacency must cover every left vertex");
    let mut match_of_right: Vec<Option<usize>> = vec![None; right];

    fn try_augment(
        l: usize,
        adj: &[Vec<usize>],
        visited: &mut [bool],
        match_of_right: &mut [Option<usize>],
    ) -> bool {
        for &r in &adj[l] {
            if !visited[r] {
                visited[r] = true;
                if match_of_right[r].is_none()
                    || try_augment(match_of_right[r].unwrap(), adj, visited, match_of_right)
                {
                    match_of_right[r] = Some(l);
                    return true;
                }
            }
        }
        false
    }

    for l in 0..left {
        let mut visited = vec![false; right];
        try_augment(l, adj, &mut visited, &mut match_of_right);
    }

    let mut match_of_left = vec![None; left];
    for (r, m) in match_of_right.iter().enumerate() {
        if let Some(l) = *m {
            match_of_left[l] = Some(r);
        }
    }
    match_of_left
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> DiGraph {
        DiGraph::from_edges(
            n,
            (0..n).map(|i| (NodeId(i as u32), NodeId(((i + 1) % n) as u32))),
        )
    }

    #[test]
    fn bfs_on_ring() {
        let g = ring(6);
        let d = g.bfs_distances(NodeId(0));
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(4), Some(5)]
        );
    }

    #[test]
    fn shortest_path_on_ring() {
        let g = ring(5);
        let p = g.shortest_path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(g.shortest_path(NodeId(2), NodeId(2)), Some(vec![NodeId(2)]));
    }

    #[test]
    fn diameter_and_mean_path_length() {
        let g = ring(4);
        assert_eq!(g.diameter(), Some(3));
        // Ordered pairs at distances 1,2,3 from each node: mean = 2.
        assert!((g.mean_path_length().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let mut g = DiGraph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.diameter(), None);
        assert_eq!(g.mean_path_length(), None);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut g = DiGraph::new(2);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn bipartite_matching_finds_perfect_matching() {
        // 3x3 with a forced structure: 0-{0,1}, 1-{0}, 2-{2}.
        let adj = vec![vec![0, 1], vec![0], vec![2]];
        let m = bipartite_matching(3, 3, &adj);
        assert_eq!(m[1], Some(0)); // left 1 can only take right 0
        assert_eq!(m[0], Some(1));
        assert_eq!(m[2], Some(2));
    }

    #[test]
    fn bipartite_matching_reports_unmatchable() {
        // Two left vertices compete for one right vertex.
        let adj = vec![vec![0], vec![0]];
        let m = bipartite_matching(2, 1, &adj);
        let matched = m.iter().filter(|x| x.is_some()).count();
        assert_eq!(matched, 1);
    }
}
