//! Physical-layer model: wavelength-routed AWGR setups (Figure 2(a), §5).
//!
//! The paper's reference hardware is Sirius-like: nodes carry fast tunable
//! lasers into Arrayed Waveguide Grating Routers. An `R`-port AWGR routes
//! input port `i` at wavelength `λ_k` to output port `(i + k) mod R`, so a
//! wavelength choice implements a *cyclic* matching within the grating's
//! reach. With `p` ports per node, port `j` is wired to cover destination
//! shift class `[j·R, (j+1)·R)`, so a node pair with id difference `k` is
//! reachable through port `k / R`. The §5 example — 4096 nodes, 16 ports,
//! 256-port gratings — covers all 4096 shifts and therefore "enables a
//! circuit between each node pair".
//!
//! This module answers the two §5 "Expressivity" questions: *which
//! matchings are realizable* on a given setup, and *which clique sizes the
//! operator can schedule* (the paper's "1 (flat network), 16, 32, 64 up to
//! 2048" list).

use crate::error::{invalid, Result};
use crate::matching::Matching;
use crate::node::NodeId;

/// A wavelength-routed optical circuit switch setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwgrSetup {
    /// Number of nodes attached to the OCS layer.
    pub nodes: usize,
    /// Ports (uplinks) per node.
    pub ports_per_node: usize,
    /// Ports per AWGR grating (= distinct wavelengths usable per port).
    pub grating_ports: usize,
}

impl AwgrSetup {
    /// The Table 1 / §5 reference setup: 4096 racks, 16 uplinks, 256-port
    /// gratings.
    pub fn paper_reference() -> Self {
        AwgrSetup {
            nodes: 4096,
            ports_per_node: 16,
            grating_ports: 256,
        }
    }

    /// Validates the setup.
    pub fn validate(&self) -> Result<()> {
        if self.nodes < 2 {
            return Err(invalid("nodes", "need at least 2 nodes"));
        }
        if self.ports_per_node == 0 {
            return Err(invalid("ports_per_node", "need at least one port"));
        }
        if self.grating_ports < 2 {
            return Err(invalid("grating_ports", "gratings need at least 2 ports"));
        }
        Ok(())
    }

    /// Number of destination shift classes covered: shifts
    /// `0 .. coverage()` are reachable from every node.
    ///
    /// Full connectivity requires `coverage() >= nodes`.
    pub fn coverage(&self) -> usize {
        self.ports_per_node.saturating_mul(self.grating_ports)
    }

    /// True when every node pair can be given a circuit (§5: "256-port
    /// gratings enable a circuit between each node pair").
    pub fn full_mesh_capable(&self) -> bool {
        self.coverage() >= self.nodes
    }

    /// The port through which a circuit of destination shift `k`
    /// (`dst - src mod nodes`) is realized, or `None` when out of reach.
    pub fn port_for_shift(&self, k: usize) -> Option<usize> {
        if k == 0 || k >= self.nodes {
            return None;
        }
        let port = k / self.grating_ports;
        (port < self.ports_per_node).then_some(port)
    }

    /// True when the given matching is realizable in a single slot: every
    /// active circuit's shift must be within port reach. (Distinct sources
    /// never collide at an output because the matching is a permutation
    /// and AWGR routing is shift-additive.)
    pub fn is_realizable(&self, m: &Matching) -> bool {
        if m.n() != self.nodes {
            return false;
        }
        m.circuits().all(|(s, d)| {
            let k = (d.0 as usize + self.nodes - s.0 as usize) % self.nodes;
            self.port_for_shift(k).is_some()
        })
    }

    /// Expressivity report for SORN scheduling on this setup.
    pub fn expressivity(&self) -> Expressivity {
        Expressivity { setup: *self }
    }

    /// Whether a *multi-circuit* slot is realizable when nodes may emit
    /// `wavelengths_per_port` wavelengths simultaneously (§5: "nodes
    /// could choose to emit different wavelengths at the same time,
    /// increasing flexibility significantly").
    ///
    /// A circuit `s → d` uses port `shift(d−s)/grating_ports` on both
    /// ends (AWGR routing is shift-symmetric). Feasibility requires, per
    /// node and port: at most `wavelengths_per_port` transmitted circuits
    /// (distinct laser lines) and at most `wavelengths_per_port` received
    /// circuits (distinct receiver lines), with every shift within reach.
    /// With `wavelengths_per_port = 1` and one circuit per source this
    /// reduces to [`AwgrSetup::is_realizable`].
    pub fn is_realizable_multislot(
        &self,
        circuits: &[(NodeId, NodeId)],
        wavelengths_per_port: usize,
    ) -> bool {
        if wavelengths_per_port == 0 {
            return circuits.is_empty();
        }
        let mut tx: std::collections::HashMap<(u32, usize), usize> =
            std::collections::HashMap::new();
        let mut rx: std::collections::HashMap<(u32, usize), usize> =
            std::collections::HashMap::new();
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(s, d) in circuits {
            if s == d || !seen.insert((s.0, d.0)) {
                return false; // self-loops and duplicates are invalid
            }
            let k = (d.0 as usize + self.nodes - s.0 as usize) % self.nodes;
            let Some(port) = self.port_for_shift(k) else {
                return false;
            };
            let t = tx.entry((s.0, port)).or_insert(0);
            *t += 1;
            if *t > wavelengths_per_port {
                return false;
            }
            let r = rx.entry((d.0, port)).or_insert(0);
            *r += 1;
            if *r > wavelengths_per_port {
                return false;
            }
        }
        true
    }
}

/// Answers §5's expressivity questions for a given [`AwgrSetup`].
#[derive(Debug, Clone, Copy)]
pub struct Expressivity {
    setup: AwgrSetup,
}

impl Expressivity {
    /// Clique sizes schedulable on this setup under the operator policy
    /// the paper describes: contiguous cliques whose intra- and
    /// inter-clique matchings are all within port reach, sized as a
    /// multiple of the per-node port count (so the clique round robin can
    /// be staggered across all uplink planes), at most half the network
    /// (so at least two cliques exist), plus size 1 (the flat network).
    ///
    /// For the reference setup this returns `[1, 16, 32, 64, …, 2048]`,
    /// matching the §5 enumeration.
    pub fn clique_sizes(&self) -> Vec<usize> {
        let n = self.setup.nodes;
        let mut out = vec![1];
        for c in 2..=n / 2 {
            if !n.is_multiple_of(c) {
                continue;
            }
            if c % self.setup.ports_per_node != 0 {
                continue;
            }
            if self.realizable_clique_size(c) {
                out.push(c);
            }
        }
        out
    }

    /// True when contiguous cliques of size `c` have all their SORN
    /// matchings within reach: intra matchings use shifts `{k, k - c mod
    /// n}` for `k < c`, inter matchings use shifts that are multiples of
    /// `c`.
    pub fn realizable_clique_size(&self, c: usize) -> bool {
        let n = self.setup.nodes;
        if c == 1 {
            // Flat round robin: needs full coverage.
            return self.setup.full_mesh_capable();
        }
        if !n.is_multiple_of(c) {
            return false;
        }
        // Intra shifts: forward k in 1..c and wrapped n - (c - k).
        let intra_ok = (1..c).all(|k| {
            self.setup.port_for_shift(k).is_some()
                && self.setup.port_for_shift(n - (c - k)).is_some()
        });
        // Inter shifts: d*c for clique shifts d in 1..n/c.
        let inter_ok = (1..n / c).all(|d| self.setup.port_for_shift(d * c).is_some());
        intra_ok && inter_ok
    }

    /// How many distinct cyclic matchings the setup offers beyond those a
    /// single schedule needs — the "hundreds of remaining matchings" §5
    /// mentions as headroom for non-uniform connectivity.
    pub fn spare_matchings(&self, schedule_matchings: usize) -> usize {
        self.setup
            .coverage()
            .min(self.setup.nodes.saturating_sub(1))
            .saturating_sub(schedule_matchings)
    }
}

/// Computes the shift class (`dst - src mod n`) of a circuit.
pub fn shift_of(n: usize, src: NodeId, dst: NodeId) -> usize {
    (dst.0 as usize + n - src.0 as usize) % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{round_robin, sorn_schedule, SornScheduleParams};
    use crate::node::CliqueMap;
    use crate::rational::Ratio;

    #[test]
    fn paper_reference_is_full_mesh() {
        let s = AwgrSetup::paper_reference();
        s.validate().unwrap();
        assert_eq!(s.coverage(), 4096);
        assert!(s.full_mesh_capable());
    }

    #[test]
    fn port_for_shift_partitions_reach() {
        let s = AwgrSetup::paper_reference();
        assert_eq!(s.port_for_shift(1), Some(0));
        assert_eq!(s.port_for_shift(255), Some(0));
        assert_eq!(s.port_for_shift(256), Some(1));
        assert_eq!(s.port_for_shift(4095), Some(15));
        assert_eq!(s.port_for_shift(0), None);
        assert_eq!(s.port_for_shift(4096), None);
    }

    #[test]
    fn undersized_setup_rejects_far_shifts() {
        let s = AwgrSetup {
            nodes: 1024,
            ports_per_node: 2,
            grating_ports: 256,
        };
        assert!(!s.full_mesh_capable());
        assert_eq!(s.port_for_shift(511), Some(1));
        assert_eq!(s.port_for_shift(512), None);
    }

    #[test]
    fn round_robin_realizable_on_reference() {
        // Use a smaller proportional setup to keep the test fast:
        // 64 nodes, 4 ports, 16-port gratings (coverage 64).
        let s = AwgrSetup {
            nodes: 64,
            ports_per_node: 4,
            grating_ports: 16,
        };
        let rr = round_robin(64).unwrap();
        for t in 0..rr.period() as u64 {
            assert!(s.is_realizable(rr.matching_at(t)));
        }
    }

    #[test]
    fn sorn_schedule_realizable_when_in_reach() {
        let s = AwgrSetup {
            nodes: 64,
            ports_per_node: 4,
            grating_ports: 16,
        };
        let map = CliqueMap::contiguous(64, 4);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        for t in 0..sched.period() as u64 {
            assert!(
                s.is_realizable(sched.matching_at(t)),
                "slot {t} unrealizable"
            );
        }
    }

    #[test]
    fn expressivity_matches_paper_enumeration() {
        // §5: clique sizes 1, 16, 32, 64 ... up to 2048.
        let e = AwgrSetup::paper_reference().expressivity();
        let sizes = e.clique_sizes();
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&16));
        assert!(sizes.contains(&32));
        assert!(sizes.contains(&64));
        assert!(sizes.contains(&2048));
        assert!(!sizes.contains(&4096), "need at least two cliques");
        assert!(!sizes.contains(&8), "not a multiple of the port count");
        assert_eq!(sizes.first(), Some(&1));
        assert_eq!(sizes.last(), Some(&2048));
    }

    #[test]
    fn spare_matchings_counts_headroom() {
        let e = AwgrSetup::paper_reference().expressivity();
        // A SORN schedule with 64-cliques uses 63 intra + 63 inter = 126
        // distinct matchings; thousands remain.
        assert!(e.spare_matchings(126) > 3000);
    }

    #[test]
    fn multislot_single_wavelength_matches_matching_rule() {
        let s = AwgrSetup {
            nodes: 16,
            ports_per_node: 2,
            grating_ports: 8,
        };
        // A valid permutation-slot: every node shifts by 3.
        let circuits: Vec<(NodeId, NodeId)> = (0..16u32)
            .map(|v| (NodeId(v), NodeId((v + 3) % 16)))
            .collect();
        assert!(s.is_realizable_multislot(&circuits, 1));
        // Two circuits from the same source on the same port need 2
        // wavelengths: shifts 3 and 5 both live on port 0.
        let double = vec![(NodeId(0), NodeId(3)), (NodeId(0), NodeId(5))];
        assert!(!s.is_realizable_multislot(&double, 1));
        assert!(s.is_realizable_multislot(&double, 2));
        // Different ports don't contend: shifts 3 (port 0) and 9 (port 1).
        let split = vec![(NodeId(0), NodeId(3)), (NodeId(0), NodeId(9))];
        assert!(s.is_realizable_multislot(&split, 1));
    }

    #[test]
    fn multislot_receiver_collisions_checked() {
        let s = AwgrSetup {
            nodes: 16,
            ports_per_node: 2,
            grating_ports: 8,
        };
        // Two sources hitting node 6 via port-0 shifts (3 and 5).
        let collide = vec![(NodeId(3), NodeId(6)), (NodeId(1), NodeId(6))];
        assert!(!s.is_realizable_multislot(&collide, 1));
        assert!(s.is_realizable_multislot(&collide, 2));
        // Same destination via different ports is fine: shifts 3 (p0)
        // and 9 (p1).
        let ok = vec![(NodeId(3), NodeId(6)), (NodeId(13), NodeId(6))];
        assert!(s.is_realizable_multislot(&ok, 1));
    }

    #[test]
    fn multislot_rejects_garbage() {
        let s = AwgrSetup {
            nodes: 8,
            ports_per_node: 1,
            grating_ports: 8,
        };
        assert!(!s.is_realizable_multislot(&[(NodeId(2), NodeId(2))], 2)); // self loop
        assert!(!s.is_realizable_multislot(&[(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))], 4)); // duplicate
        assert!(s.is_realizable_multislot(&[], 0));
        assert!(!s.is_realizable_multislot(&[(NodeId(0), NodeId(1))], 0));
    }

    #[test]
    fn shift_of_wraps() {
        assert_eq!(shift_of(8, NodeId(6), NodeId(2)), 4);
        assert_eq!(shift_of(8, NodeId(2), NodeId(6)), 4);
        assert_eq!(shift_of(8, NodeId(3), NodeId(3)), 0);
    }
}
