//! Error type for topology construction and validation.

use std::fmt;

/// Errors raised while building or validating matchings and schedules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A matching's destination vector is not a permutation of `0..n`.
    NotAPermutation {
        /// Number of ports.
        n: usize,
        /// First offending destination value.
        dup: u32,
    },
    /// A matching has the wrong number of entries for the network size.
    SizeMismatch {
        /// Expected number of nodes.
        expected: usize,
        /// Actual number of entries.
        actual: usize,
    },
    /// A schedule refers to a matching index that does not exist.
    UnknownMatching {
        /// The out-of-range index.
        index: usize,
        /// Number of matchings available.
        available: usize,
    },
    /// A schedule has no slots.
    EmptySchedule,
    /// A parameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// The requested topology is not realizable on the physical setup.
    NotRealizable {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NotAPermutation { n, dup } => {
                write!(f, "matching over {n} ports is not a permutation (value {dup} repeated or out of range)")
            }
            TopologyError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "matching size mismatch: expected {expected} entries, got {actual}"
                )
            }
            TopologyError::UnknownMatching { index, available } => {
                write!(f, "schedule slot refers to matching {index}, but only {available} matchings exist")
            }
            TopologyError::EmptySchedule => write!(f, "schedule has no slots"),
            TopologyError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            TopologyError::NotRealizable { reason } => {
                write!(
                    f,
                    "topology not realizable on this physical setup: {reason}"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, TopologyError>;

/// Builds an [`TopologyError::InvalidParameter`] tersely.
pub(crate) fn invalid(name: &'static str, message: impl Into<String>) -> TopologyError {
    TopologyError::InvalidParameter {
        name,
        message: message.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TopologyError::NotAPermutation { n: 4, dup: 2 };
        assert!(e.to_string().contains("permutation"));
        let e = TopologyError::SizeMismatch {
            expected: 8,
            actual: 7,
        };
        assert!(e.to_string().contains("expected 8"));
        let e = TopologyError::UnknownMatching {
            index: 9,
            available: 3,
        };
        assert!(e.to_string().contains("matching 9"));
        assert!(TopologyError::EmptySchedule
            .to_string()
            .contains("no slots"));
        let e = invalid("q", "must be >= 1");
        assert!(e.to_string().contains("`q`"));
        let e = TopologyError::NotRealizable {
            reason: "too few ports".into(),
        };
        assert!(e.to_string().contains("too few ports"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TopologyError::EmptySchedule);
    }
}
