//! Node and clique identifiers.
//!
//! A *node* in this crate is the unit attached to the optical circuit
//! switched layer — a top-of-rack switch or an end host, per §4 of the
//! paper. Nodes are dense integer ids `0..n`. When a network is organized
//! into cliques (§3–§4), every node additionally has a [`CliqueId`] and an
//! *intra index*, its offset inside its clique.

use std::fmt;

/// Identifier of a node (ToR switch or end host) attached to the OCS layer.
///
/// Node ids are dense: a network of `n` nodes uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u32)
    }
}

/// Identifier of a clique (a group of co-located nodes, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CliqueId(pub u32);

impl CliqueId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CliqueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Assignment of nodes to equal-sized cliques.
///
/// The canonical layout is *contiguous*: clique `c` owns nodes
/// `c*size .. (c+1)*size`, matching the paper's Figure 2(d)/(e) examples
/// (topology A groups {0,1,2,3} and {4,5,6,7}). Arbitrary assignments are
/// supported through [`CliqueMap::from_assignment`], which the control
/// plane uses when it regroups nodes (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueMap {
    /// clique of each node, indexed by node id.
    clique_of: Vec<CliqueId>,
    /// intra-clique offset of each node, indexed by node id.
    intra_of: Vec<u32>,
    /// members of each clique, indexed by clique id.
    members: Vec<Vec<NodeId>>,
}

impl CliqueMap {
    /// Contiguous assignment of `n` nodes into `cliques` equal cliques.
    ///
    /// # Panics
    /// Panics if `cliques == 0` or `n` is not divisible by `cliques`.
    pub fn contiguous(n: usize, cliques: usize) -> Self {
        assert!(cliques > 0, "clique count must be positive");
        assert!(
            n.is_multiple_of(cliques),
            "node count {n} not divisible by clique count {cliques}"
        );
        let size = n / cliques;
        let assignment: Vec<CliqueId> = (0..n).map(|i| CliqueId((i / size) as u32)).collect();
        Self::from_assignment(&assignment)
    }

    /// Builds a clique map from an explicit per-node assignment.
    ///
    /// Clique ids must be dense (`0..k` for some `k`). Cliques may have
    /// different sizes; [`CliqueMap::is_uniform`] reports whether they are
    /// all equal.
    ///
    /// # Panics
    /// Panics if clique ids are not dense or a clique is empty.
    pub fn from_assignment(assignment: &[CliqueId]) -> Self {
        let k = assignment.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut intra_of = vec![0u32; assignment.len()];
        for (i, c) in assignment.iter().enumerate() {
            intra_of[i] = members[c.index()].len() as u32;
            members[c.index()].push(NodeId(i as u32));
        }
        for (c, m) in members.iter().enumerate() {
            assert!(!m.is_empty(), "clique {c} has no members");
        }
        CliqueMap {
            clique_of: assignment.to_vec(),
            intra_of,
            members,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.clique_of.len()
    }

    /// Number of cliques.
    #[inline]
    pub fn cliques(&self) -> usize {
        self.members.len()
    }

    /// The clique of `node`.
    #[inline]
    pub fn clique_of(&self, node: NodeId) -> CliqueId {
        self.clique_of[node.index()]
    }

    /// The offset of `node` inside its clique.
    #[inline]
    pub fn intra_index(&self, node: NodeId) -> u32 {
        self.intra_of[node.index()]
    }

    /// Members of clique `c`, in intra-index order.
    #[inline]
    pub fn members(&self, c: CliqueId) -> &[NodeId] {
        &self.members[c.index()]
    }

    /// Size of clique `c`.
    #[inline]
    pub fn clique_size(&self, c: CliqueId) -> usize {
        self.members[c.index()].len()
    }

    /// True when every clique has the same size.
    pub fn is_uniform(&self) -> bool {
        let s = self.members[0].len();
        self.members.iter().all(|m| m.len() == s)
    }

    /// Size shared by all cliques, if uniform.
    pub fn uniform_size(&self) -> Option<usize> {
        if self.is_uniform() {
            Some(self.members[0].len())
        } else {
            None
        }
    }

    /// The node at `intra` offset inside clique `c`.
    ///
    /// Returns `None` when the offset is out of range for that clique.
    pub fn node_at(&self, c: CliqueId, intra: u32) -> Option<NodeId> {
        self.members[c.index()].get(intra as usize).copied()
    }

    /// True when `a` and `b` are in the same clique.
    #[inline]
    pub fn same_clique(&self, a: NodeId, b: NodeId) -> bool {
        self.clique_of(a) == self.clique_of(b)
    }

    /// Iterates over all `(node, clique)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, CliqueId)> + '_ {
        self.clique_of
            .iter()
            .enumerate()
            .map(|(i, c)| (NodeId(i as u32), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_layout_matches_paper_topology_a() {
        // Figure 2(d): 8 nodes, cliques {0..3} and {4..7}.
        let m = CliqueMap::contiguous(8, 2);
        assert_eq!(m.n(), 8);
        assert_eq!(m.cliques(), 2);
        assert_eq!(m.clique_of(NodeId(0)), CliqueId(0));
        assert_eq!(m.clique_of(NodeId(3)), CliqueId(0));
        assert_eq!(m.clique_of(NodeId(4)), CliqueId(1));
        assert_eq!(m.clique_of(NodeId(7)), CliqueId(1));
        assert_eq!(m.intra_index(NodeId(5)), 1);
        assert_eq!(
            m.members(CliqueId(1)),
            &[NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
        assert!(m.is_uniform());
        assert_eq!(m.uniform_size(), Some(4));
    }

    #[test]
    fn node_at_round_trips_with_intra_index() {
        let m = CliqueMap::contiguous(32, 4);
        for i in 0..32u32 {
            let node = NodeId(i);
            let c = m.clique_of(node);
            let intra = m.intra_index(node);
            assert_eq!(m.node_at(c, intra), Some(node));
        }
        assert_eq!(m.node_at(CliqueId(0), 99), None);
    }

    #[test]
    fn from_assignment_supports_nonuniform() {
        let a = [CliqueId(0), CliqueId(0), CliqueId(0), CliqueId(1)];
        let m = CliqueMap::from_assignment(&a);
        assert_eq!(m.cliques(), 2);
        assert!(!m.is_uniform());
        assert_eq!(m.uniform_size(), None);
        assert_eq!(m.clique_size(CliqueId(0)), 3);
        assert_eq!(m.clique_size(CliqueId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn contiguous_rejects_indivisible() {
        let _ = CliqueMap::contiguous(10, 4);
    }

    #[test]
    fn same_clique_checks() {
        let m = CliqueMap::contiguous(8, 2);
        assert!(m.same_clique(NodeId(0), NodeId(3)));
        assert!(!m.same_clique(NodeId(0), NodeId(6)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(CliqueId(1).to_string(), "c1");
    }
}
