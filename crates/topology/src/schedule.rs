//! Circuit schedules: periodic sequences of matchings.
//!
//! Nodes and switches synchronously cycle through a predetermined schedule
//! of circuits to create a fixed logical topology (§2). A schedule here is
//! a period of *slots*; each slot selects one [`Matching`] out of the set
//! the physical layer can realize. If a circuit `src → dst` appears in a
//! fraction `l` of the slots, it implements a virtual edge of bandwidth
//! `b·l` where `b` is the node's aggregate bandwidth (§4 "Topology").

use crate::error::{invalid, Result, TopologyError};
use crate::matching::Matching;
use crate::node::NodeId;

/// A periodic circuit schedule over `n` nodes.
///
/// Stores a pool of distinct matchings (the realizable "wavelengths") and a
/// periodic slot sequence indexing into the pool. Slot `t` of global time
/// uses `slots[t mod period]`.
///
/// ```
/// use sorn_topology::builders::round_robin;
/// use sorn_topology::NodeId;
///
/// let s = round_robin(5).unwrap(); // Figure 1
/// assert_eq!(s.period(), 4);
/// // Node 0 reaches node 3 in slot 2 (matching m3).
/// assert_eq!(s.next_circuit(NodeId(0), NodeId(3), 0), Some(2));
/// // Each pair holds 1/4 of a node's bandwidth.
/// let topo = s.logical_topology();
/// assert!((topo.capacity(NodeId(0), NodeId(3)) - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSchedule {
    n: usize,
    matchings: Vec<Matching>,
    slots: Vec<usize>,
}

impl CircuitSchedule {
    /// Builds a schedule from a matching pool and a slot sequence.
    pub fn new(matchings: Vec<Matching>, slots: Vec<usize>) -> Result<Self> {
        if slots.is_empty() {
            return Err(TopologyError::EmptySchedule);
        }
        let n = matchings.first().ok_or(TopologyError::EmptySchedule)?.n();
        for m in &matchings {
            if m.n() != n {
                return Err(TopologyError::SizeMismatch {
                    expected: n,
                    actual: m.n(),
                });
            }
        }
        for &s in &slots {
            if s >= matchings.len() {
                return Err(TopologyError::UnknownMatching {
                    index: s,
                    available: matchings.len(),
                });
            }
        }
        Ok(CircuitSchedule {
            n,
            matchings,
            slots,
        })
    }

    /// Builds a schedule where each slot is its own matching, in order.
    pub fn from_matchings(matchings: Vec<Matching>) -> Result<Self> {
        let slots = (0..matchings.len()).collect();
        CircuitSchedule::new(matchings, slots)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Schedule period, in slots.
    #[inline]
    pub fn period(&self) -> usize {
        self.slots.len()
    }

    /// The distinct matchings this schedule draws from.
    #[inline]
    pub fn matchings(&self) -> &[Matching] {
        &self.matchings
    }

    /// The slot sequence (indices into [`CircuitSchedule::matchings`]).
    #[inline]
    pub fn slot_indices(&self) -> &[usize] {
        &self.slots
    }

    /// The matching active at global slot `t`.
    #[inline]
    pub fn matching_at(&self, t: u64) -> &Matching {
        &self.matchings[self.slots[(t % self.period() as u64) as usize]]
    }

    /// Destination of `src` at global slot `t` (`None` when idle).
    #[inline]
    pub fn dst_at(&self, t: u64, src: NodeId) -> Option<NodeId> {
        self.matching_at(t).dst_of(src)
    }

    /// First global slot `>= from` at which the circuit `src → dst` is up.
    ///
    /// Returns `None` if the schedule never connects the pair.
    pub fn next_circuit(&self, src: NodeId, dst: NodeId, from: u64) -> Option<u64> {
        let p = self.period() as u64;
        (0..p)
            .map(|off| from + off)
            .find(|&t| self.matching_at(t).connects(src, dst))
    }

    /// Slots to wait from `from` until `src → dst` is next available.
    pub fn wait_slots(&self, src: NodeId, dst: NodeId, from: u64) -> Option<u64> {
        self.next_circuit(src, dst, from).map(|t| t - from)
    }

    /// Worst-case wait (in slots) for the circuit `src → dst`, over all
    /// possible start slots within a period.
    ///
    /// This is the per-hop component of the paper's *intrinsic latency*
    /// `δm` (§4 "Latency"): the number of circuits a packet may have to
    /// cycle through before its next hop comes up.
    pub fn max_wait(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let p = self.period() as u64;
        let ups: Vec<u64> = (0..p)
            .filter(|&t| self.matching_at(t).connects(src, dst))
            .collect();
        if ups.is_empty() {
            return None;
        }
        // Max gap between consecutive occurrences, wrapping around the
        // period; a packet arriving just after slot `u_i` waits until
        // `u_{i+1}`.
        let mut max_gap = 0u64;
        for (i, &u) in ups.iter().enumerate() {
            let next = if i + 1 < ups.len() {
                ups[i + 1]
            } else {
                ups[0] + p
            };
            max_gap = max_gap.max(next - u - 1);
        }
        Some(max_gap)
    }

    /// Fraction of slots in which the circuit `src → dst` is up.
    ///
    /// This is the `l` of §4: the virtual edge `src → dst` has bandwidth
    /// `b·l`.
    pub fn circuit_fraction(&self, src: NodeId, dst: NodeId) -> f64 {
        let ups = (0..self.period() as u64)
            .filter(|&t| self.matching_at(t).connects(src, dst))
            .count();
        ups as f64 / self.period() as f64
    }

    /// Extracts the logical topology: every virtual edge and its capacity
    /// fraction.
    pub fn logical_topology(&self) -> LogicalTopology {
        let mut counts: Vec<std::collections::BTreeMap<u32, u64>> =
            vec![std::collections::BTreeMap::new(); self.n];
        for t in 0..self.period() as u64 {
            for (s, d) in self.matching_at(t).circuits() {
                *counts[s.index()].entry(d.0).or_insert(0) += 1;
            }
        }
        let p = self.period() as f64;
        let adj = counts
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|(d, c)| (NodeId(d), c as f64 / p))
                    .collect()
            })
            .collect();
        LogicalTopology { n: self.n, adj }
    }

    /// Checks every slot is a valid matching of the right size.
    ///
    /// `CircuitSchedule::new` already guarantees this; the method exists so
    /// property tests and downstream builders can re-assert the invariant
    /// after transformations.
    pub fn validate(&self) -> Result<()> {
        for m in &self.matchings {
            if m.n() != self.n {
                return Err(TopologyError::SizeMismatch {
                    expected: self.n,
                    actual: m.n(),
                });
            }
            // Re-validate permutation structure.
            Matching::from_permutation(m.as_slice().to_vec())?;
        }
        if self.slots.is_empty() {
            return Err(TopologyError::EmptySchedule);
        }
        Ok(())
    }

    /// Renders the schedule as a paper-style table (Figure 1): one row per
    /// time slot, one column per node, entries are the connected peer
    /// (`-` when idle).
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "slot");
        for i in 0..self.n {
            let _ = write!(out, "\t{i}");
        }
        out.push('\n');
        for t in 0..self.period() as u64 {
            let _ = write!(out, "{}", t + 1);
            let m = self.matching_at(t);
            for i in 0..self.n as u32 {
                match m.dst_of(NodeId(i)) {
                    Some(d) => {
                        let _ = write!(out, "\t{}", d.0);
                    }
                    None => {
                        let _ = write!(out, "\t-");
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A node with `u` uplinks following `u` phase-staggered copies of a base
/// schedule.
///
/// Sirius-style deployments give each rack `u` uplinks into independent
/// OCS planes; staggering the same schedule by `period/u` across planes
/// divides the worst-case circuit wait by `u`. Table 1 uses 16 uplinks,
/// which is why a 4095-slot round robin waits only `4095/16` slots.
#[derive(Debug, Clone)]
pub struct StaggeredSchedule {
    base: CircuitSchedule,
    uplinks: usize,
}

impl StaggeredSchedule {
    /// Wraps `base` with `u >= 1` staggered uplinks.
    pub fn new(base: CircuitSchedule, uplinks: usize) -> Result<Self> {
        if uplinks == 0 {
            return Err(invalid("uplinks", "must be at least 1"));
        }
        Ok(StaggeredSchedule { base, uplinks })
    }

    /// The underlying single-plane schedule.
    pub fn base(&self) -> &CircuitSchedule {
        &self.base
    }

    /// Number of uplinks (planes).
    pub fn uplinks(&self) -> usize {
        self.uplinks
    }

    /// Phase offset (in slots) of uplink `j`.
    pub fn offset_of(&self, uplink: usize) -> u64 {
        (uplink * self.base.period() / self.uplinks) as u64
    }

    /// Destination of `src` on uplink `j` at global slot `t`.
    pub fn dst_at(&self, t: u64, uplink: usize, src: NodeId) -> Option<NodeId> {
        self.base.dst_at(t + self.offset_of(uplink), src)
    }

    /// Minimum wait over all uplinks for the circuit `src → dst` from slot
    /// `from`.
    pub fn wait_slots(&self, src: NodeId, dst: NodeId, from: u64) -> Option<u64> {
        (0..self.uplinks)
            .filter_map(|j| self.base.wait_slots(src, dst, from + self.offset_of(j)))
            .min()
    }

    /// Worst-case wait in slots across start times, with all uplinks
    /// available.
    ///
    /// For an evenly staggered schedule this is about `max_wait / u`.
    pub fn max_wait(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let p = self.base.period() as u64;
        let mut worst = None;
        for from in 0..p {
            match self.wait_slots(src, dst, from) {
                Some(w) => {
                    let cur = worst.get_or_insert(0);
                    *cur = (*cur).max(w);
                }
                None => return None,
            }
        }
        worst
    }
}

/// The logical topology implied by a schedule: directed virtual edges with
/// capacity fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalTopology {
    n: usize,
    /// For each source, sorted `(dst, fraction-of-slots)` pairs.
    adj: Vec<Vec<(NodeId, f64)>>,
}

impl LogicalTopology {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Out-neighbors of `src` with their capacity fractions.
    #[inline]
    pub fn neighbors(&self, src: NodeId) -> &[(NodeId, f64)] {
        &self.adj[src.index()]
    }

    /// Capacity fraction of the virtual edge `src → dst` (0 when absent).
    pub fn capacity(&self, src: NodeId, dst: NodeId) -> f64 {
        self.adj[src.index()]
            .iter()
            .find(|(d, _)| *d == dst)
            .map(|(_, c)| *c)
            .unwrap_or(0.0)
    }

    /// Out-degree of `src` (number of distinct virtual edges).
    pub fn degree(&self, src: NodeId) -> usize {
        self.adj[src.index()].len()
    }

    /// Total outgoing capacity fraction of `src` (≤ 1).
    pub fn total_capacity(&self, src: NodeId) -> f64 {
        self.adj[src.index()].iter().map(|(_, c)| c).sum()
    }

    /// Iterates over every directed virtual edge `(src, dst, fraction)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(s, row)| row.iter().map(move |(d, c)| (NodeId(s as u32), *d, *c)))
    }

    /// Builds a logical topology directly from weighted edges.
    ///
    /// Used by analytical models that never materialize slot sequences.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId, f64)>) -> Self {
        let mut adj: Vec<std::collections::BTreeMap<u32, f64>> =
            vec![std::collections::BTreeMap::new(); n];
        for (s, d, c) in edges {
            *adj[s.index()].entry(d.0).or_insert(0.0) += c;
        }
        LogicalTopology {
            n,
            adj: adj
                .into_iter()
                .map(|row| row.into_iter().map(|(d, c)| (NodeId(d), c)).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_robin(n: usize) -> CircuitSchedule {
        let ms = (1..n).map(|k| Matching::cyclic(n, k)).collect();
        CircuitSchedule::from_matchings(ms).unwrap()
    }

    #[test]
    fn round_robin_period_and_connectivity() {
        // Figure 1: 5 nodes, 4 slots, full connectivity.
        let s = round_robin(5);
        assert_eq!(s.period(), 4);
        for src in 0..5u32 {
            for dst in 0..5u32 {
                if src != dst {
                    assert!(s.next_circuit(NodeId(src), NodeId(dst), 0).is_some());
                }
            }
        }
    }

    #[test]
    fn figure1_table_layout() {
        let s = round_robin(5);
        let table = s.render_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 slots
                                    // Slot 1 row: A->B, B->C, ... (0->1, 1->2, 2->3, 3->4, 4->0)
        assert_eq!(lines[1], "1\t1\t2\t3\t4\t0");
        // Slot 4 row: 0->4, 1->0, ...
        assert_eq!(lines[4], "4\t4\t0\t1\t2\t3");
    }

    #[test]
    fn wait_and_max_wait_on_round_robin() {
        let s = round_robin(8);
        // Circuit 0->1 is up in slot 0 (matching m1 first).
        assert_eq!(s.wait_slots(NodeId(0), NodeId(1), 0), Some(0));
        // From slot 1, 0->1 next appears at slot 7 (one full period later).
        assert_eq!(s.wait_slots(NodeId(0), NodeId(1), 1), Some(6));
        // Worst case wait for any pair in a round robin is period-1 slots.
        assert_eq!(s.max_wait(NodeId(0), NodeId(1)), Some(6));
        assert_eq!(s.max_wait(NodeId(3), NodeId(2)), Some(6));
        // Never-connected pair (self) is None.
        assert_eq!(s.max_wait(NodeId(3), NodeId(3)), None);
    }

    #[test]
    fn circuit_fraction_uniform_in_round_robin() {
        let s = round_robin(6);
        for src in 0..6u32 {
            for dst in 0..6u32 {
                if src != dst {
                    let f = s.circuit_fraction(NodeId(src), NodeId(dst));
                    assert!((f - 1.0 / 5.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn logical_topology_of_round_robin_is_uniform_clique() {
        let s = round_robin(5);
        let t = s.logical_topology();
        assert_eq!(t.n(), 5);
        for src in 0..5u32 {
            assert_eq!(t.degree(NodeId(src)), 4);
            assert!((t.total_capacity(NodeId(src)) - 1.0).abs() < 1e-12);
            for (_, c) in t.neighbors(NodeId(src)) {
                assert!((c - 0.25).abs() < 1e-12);
            }
        }
        assert_eq!(t.edges().count(), 20);
    }

    #[test]
    fn schedule_rejects_bad_inputs() {
        assert!(matches!(
            CircuitSchedule::new(vec![], vec![]),
            Err(TopologyError::EmptySchedule)
        ));
        let ms = vec![Matching::cyclic(4, 1)];
        assert!(matches!(
            CircuitSchedule::new(ms.clone(), vec![1]),
            Err(TopologyError::UnknownMatching { .. })
        ));
        let mixed = vec![Matching::cyclic(4, 1), Matching::cyclic(5, 1)];
        assert!(matches!(
            CircuitSchedule::new(mixed, vec![0, 1]),
            Err(TopologyError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn repeated_slots_change_fractions() {
        // Give m1 three slots and m2 one slot: 0->1 gets 75% capacity.
        let ms = vec![Matching::cyclic(4, 1), Matching::cyclic(4, 2)];
        let s = CircuitSchedule::new(ms, vec![0, 0, 0, 1]).unwrap();
        assert!((s.circuit_fraction(NodeId(0), NodeId(1)) - 0.75).abs() < 1e-12);
        assert!((s.circuit_fraction(NodeId(0), NodeId(2)) - 0.25).abs() < 1e-12);
        let t = s.logical_topology();
        assert!((t.capacity(NodeId(0), NodeId(1)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn staggered_schedule_divides_wait() {
        let s = round_robin(17); // period 16
        let st = StaggeredSchedule::new(s, 4).unwrap();
        assert_eq!(st.offset_of(0), 0);
        assert_eq!(st.offset_of(1), 4);
        // Worst-case wait drops from 15 to at most 3 with 4 planes.
        let w = st.max_wait(NodeId(0), NodeId(5)).unwrap();
        assert!(w <= 4, "staggered wait {w} too large");
    }

    #[test]
    fn staggered_rejects_zero_uplinks() {
        let s = round_robin(4);
        assert!(StaggeredSchedule::new(s, 0).is_err());
    }

    #[test]
    fn logical_topology_from_edges_merges_duplicates() {
        let t = LogicalTopology::from_edges(
            3,
            vec![
                (NodeId(0), NodeId(1), 0.25),
                (NodeId(0), NodeId(1), 0.25),
                (NodeId(0), NodeId(2), 0.5),
            ],
        );
        assert!((t.capacity(NodeId(0), NodeId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(t.degree(NodeId(0)), 2);
    }
}
