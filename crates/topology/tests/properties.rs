//! Property-based tests for the topology substrate.

use proptest::prelude::*;
use sorn_topology::builders::{hdim_orn, round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, Matching, NodeId, Ratio};

proptest! {
    /// Cyclic matchings are permutations for every (n, k).
    #[test]
    fn cyclic_matchings_are_permutations(n in 1usize..200, k in 0usize..400) {
        let m = Matching::cyclic(n, k);
        // Re-validate by reconstructing from the raw permutation.
        prop_assert!(Matching::from_permutation(m.as_slice().to_vec()).is_ok());
    }

    /// Inverting a matching twice is the identity operation.
    #[test]
    fn invert_is_involutive(n in 1usize..100, k in 0usize..100) {
        let m = Matching::cyclic(n, k);
        prop_assert_eq!(m.invert().invert(), m);
    }

    /// Composition of cyclic matchings adds shifts mod n.
    #[test]
    fn compose_adds_shifts(n in 1usize..64, a in 0usize..64, b in 0usize..64) {
        let ma = Matching::cyclic(n, a);
        let mb = Matching::cyclic(n, b);
        prop_assert_eq!(ma.compose(&mb).unwrap(), Matching::cyclic(n, (a + b) % n));
    }

    /// Round-robin schedules connect every ordered pair exactly once per
    /// period.
    #[test]
    fn round_robin_covers_all_pairs_once(n in 2usize..40) {
        let s = round_robin(n).unwrap();
        for src in 0..n as u32 {
            for dst in 0..n as u32 {
                if src == dst { continue; }
                let count = (0..s.period() as u64)
                    .filter(|&t| s.matching_at(t).connects(NodeId(src), NodeId(dst)))
                    .count();
                prop_assert_eq!(count, 1, "pair {}->{}", src, dst);
            }
        }
    }

    /// Every slot of a SORN schedule is a valid matching, node bandwidth
    /// sums to 1, and the intra/inter split equals q exactly.
    #[test]
    fn sorn_schedule_invariants(
        cliques in 2usize..6,
        size in 2usize..6,
        qn in 1u64..8,
        qd in 1u64..8,
    ) {
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        let q = Ratio::new(qn, qd);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
        s.validate().unwrap();

        let topo = s.logical_topology();
        for v in 0..n as u32 {
            let v = NodeId(v);
            prop_assert!((topo.total_capacity(v) - 1.0).abs() < 1e-9);
            let mut intra = 0.0;
            let mut inter = 0.0;
            for (d, c) in topo.neighbors(v) {
                if map.same_clique(v, *d) { intra += c; } else { inter += c; }
            }
            prop_assert!(inter > 0.0);
            prop_assert!((intra / inter - q.to_f64()).abs() < 1e-9,
                "node {}: intra {} inter {} q {}", v, intra, inter, q);
        }
    }

    /// SORN schedules connect every ordered pair the routing needs:
    /// all intra-clique pairs and all equal-intra-index inter pairs.
    #[test]
    fn sorn_schedule_routing_connectivity(
        cliques in 2usize..5,
        size in 2usize..5,
    ) {
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        let s = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                if a == b { continue; }
                let (a, b) = (NodeId(a), NodeId(b));
                let needed = map.same_clique(a, b)
                    || map.intra_index(a) == map.intra_index(b);
                if needed {
                    prop_assert!(s.next_circuit(a, b, 0).is_some(),
                        "missing circuit {}->{}", a, b);
                }
            }
        }
    }

    /// h-dim schedules: every slot changes exactly one digit, and the
    /// period is h(delta-1).
    #[test]
    fn hdim_schedule_structure(delta in 2usize..6, h in 2u32..4) {
        let n = delta.pow(h);
        let s = hdim_orn(n, h).unwrap();
        prop_assert_eq!(s.period(), h as usize * (delta - 1));
        for t in 0..s.period() as u64 {
            let m = s.matching_at(t);
            for x in 0..n {
                let d = m.raw_dst(NodeId(x as u32)).index();
                let mut diffs = 0;
                let mut xx = x;
                let mut dd = d;
                for _ in 0..h {
                    if xx % delta != dd % delta { diffs += 1; }
                    xx /= delta;
                    dd /= delta;
                }
                prop_assert_eq!(diffs, 1, "slot {}: {} -> {}", t, x, d);
            }
        }
    }

    /// Rational approximation recovers exact fractions within the
    /// denominator bound.
    #[test]
    fn ratio_approximation_is_exact_for_small_fractions(p in 1u64..500, q in 1u64..100) {
        let r = Ratio::approximate(p as f64 / q as f64, 1000);
        let g = {
            let (mut a, mut b) = (p, q);
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        };
        prop_assert_eq!((r.num(), r.den()), (p / g, q / g));
    }

    /// Clique maps: node_at inverts (clique_of, intra_index).
    #[test]
    fn clique_map_round_trip(cliques in 1usize..8, size in 1usize..8) {
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        for v in 0..n as u32 {
            let v = NodeId(v);
            prop_assert_eq!(map.node_at(map.clique_of(v), map.intra_index(v)), Some(v));
        }
    }

    /// max_wait is consistent with wait_slots: no start slot waits more
    /// than max_wait.
    #[test]
    fn max_wait_bounds_every_start(n in 2usize..12) {
        let s = round_robin(n).unwrap();
        let src = NodeId(0);
        let dst = NodeId(1);
        let max = s.max_wait(src, dst).unwrap();
        for from in 0..s.period() as u64 {
            let w = s.wait_slots(src, dst, from).unwrap();
            prop_assert!(w <= max);
        }
    }
}
