//! Property-based tests for the extension builders: non-uniform cliques,
//! hierarchical schedules, gravity balancing.

use proptest::prelude::*;
use sorn_topology::builders::{
    hierarchical_schedule, nonuniform_sorn_schedule, GravityWeights, HierarchySpec,
};
use sorn_topology::{CliqueId, CliqueMap, Matching, NodeId, Ratio};

/// Arbitrary clique size lists (2..=5 cliques of 1..=5 nodes).
fn sizes_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..=5, 2..=5)
}

fn map_from_sizes(sizes: &[usize]) -> CliqueMap {
    let mut assignment = Vec::new();
    for (c, &s) in sizes.iter().enumerate() {
        for _ in 0..s {
            assignment.push(CliqueId(c as u32));
        }
    }
    CliqueMap::from_assignment(&assignment)
}

proptest! {
    /// Every slot of a non-uniform schedule is a valid permutation, and
    /// every needed circuit (intra pairs; all cross-clique pairs under
    /// default rotations) exists.
    #[test]
    fn nonuniform_schedules_are_complete(
        sizes in sizes_strategy(),
        qn in 1u64..5,
        qd in 1u64..3,
    ) {
        let total: usize = sizes.iter().sum();
        prop_assume!(total >= 2);
        let map = map_from_sizes(&sizes);
        let sched = nonuniform_sorn_schedule(&map, Ratio::new(qn, qd), 0, 1 << 22).unwrap();
        sched.validate().unwrap();
        for t in 0..sched.period() as u64 {
            Matching::from_permutation(sched.matching_at(t).as_slice().to_vec()).unwrap();
        }
        for a in 0..total as u32 {
            for b in 0..total as u32 {
                if a == b { continue; }
                let (a, b) = (NodeId(a), NodeId(b));
                let needed = map.same_clique(a, b) || map.cliques() > 1;
                if needed {
                    prop_assert!(
                        sched.next_circuit(a, b, 0).is_some(),
                        "missing circuit {}->{}", a, b
                    );
                }
            }
        }
    }

    /// Hierarchical schedules realize their level weights exactly and
    /// keep every node fully utilized.
    #[test]
    fn hierarchical_schedules_realize_weights(
        radices in proptest::collection::vec(2usize..=4, 2..=3),
        weights in proptest::collection::vec(1u64..=6, 2..=3),
    ) {
        prop_assume!(radices.len() == weights.len());
        let spec = HierarchySpec::new(radices.clone(), weights.clone()).unwrap();
        prop_assume!(spec.n() <= 64);
        let sched = hierarchical_schedule(&spec, 1 << 22).unwrap();
        sched.validate().unwrap();
        // Count slots by level moved.
        let mut per_level = vec![0u64; radices.len()];
        for t in 0..sched.period() as u64 {
            let m = sched.matching_at(t);
            let d = m.raw_dst(NodeId(0));
            let l = spec.highest_differing_level(NodeId(0), d).expect("non-identity");
            per_level[l] += 1;
        }
        // Ratios match the weights exactly.
        for i in 0..radices.len() {
            for j in 0..radices.len() {
                prop_assert_eq!(
                    per_level[i] * weights[j],
                    per_level[j] * weights[i],
                    "weight ratio violated between levels {} and {}", i, j
                );
            }
        }
        // Full utilization: every slot moves every node (digit shifts
        // are never identity).
        let topo = sched.logical_topology();
        for v in 0..spec.n() as u32 {
            prop_assert!((topo.total_capacity(NodeId(v)) - 1.0).abs() < 1e-9);
        }
    }

    /// Gravity balancing always produces a decomposable matrix that
    /// dominates its input entry-wise.
    #[test]
    fn gravity_balancing_dominates_input(
        nc in 2usize..5,
        entries in proptest::collection::vec(0u64..8, 4..25),
    ) {
        prop_assume!(entries.len() >= nc * nc);
        let mut w = vec![vec![0u64; nc]; nc];
        let mut any = false;
        for i in 0..nc {
            for j in 0..nc {
                if i != j {
                    w[i][j] = entries[i * nc + j];
                    any |= w[i][j] > 0;
                }
            }
        }
        prop_assume!(any);
        let balanced = GravityWeights::balanced(w.clone()).unwrap();
        for (i, row) in w.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                prop_assert!(balanced.weight(i, j) >= v);
            }
        }
        // Line sums equal and the decomposition reassembles.
        let s = balanced.line_sum();
        for i in 0..nc {
            let row: u64 = (0..nc).map(|j| balanced.weight(i, j)).sum();
            let col: u64 = (0..nc).map(|j| balanced.weight(j, i)).sum();
            prop_assert_eq!(row, s);
            prop_assert_eq!(col, s);
        }
        let parts = balanced.decompose().unwrap();
        let total: u64 = parts.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, s);
    }
}
