//! Routing for multi-level hierarchical SORN schedules.
//!
//! Generalizes the paper's two-level scheme: the first hop sprays within
//! the innermost (level-0) group — "the first available intra-group
//! link" — then the cell corrects its address digits from the *highest*
//! differing level down, one targeted hop per level. With two levels
//! this is exactly §4's routing (spray → inter-clique hop → intra hop);
//! with `L` levels a cell takes at most `L + 1` hops.

use crate::flowlevel::PathModel;
use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::builders::HierarchySpec;
use sorn_topology::NodeId;

/// The level-0 spray class.
pub const HIER_SPRAY: ClassId = ClassId(0);

/// Router over a hierarchical schedule.
#[derive(Debug, Clone)]
pub struct HierarchicalRouter {
    spec: HierarchySpec,
    classes: [ClassId; 1],
}

impl HierarchicalRouter {
    /// Creates the router for a hierarchy spec.
    pub fn new(spec: HierarchySpec) -> Self {
        HierarchicalRouter {
            spec,
            classes: [HIER_SPRAY],
        }
    }

    /// The hierarchy spec.
    pub fn spec(&self) -> &HierarchySpec {
        &self.spec
    }
}

impl Router for HierarchicalRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.hops == 0 {
            // Load-balancing hop within the innermost group.
            return RouteDecision::ToClass(HIER_SPRAY);
        }
        // Correct the highest differing level.
        let l = self
            .spec
            .highest_differing_level(node, cell.dst)
            .expect("node != dst");
        let target = self.spec.with_digit(node, l, self.spec.digit(cell.dst, l));
        RouteDecision::ToNode(target)
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, from: NodeId, to: NodeId) -> bool {
        // Spray over any level-0 circuit.
        self.spec.highest_differing_level(from, to) == Some(0)
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        (self.spec.levels() + 1) as u8
    }

    fn name(&self) -> &str {
        "sorn-hierarchical"
    }
}

/// Flow-level path model mirroring [`HierarchicalRouter`].
#[derive(Debug, Clone)]
pub struct HierarchicalPaths {
    spec: HierarchySpec,
}

impl HierarchicalPaths {
    /// Paths over a hierarchy spec.
    pub fn new(spec: HierarchySpec) -> Self {
        HierarchicalPaths { spec }
    }

    fn corrections(&self, mut cur: NodeId, dst: NodeId, path: &mut Vec<NodeId>) {
        while let Some(l) = self.spec.highest_differing_level(cur, dst) {
            cur = self.spec.with_digit(cur, l, self.spec.digit(dst, l));
            path.push(cur);
        }
    }
}

impl PathModel for HierarchicalPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        let b0 = self.spec.radices[0];
        let prob = 1.0 / (b0 - 1) as f64;
        let d0 = self.spec.digit(src, 0);
        for k in 0..b0 {
            if k == d0 {
                continue;
            }
            let via = self.spec.with_digit(src, 0, k);
            let mut path = vec![src, via];
            self.corrections(via, dst, &mut path);
            // Deduplicate the case where the spray lands on dst.
            visit(&path, prob);
        }
    }

    fn name(&self) -> &str {
        "sorn-hierarchical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowlevel::{evaluate, DemandMatrix};
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::hierarchical_schedule;

    fn spec3() -> HierarchySpec {
        HierarchySpec::new(vec![4, 4, 4], vec![6, 2, 1]).unwrap()
    }

    #[test]
    fn full_mesh_within_levels_plus_one_hops() {
        let spec = spec3(); // 64 nodes, 3 levels
        let sched = hierarchical_schedule(&spec, 1 << 20).unwrap();
        let router = HierarchicalRouter::new(spec);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..64u32)
            .flat_map(|s| [(s, (s + 1) % 64), (s, (s + 17) % 64), (s, (s + 45) % 64)])
            .enumerate()
            .map(|(i, (s, d))| Flow {
                id: FlowId(i as u64),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: 1250,
                arrival_ns: i as u64 * 20,
            })
            .collect();
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(2_000_000).unwrap());
        assert_eq!(eng.metrics().flows.len(), count);
        for f in &eng.metrics().flows {
            assert!(f.max_hops <= 4, "flow took {} hops", f.max_hops);
        }
    }

    #[test]
    fn two_level_hierarchy_equals_sorn_routing_hops() {
        // Two levels (4, 2) ~ topology A: intra <= 2 hops, inter <= 3.
        let spec = HierarchySpec::new(vec![4, 2], vec![3, 1]).unwrap();
        let sched = hierarchical_schedule(&spec, 1 << 20).unwrap();
        let router = HierarchicalRouter::new(spec.clone());
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([
            Flow {
                id: FlowId(0),
                src: NodeId(0),
                dst: NodeId(2), // same level-1 digit: intra
                size_bytes: 1250,
                arrival_ns: 0,
            },
            Flow {
                id: FlowId(1),
                src: NodeId(0),
                dst: NodeId(6), // crosses level 1
                size_bytes: 1250,
                arrival_ns: 0,
            },
        ])
        .unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        let by_id = |id: u64| {
            eng.metrics()
                .flows
                .iter()
                .find(|f| f.id.0 == id)
                .unwrap()
                .max_hops
        };
        assert!(by_id(0) <= 2);
        assert!(by_id(1) <= 3);
    }

    #[test]
    fn paths_probabilities_normalize_and_stay_scheduled() {
        let spec = spec3();
        let sched = hierarchical_schedule(&spec, 1 << 20).unwrap();
        let topo = sched.logical_topology();
        let model = HierarchicalPaths::new(spec);
        let demand = DemandMatrix::uniform(64);
        let rep = evaluate(&topo, &model, &demand).unwrap();
        // Worst-case mean hops over uniform traffic on 3 levels: most
        // pairs differ at the top level => close to 4 hops.
        assert!(rep.mean_hops > 2.0 && rep.mean_hops < 4.0);
        assert!(rep.throughput > 0.0);
    }

    #[test]
    fn correction_order_is_top_down() {
        let spec = spec3();
        let model = HierarchicalPaths::new(spec.clone());
        model.for_each_path(NodeId(0), NodeId(63), &mut |path, _| {
            // After the spray, each hop's highest-differing level vs the
            // destination strictly decreases.
            let mut last = usize::MAX;
            for v in &path[1..path.len() - 1] {
                let l = spec.highest_differing_level(*v, NodeId(63)).unwrap();
                assert!(l < last || last == usize::MAX, "level order violated");
                last = l;
            }
        });
    }
}
