//! 2h-hop routing on h-dimensional optimal ORN schedules.
//!
//! Nodes are h-digit base-Δ numbers and the schedule only ever connects
//! nodes differing in a single digit (one *dimension*). Routing is VLB
//! generalized across dimensions ([4], §2): phase one sprays the cell
//! across every dimension once — any circuit in a not-yet-sprayed
//! dimension will do, taking the cell to a random intermediate — and
//! phase two corrects each wrong digit with the specific circuit that
//! sets it to the destination's value. Worst-case `2h` hops, worst-case
//! throughput `1/2h`.
//!
//! The cell `tag` holds the bitmask of dimensions already sprayed; it is
//! updated in [`Router::on_transmit`] because only the transmit path
//! knows which circuit the spray hop actually used.

use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::NodeId;

/// Spray class: circuits in any not-yet-sprayed dimension.
pub const HDIM_SPRAY: ClassId = ClassId(0);
/// Correction class: circuits that fix one wrong digit.
pub const HDIM_CORRECT: ClassId = ClassId(1);

/// Router for h-dimensional ORN schedules over `Δ^h` nodes.
#[derive(Debug, Clone)]
pub struct HdimRouter {
    delta: usize,
    h: u32,
    classes: [ClassId; 2],
}

impl HdimRouter {
    /// Creates a router for `n = Δ^h` nodes.
    ///
    /// # Panics
    /// Panics if `n` is not a perfect `h`-th power, `h == 0`, or `h > 16`
    /// (the cell tag holds at most 16 dimension bits).
    pub fn new(n: usize, h: u32) -> Self {
        assert!((1..=16).contains(&h), "h must be in 1..=16");
        let delta = (n as f64).powf(1.0 / h as f64).round() as usize;
        assert!(
            delta.checked_pow(h) == Some(n),
            "{n} is not a perfect {h}-th power"
        );
        assert!(delta >= 2, "each dimension needs at least 2 digit values");
        HdimRouter {
            delta,
            h,
            classes: [HDIM_SPRAY, HDIM_CORRECT],
        }
    }

    /// Base of the digit representation.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// Number of dimensions.
    pub fn h(&self) -> u32 {
        self.h
    }

    fn full_mask(&self) -> u16 {
        ((1u32 << self.h) - 1) as u16
    }

    fn digit(&self, x: NodeId, dim: u32) -> usize {
        (x.index() / self.delta.pow(dim)) % self.delta
    }

    /// The single dimension in which `a` and `b` differ, if exactly one.
    fn differing_dim(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let mut found = None;
        for j in 0..self.h {
            if self.digit(a, j) != self.digit(b, j) {
                if found.is_some() {
                    return None;
                }
                found = Some(j);
            }
        }
        found
    }
}

impl Router for HdimRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.tag & self.full_mask() != self.full_mask() {
            RouteDecision::ToClass(HDIM_SPRAY)
        } else {
            RouteDecision::ToClass(HDIM_CORRECT)
        }
    }

    fn class_admits(&self, class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        let Some(dim) = self.differing_dim(from, to) else {
            return false; // not a single-dimension circuit (never scheduled)
        };
        match class {
            HDIM_SPRAY => cell.tag & (1 << dim) == 0,
            HDIM_CORRECT => {
                self.digit(to, dim) == self.digit(cell.dst, dim)
                    && self.digit(from, dim) != self.digit(cell.dst, dim)
            }
            _ => false,
        }
    }

    fn on_transmit(&self, cell: &mut Cell, from: NodeId, to: NodeId) {
        if cell.tag & self.full_mask() != self.full_mask() {
            if let Some(dim) = self.differing_dim(from, to) {
                cell.tag |= 1 << dim;
            }
        }
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        (2 * self.h) as u8
    }

    fn name(&self) -> &str {
        "hdim-orn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::hdim_orn;

    fn cell(src: u32, dst: u32) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    #[test]
    fn digits_and_differing_dim() {
        let r = HdimRouter::new(16, 2); // delta 4
        assert_eq!(r.digit(NodeId(7), 0), 3);
        assert_eq!(r.digit(NodeId(7), 1), 1);
        assert_eq!(r.differing_dim(NodeId(7), NodeId(5)), Some(0));
        assert_eq!(r.differing_dim(NodeId(7), NodeId(11)), Some(1));
        // Differ in both digits: not a scheduled circuit.
        assert_eq!(r.differing_dim(NodeId(0), NodeId(5)), None);
        assert_eq!(r.differing_dim(NodeId(3), NodeId(3)), None);
    }

    #[test]
    fn spray_tracks_dimensions_via_tag() {
        let r = HdimRouter::new(16, 2);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 15);
        // Fresh cell: spray phase.
        assert_eq!(
            r.decide(NodeId(0), &mut c, &mut rng),
            RouteDecision::ToClass(HDIM_SPRAY)
        );
        // Dim-0 circuit admitted; dim-0 then marked sprayed.
        assert!(r.class_admits(HDIM_SPRAY, &c, NodeId(0), NodeId(2)));
        r.on_transmit(&mut c, NodeId(0), NodeId(2));
        assert_eq!(c.tag, 0b01);
        // Dim-0 circuits now rejected for spraying, dim-1 accepted.
        assert!(!r.class_admits(HDIM_SPRAY, &c, NodeId(2), NodeId(3)));
        assert!(r.class_admits(HDIM_SPRAY, &c, NodeId(2), NodeId(10)));
        r.on_transmit(&mut c, NodeId(2), NodeId(10));
        assert_eq!(c.tag, 0b11);
        c.hops = 2;
        // Now in correction phase.
        assert_eq!(
            r.decide(NodeId(10), &mut c, &mut rng),
            RouteDecision::ToClass(HDIM_CORRECT)
        );
    }

    #[test]
    fn corrections_only_accept_circuits_toward_destination() {
        let r = HdimRouter::new(16, 2);
        let mut c = cell(0, 15); // dst digits (3, 3)
        c.tag = 0b11;
        // At node 10 = (2, 2): circuit to 11 = (3, 2) fixes digit 0.
        assert!(r.class_admits(HDIM_CORRECT, &c, NodeId(10), NodeId(11)));
        // Circuit to 9 = (1, 2) moves digit 0 the wrong way.
        assert!(!r.class_admits(HDIM_CORRECT, &c, NodeId(10), NodeId(9)));
        // Circuit to 14 = (2, 3) fixes digit 1.
        assert!(r.class_admits(HDIM_CORRECT, &c, NodeId(10), NodeId(14)));
        // At node 11 = (3, 2), digit 0 already correct: dim-0 circuits refused.
        assert!(!r.class_admits(HDIM_CORRECT, &c, NodeId(11), NodeId(10)));
    }

    #[test]
    fn end_to_end_within_2h_hops() {
        let sched = hdim_orn(16, 2).unwrap();
        let router = HdimRouter::new(16, 2);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..32)
            .map(|i| Flow {
                id: FlowId(i),
                src: NodeId((i % 16) as u32),
                dst: NodeId(((i * 7 + 3) % 16) as u32),
                size_bytes: 2 * 1250,
                arrival_ns: i * 30,
            })
            .filter(|f| f.src != f.dst)
            .collect();
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), count);
        for f in &m.flows {
            assert!(f.max_hops <= 4, "flow took {} hops", f.max_hops);
        }
    }

    #[test]
    fn three_dimensional_routing_works() {
        let sched = hdim_orn(27, 3).unwrap();
        let router = HdimRouter::new(27, 3);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([Flow {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(26),
            size_bytes: 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), 1);
        assert!(m.flows[0].max_hops <= 6);
    }

    #[test]
    #[should_panic(expected = "perfect")]
    fn rejects_non_power_sizes() {
        let _ = HdimRouter::new(10, 2);
    }
}
