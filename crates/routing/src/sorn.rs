//! The paper's semi-oblivious routing scheme (§4 "Routing").
//!
//! Intra-clique traffic is treated as its own little ORN and routed with
//! 2-hop VLB: a load-balancing hop on *the first available intra-clique
//! link*, then the direct intra-clique circuit to the destination.
//! Inter-clique traffic takes 3 hops: the same intra-clique spray, then
//! the inter-clique link from the intermediate to the destination clique
//! (node `(c, j)` owns the inter link to node `(c', j)`), then the direct
//! intra-clique circuit to the final destination. In Figure 2(d)'s
//! topology A a flow 0→6 can go `0 → 3 → 7 → 6` or `0 → 1 → 4 → 6`.

use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::{CliqueMap, NodeId};

/// The intra-clique spray class.
pub const INTRA_SPRAY: ClassId = ClassId(0);

/// Semi-oblivious clique router.
#[derive(Debug, Clone)]
pub struct SornRouter {
    cliques: CliqueMap,
    classes: [ClassId; 1],
}

impl SornRouter {
    /// Creates the router over a clique assignment. Requires uniform
    /// clique sizes (matching the schedule builder).
    ///
    /// # Panics
    /// Panics when clique sizes differ.
    pub fn new(cliques: CliqueMap) -> Self {
        assert!(
            cliques.is_uniform(),
            "SornRouter requires uniform clique sizes"
        );
        SornRouter {
            cliques,
            classes: [INTRA_SPRAY],
        }
    }

    /// The clique map this router uses.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }

    /// The node holding the inter-clique link from `v` to `dst`'s clique:
    /// the member of that clique with `v`'s intra index.
    fn inter_gateway(&self, v: NodeId, dst: NodeId) -> NodeId {
        let target = self.cliques.clique_of(dst);
        self.cliques
            .node_at(target, self.cliques.intra_index(v))
            .expect("uniform cliques: every intra index exists")
    }
}

impl Router for SornRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        let here = self.cliques.clique_of(node);
        let dest_clique = self.cliques.clique_of(cell.dst);

        if cell.hops == 0 {
            // Load-balancing hop on the first available intra-clique link.
            // Singleton cliques have no intra links: go straight to the
            // inter-clique gateway (which, for size-1 cliques, is the
            // destination itself).
            if self.cliques.clique_size(here) == 1 {
                return RouteDecision::ToNode(self.inter_gateway(node, cell.dst));
            }
            return RouteDecision::ToClass(INTRA_SPRAY);
        }

        if here == dest_clique {
            // Direct intra-clique circuit to the destination.
            RouteDecision::ToNode(cell.dst)
        } else {
            // Inter-clique link from this intermediate to the destination
            // clique.
            RouteDecision::ToNode(self.inter_gateway(node, cell.dst))
        }
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, from: NodeId, to: NodeId) -> bool {
        // The spray hop may use any intra-clique circuit.
        self.cliques.same_clique(from, to)
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        3
    }

    fn name(&self) -> &str {
        "sorn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
    use sorn_topology::Ratio;

    fn cell(src: u32, dst: u32, hops: u8) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            injected_ns: 0,
            hops,
            tag: 0,
        }
    }

    fn router8() -> SornRouter {
        SornRouter::new(CliqueMap::contiguous(8, 2))
    }

    #[test]
    fn paper_example_path_0_to_6() {
        // Topology A, flow 0 -> 6: spray inside clique 0, inter link from
        // the intermediate (same intra index in clique 1), intra to 6.
        let r = router8();
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 6, 0);
        assert_eq!(
            r.decide(NodeId(0), &mut c, &mut rng),
            RouteDecision::ToClass(INTRA_SPRAY)
        );
        // Spray landed on 3 (hops = 1): inter gateway is node 7.
        c.hops = 1;
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(7))
        );
        // At 7 (hops = 2): direct intra hop to 6.
        c.hops = 2;
        assert_eq!(
            r.decide(NodeId(7), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(6))
        );
        assert_eq!(
            r.decide(NodeId(6), &mut c, &mut rng),
            RouteDecision::Deliver
        );
    }

    #[test]
    fn alternate_paper_path_via_node_1() {
        // 0 -> 1 -> 4 -> 6 from the paper.
        let r = router8();
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 6, 1);
        // Spray landed on node 1; its gateway to clique 1 is node 5?
        // intra index of 1 is 1 => member(clique 1, 1) = node 5.
        // The paper's example routes 0->1->4->6: it allows any inter link
        // of the intermediate toward the destination clique. Our scheme
        // pins the same-intra-index gateway, so node 1 uses node 5.
        assert_eq!(
            r.decide(NodeId(1), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(5))
        );
    }

    #[test]
    fn spray_admits_only_intra_clique_circuits() {
        let r = router8();
        let c = cell(0, 6, 0);
        assert!(r.class_admits(INTRA_SPRAY, &c, NodeId(0), NodeId(3)));
        assert!(!r.class_admits(INTRA_SPRAY, &c, NodeId(0), NodeId(4)));
    }

    #[test]
    fn intra_traffic_uses_at_most_two_hops() {
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        let router = SornRouter::new(map);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([Flow {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(2),
            size_bytes: 6 * 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), 1);
        assert!(m.flows[0].max_hops <= 2);
    }

    #[test]
    fn inter_traffic_uses_at_most_three_hops_and_arrives() {
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        let router = SornRouter::new(map);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..8)
            .map(|i| Flow {
                id: FlowId(i),
                src: NodeId((i % 4) as u32),           // clique 0
                dst: NodeId((4 + (i * 3) % 4) as u32), // clique 1
                size_bytes: 3 * 1250,
                arrival_ns: i * 50,
            })
            .collect();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), 8);
        for f in &m.flows {
            assert!(f.max_hops <= 3, "flow took {} hops", f.max_hops);
            assert!(
                f.max_hops >= 2,
                "inter-clique flow cannot arrive in one hop"
            );
        }
    }

    #[test]
    fn singleton_cliques_route_directly() {
        let map = CliqueMap::contiguous(4, 4);
        let r = SornRouter::new(map);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 3, 0);
        // Gateway of node 0 toward clique 3 is node 3 itself.
        assert_eq!(
            r.decide(NodeId(0), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(3))
        );
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn rejects_nonuniform_cliques() {
        use sorn_topology::CliqueId;
        let map = CliqueMap::from_assignment(&[CliqueId(0), CliqueId(0), CliqueId(0), CliqueId(1)]);
        let _ = SornRouter::new(map);
    }
}
