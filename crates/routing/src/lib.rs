//! # sorn-routing
//!
//! Routing schemes for reconfigurable datacenter networks, in two forms:
//!
//! - **Packet routers** implementing [`sorn_sim::Router`], plugged into
//!   the slot-synchronous simulator: [`VlbRouter`] (flat 2-hop VLB, the
//!   Sirius-style 1D ORN), [`HdimRouter`] (2h-hop routing on
//!   h-dimensional ORN schedules), and [`SornRouter`] (the paper's
//!   semi-oblivious intra/inter-clique scheme).
//! - **Path models** implementing [`PathModel`] for exact flow-level
//!   evaluation ([`flowlevel::evaluate`]): the same schemes as fixed path
//!   distributions, plus Opera's expander paths.
//!
//! The flow-level evaluator is what produces Figure 2(f)'s simulated
//! worst-case-throughput series: load every virtual edge with the
//! scheme's path distribution under a clique-local traffic matrix and
//! report `min_edge capacity/load`.

#![warn(missing_docs)]

mod adaptive;
mod adversarial;
mod fault_aware;
pub mod flowlevel;
mod general;
mod hdim;
mod hierarchical;
mod opera;
mod paths;
mod sorn;
mod vlb;

pub use adaptive::{AdaptiveSornRouter, AdaptiveVlbRouter};
pub use adversarial::{worst_demand_search, AdversarialResult};
pub use fault_aware::{FaultAwareSornRouter, FaultAwareVlbRouter};
pub use flowlevel::{
    evaluate, DemandMatrix, FlowLevelError, FlowLevelOracle, PathModel, ThroughputReport,
};
pub use general::{GeneralSornRouter, GEN_INTER_ANY, GEN_INTRA_SPRAY};
pub use hdim::{HdimRouter, HDIM_CORRECT, HDIM_SPRAY};
pub use hierarchical::{HierarchicalPaths, HierarchicalRouter, HIER_SPRAY};
pub use opera::{ExpanderPaths, OperaModel, OperaShortRouter, OPERA_SHORT};
pub use paths::{DirectPaths, HdimPaths, SornPaths, VlbPaths};
pub use sorn::{SornRouter, INTRA_SPRAY};
pub use vlb::{VlbRouter, VLB_SPRAY};
