//! Two-hop Valiant load balancing on a flat round-robin ORN.
//!
//! The classic oblivious scheme (§2, [31]): every cell first rides *the
//! first available circuit* to a uniformly random intermediate (because
//! circuits cycle round-robin, "first available" is uniform over peers),
//! then waits for the direct circuit to its destination. Worst-case
//! throughput is 50% — every cell crosses the fabric twice.

use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::NodeId;

/// The spray class: any outgoing circuit is acceptable for the first hop.
pub const VLB_SPRAY: ClassId = ClassId(0);

/// 2-hop VLB router (Sirius-style 1D ORN).
#[derive(Debug, Clone)]
pub struct VlbRouter {
    classes: [ClassId; 1],
}

impl VlbRouter {
    /// Creates the router.
    pub fn new() -> Self {
        VlbRouter {
            classes: [VLB_SPRAY],
        }
    }
}

impl Default for VlbRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Router for VlbRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.hops == 0 {
            // Load-balancing hop: take whatever circuit comes up first.
            RouteDecision::ToClass(VLB_SPRAY)
        } else {
            // Direct hop to the destination.
            RouteDecision::ToNode(cell.dst)
        }
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, _from: NodeId, _to: NodeId) -> bool {
        // Any circuit load-balances.
        true
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        2
    }

    fn name(&self) -> &str {
        "vlb-1d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::round_robin;

    fn cell(src: u32, dst: u32, hops: u8) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            injected_ns: 0,
            hops,
            tag: 0,
        }
    }

    #[test]
    fn decision_sequence_is_spray_then_direct() {
        let r = VlbRouter::new();
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 5, 0);
        assert_eq!(
            r.decide(NodeId(0), &mut c, &mut rng),
            RouteDecision::ToClass(VLB_SPRAY)
        );
        c.hops = 1;
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(5))
        );
        assert_eq!(
            r.decide(NodeId(5), &mut c, &mut rng),
            RouteDecision::Deliver
        );
    }

    #[test]
    fn spray_can_land_on_destination_early() {
        let r = VlbRouter::new();
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 5, 1);
        // After the spray hop landed exactly on the destination.
        assert_eq!(
            r.decide(NodeId(5), &mut c, &mut rng),
            RouteDecision::Deliver
        );
    }

    #[test]
    fn all_cells_delivered_within_two_hops() {
        let sched = round_robin(8).unwrap();
        let router = VlbRouter::new();
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..16)
            .map(|i| Flow {
                id: FlowId(i),
                src: NodeId((i % 8) as u32),
                dst: NodeId(((i * 3 + 1) % 8) as u32),
                size_bytes: 4 * 1250,
                arrival_ns: i * 100,
            })
            .filter(|f| f.src != f.dst)
            .collect();
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(10_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), count);
        for f in &m.flows {
            assert!(f.max_hops <= 2, "flow took {} hops", f.max_hops);
        }
        // Mean hops close to 2 (some sprays land on the destination).
        let mh = m.mean_hops();
        assert!(mh > 1.5 && mh <= 2.0, "mean hops {mh}");
    }
}
