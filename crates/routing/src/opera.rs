//! Opera baseline model (NSDI '20 [18]).
//!
//! Opera separates traffic: *short* (latency-sensitive) flows ride
//! multi-hop paths through the always-available expander formed by the
//! union of active uplink matchings; *bulk* flows wait for direct rotor
//! circuits and use RotorNet-style 2-hop VLB. Table 1 models a 4096-rack
//! Opera with 90 µs slots and a quarter of the uplinks reconfiguring at
//! a time.

use crate::flowlevel::PathModel;
use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::expander::RotorExpander;
use sorn_topology::graph::DiGraph;
use sorn_topology::{CircuitSchedule, NodeId, TopologyError};

/// An Opera-style network model for analysis and flow-level evaluation.
#[derive(Debug, Clone)]
pub struct OperaModel {
    expander: RotorExpander,
    /// Fraction of traffic that is latency-sensitive (routed on the
    /// expander). Table 1 uses the production median 0.75.
    short_share: f64,
    /// Uplink groups taking turns to reconfigure (4 = a quarter down).
    reconfig_groups: usize,
}

impl OperaModel {
    /// Builds the model.
    ///
    /// # Errors
    /// Propagates expander sampling errors; rejects `short_share` outside
    /// `[0, 1]`.
    pub fn new(
        n: usize,
        uplinks: usize,
        short_share: f64,
        reconfig_groups: usize,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        if !(0.0..=1.0).contains(&short_share) {
            return Err(TopologyError::InvalidParameter {
                name: "short_share",
                message: format!("{short_share} outside [0,1]"),
            });
        }
        Ok(OperaModel {
            expander: RotorExpander::sample(n, uplinks, seed)?,
            short_share,
            reconfig_groups,
        })
    }

    /// The underlying rotor expander.
    pub fn expander(&self) -> &RotorExpander {
        &self.expander
    }

    /// Fraction of latency-sensitive traffic.
    pub fn short_share(&self) -> f64 {
        self.short_share
    }

    /// Mean expander path length, sampled over `epochs` rotation steps.
    pub fn mean_expander_hops(&self, epochs: u64) -> Option<f64> {
        self.expander.mean_path_length(epochs, self.reconfig_groups)
    }

    /// Worst expander diameter over the sampled epochs (Table 1's "max
    /// hops" for short flows).
    pub fn max_expander_hops(&self, epochs: u64) -> Option<u32> {
        self.expander.worst_diameter(epochs, self.reconfig_groups)
    }

    /// Mean hops across the whole traffic mix: short flows pay the
    /// expander path length, bulk flows pay RotorLB's 2 hops. This is the
    /// normalized bandwidth cost of Table 1.
    pub fn mean_hops(&self, epochs: u64) -> Option<f64> {
        let l = self.mean_expander_hops(epochs)?;
        Some(self.short_share * l + (1.0 - self.short_share) * 2.0)
    }

    /// Bandwidth-tax throughput bound: `1 / mean_hops` (every hop of
    /// every cell consumes a circuit slot somewhere).
    pub fn throughput_bound(&self, epochs: u64) -> Option<f64> {
        self.mean_hops(epochs).map(|h| 1.0 / h)
    }

    /// Freezes one rotation epoch into a [`CircuitSchedule`] for packet
    /// simulation: the period cycles once through the uplink matchings
    /// active at `epoch` (reconfiguring uplinks excluded).
    ///
    /// Valid for short-flow timescales: Opera's topology is quasi-static
    /// (90 µs per reconfiguration in Table 1) relative to microsecond
    /// flow lifetimes. Returns `None` when no uplink is active.
    pub fn frozen_schedule(&self, epoch: u64, reconfig_groups: usize) -> Option<CircuitSchedule> {
        let down = self.expander.reconfiguring(epoch, reconfig_groups);
        let matchings: Vec<_> = (0..self.expander.uplinks())
            .filter(|j| !down.contains(j))
            .map(|j| self.expander.matchings()[self.expander.matching_index(epoch, j)].clone())
            .collect();
        if matchings.is_empty() {
            return None;
        }
        CircuitSchedule::from_matchings(matchings).ok()
    }
}

/// Spray class for Opera short flows: any expander hop that makes
/// progress toward the destination.
pub const OPERA_SHORT: ClassId = ClassId(0);

/// Packet router for Opera short flows on a frozen expander epoch.
///
/// Cells greedily descend the BFS distance field of the active expander:
/// a circuit `from → to` is taken when `dist(to, dst) < dist(from, dst)`.
/// Pair it with [`OperaModel::frozen_schedule`] for the same epoch.
#[derive(Debug, Clone)]
pub struct OperaShortRouter {
    /// dist[d][v] = hops from v to d on the frozen expander.
    dist_to: Vec<Vec<Option<u32>>>,
    max_hops: u8,
    classes: [ClassId; 1],
}

impl OperaShortRouter {
    /// Builds the router from the expander active at `epoch`.
    ///
    /// Returns `None` when the frozen expander is not strongly connected
    /// (no valid greedy routing exists).
    pub fn new(model: &OperaModel, epoch: u64, reconfig_groups: usize) -> Option<Self> {
        let g = model.expander.graph_at(epoch, reconfig_groups);
        let n = g.n();
        // Distance *to* d = BFS from d on the reversed graph.
        let mut rev = DiGraph::new(n);
        for s in 0..n as u32 {
            for t in g.neighbors(NodeId(s)) {
                rev.add_edge(t, NodeId(s));
            }
        }
        let mut dist_to = Vec::with_capacity(n);
        let mut diameter = 0u32;
        for d in 0..n as u32 {
            let dists = rev.bfs_distances(NodeId(d));
            for v in &dists {
                match v {
                    Some(x) => diameter = diameter.max(*x),
                    None => return None,
                }
            }
            dist_to.push(dists);
        }
        Some(OperaShortRouter {
            dist_to,
            max_hops: diameter.min(u8::MAX as u32) as u8,
            classes: [OPERA_SHORT],
        })
    }

    fn dist(&self, from: NodeId, to: NodeId) -> u32 {
        self.dist_to[to.index()][from.index()].expect("checked connected at construction")
    }

    /// Worst-case hops (frozen-expander diameter).
    pub fn diameter(&self) -> u8 {
        self.max_hops
    }
}

impl Router for OperaShortRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            RouteDecision::Deliver
        } else {
            RouteDecision::ToClass(OPERA_SHORT)
        }
    }

    fn class_admits(&self, _class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        self.dist(to, cell.dst) < self.dist(from, cell.dst)
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        self.max_hops
    }

    fn name(&self) -> &str {
        "opera-short"
    }
}

/// Shortest-path routing over one frozen snapshot of the expander — the
/// path model Opera's short flows see. Single deterministic BFS path per
/// pair (a simplification of Opera's k-path spreading, documented in
/// DESIGN.md).
#[derive(Debug, Clone)]
pub struct ExpanderPaths {
    /// prev[s][v]: predecessor of `v` on the BFS tree rooted at `s`.
    prev: Vec<Vec<Option<u32>>>,
}

impl ExpanderPaths {
    /// Precomputes BFS trees on the expander active at `epoch`.
    pub fn snapshot(model: &OperaModel, epoch: u64) -> Self {
        let g = model.expander.graph_at(epoch, model.reconfig_groups);
        let n = g.n();
        let mut prev = vec![vec![None; n]; n];
        for s in 0..n as u32 {
            // BFS storing predecessors.
            let mut seen = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            seen[s as usize] = true;
            queue.push_back(NodeId(s));
            while let Some(u) = queue.pop_front() {
                for v in g.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        prev[s as usize][v.index()] = Some(u.0);
                        queue.push_back(v);
                    }
                }
            }
        }
        ExpanderPaths { prev }
    }
}

impl PathModel for ExpanderPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        let mut rev = vec![dst];
        let mut cur = dst;
        while cur != src {
            match self.prev[src.index()][cur.index()] {
                Some(p) => {
                    cur = NodeId(p);
                    rev.push(cur);
                }
                None => return, // unreachable pair: no path emitted
            }
        }
        rev.reverse();
        visit(&rev, 1.0);
    }
    fn name(&self) -> &str {
        "opera-expander"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OperaModel {
        OperaModel::new(128, 8, 0.75, 4, 11).unwrap()
    }

    #[test]
    fn mean_hops_blends_short_and_bulk() {
        let m = model();
        let l = m.mean_expander_hops(2).unwrap();
        let mixed = m.mean_hops(2).unwrap();
        assert!((mixed - (0.75 * l + 0.5)).abs() < 1e-12);
        assert!(l > 1.0, "expander paths must average above one hop");
    }

    #[test]
    fn throughput_bound_is_reciprocal_of_hops() {
        let m = model();
        let h = m.mean_hops(2).unwrap();
        let t = m.throughput_bound(2).unwrap();
        assert!((t * h - 1.0).abs() < 1e-12);
        // Sanity: Opera's throughput sits below VLB's 50%.
        assert!(t < 0.5);
        assert!(t > 0.2);
    }

    #[test]
    fn expander_paths_are_valid_walks() {
        let m = model();
        let paths = ExpanderPaths::snapshot(&m, 0);
        let g = m.expander().graph_at(0, 4);
        let mut visited = 0;
        paths.for_each_path(NodeId(3), NodeId(77), &mut |p, prob| {
            visited += 1;
            assert_eq!(prob, 1.0);
            assert_eq!(p.first(), Some(&NodeId(3)));
            assert_eq!(p.last(), Some(&NodeId(77)));
            for w in p.windows(2) {
                assert!(
                    g.neighbors(w[0]).any(|x| x == w[1]),
                    "edge {:?}->{:?} not in expander",
                    w[0],
                    w[1]
                );
            }
        });
        assert_eq!(visited, 1);
    }

    #[test]
    fn rejects_invalid_short_share() {
        assert!(OperaModel::new(64, 8, 1.5, 4, 0).is_err());
    }

    #[test]
    fn frozen_schedule_cycles_active_matchings() {
        let m = model();
        let sched = m.frozen_schedule(0, 4).unwrap();
        // 8 uplinks, 2 reconfiguring => 6 active matchings.
        assert_eq!(sched.period(), 6);
        assert_eq!(sched.n(), 128);
    }

    #[test]
    fn short_router_delivers_within_diameter() {
        use sorn_sim::{Engine, Flow, FlowId, SimConfig};
        let m = model();
        let sched = m.frozen_schedule(0, 4).unwrap();
        let router = OperaShortRouter::new(&m, 0, 4).expect("connected expander");
        assert!(router.diameter() >= 2);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let flows: Vec<Flow> = (0..64u32)
            .map(|i| Flow {
                id: FlowId(i as u64),
                src: NodeId(i * 2 % 128),
                dst: NodeId((i * 2 + 37) % 128),
                size_bytes: 1250,
                arrival_ns: i as u64 * 40,
            })
            .collect();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(200_000).unwrap());
        let metrics = eng.metrics();
        assert_eq!(metrics.flows.len(), 64);
        for f in &metrics.flows {
            assert!(
                f.max_hops <= router.diameter(),
                "flow took {} hops, diameter {}",
                f.max_hops,
                router.diameter()
            );
        }
        // Mean hops near the model's expander path length.
        let mpl = m.mean_expander_hops(1).unwrap();
        assert!(
            (metrics.mean_hops() - mpl).abs() < 1.0,
            "sim {} vs model {}",
            metrics.mean_hops(),
            mpl
        );
    }

    #[test]
    fn greedy_descent_is_always_possible() {
        // Every non-destination node has an admissible next hop: some
        // neighbor strictly closer to the destination (BFS parent).
        let m = model();
        let router = OperaShortRouter::new(&m, 0, 4).unwrap();
        let g = m.expander().graph_at(0, 4);
        let cell = |dst: u32| Cell {
            flow: sorn_sim::FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(dst),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        };
        for v in 0..128u32 {
            for d in [5u32, 77, 120] {
                if v == d {
                    continue;
                }
                let c = cell(d);
                let has_descent = g
                    .neighbors(NodeId(v))
                    .any(|w| router.class_admits(OPERA_SHORT, &c, NodeId(v), w));
                assert!(has_descent, "node {v} stuck toward {d}");
            }
        }
    }
}
