//! Adversarial demand search: empirically hunting the worst-case
//! traffic matrix.
//!
//! The paper's throughput numbers are *worst-case over admissible
//! demands* (row/column sums at most 1). Closed forms identify the
//! binding constraint analytically; this module attacks the same
//! question empirically — local search over admissible demand matrices
//! to minimize the flow-level throughput — so the closed-form claims can
//! be stress-tested rather than trusted.
//!
//! By Birkhoff, extreme admissible demands are permutation matrices, and
//! oblivious-routing throughput is minimized at an extreme point
//! (the load map is linear in the demand). The search therefore walks
//! the permutation space with random transpositions.

use crate::flowlevel::{evaluate, DemandMatrix, PathModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sorn_topology::LogicalTopology;

/// Result of an adversarial search.
#[derive(Debug, Clone)]
pub struct AdversarialResult {
    /// The lowest throughput found.
    pub worst_throughput: f64,
    /// The permutation demand achieving it (`perm[i]` = destination of
    /// node `i`; `perm[i] == i` means node `i` sends nothing).
    pub worst_permutation: Vec<usize>,
    /// Throughputs accepted along the search (for convergence checks).
    pub trajectory: Vec<f64>,
}

/// Searches for the admissible demand minimizing `model`'s throughput on
/// `topo` via hill descent over permutations with random restarts.
///
/// `iters` total proposals; restarts every `iters / restarts` proposals.
pub fn worst_demand_search(
    topo: &LogicalTopology,
    model: &dyn PathModel,
    iters: usize,
    restarts: usize,
    seed: u64,
) -> AdversarialResult {
    let n = topo.n();
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best_thpt = f64::INFINITY;
    let mut best_perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
    let mut trajectory = Vec::new();

    let score = |perm: &[usize]| -> Option<f64> {
        // Skip degenerate all-identity permutations (no demand).
        if perm.iter().enumerate().all(|(i, &p)| i == p) {
            return None;
        }
        let demand = DemandMatrix::permutation(perm).ok()?;
        evaluate(topo, model, &demand).ok().map(|r| r.throughput)
    };

    let restart_every = (iters / restarts.max(1)).max(1);
    let mut current: Vec<usize> = best_perm.clone();
    let mut current_thpt = score(&current).unwrap_or(f64::INFINITY);

    for it in 0..iters {
        if it % restart_every == 0 && it > 0 {
            // Random restart: a fresh random shift permutation composed
            // with a few random swaps.
            let k = 1 + rng.gen_range(0..n - 1);
            current = (0..n).map(|i| (i + k) % n).collect();
            for _ in 0..n / 4 {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                current.swap(a, b);
            }
            current_thpt = score(&current).unwrap_or(f64::INFINITY);
        }
        // Propose a transposition.
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        current.swap(a, b);
        match score(&current) {
            Some(t) if t <= current_thpt => {
                current_thpt = t;
                trajectory.push(t);
                if t < best_thpt {
                    best_thpt = t;
                    best_perm = current.clone();
                }
            }
            _ => current.swap(a, b), // revert
        }
    }

    AdversarialResult {
        worst_throughput: best_thpt,
        worst_permutation: best_perm,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::{SornPaths, VlbPaths};
    use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
    use sorn_topology::{CliqueMap, Ratio};

    #[test]
    fn vlb_worst_case_is_not_below_half() {
        // The VLB guarantee: no admissible demand pushes throughput
        // below 1/2 on a flat round robin.
        let topo = round_robin(12).unwrap().logical_topology();
        let res = worst_demand_search(&topo, &VlbPaths::new(12), 300, 3, 7);
        assert!(
            res.worst_throughput >= 0.5 - 1e-9,
            "search broke the VLB bound: {}",
            res.worst_throughput
        );
        // And it actually finds demands achieving (close to) the bound.
        assert!(res.worst_throughput <= 0.55, "{}", res.worst_throughput);
    }

    #[test]
    fn sorn_worst_case_exposes_the_semi_oblivious_assumption() {
        // §4's inter bound r <= 1/((1-x)(q+1)) holds for demands whose
        // *clique-aggregate* matrix is uniform — the macro-pattern the
        // design assumes is stable (§3). Over ARBITRARY admissible
        // demands the floor is lower: a permutation concentrating all of
        // one clique's traffic on a single destination clique loads that
        // clique pair's inter links (capacity 1/((q+1)(Nc-1)) each) with
        // the full unit demand, so r drops to 1/((q+1)(Nc-1)).
        //
        // The adversarial search must (a) never go below that true
        // floor and (b) actually find it — demonstrating what the
        // semi-oblivious bet gives up, and why the gravity builder
        // exists for skewed aggregates.
        let map = CliqueMap::contiguous(12, 3);
        let q: f64 = 2.0;
        let nc = 3.0;
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(2))).unwrap();
        let topo = sched.logical_topology();
        let res = worst_demand_search(&topo, &SornPaths::new(map.clone()), 400, 4, 3);
        let arbitrary_floor = (q / (2.0 * q + 2.0)).min(1.0 / ((q + 1.0) * (nc - 1.0)));
        assert!(
            res.worst_throughput >= arbitrary_floor - 1e-9,
            "below the arbitrary-demand floor: {} < {arbitrary_floor}",
            res.worst_throughput
        );
        assert!(
            (res.worst_throughput - arbitrary_floor).abs() < 0.05,
            "search failed to find the floor: {} vs {arbitrary_floor}",
            res.worst_throughput
        );
        // Sanity: the found worst permutation concentrates cross-clique.
        let worst = DemandMatrix::permutation(&res.worst_permutation).unwrap();
        assert!(worst.locality(&map) < 0.5);
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing_between_restarts() {
        let topo = round_robin(8).unwrap().logical_topology();
        let res = worst_demand_search(&topo, &VlbPaths::new(8), 100, 1, 11);
        for w in res.trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(!res.worst_permutation.is_empty());
    }
}
