//! Failure-aware wrappers around the VLB and SORN routers.
//!
//! The base schemes are oblivious: a cell pinned on a specific next hop
//! waits forever if that circuit dies. These wrappers consult a shared
//! [`LinkHealth`] view (published by the engine's fault plan, see
//! `Engine::set_health_mirror`) and *detour* instead: when the pinned
//! circuit is down they re-spray the cell through the load-balancing
//! class, buying another chance to reach the destination over live
//! links. Cells whose destination node itself is dead are shed
//! ([`RouteDecision::Drop`]) rather than left to clog queues.
//!
//! Detours cost hops, so both wrappers raise the hop bound and stop
//! detouring when the remaining budget only covers the pinned path —
//! a cell out of budget waits (and may strand), it never crashes the
//! run.

use crate::sorn::INTRA_SPRAY;
use crate::vlb::VLB_SPRAY;
use sorn_sim::{Cell, ClassId, LinkHealth, RouteDecision, Router};
use sorn_topology::{CliqueMap, NodeId};

/// Hop bound shared by the fault-aware wrappers: the base schemes need
/// 2–3 hops; the rest is detour budget.
const FAULT_AWARE_MAX_HOPS: u8 = 8;

/// Failure-aware 2-hop VLB: spray, then direct — unless the direct
/// circuit is down, in which case the cell re-sprays to a new
/// intermediate.
#[derive(Debug, Clone)]
pub struct FaultAwareVlbRouter {
    health: LinkHealth,
    classes: [ClassId; 1],
}

impl FaultAwareVlbRouter {
    /// Creates the router over a shared health view.
    pub fn new(health: LinkHealth) -> Self {
        FaultAwareVlbRouter {
            health,
            classes: [VLB_SPRAY],
        }
    }

    /// The health view this router consults.
    pub fn health(&self) -> &LinkHealth {
        &self.health
    }
}

impl Router for FaultAwareVlbRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if self.health.node_failed(cell.dst) {
            // The destination itself is dead: delivering is impossible,
            // shed instead of clogging queues.
            return RouteDecision::Drop;
        }
        if cell.hops == 0 {
            return RouteDecision::ToClass(VLB_SPRAY);
        }
        // Direct hop — or a detour re-spray when the direct circuit is
        // down and the hop budget still covers spray + direct.
        if !self.health.circuit_up(node, cell.dst) && cell.hops + 2 <= self.max_hops() {
            return RouteDecision::ToClass(VLB_SPRAY);
        }
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, from: NodeId, to: NodeId) -> bool {
        // Any *live* circuit load-balances.
        self.health.circuit_up(from, to)
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        FAULT_AWARE_MAX_HOPS
    }

    fn name(&self) -> &str {
        "fault-aware-vlb"
    }
}

/// Failure-aware SORN routing: the paper's intra/inter-clique scheme,
/// detouring through the intra-clique spray when a pinned gateway or
/// direct circuit is down. Failures stay confined to the clique that
/// contains them — the §6 blast-radius argument in router form.
#[derive(Debug, Clone)]
pub struct FaultAwareSornRouter {
    cliques: CliqueMap,
    health: LinkHealth,
    classes: [ClassId; 1],
}

impl FaultAwareSornRouter {
    /// Creates the router over a clique assignment and a shared health
    /// view. Requires uniform clique sizes (matching the schedule
    /// builder).
    ///
    /// # Panics
    /// Panics when clique sizes differ.
    pub fn new(cliques: CliqueMap, health: LinkHealth) -> Self {
        assert!(
            cliques.is_uniform(),
            "FaultAwareSornRouter requires uniform clique sizes"
        );
        FaultAwareSornRouter {
            cliques,
            health,
            classes: [INTRA_SPRAY],
        }
    }

    /// The clique map this router uses.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }

    /// The health view this router consults.
    pub fn health(&self) -> &LinkHealth {
        &self.health
    }

    /// The node holding the inter-clique link from `v` to `dst`'s
    /// clique: the member of that clique with `v`'s intra index.
    fn inter_gateway(&self, v: NodeId, dst: NodeId) -> NodeId {
        let target = self.cliques.clique_of(dst);
        self.cliques
            .node_at(target, self.cliques.intra_index(v))
            .expect("uniform cliques: every intra index exists")
    }

    /// Whether a detour re-spray is possible at `node` with `budget`
    /// hops still required after the spray hop.
    fn can_respray(&self, node: NodeId, hops: u8, needed_after: u8) -> bool {
        self.cliques.clique_size(self.cliques.clique_of(node)) > 1
            && hops + 1 + needed_after <= self.max_hops()
    }
}

impl Router for FaultAwareSornRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if self.health.node_failed(cell.dst) {
            return RouteDecision::Drop;
        }
        let here = self.cliques.clique_of(node);
        let dest_clique = self.cliques.clique_of(cell.dst);

        if cell.hops == 0 {
            // Singleton cliques have no intra links: go straight to the
            // gateway, healthy or not — there is no alternative.
            if self.cliques.clique_size(here) == 1 {
                return RouteDecision::ToNode(self.inter_gateway(node, cell.dst));
            }
            return RouteDecision::ToClass(INTRA_SPRAY);
        }

        if here == dest_clique {
            // Direct intra circuit — or a detour re-spray (spray + direct
            // = 2 more hops) when it is down.
            if !self.health.circuit_up(node, cell.dst) && self.can_respray(node, cell.hops, 1) {
                return RouteDecision::ToClass(INTRA_SPRAY);
            }
            RouteDecision::ToNode(cell.dst)
        } else {
            // Inter-clique hop through this node's gateway — or a detour
            // re-spray toward a member with a live gateway (spray + inter
            // + intra = 3 more hops).
            let gateway = self.inter_gateway(node, cell.dst);
            let gateway_down =
                self.health.node_failed(gateway) || !self.health.circuit_up(node, gateway);
            if gateway_down && self.can_respray(node, cell.hops, 2) {
                return RouteDecision::ToClass(INTRA_SPRAY);
            }
            RouteDecision::ToNode(gateway)
        }
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, from: NodeId, to: NodeId) -> bool {
        // The spray hop may use any *live* intra-clique circuit.
        self.cliques.same_clique(from, to) && self.health.circuit_up(from, to)
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        FAULT_AWARE_MAX_HOPS
    }

    fn name(&self) -> &str {
        "fault-aware-sorn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, FailureSet, FaultPlan, Flow, FlowId, SimConfig};

    fn cell(src: u32, dst: u32, hops: u8) -> Cell {
        Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(src),
            dst: NodeId(dst),
            injected_ns: 0,
            hops,
            tag: 0,
        }
    }

    fn health_with(f: impl FnOnce(&mut FailureSet)) -> LinkHealth {
        let health = LinkHealth::new();
        let mut fs = FailureSet::none();
        f(&mut fs);
        health.publish(&fs);
        health
    }

    #[test]
    fn vlb_detours_around_a_dead_direct_circuit() {
        let health = health_with(|f| f.fail_link(NodeId(3), NodeId(5)));
        let r = FaultAwareVlbRouter::new(health);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 5, 1);
        // At node 3 the direct circuit is down: re-spray.
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::ToClass(VLB_SPRAY)
        );
        // At node 4 the direct circuit is fine: pin it.
        assert_eq!(
            r.decide(NodeId(4), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(5))
        );
        // Out of detour budget: pin even the dead circuit.
        c.hops = r.max_hops() - 1;
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(5))
        );
    }

    #[test]
    fn dead_destination_is_shed() {
        let health = health_with(|f| f.fail_node(NodeId(5)));
        let r = FaultAwareVlbRouter::new(health);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 5, 0);
        assert_eq!(r.decide(NodeId(0), &mut c, &mut rng), RouteDecision::Drop);
    }

    #[test]
    fn class_admission_respects_health() {
        let health = health_with(|f| f.fail_link(NodeId(0), NodeId(2)));
        let r = FaultAwareVlbRouter::new(health);
        let c = cell(0, 5, 0);
        assert!(!r.class_admits(VLB_SPRAY, &c, NodeId(0), NodeId(2)));
        assert!(r.class_admits(VLB_SPRAY, &c, NodeId(0), NodeId(3)));
    }

    #[test]
    fn sorn_detours_around_a_dead_gateway() {
        // Cliques {0..3}, {4..7}; node 3's gateway to clique 1 is 7.
        let map = CliqueMap::contiguous(8, 2);
        let health = health_with(|f| f.fail_node(NodeId(7)));
        let r = FaultAwareSornRouter::new(map, health);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(0, 6, 1);
        // At node 3 the pinned gateway (7) is dead: re-spray in-clique.
        assert_eq!(
            r.decide(NodeId(3), &mut c, &mut rng),
            RouteDecision::ToClass(INTRA_SPRAY)
        );
        // At node 1 the gateway (5) is alive: pin it.
        assert_eq!(
            r.decide(NodeId(1), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(5))
        );
        // Spray admits only live intra circuits.
        assert!(r.class_admits(INTRA_SPRAY, &c, NodeId(0), NodeId(3)));
        assert!(!r.class_admits(INTRA_SPRAY, &c, NodeId(0), NodeId(4)));
    }

    #[test]
    fn sorn_detours_around_a_dead_intra_circuit() {
        let map = CliqueMap::contiguous(8, 2);
        let health = health_with(|f| f.fail_link(NodeId(5), NodeId(6)));
        let r = FaultAwareSornRouter::new(map, health);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut c = cell(4, 6, 1);
        assert_eq!(
            r.decide(NodeId(5), &mut c, &mut rng),
            RouteDecision::ToClass(INTRA_SPRAY)
        );
        // Healthy direct intra circuit: pinned.
        assert_eq!(
            r.decide(NodeId(7), &mut c, &mut rng),
            RouteDecision::ToNode(NodeId(6))
        );
    }

    /// Runs one flow through a permanently failed element under both the
    /// base router and its fault-aware wrapper, returning whether each
    /// run drained.
    fn drained(router: &dyn sorn_sim::Router, eng_setup: impl FnOnce(&mut Engine<'_>)) -> bool {
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_topology::builders::sorn_schedule(
            &map,
            &sorn_topology::builders::SornScheduleParams::with_q(sorn_topology::Ratio::integer(3)),
        )
        .unwrap();
        let mut eng = Engine::new(SimConfig::default(), &sched, router);
        eng_setup(&mut eng);
        eng.add_flows([Flow {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(6),
            size_bytes: 8 * 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        eng.run_until_drained(20_000).unwrap()
    }

    #[test]
    fn detour_drains_where_the_base_router_strands() {
        // Node 7 (node 3's pinned gateway toward clique 1) dies at t=0
        // and never recovers. The oblivious SornRouter strands every
        // cell that sprays onto node 3; the fault-aware wrapper detours
        // them through members with live gateways.
        let mut plan = FaultPlan::new();
        plan.fail_node_at(0, NodeId(7));
        let map = CliqueMap::contiguous(8, 2);

        let base = crate::sorn::SornRouter::new(map.clone());
        let base_drained = drained(&base, |eng| eng.set_fault_plan(plan.clone()));
        assert!(!base_drained, "oblivious routing must strand on node 3");

        let health = LinkHealth::new();
        let aware = FaultAwareSornRouter::new(map, health.clone());
        let aware_drained = drained(&aware, |eng| {
            eng.set_health_mirror(health.clone());
            eng.set_fault_plan(plan.clone());
        });
        assert!(aware_drained, "fault-aware routing must detour and drain");
    }

    #[test]
    fn dead_destination_cells_are_dropped_not_stuck() {
        // The destination itself dies: the fault-aware router sheds the
        // cells so the run still drains, counting them as drops.
        let mut plan = FaultPlan::new();
        plan.fail_node_at(0, NodeId(6));
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_topology::builders::sorn_schedule(
            &map,
            &sorn_topology::builders::SornScheduleParams::with_q(sorn_topology::Ratio::integer(3)),
        )
        .unwrap();
        let health = LinkHealth::new();
        let router = FaultAwareSornRouter::new(map, health.clone());
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.set_health_mirror(health);
        eng.set_fault_plan(plan);
        eng.add_flows([Flow {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(6),
            size_bytes: 4 * 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(20_000).unwrap());
        assert_eq!(eng.metrics().dropped_cells, 4);
        assert_eq!(eng.metrics().delivered_cells, 0);
    }

    #[test]
    fn healthy_view_reduces_to_base_behavior() {
        let map = CliqueMap::contiguous(8, 2);
        let r = FaultAwareSornRouter::new(map.clone(), LinkHealth::new());
        let base = crate::sorn::SornRouter::new(map);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        for (at, dst, hops) in [(0u32, 6u32, 0u8), (3, 6, 1), (7, 6, 2), (1, 3, 1)] {
            let mut a = cell(0, dst, hops);
            let mut b = cell(0, dst, hops);
            assert_eq!(
                r.decide(NodeId(at), &mut a, &mut rng),
                base.decide(NodeId(at), &mut b, &mut rng),
                "divergence at node {at} hops {hops}"
            );
        }
    }
}
