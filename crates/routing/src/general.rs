//! General SORN routing for arbitrary (including non-uniform) cliques.
//!
//! [`crate::SornRouter`] pins each intermediate's inter-clique hop to the
//! gateway with its own intra index — faithful to uniform schedules but
//! undefined for unequal cliques. This router generalizes with a second
//! spray class: after the intra load-balancing hop, an inter-clique cell
//! waits for *any* circuit into the destination clique (which is still
//! "the inter-clique link to the destination clique" of §4, with the
//! gateway chosen by the schedule instead of by index). It pairs with
//! `sorn_topology::builders::nonuniform_sorn_schedule`.

use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::{CliqueMap, NodeId};

/// Intra-clique load-balancing spray (first hop).
pub const GEN_INTRA_SPRAY: ClassId = ClassId(0);
/// Inter-clique hop: any circuit into the destination clique.
pub const GEN_INTER_ANY: ClassId = ClassId(1);

/// Class-based semi-oblivious router for arbitrary clique maps.
#[derive(Debug, Clone)]
pub struct GeneralSornRouter {
    cliques: CliqueMap,
    classes: [ClassId; 2],
}

impl GeneralSornRouter {
    /// Creates the router; any clique map (uniform or not) is accepted.
    pub fn new(cliques: CliqueMap) -> Self {
        GeneralSornRouter {
            cliques,
            classes: [GEN_INTRA_SPRAY, GEN_INTER_ANY],
        }
    }

    /// The clique map in use.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }
}

impl Router for GeneralSornRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        let here = self.cliques.clique_of(node);
        let dest = self.cliques.clique_of(cell.dst);

        if cell.hops == 0 && self.cliques.clique_size(here) > 1 {
            return RouteDecision::ToClass(GEN_INTRA_SPRAY);
        }
        if here == dest {
            RouteDecision::ToNode(cell.dst)
        } else {
            RouteDecision::ToClass(GEN_INTER_ANY)
        }
    }

    fn class_admits(&self, class: ClassId, cell: &Cell, from: NodeId, to: NodeId) -> bool {
        match class {
            GEN_INTRA_SPRAY => self.cliques.same_clique(from, to),
            GEN_INTER_ANY => {
                self.cliques.clique_of(to) == self.cliques.clique_of(cell.dst)
                    && !self.cliques.same_clique(from, to)
            }
            _ => false,
        }
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        3
    }

    fn name(&self) -> &str {
        "sorn-general"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::nonuniform_sorn_schedule;
    use sorn_topology::{CliqueId, Ratio};

    fn nonuniform_map() -> CliqueMap {
        let a = |c: u32| CliqueId(c);
        CliqueMap::from_assignment(&[a(0), a(0), a(0), a(0), a(1), a(1), a(2), a(2)])
    }

    #[test]
    fn full_mesh_drains_on_nonuniform_cliques() {
        let map = nonuniform_map();
        let sched = nonuniform_sorn_schedule(&map, Ratio::integer(2), 0, 1 << 20).unwrap();
        let router = GeneralSornRouter::new(map);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        let mut flows = Vec::new();
        let mut id = 0;
        for s in 0..8u32 {
            for d in 0..8u32 {
                if s != d {
                    flows.push(Flow {
                        id: FlowId(id),
                        src: NodeId(s),
                        dst: NodeId(d),
                        size_bytes: 2500,
                        arrival_ns: id * 30,
                    });
                    id += 1;
                }
            }
        }
        let count = flows.len();
        eng.add_flows(flows).unwrap();
        assert!(eng.run_until_drained(1_000_000).unwrap());
        let m = eng.metrics();
        assert_eq!(m.flows.len(), count);
        for f in &m.flows {
            assert!(f.max_hops <= 3, "flow took {} hops", f.max_hops);
        }
    }

    #[test]
    fn works_on_uniform_cliques_too() {
        use sorn_topology::builders::{sorn_schedule, SornScheduleParams};
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        let router = GeneralSornRouter::new(map);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([Flow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(6),
            size_bytes: 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        assert!(eng.metrics().flows[0].max_hops <= 3);
    }

    #[test]
    fn inter_class_only_admits_destination_clique() {
        let map = nonuniform_map();
        let r = GeneralSornRouter::new(map);
        let cell = Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(6), // clique 2
            injected_ns: 0,
            hops: 1,
            tag: 0,
        };
        // From node 1 (clique 0): circuit into clique 2 admitted.
        assert!(r.class_admits(GEN_INTER_ANY, &cell, NodeId(1), NodeId(7)));
        // Circuit into clique 1 rejected.
        assert!(!r.class_admits(GEN_INTER_ANY, &cell, NodeId(1), NodeId(4)));
        // Intra circuit rejected for the inter class.
        assert!(!r.class_admits(GEN_INTER_ANY, &cell, NodeId(1), NodeId(2)));
    }

    #[test]
    fn singleton_source_cliques_skip_the_spray() {
        let a = |c: u32| CliqueId(c);
        let map = CliqueMap::from_assignment(&[a(0), a(1), a(1), a(1)]);
        let r = GeneralSornRouter::new(map);
        let mut rng = sorn_sim::NodeRng::for_node(0, 0);
        let mut cell = Cell {
            flow: FlowId(0),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(2),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        };
        assert_eq!(
            r.decide(NodeId(0), &mut cell, &mut rng),
            RouteDecision::ToClass(GEN_INTER_ANY)
        );
    }
}
