//! Path distributions for each routing scheme (flow-level counterparts of
//! the packet routers).
//!
//! These implement [`PathModel`] so the flow-level evaluator can compute
//! exact edge loads. Each mirrors the corresponding `Router`
//! implementation: same spray sets, same targeted hops.

use crate::flowlevel::PathModel;
use sorn_topology::{CliqueMap, NodeId};

/// Single-hop direct paths (for fully connected schedules and tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectPaths;

impl PathModel for DirectPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        visit(&[src, dst], 1.0);
    }
    fn name(&self) -> &str {
        "direct"
    }
}

/// 2-hop VLB over a flat round robin: spray uniformly over the `n-1`
/// peers, then the direct circuit.
#[derive(Debug, Clone, Copy)]
pub struct VlbPaths {
    n: usize,
}

impl VlbPaths {
    /// Paths over `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        VlbPaths { n }
    }
}

impl PathModel for VlbPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        let p = 1.0 / (self.n - 1) as f64;
        for i in 0..self.n as u32 {
            let i = NodeId(i);
            if i == src {
                continue;
            }
            if i == dst {
                visit(&[src, dst], p);
            } else {
                visit(&[src, i, dst], p);
            }
        }
    }
    fn name(&self) -> &str {
        "vlb-1d"
    }
}

/// The paper's SORN routing: intra-clique 2-hop VLB, inter-clique 3 hops
/// via the intermediate's inter-clique gateway.
#[derive(Debug, Clone)]
pub struct SornPaths {
    cliques: CliqueMap,
}

impl SornPaths {
    /// Paths over a uniform clique assignment.
    ///
    /// # Panics
    /// Panics when clique sizes differ.
    pub fn new(cliques: CliqueMap) -> Self {
        assert!(cliques.is_uniform(), "SornPaths requires uniform cliques");
        SornPaths { cliques }
    }

    fn gateway(&self, via: NodeId, dst: NodeId) -> NodeId {
        self.cliques
            .node_at(self.cliques.clique_of(dst), self.cliques.intra_index(via))
            .expect("uniform cliques")
    }
}

impl PathModel for SornPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        let c = self.cliques.clique_of(src);
        let members = self.cliques.members(c);
        let csize = members.len();
        let same = self.cliques.same_clique(src, dst);

        if csize == 1 {
            // No intra links: the gateway IS the destination (singleton
            // destination clique member with intra index 0).
            visit(&[src, dst], 1.0);
            return;
        }

        let p = 1.0 / (csize - 1) as f64;
        for &i in members {
            if i == src {
                continue;
            }
            if same {
                if i == dst {
                    visit(&[src, dst], p);
                } else {
                    visit(&[src, i, dst], p);
                }
            } else {
                let g = self.gateway(i, dst);
                if g == dst {
                    visit(&[src, i, dst], p);
                } else {
                    visit(&[src, i, g, dst], p);
                }
            }
        }
    }
    fn name(&self) -> &str {
        "sorn"
    }
}

/// 2h-hop routing over an h-dimensional ORN: spray every dimension once
/// (uniform over the `Δ-1` shifts per dimension), then correct wrong
/// digits in dimension order.
#[derive(Debug, Clone, Copy)]
pub struct HdimPaths {
    delta: usize,
    h: u32,
}

impl HdimPaths {
    /// Paths over `n = Δ^h` nodes.
    ///
    /// # Panics
    /// Panics when `n` is not a perfect `h`-th power.
    pub fn new(n: usize, h: u32) -> Self {
        assert!(h >= 1);
        let delta = (n as f64).powf(1.0 / h as f64).round() as usize;
        assert!(delta.checked_pow(h) == Some(n), "{n} != delta^{h}");
        HdimPaths { delta, h }
    }

    fn digit(&self, x: usize, dim: u32) -> usize {
        (x / self.delta.pow(dim)) % self.delta
    }

    fn with_digit(&self, x: usize, dim: u32, v: usize) -> usize {
        let stride = self.delta.pow(dim);
        x - self.digit(x, dim) * stride + v * stride
    }
}

impl PathModel for HdimPaths {
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
        // Enumerate spray targets: one digit choice per dimension, each
        // different from src's digit in that dimension.
        let spray_options = (self.delta - 1).pow(self.h);
        let prob = 1.0 / spray_options as f64;
        let mut choice = vec![0usize; self.h as usize]; // 0..delta-2 per dim
        loop {
            // Build the path for this spray choice.
            let mut path: Vec<NodeId> = Vec::with_capacity(2 * self.h as usize + 1);
            path.push(src);
            let mut cur = src.index();
            for dim in 0..self.h {
                let sd = self.digit(cur, dim);
                // Skip src digit: map choice 0..delta-2 onto values != sd.
                let mut v = choice[dim as usize];
                if v >= sd {
                    v += 1;
                }
                cur = self.with_digit(cur, dim, v);
                path.push(NodeId(cur as u32));
            }
            // Correction phase, dimension order.
            for dim in 0..self.h {
                let want = self.digit(dst.index(), dim);
                if self.digit(cur, dim) != want {
                    cur = self.with_digit(cur, dim, want);
                    path.push(NodeId(cur as u32));
                }
            }
            debug_assert_eq!(cur, dst.index());
            visit(&path, prob);

            // Odometer increment.
            let mut dim = 0usize;
            loop {
                if dim == self.h as usize {
                    return;
                }
                choice[dim] += 1;
                if choice[dim] < self.delta - 1 {
                    break;
                }
                choice[dim] = 0;
                dim += 1;
            }
        }
    }
    fn name(&self) -> &str {
        "hdim-orn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowlevel::{evaluate, DemandMatrix};
    use sorn_topology::builders::{hdim_orn, round_robin, sorn_schedule, SornScheduleParams};
    use sorn_topology::Ratio;

    fn total_prob(model: &dyn PathModel, s: u32, d: u32) -> f64 {
        let mut p = 0.0;
        model.for_each_path(NodeId(s), NodeId(d), &mut |_, q| p += q);
        p
    }

    #[test]
    fn probabilities_sum_to_one() {
        assert!((total_prob(&VlbPaths::new(8), 0, 5) - 1.0).abs() < 1e-12);
        let sorn = SornPaths::new(CliqueMap::contiguous(8, 2));
        assert!((total_prob(&sorn, 0, 2) - 1.0).abs() < 1e-12);
        assert!((total_prob(&sorn, 0, 6) - 1.0).abs() < 1e-12);
        let hd = HdimPaths::new(16, 2);
        assert!((total_prob(&hd, 0, 15) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vlb_worst_case_throughput_is_half() {
        // Uniform demand on a flat round robin with 2-hop VLB: every cell
        // crosses the fabric twice, throughput 1/2 (§2).
        let topo = round_robin(16).unwrap().logical_topology();
        let rep = evaluate(&topo, &VlbPaths::new(16), &DemandMatrix::uniform(16)).unwrap();
        // Mean hops slightly under 2 because sprays can land on the
        // destination; throughput is 1/mean_hops for this symmetric case.
        assert!(
            rep.throughput >= 0.5 - 1e-9,
            "throughput {}",
            rep.throughput
        );
        assert!(rep.throughput <= 0.55, "throughput {}", rep.throughput);
        assert!(rep.mean_hops > 1.9 && rep.mean_hops < 2.0);
    }

    #[test]
    fn hdim_worst_case_throughput_is_quarter() {
        // 2D ORN: 4-hop routing, throughput ~1/4 (§2).
        let topo = hdim_orn(16, 2).unwrap().logical_topology();
        let rep = evaluate(&topo, &HdimPaths::new(16, 2), &DemandMatrix::uniform(16)).unwrap();
        assert!(
            rep.throughput >= 0.25 - 1e-9,
            "throughput {}",
            rep.throughput
        );
        assert!(rep.throughput <= 0.32, "throughput {}", rep.throughput);
        assert!(rep.mean_hops > 3.0 && rep.mean_hops <= 4.0);
    }

    #[test]
    fn sorn_paths_match_paper_example() {
        let sorn = SornPaths::new(CliqueMap::contiguous(8, 2));
        let mut seen = Vec::new();
        sorn.for_each_path(NodeId(0), NodeId(6), &mut |p, _| {
            seen.push(p.to_vec());
        });
        // 0 -> 3 -> 7 -> 6 must be among the paths (paper example).
        assert!(seen.contains(&vec![NodeId(0), NodeId(3), NodeId(7), NodeId(6)]));
        // Spray over 3 intermediates; the gateway of node 2 is node 6
        // (the destination), giving one 2-hop path.
        assert_eq!(seen.len(), 3);
        assert!(seen.iter().any(|p| p.len() == 3));
    }

    #[test]
    fn sorn_throughput_matches_closed_form_at_ideal_q() {
        // 16 nodes, 4 cliques, x = 0.5 => q = 4, r* = 1/(3-x) = 0.4.
        let map = CliqueMap::contiguous(16, 4);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(4))).unwrap();
        let topo = sched.logical_topology();
        let model = SornPaths::new(map.clone());
        let demand = DemandMatrix::clique_local(&map, 0.5);
        let rep = evaluate(&topo, &model, &demand).unwrap();
        // The closed form r = 1/(3-x) is a worst-case bound; the exact
        // evaluation is >= it (sprays sometimes land on the destination)
        // and close.
        assert!(
            rep.throughput >= 0.4 - 1e-9,
            "throughput {}",
            rep.throughput
        );
        assert!(rep.throughput < 0.5, "throughput {}", rep.throughput);
        // Mean hops just under 3 - x = 2.5.
        assert!(
            rep.mean_hops > 2.2 && rep.mean_hops <= 2.5,
            "hops {}",
            rep.mean_hops
        );
    }

    #[test]
    fn hdim_paths_respect_dimension_structure() {
        let hd = HdimPaths::new(16, 2);
        hd.for_each_path(NodeId(0), NodeId(15), &mut |path, _| {
            assert!(path.len() <= 5, "path too long: {path:?}");
            for w in path.windows(2) {
                let a = w[0].index();
                let b = w[1].index();
                let d0 = (a % 4) != (b % 4);
                let d1 = (a / 4) != (b / 4);
                assert!(d0 ^ d1, "hop {a}->{b} not single-dimension");
            }
        });
    }

    #[test]
    fn singleton_clique_paths_are_direct() {
        let sorn = SornPaths::new(CliqueMap::contiguous(4, 4));
        let mut paths = Vec::new();
        sorn.for_each_path(NodeId(0), NodeId(3), &mut |p, q| {
            paths.push((p.to_vec(), q))
        });
        assert_eq!(paths, vec![(vec![NodeId(0), NodeId(3)], 1.0)]);
    }
}
