//! Queue-adaptive two-hop routing (RotorLB-style; cf. Wilson et al.
//! [34], which adjusts the oblivious *routing* — not the schedule — to
//! congestion).
//!
//! Pure VLB pays the 2x bandwidth tax on every cell even when the
//! network is idle. The adaptive variant sends a cell *directly* when
//! the queue toward its destination is short, and only falls back to a
//! load-balancing spray under backlog. On skewed-but-admissible traffic
//! this recovers much of the taxed bandwidth; worst-case guarantees
//! degrade gracefully toward VLB as queues grow.
//!
//! The same idea applies inside SORN cliques: [`AdaptiveSornRouter`]
//! wraps the paper's scheme with direct-first intra-clique decisions.

use crate::sorn::INTRA_SPRAY;
use crate::vlb::VLB_SPRAY;
use sorn_sim::{Cell, ClassId, RouteDecision, Router};
use sorn_topology::{CliqueMap, NodeId};
use std::collections::HashMap;
use std::sync::Mutex;

/// Tracks in-flight direct-queue occupancy per (node, next-hop).
///
/// The simulator owns the authoritative queues; routers only see cells
/// one at a time, so the adaptive schemes keep a shadow count updated in
/// `decide`/`on_transmit`. Single-threaded by design (the engine is).
#[derive(Debug, Default)]
struct ShadowCounts {
    queued: HashMap<(u32, u32), u64>,
}

impl ShadowCounts {
    fn depth(&self, node: NodeId, next: NodeId) -> u64 {
        *self.queued.get(&(node.0, next.0)).unwrap_or(&0)
    }
    fn inc(&mut self, node: NodeId, next: NodeId) {
        *self.queued.entry((node.0, next.0)).or_insert(0) += 1;
    }
    fn dec(&mut self, node: NodeId, next: NodeId) {
        if let Some(v) = self.queued.get_mut(&(node.0, next.0)) {
            *v = v.saturating_sub(1);
        }
    }
}

/// Flat two-hop router that prefers the direct circuit when its queue is
/// below `threshold` cells.
#[derive(Debug)]
pub struct AdaptiveVlbRouter {
    threshold: u64,
    classes: [ClassId; 1],
    shadow: Mutex<ShadowCounts>,
}

impl AdaptiveVlbRouter {
    /// Creates the router; `threshold` is the direct-queue depth above
    /// which fresh cells spray instead.
    pub fn new(threshold: u64) -> Self {
        AdaptiveVlbRouter {
            threshold,
            classes: [VLB_SPRAY],
            shadow: Mutex::new(ShadowCounts::default()),
        }
    }

    /// The configured direct-queue threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }
}

impl Router for AdaptiveVlbRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        if cell.hops == 0 {
            let mut shadow = self.shadow.lock().expect("shadow counts poisoned");
            if shadow.depth(node, cell.dst) < self.threshold {
                shadow.inc(node, cell.dst);
                return RouteDecision::ToNode(cell.dst);
            }
            return RouteDecision::ToClass(VLB_SPRAY);
        }
        let mut shadow = self.shadow.lock().expect("shadow counts poisoned");
        shadow.inc(node, cell.dst);
        RouteDecision::ToNode(cell.dst)
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, _from: NodeId, _to: NodeId) -> bool {
        true
    }

    fn on_transmit(&self, cell: &mut Cell, from: NodeId, to: NodeId) {
        // A direct-queue cell leaves `from` toward its destination.
        if to == cell.dst {
            self.shadow
                .lock()
                .expect("shadow counts poisoned")
                .dec(from, cell.dst);
        }
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        2
    }

    fn name(&self) -> &str {
        "adaptive-vlb"
    }
}

/// SORN routing with direct-first intra-clique decisions.
///
/// Inter-clique traffic keeps the paper's 3-hop scheme (its inter hop is
/// already targeted); intra-clique traffic goes direct below the queue
/// threshold and VLB-sprays above it.
#[derive(Debug)]
pub struct AdaptiveSornRouter {
    cliques: CliqueMap,
    threshold: u64,
    classes: [ClassId; 1],
    shadow: Mutex<ShadowCounts>,
}

impl AdaptiveSornRouter {
    /// Creates the router over a uniform clique assignment.
    ///
    /// # Panics
    /// Panics when clique sizes differ.
    pub fn new(cliques: CliqueMap, threshold: u64) -> Self {
        assert!(cliques.is_uniform(), "requires uniform cliques");
        AdaptiveSornRouter {
            cliques,
            threshold,
            classes: [INTRA_SPRAY],
            shadow: Mutex::new(ShadowCounts::default()),
        }
    }

    fn gateway(&self, v: NodeId, dst: NodeId) -> NodeId {
        self.cliques
            .node_at(self.cliques.clique_of(dst), self.cliques.intra_index(v))
            .expect("uniform cliques")
    }
}

impl Router for AdaptiveSornRouter {
    fn decide(&self, node: NodeId, cell: &mut Cell, _rng: &mut sorn_sim::NodeRng) -> RouteDecision {
        if node == cell.dst {
            return RouteDecision::Deliver;
        }
        let here = self.cliques.clique_of(node);
        let dest = self.cliques.clique_of(cell.dst);

        if cell.hops == 0 {
            if self.cliques.clique_size(here) == 1 {
                return RouteDecision::ToNode(self.gateway(node, cell.dst));
            }
            if here == dest {
                // Direct-first inside the clique.
                let mut shadow = self.shadow.lock().expect("shadow counts poisoned");
                if shadow.depth(node, cell.dst) < self.threshold {
                    shadow.inc(node, cell.dst);
                    return RouteDecision::ToNode(cell.dst);
                }
            }
            return RouteDecision::ToClass(INTRA_SPRAY);
        }
        if here == dest {
            RouteDecision::ToNode(cell.dst)
        } else {
            RouteDecision::ToNode(self.gateway(node, cell.dst))
        }
    }

    fn class_admits(&self, _class: ClassId, _cell: &Cell, from: NodeId, to: NodeId) -> bool {
        self.cliques.same_clique(from, to)
    }

    fn on_transmit(&self, cell: &mut Cell, from: NodeId, to: NodeId) {
        if to == cell.dst && cell.hops == 0 {
            self.shadow
                .lock()
                .expect("shadow counts poisoned")
                .dec(from, cell.dst);
        }
    }

    fn classes(&self) -> &[ClassId] {
        &self.classes
    }

    fn max_hops(&self) -> u8 {
        3
    }

    fn name(&self) -> &str {
        "adaptive-sorn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{Engine, Flow, FlowId, SimConfig};
    use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
    use sorn_topology::Ratio;

    fn flows_skewed(n: u32, count: u64) -> Vec<Flow> {
        // Every node sends to its +1 neighbor: a permutation that pure
        // VLB taxes 2x but direct routing serves in one hop.
        (0..n)
            .map(|s| Flow {
                id: FlowId(s as u64),
                src: NodeId(s),
                dst: NodeId((s + 1) % n),
                size_bytes: count * 1250,
                arrival_ns: 0,
            })
            .collect()
    }

    #[test]
    fn adaptive_vlb_goes_direct_at_low_load() {
        let sched = round_robin(8).unwrap();
        let router = AdaptiveVlbRouter::new(4);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows(flows_skewed(8, 2)).unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        let m = eng.metrics();
        // Low load: everything goes direct, one hop per cell.
        assert!((m.mean_hops() - 1.0).abs() < 1e-9, "hops {}", m.mean_hops());
        assert!((m.delivery_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_vlb_sprays_under_backlog() {
        let sched = round_robin(8).unwrap();
        let router = AdaptiveVlbRouter::new(2);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // 40 cells to one destination: only the first 2 go direct
        // immediately; the rest spray (or go direct later as the shadow
        // count drains).
        eng.add_flows(flows_skewed(8, 40)).unwrap();
        assert!(eng.run_until_drained(1_000_000).unwrap());
        let m = eng.metrics();
        assert!(m.mean_hops() > 1.0, "some cells must have sprayed");
        assert!(m.mean_hops() <= 2.0);
    }

    #[test]
    fn adaptive_halves_bandwidth_tax_on_permutation() {
        // The adaptive win is the bandwidth tax: direct-first traffic
        // consumes one circuit transmission per cell instead of VLB's
        // two. (Multi-cell FCT can go either way — VLB pipelines a
        // flow's cells over many parallel intermediates, while direct
        // cells serialize on one circuit.)
        let sched = round_robin(8).unwrap();
        let run = |adaptive: bool| {
            let vlb = crate::VlbRouter::new();
            let ad = AdaptiveVlbRouter::new(u64::MAX);
            let router: &dyn Router = if adaptive { &ad } else { &vlb };
            let mut eng = Engine::new(SimConfig::default(), &sched, router);
            eng.add_flows(flows_skewed(8, 6)).unwrap();
            eng.run_until_drained(1_000_000).unwrap();
            eng.metrics().transmissions
        };
        let tx_adaptive = run(true);
        let tx_vlb = run(false);
        assert_eq!(tx_adaptive, 48, "one transmission per cell");
        assert!(
            tx_vlb > tx_adaptive + tx_adaptive / 2,
            "adaptive {tx_adaptive} vs vlb {tx_vlb}"
        );
    }

    #[test]
    fn adaptive_sorn_direct_first_within_cliques() {
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        let router = AdaptiveSornRouter::new(map, 2);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        // One small intra flow: goes direct, single hop.
        eng.add_flows([Flow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(2),
            size_bytes: 1250,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        assert_eq!(eng.metrics().flows[0].max_hops, 1);
    }

    #[test]
    fn adaptive_sorn_keeps_inter_scheme() {
        let map = CliqueMap::contiguous(8, 2);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
        let router = AdaptiveSornRouter::new(map, 2);
        let mut eng = Engine::new(SimConfig::default(), &sched, &router);
        eng.add_flows([Flow {
            id: FlowId(0),
            src: NodeId(0),
            dst: NodeId(6),
            size_bytes: 2500,
            arrival_ns: 0,
        }])
        .unwrap();
        assert!(eng.run_until_drained(100_000).unwrap());
        let f = &eng.metrics().flows[0];
        assert!(f.max_hops >= 2 && f.max_hops <= 3);
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn adaptive_sorn_rejects_nonuniform() {
        use sorn_topology::CliqueId;
        let map = CliqueMap::from_assignment(&[CliqueId(0), CliqueId(0), CliqueId(1)]);
        let _ = AdaptiveSornRouter::new(map, 2);
    }
}
