//! Flow-level oblivious-routing evaluation.
//!
//! For an oblivious scheme, every source-destination pair's traffic
//! spreads over a *fixed distribution of paths*, so the load on every
//! virtual edge is a linear function of the traffic matrix. Throughput —
//! the largest uniform scaling of the demand the network sustains — is
//! then simply `min_edge capacity/load`. This evaluator computes that
//! exactly, which is how the simulated series of Figure 2(f) is produced.

use sorn_topology::{CliqueMap, LogicalTopology, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Errors from flow-level evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowLevelError {
    /// A path used a circuit the schedule never provides.
    UnscheduledEdge {
        /// Edge source.
        src: NodeId,
        /// Edge destination.
        dst: NodeId,
    },
    /// The demand matrix carries no traffic.
    EmptyDemand,
    /// The demand matrix has the wrong shape or invalid entries.
    InvalidDemand(String),
}

impl fmt::Display for FlowLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowLevelError::UnscheduledEdge { src, dst } => {
                write!(
                    f,
                    "routing uses edge {src} -> {dst} which the schedule never provides"
                )
            }
            FlowLevelError::EmptyDemand => write!(f, "demand matrix carries no traffic"),
            FlowLevelError::InvalidDemand(msg) => write!(f, "invalid demand: {msg}"),
        }
    }
}

impl std::error::Error for FlowLevelError {}

/// A normalized traffic matrix: `demand(s, d)` is the fraction of node
/// `s`'s bandwidth demanded toward `d`. Rows should sum to at most 1
/// (a node cannot offer more than its line rate).
///
/// ```
/// use sorn_routing::{evaluate, DemandMatrix, VlbPaths};
/// use sorn_topology::builders::round_robin;
///
/// let topo = round_robin(8).unwrap().logical_topology();
/// let report = evaluate(&topo, &VlbPaths::new(8), &DemandMatrix::uniform(8)).unwrap();
/// // Classic 2-hop VLB: at least half of every admissible demand.
/// assert!(report.throughput >= 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMatrix {
    n: usize,
    d: Vec<f64>,
}

impl DemandMatrix {
    /// Builds a demand matrix from a dense row-major table.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, FlowLevelError> {
        let n = rows.len();
        let mut d = Vec::with_capacity(n * n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(FlowLevelError::InvalidDemand(format!(
                    "row {i} has {} entries, want {n}",
                    row.len()
                )));
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() || v < 0.0 {
                    return Err(FlowLevelError::InvalidDemand(format!(
                        "entry ({i},{j}) = {v} must be finite and non-negative"
                    )));
                }
                if i == j && v != 0.0 {
                    return Err(FlowLevelError::InvalidDemand(format!(
                        "diagonal entry ({i},{i}) must be zero"
                    )));
                }
            }
            d.extend_from_slice(row);
        }
        Ok(DemandMatrix { n, d })
    }

    /// Uniform all-to-all demand: every node spreads its full bandwidth
    /// evenly over all other nodes.
    pub fn uniform(n: usize) -> Self {
        assert!(n >= 2);
        let v = 1.0 / (n - 1) as f64;
        let d = (0..n * n)
            .map(|k| if k / n == k % n { 0.0 } else { v })
            .collect();
        DemandMatrix { n, d }
    }

    /// Clique-local demand with locality ratio `x` (§3): a fraction `x`
    /// of each node's traffic spreads uniformly inside its clique, the
    /// rest uniformly over all nodes in other cliques.
    ///
    /// Degenerate cases: singleton cliques force `x = 0`; a single clique
    /// forces `x = 1`.
    pub fn clique_local(cliques: &CliqueMap, x: f64) -> Self {
        assert!((0.0..=1.0).contains(&x), "locality must be in [0,1]");
        let n = cliques.n();
        let mut d = vec![0.0; n * n];
        for s in 0..n {
            let sn = NodeId(s as u32);
            let c = cliques.clique_of(sn);
            let csize = cliques.clique_size(c);
            let outside = n - csize;
            // Effective locality after degenerate-case clamping.
            let xe = if csize <= 1 {
                0.0
            } else if outside == 0 {
                1.0
            } else {
                x
            };
            for t in 0..n {
                if t == s {
                    continue;
                }
                let tn = NodeId(t as u32);
                d[s * n + t] = if cliques.same_clique(sn, tn) {
                    if csize > 1 {
                        xe / (csize - 1) as f64
                    } else {
                        0.0
                    }
                } else if outside > 0 {
                    (1.0 - xe) / outside as f64
                } else {
                    0.0
                };
            }
        }
        DemandMatrix { n, d }
    }

    /// A permutation demand: node `i` sends its full bandwidth to
    /// `perm[i]`.
    pub fn permutation(perm: &[usize]) -> Result<Self, FlowLevelError> {
        let n = perm.len();
        let mut d = vec![0.0; n * n];
        for (i, &p) in perm.iter().enumerate() {
            if p >= n {
                return Err(FlowLevelError::InvalidDemand(format!(
                    "perm[{i}] = {p} out of range"
                )));
            }
            if p != i {
                d[i * n + p] = 1.0;
            }
        }
        Ok(DemandMatrix { n, d })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand fraction from `s` to `t`.
    #[inline]
    pub fn get(&self, s: NodeId, t: NodeId) -> f64 {
        self.d[s.index() * self.n + t.index()]
    }

    /// Largest row sum (offered load per node; 1.0 = saturation).
    pub fn max_row_sum(&self) -> f64 {
        (0..self.n)
            .map(|s| self.d[s * self.n..(s + 1) * self.n].iter().sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// The measured intra-clique fraction of total demand.
    pub fn locality(&self, cliques: &CliqueMap) -> f64 {
        let mut intra = 0.0;
        let mut total = 0.0;
        for s in 0..self.n {
            for t in 0..self.n {
                let v = self.d[s * self.n + t];
                total += v;
                if cliques.same_clique(NodeId(s as u32), NodeId(t as u32)) {
                    intra += v;
                }
            }
        }
        if total == 0.0 {
            0.0
        } else {
            intra / total
        }
    }
}

/// A routing scheme's path distribution, for flow-level evaluation.
pub trait PathModel {
    /// Invokes `visit(path, probability)` for every path the scheme uses
    /// from `src` to `dst`. Paths include both endpoints; probabilities
    /// must sum to 1 per pair.
    fn for_each_path(&self, src: NodeId, dst: NodeId, visit: &mut dyn FnMut(&[NodeId], f64));

    /// Scheme name for reports.
    fn name(&self) -> &str;
}

/// Result of a flow-level evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputReport {
    /// `min_edge capacity/load`: the largest uniform demand scaling the
    /// network sustains. Values above 1 mean the demand as given fits
    /// with headroom.
    pub throughput: f64,
    /// The bottleneck edge.
    pub bottleneck: (NodeId, NodeId),
    /// Load on the bottleneck at unit demand scaling.
    pub bottleneck_load: f64,
    /// Demand-weighted mean path length (the bandwidth tax).
    pub mean_hops: f64,
}

/// Evaluates the worst-case throughput of `model` routing `demand` over
/// the virtual edges of `topo`.
pub fn evaluate(
    topo: &LogicalTopology,
    model: &dyn PathModel,
    demand: &DemandMatrix,
) -> Result<ThroughputReport, FlowLevelError> {
    if demand.n() != topo.n() {
        return Err(FlowLevelError::InvalidDemand(format!(
            "demand is over {} nodes, topology over {}",
            demand.n(),
            topo.n()
        )));
    }
    let n = topo.n();
    let mut load: HashMap<(u32, u32), f64> = HashMap::new();
    let mut hop_integral = 0.0;
    let mut total_demand = 0.0;
    let mut bad_edge: Option<(NodeId, NodeId)> = None;

    for s in 0..n as u32 {
        for t in 0..n as u32 {
            let (s, t) = (NodeId(s), NodeId(t));
            let dem = demand.get(s, t);
            if dem == 0.0 {
                continue;
            }
            total_demand += dem;
            model.for_each_path(s, t, &mut |path, prob| {
                hop_integral += dem * prob * (path.len() - 1) as f64;
                for w in path.windows(2) {
                    if topo.capacity(w[0], w[1]) <= 0.0 && bad_edge.is_none() {
                        bad_edge = Some((w[0], w[1]));
                    }
                    *load.entry((w[0].0, w[1].0)).or_insert(0.0) += dem * prob;
                }
            });
        }
    }

    if let Some((a, b)) = bad_edge {
        return Err(FlowLevelError::UnscheduledEdge { src: a, dst: b });
    }
    if total_demand == 0.0 {
        return Err(FlowLevelError::EmptyDemand);
    }

    let mut throughput = f64::INFINITY;
    let mut bottleneck = (NodeId(0), NodeId(0));
    let mut bottleneck_load = 0.0;
    for (&(a, b), &l) in &load {
        let cap = topo.capacity(NodeId(a), NodeId(b));
        let r = cap / l;
        if r < throughput {
            throughput = r;
            bottleneck = (NodeId(a), NodeId(b));
            bottleneck_load = l;
        }
    }

    Ok(ThroughputReport {
        throughput,
        bottleneck,
        bottleneck_load,
        mean_hops: hop_integral / total_demand,
    })
}

/// Adapts the flow-level evaluator to the simulator's
/// [`RateOracle`](sorn_sim::RateOracle), so the fluid macroflow tier
/// (`sorn_sim::macroflow`) drains bulk flows at exactly the worst-case
/// throughput this module computes for the live demand.
///
/// ```
/// use sorn_routing::{FlowLevelOracle, VlbPaths};
/// use sorn_sim::RateOracle;
/// use sorn_topology::builders::round_robin;
///
/// let topo = round_robin(8).unwrap().logical_topology();
/// let model = VlbPaths::new(8);
/// let mut oracle = FlowLevelOracle::new(&topo, &model);
/// // Uniform demand over 2-hop VLB sustains at least half rate.
/// let uniform: Vec<f64> = (0..64)
///     .map(|k| if k / 8 == k % 8 { 0.0 } else { 1.0 / 7.0 })
///     .collect();
/// assert!(oracle.throughput(8, &uniform) >= 0.5);
/// ```
pub struct FlowLevelOracle<'a> {
    topo: &'a LogicalTopology,
    model: &'a dyn PathModel,
}

impl<'a> FlowLevelOracle<'a> {
    /// Evaluates `model`'s fixed path distribution over `topo`.
    pub fn new(topo: &'a LogicalTopology, model: &'a dyn PathModel) -> Self {
        FlowLevelOracle { topo, model }
    }
}

impl sorn_sim::RateOracle for FlowLevelOracle<'_> {
    fn throughput(&mut self, n: usize, demand: &[f64]) -> f64 {
        let rows = demand.chunks(n).map(<[f64]>::to_vec).collect();
        let matrix = match DemandMatrix::from_rows(rows) {
            Ok(m) => m,
            Err(e) => panic!("fluid tier produced an invalid demand matrix: {e}"),
        };
        match evaluate(self.topo, self.model, &matrix) {
            Ok(report) => report.throughput,
            // No traffic constrains nothing.
            Err(FlowLevelError::EmptyDemand) => f64::INFINITY,
            // A path over a circuit the schedule never provides means
            // the model/topology pairing is wrong: no rate is
            // sustainable, so the tier stalls and demotes.
            Err(FlowLevelError::UnscheduledEdge { .. }) => 0.0,
            Err(e @ FlowLevelError::InvalidDemand(_)) => {
                panic!("fluid tier produced an invalid demand matrix: {e}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_topology::builders::round_robin;

    /// Single-hop direct paths.
    struct Direct;
    impl PathModel for Direct {
        fn for_each_path(&self, s: NodeId, d: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
            visit(&[s, d], 1.0);
        }
        fn name(&self) -> &str {
            "direct"
        }
    }

    #[test]
    fn uniform_demand_shapes() {
        let d = DemandMatrix::uniform(4);
        assert!((d.get(NodeId(0), NodeId(1)) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.get(NodeId(2), NodeId(2)), 0.0);
        assert!((d.max_row_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_local_demand_has_requested_locality() {
        let map = CliqueMap::contiguous(8, 2);
        let d = DemandMatrix::clique_local(&map, 0.7);
        assert!((d.locality(&map) - 0.7).abs() < 1e-12);
        assert!((d.max_row_sum() - 1.0).abs() < 1e-12);
        // Intra entries: 0.7 / 3; inter: 0.3 / 4.
        assert!((d.get(NodeId(0), NodeId(1)) - 0.7 / 3.0).abs() < 1e-12);
        assert!((d.get(NodeId(0), NodeId(5)) - 0.3 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn clique_local_degenerate_cases() {
        // Singleton cliques: all traffic is inter regardless of x.
        let map = CliqueMap::contiguous(4, 4);
        let d = DemandMatrix::clique_local(&map, 0.9);
        assert_eq!(d.locality(&map), 0.0);
        // One clique: all traffic intra.
        let map1 = CliqueMap::contiguous(4, 1);
        let d1 = DemandMatrix::clique_local(&map1, 0.2);
        assert!((d1.locality(&map1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_demand() {
        let d = DemandMatrix::permutation(&[1, 2, 0]).unwrap();
        assert_eq!(d.get(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(d.get(NodeId(0), NodeId(2)), 0.0);
        assert!(DemandMatrix::permutation(&[5]).is_err());
    }

    #[test]
    fn from_rows_validates() {
        assert!(DemandMatrix::from_rows(vec![vec![0.0, 1.0]]).is_err()); // ragged
        assert!(DemandMatrix::from_rows(vec![vec![0.5, 0.0], vec![0.0, 0.0]]).is_err()); // diagonal
        assert!(DemandMatrix::from_rows(vec![vec![0.0, -1.0], vec![0.0, 0.0]]).is_err());
        assert!(DemandMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).is_ok());
    }

    #[test]
    fn direct_routing_on_round_robin_gives_full_throughput_for_uniform() {
        // Round robin gives every pair capacity 1/(n-1); uniform demand
        // asks exactly 1/(n-1) per pair: throughput 1.0.
        let topo = round_robin(6).unwrap().logical_topology();
        let rep = evaluate(&topo, &Direct, &DemandMatrix::uniform(6)).unwrap();
        assert!((rep.throughput - 1.0).abs() < 1e-9);
        assert!((rep.mean_hops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn direct_routing_on_permutation_is_bottlenecked() {
        // Permutation demand sends a node's full bandwidth over one edge
        // of capacity 1/(n-1): throughput 1/5 for n = 6.
        let topo = round_robin(6).unwrap().logical_topology();
        let d = DemandMatrix::permutation(&[1, 2, 3, 4, 5, 0]).unwrap();
        let rep = evaluate(&topo, &Direct, &d).unwrap();
        assert!((rep.throughput - 0.2).abs() < 1e-9);
        assert!((rep.bottleneck_load - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unscheduled_edges_are_reported() {
        // Path model that routes everything through node 0 even when no
        // such virtual edge exists.
        struct ViaZero;
        impl PathModel for ViaZero {
            fn for_each_path(&self, s: NodeId, d: NodeId, visit: &mut dyn FnMut(&[NodeId], f64)) {
                visit(&[s, s, d], 1.0); // s -> s edge never exists
            }
            fn name(&self) -> &str {
                "bad"
            }
        }
        let topo = round_robin(4).unwrap().logical_topology();
        let err = evaluate(&topo, &ViaZero, &DemandMatrix::uniform(4)).unwrap_err();
        assert!(matches!(err, FlowLevelError::UnscheduledEdge { .. }));
    }

    #[test]
    fn empty_demand_is_an_error() {
        let topo = round_robin(4).unwrap().logical_topology();
        let d = DemandMatrix::from_rows(vec![vec![0.0; 4]; 4]).unwrap();
        let err = evaluate(&topo, &Direct, &d).unwrap_err();
        assert_eq!(err, FlowLevelError::EmptyDemand);
    }
}
