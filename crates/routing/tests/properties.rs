//! Property-based tests for routing schemes and the flow-level
//! evaluator.

use proptest::prelude::*;
use sorn_routing::{
    evaluate, DemandMatrix, HdimPaths, PathModel, SornPaths, SornRouter, VlbPaths, VlbRouter,
};
use sorn_sim::{Engine, Flow, FlowId, Router, SimConfig};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, NodeId, Ratio};

fn assert_probs_sum_to_one(model: &dyn PathModel, n: usize) -> Result<(), TestCaseError> {
    for s in 0..n as u32 {
        for d in 0..n as u32 {
            if s == d {
                continue;
            }
            let mut p = 0.0;
            model.for_each_path(NodeId(s), NodeId(d), &mut |path, q| {
                assert_eq!(path.first(), Some(&NodeId(s)));
                assert_eq!(path.last(), Some(&NodeId(d)));
                p += q;
            });
            prop_assert!(
                (p - 1.0).abs() < 1e-9,
                "pair {}->{}: total prob {}",
                s,
                d,
                p
            );
        }
    }
    Ok(())
}

proptest! {
    /// Path probabilities sum to one for every pair, every model.
    #[test]
    fn path_probabilities_normalize(cliques in 2usize..5, size in 2usize..5) {
        let n = cliques * size;
        assert_probs_sum_to_one(&VlbPaths::new(n), n)?;
        assert_probs_sum_to_one(&SornPaths::new(CliqueMap::contiguous(n, cliques)), n)?;
    }

    /// Hdim path probabilities normalize for perfect powers.
    #[test]
    fn hdim_path_probabilities_normalize(delta in 2usize..5, h in 2u32..3) {
        let n = delta.pow(h);
        assert_probs_sum_to_one(&HdimPaths::new(n, h), n)?;
    }

    /// Every SORN path uses only circuits the SORN schedule provides —
    /// evaluate() never reports an unscheduled edge.
    #[test]
    fn sorn_paths_stay_on_schedule(
        cliques in 2usize..5,
        size in 2usize..5,
        qn in 1u64..6,
        qd in 1u64..4,
        x in 0.0f64..1.0,
    ) {
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::new(qn, qd))).unwrap();
        let topo = sched.logical_topology();
        let model = SornPaths::new(map.clone());
        let demand = DemandMatrix::clique_local(&map, x);
        let rep = evaluate(&topo, &model, &demand);
        prop_assert!(rep.is_ok(), "evaluate failed: {:?}", rep.err());
    }

    /// VLB on a round robin sustains at least half of any admissible
    /// (doubly sub-stochastic) permutation demand — the classic worst
    /// case guarantee.
    #[test]
    fn vlb_guarantees_half_throughput(n in 4usize..24, shift in 1usize..23) {
        let shift = 1 + shift % (n - 1);
        let topo = round_robin(n).unwrap().logical_topology();
        let perm: Vec<usize> = (0..n).map(|i| (i + shift) % n).collect();
        let demand = DemandMatrix::permutation(&perm).unwrap();
        let rep = evaluate(&topo, &VlbPaths::new(n), &demand).unwrap();
        prop_assert!(rep.throughput >= 0.5 - 1e-9, "throughput {}", rep.throughput);
    }

    /// SORN throughput under clique-local demand is monotone-ish in x and
    /// always at least the paper's 1/3 lower bound at ideal q.
    #[test]
    fn sorn_throughput_at_least_one_third(cliques in 2usize..5, size in 2usize..5, xi in 0usize..10) {
        let x = xi as f64 / 10.0;
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        let q = Ratio::approximate((2.0 / (1.0 - x)).min(64.0), 64);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(q)).unwrap();
        let topo = sched.logical_topology();
        let rep = evaluate(&topo, &SornPaths::new(map.clone()), &DemandMatrix::clique_local(&map, x)).unwrap();
        prop_assert!(rep.throughput >= 1.0 / 3.0 - 1e-9, "x={} r={}", x, rep.throughput);
    }

    /// Packet simulation with the VLB router delivers every injected
    /// cell within the hop bound, regardless of the flow pattern.
    #[test]
    fn vlb_sim_delivers_everything(
        n in 4usize..12,
        flows in proptest::collection::vec((0u32..12, 0u32..12, 1u64..8000), 1..20),
        seed in 0u64..1000,
    ) {
        let sched = round_robin(n).unwrap();
        let router = VlbRouter::new();
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut eng = Engine::new(cfg, &sched, &router);
        let flows: Vec<Flow> = flows
            .into_iter()
            .enumerate()
            .filter(|(_, (s, d, _))| (*s as usize) < n && (*d as usize) < n && s != d)
            .map(|(i, (s, d, bytes))| Flow {
                id: FlowId(i as u64),
                src: NodeId(s),
                dst: NodeId(d),
                size_bytes: bytes,
                arrival_ns: (i as u64) * 130,
            })
            .collect();
        let expected = flows.len();
        eng.add_flows(flows).unwrap();
        let drained = eng.run_until_drained(1_000_000).unwrap();
        prop_assert!(drained);
        prop_assert_eq!(eng.metrics().flows.len(), expected);
        for f in &eng.metrics().flows {
            prop_assert!(f.max_hops <= router.max_hops());
        }
    }

    /// The SORN router delivers everything within 3 hops on matching
    /// schedules.
    #[test]
    fn sorn_sim_respects_hop_bound(
        cliques in 2usize..4,
        size in 2usize..5,
        seed in 0u64..100,
    ) {
        let n = cliques * size;
        let map = CliqueMap::contiguous(n, cliques);
        let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(2))).unwrap();
        let router = SornRouter::new(map);
        let cfg = SimConfig { seed, ..SimConfig::default() };
        let mut eng = Engine::new(cfg, &sched, &router);
        let flows: Vec<Flow> = (0..n as u32)
            .map(|s| Flow {
                id: FlowId(s as u64),
                src: NodeId(s),
                dst: NodeId((s + 1 + seed as u32 % (n as u32 - 1)) % n as u32),
                size_bytes: 2500,
                arrival_ns: s as u64 * 90,
            })
            .filter(|f| f.src != f.dst)
            .collect();
        let expected = flows.len();
        eng.add_flows(flows).unwrap();
        prop_assert!(eng.run_until_drained(1_000_000).unwrap());
        prop_assert_eq!(eng.metrics().flows.len(), expected);
        for f in &eng.metrics().flows {
            prop_assert!(f.max_hops <= 3);
        }
    }

    /// Flow-level mean hops of VLB equals 2 - 1/(n-1) exactly (spray can
    /// land on the destination).
    #[test]
    fn vlb_mean_hops_closed_form(n in 3usize..30) {
        let topo = round_robin(n).unwrap().logical_topology();
        let rep = evaluate(&topo, &VlbPaths::new(n), &DemandMatrix::uniform(n)).unwrap();
        let expect = 2.0 - 1.0 / (n as f64 - 1.0);
        prop_assert!((rep.mean_hops - expect).abs() < 1e-9);
    }
}
