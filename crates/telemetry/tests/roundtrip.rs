//! JSONL round-trip coverage for every [`TraceEvent`] variant:
//! serialize → [`parse_jsonl`] → equality, over generated events.

use proptest::prelude::*;
use sorn_telemetry::{parse_jsonl, Snapshot, TraceEvent};

fn snapshot() -> impl Strategy<Value = TraceEvent> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        // Fractions stay finite so JSON round-trips are exact.
        (0.0f64..=1.0, 0.0f64..=1.0),
        (
            proptest::option::of(any::<u64>()),
            proptest::option::of(any::<u64>()),
        ),
    )
        .prop_map(
            |(
                (at_ns, slot, queued_cells, inflight_cells),
                (injected_cells, delivered_cells, dropped_cells, transmissions),
                (circuit_utilization, delivery_fraction),
                (p50_cell_latency_ns, p99_cell_latency_ns),
            )| {
                TraceEvent::Snapshot(Snapshot {
                    at_ns,
                    slot,
                    queued_cells,
                    inflight_cells,
                    injected_cells,
                    delivered_cells,
                    dropped_cells,
                    transmissions,
                    circuit_utilization,
                    delivery_fraction,
                    p50_cell_latency_ns,
                    p99_cell_latency_ns,
                })
            },
        )
}

fn flow_start() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |(at_ns, flow, src, dst, size_bytes)| TraceEvent::FlowStart {
                at_ns,
                flow,
                src,
                dst,
                size_bytes,
            },
        )
}

fn flow_finish() -> impl Strategy<Value = TraceEvent> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u8>(),
    )
        .prop_map(
            |(at_ns, flow, size_bytes, fct_ns, max_hops)| TraceEvent::FlowFinish {
                at_ns,
                flow,
                size_bytes,
                fct_ns,
                max_hops,
            },
        )
}

fn drop_event() -> impl Strategy<Value = TraceEvent> {
    (any::<u64>(), any::<u64>(), any::<u32>(), any::<u8>()).prop_map(|(at_ns, flow, node, hops)| {
        TraceEvent::Drop {
            at_ns,
            flow,
            node,
            hops,
        }
    })
}

fn reconfiguration() -> impl Strategy<Value = TraceEvent> {
    (any::<u64>(), any::<u64>())
        .prop_map(|(at_ns, slot)| TraceEvent::Reconfiguration { at_ns, slot })
}

fn fault() -> impl Strategy<Value = TraceEvent> {
    (
        (any::<u64>(), any::<u64>()),
        prop_oneof![Just("fail".to_string()), Just("restore".to_string())],
        prop_oneof![
            Just("node".to_string()),
            Just("link".to_string()),
            Just("link_bidir".to_string())
        ],
        (
            any::<u32>(),
            proptest::option::of(any::<u32>()),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((at_ns, slot), action, target, (a, b, failed_nodes, failed_links))| {
                TraceEvent::Fault {
                    at_ns,
                    slot,
                    action,
                    target,
                    a,
                    b,
                    failed_nodes,
                    failed_links,
                }
            },
        )
}

fn any_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        snapshot(),
        flow_start(),
        flow_finish(),
        drop_event(),
        reconfiguration(),
        fault(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any mixed sequence of events survives JSONL serialization.
    #[test]
    fn every_event_round_trips(events in proptest::collection::vec(any_event(), 1..16)) {
        let text = events
            .iter()
            .map(|e| serde_json::to_string(e).expect("serialize"))
            .collect::<Vec<_>>()
            .join("\n");
        let back = parse_jsonl(&text).expect("parse");
        prop_assert_eq!(back, events);
    }
}

/// One fixed instance of each variant, as a deterministic floor under
/// the property test.
#[test]
fn one_of_each_variant_round_trips() {
    let events = vec![
        TraceEvent::Snapshot(Snapshot {
            at_ns: 1_000,
            slot: 10,
            queued_cells: 3,
            inflight_cells: 2,
            injected_cells: 40,
            delivered_cells: 35,
            dropped_cells: 0,
            transmissions: 70,
            circuit_utilization: 0.875,
            delivery_fraction: 0.5,
            p50_cell_latency_ns: Some(511),
            p99_cell_latency_ns: None,
        }),
        TraceEvent::FlowStart {
            at_ns: 0,
            flow: 7,
            src: 1,
            dst: 5,
            size_bytes: 12_500,
        },
        TraceEvent::FlowFinish {
            at_ns: 2_000,
            flow: 7,
            size_bytes: 12_500,
            fct_ns: 2_000,
            max_hops: 3,
        },
        TraceEvent::Drop {
            at_ns: 1_500,
            flow: 8,
            node: 2,
            hops: 1,
        },
        TraceEvent::Reconfiguration {
            at_ns: 3_000,
            slot: 30,
        },
        TraceEvent::Fault {
            at_ns: 4_000,
            slot: 40,
            action: "fail".to_string(),
            target: "link".to_string(),
            a: 0,
            b: Some(1),
            failed_nodes: 0,
            failed_links: 1,
        },
    ];
    let text = events
        .iter()
        .map(|e| serde_json::to_string(e).expect("serialize"))
        .collect::<Vec<_>>()
        .join("\n");
    let back = parse_jsonl(&text).expect("parse");
    assert_eq!(back, events);
}
