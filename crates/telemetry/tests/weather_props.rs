//! Property coverage for the Space-Saving sketch against exact counts
//! on small universes: counts conserve total weight, every reported
//! count overestimates truth by at most its recorded error, errors stay
//! within the N/K bound, and every key heavier than N/K is present.

use proptest::prelude::*;
use sorn_telemetry::SpaceSaving;
use std::collections::HashMap;

proptest! {
    #[test]
    fn sketch_error_is_bounded_by_n_over_k(
        keys in proptest::collection::vec(0u64..16, 1..400),
        k in 1usize..12,
    ) {
        let mut sketch = SpaceSaving::new(k);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for &key in &keys {
            sketch.observe(key, 1);
            *exact.entry(key).or_default() += 1;
        }
        let n = keys.len() as u64;
        let bound = n / k as u64;
        let top = sketch.top();
        prop_assert!(top.len() <= k);
        // Space-Saving conserves total weight across its entries.
        let total: u64 = top.iter().map(|e| e.count).sum();
        prop_assert_eq!(total, n);
        for e in &top {
            let truth = exact.get(&e.key).copied().unwrap_or(0);
            // Counts only overestimate, by at most the recorded error,
            // and the error never exceeds N/K.
            prop_assert!(e.count >= truth);
            prop_assert!(e.count - truth <= e.error);
            prop_assert!(e.error <= bound);
        }
        // Any key with true weight above N/K cannot have been evicted.
        for (&key, &count) in &exact {
            if count > bound {
                prop_assert!(top.iter().any(|e| e.key == key));
            }
        }
    }

    #[test]
    fn weighted_observations_conserve_total_weight(
        obs in proptest::collection::vec((0u64..8, 1u64..50), 1..100),
        k in 1usize..8,
    ) {
        let mut sketch = SpaceSaving::new(k);
        let mut n = 0u64;
        for &(key, weight) in &obs {
            sketch.observe(key, weight);
            n += weight;
        }
        let total: u64 = sketch.top().iter().map(|e| e.count).sum();
        prop_assert_eq!(total, n);
        // The same bound holds for weighted streams.
        let bound = n / k as u64;
        for e in sketch.top() {
            prop_assert!(e.error <= bound);
        }
    }
}
