//! Probe hooks exercised against real engine runs.

use sorn_sim::{DirectRouter, Engine, Flow, FlowId, Nanos, SimConfig};
use sorn_telemetry::{
    parse_jsonl, read_jsonl, CountingProbe, IntervalSampler, JsonlTraceSink, MemorySink, Snapshot,
    TraceEvent,
};
use sorn_topology::builders::{round_robin, sorn_schedule, SornScheduleParams};
use sorn_topology::{CliqueMap, NodeId, Ratio};

fn flow(id: u64, src: u32, dst: u32, bytes: u64, at: Nanos) -> Flow {
    Flow {
        id: FlowId(id),
        src: NodeId(src),
        dst: NodeId(dst),
        size_bytes: bytes,
        arrival_ns: at,
    }
}

/// A deterministic run over a 2-clique SORN schedule fires every hook
/// the run exercises, with counts matching the engine's own metrics.
#[test]
fn counting_probe_matches_metrics_on_sorn_schedule() {
    let map = CliqueMap::contiguous(8, 2);
    let sched = sorn_schedule(&map, &SornScheduleParams::with_q(Ratio::integer(3))).unwrap();
    let router = DirectRouter;
    let mut eng = Engine::with_probe(SimConfig::default(), &sched, &router, CountingProbe::new());
    eng.add_flows([
        flow(1, 0, 3, 3 * 1250, 0),
        flow(2, 4, 7, 2 * 1250, 0),
        flow(3, 1, 5, 1250, 500),
    ])
    .unwrap();
    assert!(eng.run_until_drained(10_000).unwrap());
    let metrics = eng.metrics().clone();
    let probe = eng.finish();

    assert_eq!(probe.slots, metrics.slots);
    assert_eq!(probe.deliveries, metrics.delivered_cells);
    assert_eq!(probe.deliveries, 6);
    assert_eq!(probe.flow_starts, 3);
    assert_eq!(probe.flow_finishes, 3);
    assert_eq!(probe.drops, 0);
    assert_eq!(probe.reconfigurations, 0);
    assert_eq!(probe.run_ends, 1);
}

#[test]
fn drop_hook_fires_at_queue_cap() {
    let sched = round_robin(4).unwrap();
    let router = DirectRouter;
    let mut cfg = SimConfig::default();
    cfg.node_queue_cap = 2;
    let mut eng = Engine::with_probe(cfg, &sched, &router, CountingProbe::new());
    eng.add_flows([flow(1, 0, 1, 10 * 1250, 0)]).unwrap();
    assert!(eng.run_until_drained(1_000).unwrap());
    let dropped = eng.metrics().dropped_cells;
    let probe = eng.finish();
    assert!(dropped > 0);
    assert_eq!(probe.drops, dropped);
    // A flow with losses never finishes.
    assert_eq!(probe.flow_finishes, 0);
}

#[test]
fn reconfiguration_hook_fires_on_schedule_install() {
    let a = round_robin(4).unwrap();
    let b = round_robin(4).unwrap();
    let router = DirectRouter;
    let mut eng = Engine::with_probe(SimConfig::default(), &a, &router, CountingProbe::new());
    eng.run_slots(3).unwrap();
    eng.install_schedule(&b);
    eng.run_slots(3).unwrap();
    let probe = eng.finish();
    assert_eq!(probe.reconfigurations, 1);
    assert_eq!(probe.slots, 6);
}

/// Scripted fault events reach both the counting probe and the trace.
#[test]
fn fault_hook_fires_and_is_traced() {
    use sorn_sim::FaultPlan;
    let sched = round_robin(4).unwrap();
    let router = DirectRouter;
    let mut plan = FaultPlan::new();
    plan.link_outage(NodeId(0), NodeId(1), 300, 900);
    plan.node_outage(NodeId(2), 500, 700);

    let mut eng = Engine::with_probe(SimConfig::default(), &sched, &router, CountingProbe::new());
    eng.set_fault_plan(plan.clone());
    eng.run_slots(20).unwrap();
    let probe = eng.finish();
    assert_eq!(probe.faults, 4);

    let sampler = IntervalSampler::new(MemorySink::new(), 10_000);
    let mut eng = Engine::with_probe(SimConfig::default(), &sched, &router, sampler);
    eng.set_fault_plan(plan);
    eng.run_slots(20).unwrap();
    let sink = eng.finish().into_sink();
    let faults: Vec<&TraceEvent> = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Fault { .. }))
        .collect();
    assert_eq!(faults.len(), 4);
    if let TraceEvent::Fault {
        action,
        target,
        a,
        b,
        ..
    } = faults[0]
    {
        assert_eq!(action, "fail");
        assert_eq!(target, "link");
        assert_eq!((*a, *b), (0, Some(1)));
    } else {
        unreachable!();
    }
    // Trace times are monotone and the fail precedes its restore.
    for w in faults.windows(2) {
        assert!(w[1].at_ns() >= w[0].at_ns());
    }
}

/// The sampler's final snapshot must agree with the run's aggregate
/// metrics — the acceptance check for trace consistency.
#[test]
fn final_snapshot_matches_metrics_aggregate() {
    let sched = round_robin(4).unwrap();
    let router = DirectRouter;
    let sampler = IntervalSampler::new(MemorySink::new(), 500);
    let mut eng = Engine::with_probe(SimConfig::default(), &sched, &router, sampler);
    eng.add_flows([flow(1, 0, 1, 5 * 1250, 0), flow(2, 2, 3, 5 * 1250, 0)])
        .unwrap();
    assert!(eng.run_until_drained(10_000).unwrap());
    let metrics = eng.metrics().clone();
    let sink = eng.finish().into_sink();

    let snapshots: Vec<&Snapshot> = sink.events.iter().filter_map(|e| e.snapshot()).collect();
    assert!(snapshots.len() >= 2, "interval + final snapshots expected");
    let last = snapshots.last().unwrap();
    assert_eq!(last.delivered_cells, metrics.delivered_cells);
    assert_eq!(last.injected_cells, metrics.injected_cells);
    assert_eq!(last.transmissions, metrics.transmissions);
    assert_eq!(last.queued_cells, 0);
    assert_eq!(last.inflight_cells, 0);
    // Cumulative counters never decrease along the trace.
    for w in snapshots.windows(2) {
        assert!(w[1].delivered_cells >= w[0].delivered_cells);
        assert!(w[1].at_ns >= w[0].at_ns);
    }
    // Flow lifecycle events came through the sampler.
    let starts = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FlowStart { .. }))
        .count();
    let finishes = sink
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::FlowFinish { .. }))
        .count();
    assert_eq!(starts, 2);
    assert_eq!(finishes, 2);
}

/// Write a trace to disk, read it back, get the same events.
#[test]
fn jsonl_sink_round_trips() {
    let dir = std::env::temp_dir().join(format!("sorn-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let sched = round_robin(4).unwrap();
    let router = DirectRouter;
    let sink = JsonlTraceSink::create(&path).unwrap();
    let sampler = IntervalSampler::new(sink, 1_000);
    let mut eng = Engine::with_probe(SimConfig::default(), &sched, &router, sampler);
    eng.add_flows([flow(1, 0, 2, 4 * 1250, 0)]).unwrap();
    assert!(eng.run_until_drained(10_000).unwrap());
    let delivered = eng.metrics().delivered_cells;
    let lines = eng.finish().into_sink().finish().unwrap();
    assert!(lines >= 2);

    let events = read_jsonl(&path).unwrap();
    assert_eq!(events.len() as u64, lines);
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(parse_jsonl(&text).unwrap(), events);
    let last = events.last().unwrap().snapshot().expect("final snapshot");
    assert_eq!(last.delivered_cells, delivered);

    std::fs::remove_dir_all(&dir).ok();
}

/// Serde representation pin: the `event` tag names the variant.
#[test]
fn trace_event_serialization_shape() {
    let e = TraceEvent::Reconfiguration {
        at_ns: 700,
        slot: 7,
    };
    let json = serde_json::to_string(&e).unwrap();
    assert!(json.contains("\"event\":\"reconfiguration\""), "{json}");
    let back: TraceEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(back, e);
}
