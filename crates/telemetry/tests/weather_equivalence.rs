//! End-to-end determinism for the weather report: the text and JSON
//! renderings (and the headline gauges) are byte-identical at any
//! `engine_threads` count and across a mid-run checkpoint/restore —
//! the contract the CI equivalence jobs enforce on the binaries.

use sorn_sim::{DirectRouter, Engine, Flow, FlowId, SimConfig};
use sorn_telemetry::WeatherProbe;
use sorn_topology::builders::round_robin;
use sorn_topology::{CliqueMap, NodeId};

const N: usize = 16;
const CLIQUES: usize = 4;
const TOPK: usize = 8;
const MAX_SLOTS: u64 = 50_000;

/// A deterministic mixed workload: clique-local and cross-clique flows
/// with staggered arrivals, enough traffic to exercise the sketches,
/// the matrices, and the decimated timeline.
fn flows() -> Vec<Flow> {
    let mut flows = Vec::new();
    let mut id = 0u64;
    for s in 0..N as u32 {
        for off in [1u32, 5, 9] {
            id += 1;
            flows.push(Flow {
                id: FlowId(id),
                src: NodeId(s),
                dst: NodeId((s + off) % N as u32),
                size_bytes: 1250 * (1 + u64::from(s) % 4),
                arrival_ns: 100 * u64::from(s),
            });
        }
    }
    flows
}

fn probe() -> WeatherProbe {
    WeatherProbe::new(CliqueMap::contiguous(N, CLIQUES), TOPK)
}

/// Runs the workload to drain and returns every deterministic rendering.
fn run(threads: usize) -> (String, String, String) {
    let schedule = round_robin(N).unwrap();
    let router = DirectRouter;
    let cfg = SimConfig {
        engine_threads: threads,
        ..SimConfig::default()
    };
    let mut eng = Engine::with_probe(cfg, &schedule, &router, probe());
    eng.add_flows(flows()).unwrap();
    assert!(eng.run_until_drained(MAX_SLOTS).unwrap());
    let w = eng.finish();
    (
        w.render_txt("equiv"),
        w.render_json("equiv"),
        w.headline_gauges(),
    )
}

#[test]
fn reports_are_byte_identical_across_engine_threads() {
    let baseline = run(1);
    for threads in 2..=4 {
        assert_eq!(run(threads), baseline, "engine_threads={threads}");
    }
}

#[test]
fn reports_survive_checkpoint_restore_byte_identically() {
    let uninterrupted = run(1);
    let schedule = round_robin(N).unwrap();
    let router = DirectRouter;

    // Interrupt mid-run: checkpoint the engine with the weather state
    // as a sidecar blob, exactly as the binaries do.
    let mut eng = Engine::with_probe(SimConfig::default(), &schedule, &router, probe());
    eng.add_flows(flows()).unwrap();
    eng.run_slots(40).unwrap();
    let mut snap = eng.checkpoint();
    snap.attach_blob("weather", eng.probe().to_bytes());
    drop(eng);

    // Resume from the blob — once serially, once resharded — and the
    // finished report must match the uninterrupted run byte for byte.
    for threads in [1usize, 2] {
        let mut snap = snap.clone();
        snap.set_engine_threads(threads);
        let restored = WeatherProbe::from_bytes(
            snap.blob("weather").unwrap(),
            CliqueMap::contiguous(N, CLIQUES),
        )
        .unwrap();
        let mut eng = Engine::restore_with_probe(&snap, &schedule, &router, restored).unwrap();
        assert!(eng.run_until_drained(MAX_SLOTS).unwrap());
        let w = eng.finish();
        assert_eq!(
            (
                w.render_txt("equiv"),
                w.render_json("equiv"),
                w.headline_gauges()
            ),
            uninterrupted,
            "resumed at engine_threads={threads}"
        );
    }
}
