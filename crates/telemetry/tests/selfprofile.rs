//! The self-profiler's timing contract against a real engine run.
//!
//! The engine's phase spans partition `step()` into disjoint intervals,
//! so the sum of recorded phase time can never exceed the run's
//! wall-clock time — the property that makes per-phase percentages out
//! of a `BENCH_*.json` report meaningful.

use sorn_sim::{DirectRouter, Engine, Flow, FlowId, NoopProbe, Phase, SimConfig};
use sorn_telemetry::WallClockProfiler;
use sorn_topology::builders::round_robin;
use sorn_topology::NodeId;
use std::time::Instant;

fn flows(n: u32) -> Vec<Flow> {
    (0..n)
        .map(|i| Flow {
            id: FlowId(i as u64),
            src: NodeId(i),
            dst: NodeId((i + 1) % n),
            size_bytes: 8 * 1250,
            arrival_ns: 100 * i as u64,
        })
        .collect()
}

#[test]
fn phase_totals_never_exceed_run_wall_clock() {
    let schedule = round_robin(8).unwrap();
    let router = DirectRouter;
    let profiler = WallClockProfiler::new();

    let start = Instant::now();
    let mut eng = Engine::with_probe_and_profiler(
        SimConfig::default(),
        &schedule,
        &router,
        NoopProbe,
        profiler.clone(),
    );
    eng.add_flows(flows(8)).unwrap();
    let drained = eng.run_until_drained(100_000).unwrap();
    let wall_ns = start.elapsed().as_nanos() as u64;

    assert!(drained);
    let report = profiler.report();
    assert!(
        report.total_ns() <= wall_ns,
        "phase total {} ns exceeds wall clock {} ns",
        report.total_ns(),
        wall_ns
    );
    // The sum the report exposes is exactly the per-phase sum.
    let by_phase: u64 = Phase::ALL.iter().map(|p| report.phase(*p).total_ns).sum();
    assert_eq!(by_phase, report.total_ns());

    // The run exercised the expected phases: every slot transmits and
    // enqueues, every cell routes, every delivery is reclassified.
    assert!(report.phase(Phase::Transmit).calls > 0);
    assert!(report.phase(Phase::Enqueue).calls > 0);
    assert!(report.phase(Phase::Route).calls > 0);
    assert!(report.phase(Phase::Deliver).calls > 0);
    // No schedule swap and no fault plan in this run.
    assert_eq!(report.phase(Phase::Reconfigure).calls, 0);
    // Every delivered cell ended in exactly one Route-or-Deliver span.
    let eng_metrics_cells: u64 = report.phase(Phase::Deliver).calls;
    assert_eq!(eng_metrics_cells, 8 * 8); // 8 flows x 8 cells each
}

#[test]
fn shared_handle_reads_without_extracting_the_engine() {
    let schedule = round_robin(4).unwrap();
    let router = DirectRouter;
    let profiler = WallClockProfiler::new();
    let mut eng = Engine::with_probe_and_profiler(
        SimConfig::default(),
        &schedule,
        &router,
        NoopProbe,
        profiler.clone(),
    );
    eng.add_flows(flows(4)).unwrap();
    eng.run_slots(3).unwrap();
    // Mid-run read through the caller's clone of the handle.
    let mid = profiler.report();
    assert!(mid.phase(Phase::Transmit).calls >= 3);
    eng.run_until_drained(100_000).unwrap();
    let done = profiler.report();
    assert!(done.phase(Phase::Transmit).calls > mid.phase(Phase::Transmit).calls);
}
