//! Microbenchmark for `SpaceSaving::observe` hot paths.
//!
//! The sketch sits on the engine's transmit merge path, so its
//! per-observe cost bounds the `--weather` overhead. Three regimes:
//! a 512-key uniform stream (port-like: constant churn, all misses),
//! an effectively-all-distinct stream (link-like: worst-case churn),
//! and a 16-key stream into k = 32 (hit-heavy steady state).
//!
//! Run with `cargo run --release -p sorn-telemetry --example ssbench`.

use sorn_telemetry::SpaceSaving;
use std::time::Instant;

fn bench(name: &str, modulus: u64, shift: u32) {
    let n = 10_000_000u64;
    let mut sketch = SpaceSaving::new(32);
    let mut x = 12345u64;
    let t = Instant::now();
    for _ in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        sketch.observe((x >> shift) % modulus, 1);
    }
    println!(
        "{name:<18} {:6.1} ns/observe (top key {})",
        t.elapsed().as_nanos() as f64 / n as f64,
        sketch.top()[0].key
    );
}

fn main() {
    bench("port-like (512):", 512, 33);
    bench("link-like (all):", u64::MAX, 20);
    bench("hit-heavy (16):", 16, 33);
}
