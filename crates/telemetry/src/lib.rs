//! # sorn-telemetry
//!
//! Observability for the SORN simulator: concrete [`sorn_sim::Probe`]
//! implementations and a structured trace format.
//!
//! The simulation engine exposes instrumentation hooks (slot
//! boundaries, deliveries, drops, flow lifecycle, reconfigurations)
//! that default to a zero-cost no-op. This crate supplies the probes
//! that make those hooks useful:
//!
//! - [`TraceEvent`] / [`Snapshot`] — a serde event model for run
//!   traces, one JSON object per event;
//! - [`EventSink`], [`MemorySink`], [`JsonlTraceSink`] — where events
//!   go (an in-memory buffer for tests, a JSON-Lines file for tools);
//! - [`IntervalSampler`] — a probe that emits a [`Snapshot`] of queue
//!   depths, utilization, and delivery counters at a fixed simulated-
//!   time interval, and forwards discrete events as they happen;
//! - [`CountingProbe`] — counts hook invocations, for tests and smoke
//!   checks;
//! - [`WallClockProfiler`] / [`ProfileReport`] — the self-profiling
//!   backend for the engine's scoped phase timers (where the
//!   *simulator's* wall-clock goes, not the simulation's);
//! - [`MetricRegistry`] — named counters/gauges/histograms with
//!   Prometheus text export and a JSON snapshot;
//! - [`FlowTraceCollector`] — collects the engine's causal hop spans
//!   for sampled flows and exports Chrome `trace_event` JSON plus
//!   per-cell latency breakdowns (queueing vs transmission vs
//!   reconfiguration wait);
//! - [`FlightRecorder`] — an always-on bounded ring of recent anomalous
//!   events (drops, faults, stranded onsets, drop spikes) that dumps to
//!   JSON Lines when a watchdog fires;
//! - [`MetricsServer`] / [`LiveMetricsProbe`] — a std-only background
//!   HTTP listener serving `/metrics`, `/health`, `/progress`, and
//!   `/weather` from snapshots published at slot boundaries;
//! - [`WeatherProbe`] — bounded-memory "network weather": per-clique
//!   demand/goodput matrices, [`SpaceSaving`] heavy-hitter sketches for
//!   flows/links/ports, and an [`EpochSeries`] decimated timeline, with
//!   deterministic text/JSON run reports.
//!
//! ## Example
//!
//! ```
//! use sorn_sim::{Engine, SimConfig, Flow, FlowId, DirectRouter};
//! use sorn_telemetry::{IntervalSampler, MemorySink, TraceEvent};
//! use sorn_topology::{builders::round_robin, NodeId};
//!
//! let schedule = round_robin(4).unwrap();
//! let router = DirectRouter;
//! let sampler = IntervalSampler::new(MemorySink::new(), 1_000);
//! let mut engine = Engine::with_probe(SimConfig::default(), &schedule, &router, sampler);
//! engine.add_flows([Flow {
//!     id: FlowId(1),
//!     src: NodeId(0),
//!     dst: NodeId(1),
//!     size_bytes: 5000,
//!     arrival_ns: 0,
//! }]).unwrap();
//! engine.run_until_drained(1_000).unwrap();
//! let sink = engine.finish().into_sink();
//! assert!(matches!(sink.events.last(), Some(TraceEvent::Snapshot(_))));
//! ```

#![warn(missing_docs)]

mod counting;
mod event;
mod profiler;
mod recorder;
mod registry;
mod sampler;
mod serve;
mod sink;
mod trace;
mod weather;

pub use counting::CountingProbe;
pub use event::{Snapshot, TraceEvent};
pub use profiler::{PhaseSummary, ProfileReport, WallClockProfiler};
pub use recorder::{FlightRecorder, RecordedEvent, DEFAULT_CAPACITY, DEFAULT_DROP_SPIKE};
pub use registry::{HistogramMetric, MetricRegistry};
pub use sampler::IntervalSampler;
pub use serve::{LiveMetricsProbe, MetricsPublisher, MetricsServer};
pub use sink::{parse_jsonl, read_jsonl, EventSink, JsonlTraceSink, MemorySink};
pub use trace::{CellBreakdown, FlowTraceCollector};
pub use weather::{
    EpochSeries, SketchEntry, SpaceSaving, WeatherBucket, WeatherProbe, DEFAULT_SERIES_BUDGET,
    DEFAULT_TOPK,
};
