//! Causal flow tracing: collection, latency attribution, and Chrome
//! `trace_event` export.
//!
//! The engine emits [`HopEvent`]s for a deterministic sampled subset of
//! flows (see `SimConfig::trace_one_in`); [`FlowTraceCollector`] buffers
//! them in arrival order — which is the engine's canonical order, so the
//! buffer is byte-identical at any `engine_threads`. From the buffer it
//! derives:
//!
//! - per-cell latency attribution ([`CellBreakdown`]): how much of each
//!   traced cell's life was *reconfiguration wait* (the schedule-implied
//!   minimum until the chosen circuit came up), *queueing* (extra time
//!   in queue beyond that — contention), and *transmission*
//!   (slot + propagation per hop);
//! - a Chrome `trace_event` JSON document
//!   ([`FlowTraceCollector::chrome_trace_json`]) loadable in
//!   `chrome://tracing` / Perfetto, one process per flow, one track per
//!   cell;
//!
//! All serialization is hand-rolled integer formatting, so the exported
//! bytes are identical across platforms and runs.

use sorn_sim::{HopEvent, HopKind, Nanos, Probe, CIRCUIT_NEVER};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Latency attribution of one traced cell, summed over its hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellBreakdown {
    /// The flow the cell belongs to.
    pub flow: u64,
    /// Cell sequence number within the flow.
    pub seq: u64,
    /// Injection time.
    pub injected_ns: Nanos,
    /// Injection-to-delivery latency; `None` for cells still in flight
    /// or dropped when the run ended.
    pub latency_ns: Option<Nanos>,
    /// Time spent queued beyond the schedule-implied minimum
    /// (contention with other traffic).
    pub queue_ns: Nanos,
    /// Schedule-implied wait for chosen circuits to come up — the
    /// reconfiguration tax of the rotation.
    pub reconfig_wait_ns: Nanos,
    /// Time on the wire (delivery latency minus the two waits).
    pub transmit_ns: Nanos,
    /// Hops taken.
    pub hops: u8,
    /// True when the cell was dropped.
    pub dropped: bool,
}

/// A probe that buffers the hop events of traced flows.
///
/// `slot_ns` must match the simulation's `SimConfig::slot_ns`; it
/// converts the schedule's slot-denominated circuit waits into
/// nanoseconds during attribution.
#[derive(Debug, Clone, Default)]
pub struct FlowTraceCollector {
    slot_ns: Nanos,
    events: Vec<HopEvent>,
}

impl FlowTraceCollector {
    /// A collector for a run with the given slot length.
    pub fn new(slot_ns: Nanos) -> Self {
        FlowTraceCollector {
            slot_ns,
            events: Vec::new(),
        }
    }

    /// The buffered events, in the engine's canonical emission order.
    pub fn events(&self) -> &[HopEvent] {
        &self.events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One line per event in [`HopEvent::render`] form — the byte
    /// format the determinism tests golden-compare across thread
    /// counts.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    /// Serializes the collector (slot length + buffered events, in
    /// order) so a resumed process reproduces every rendering —
    /// `render_all`, breakdowns, Chrome JSON — byte-for-byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.events.len() * 40);
        out.extend_from_slice(&self.slot_ns.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u64).to_le_bytes());
        for ev in &self.events {
            out.extend_from_slice(&ev.flow.0.to_le_bytes());
            out.extend_from_slice(&ev.seq.to_le_bytes());
            out.extend_from_slice(&ev.node.0.to_le_bytes());
            out.extend_from_slice(&ev.at_ns.to_le_bytes());
            out.extend_from_slice(&ev.injected_ns.to_le_bytes());
            out.push(ev.hops);
            match ev.kind {
                HopKind::Enqueue {
                    next,
                    depth,
                    circuit_wait_slots,
                } => {
                    out.push(0);
                    match next {
                        Some(n) => {
                            out.push(1);
                            out.extend_from_slice(&n.0.to_le_bytes());
                        }
                        None => {
                            out.push(0);
                            out.extend_from_slice(&0u32.to_le_bytes());
                        }
                    }
                    out.extend_from_slice(&(depth as u64).to_le_bytes());
                    out.extend_from_slice(&circuit_wait_slots.to_le_bytes());
                }
                HopKind::Transmit { to, depth_after } => {
                    out.push(1);
                    out.extend_from_slice(&to.0.to_le_bytes());
                    out.extend_from_slice(&(depth_after as u64).to_le_bytes());
                }
                HopKind::Deliver { latency_ns } => {
                    out.push(2);
                    out.extend_from_slice(&latency_ns.to_le_bytes());
                }
                HopKind::Drop => out.push(3),
            }
        }
        out
    }

    /// Rebuilds a collector from [`FlowTraceCollector::to_bytes`]
    /// output. Returns a description of the problem on malformed input
    /// (never panics).
    pub fn from_bytes(bytes: &[u8]) -> Result<FlowTraceCollector, String> {
        fn u64_at(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
            let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| "trace blob truncated".to_string())?;
            let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8 bytes"));
            *pos = end;
            Ok(v)
        }
        fn u32_at(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
            let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| "trace blob truncated".to_string())?;
            let v = u32::from_le_bytes(bytes[*pos..end].try_into().expect("4 bytes"));
            *pos = end;
            Ok(v)
        }
        fn u8_at(bytes: &[u8], pos: &mut usize) -> Result<u8, String> {
            let b = *bytes
                .get(*pos)
                .ok_or_else(|| "trace blob truncated".to_string())?;
            *pos += 1;
            Ok(b)
        }
        let mut pos = 0usize;
        let slot_ns = u64_at(bytes, &mut pos)?;
        let count = u64_at(bytes, &mut pos)? as usize;
        if count > bytes.len().saturating_sub(pos) / 30 {
            return Err("trace blob event count exceeds the bytes present".to_string());
        }
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let flow = sorn_sim::FlowId(u64_at(bytes, &mut pos)?);
            let seq = u64_at(bytes, &mut pos)?;
            let node = sorn_topology::NodeId(u32_at(bytes, &mut pos)?);
            let at_ns = u64_at(bytes, &mut pos)?;
            let injected_ns = u64_at(bytes, &mut pos)?;
            let hops = u8_at(bytes, &mut pos)?;
            let kind = match u8_at(bytes, &mut pos)? {
                0 => {
                    let has_next = match u8_at(bytes, &mut pos)? {
                        0 => false,
                        1 => true,
                        v => return Err(format!("trace blob has bad option byte {v}")),
                    };
                    let next_raw = u32_at(bytes, &mut pos)?;
                    let depth = u64_at(bytes, &mut pos)? as usize;
                    let circuit_wait_slots = u32_at(bytes, &mut pos)?;
                    HopKind::Enqueue {
                        next: has_next.then_some(sorn_topology::NodeId(next_raw)),
                        depth,
                        circuit_wait_slots,
                    }
                }
                1 => HopKind::Transmit {
                    to: sorn_topology::NodeId(u32_at(bytes, &mut pos)?),
                    depth_after: u64_at(bytes, &mut pos)? as usize,
                },
                2 => HopKind::Deliver {
                    latency_ns: u64_at(bytes, &mut pos)?,
                },
                3 => HopKind::Drop,
                tag => return Err(format!("trace blob has unknown hop tag {tag}")),
            };
            events.push(HopEvent {
                flow,
                seq,
                node,
                at_ns,
                injected_ns,
                hops,
                kind,
            });
        }
        if pos != bytes.len() {
            return Err("trace blob has trailing bytes".to_string());
        }
        Ok(FlowTraceCollector { slot_ns, events })
    }

    /// Per-cell latency attribution, keyed `(flow, seq)` in ascending
    /// order.
    ///
    /// Per hop: the wall between enqueue and transmit is split into the
    /// schedule-implied minimum (`circuit_wait_slots × slot_ns`, capped
    /// by the actual wall — reconfiguration wait) and the remainder
    /// (queueing). A delivered cell's transmission time is its total
    /// latency minus both waits.
    pub fn cell_breakdowns(&self) -> Vec<CellBreakdown> {
        #[derive(Default)]
        struct Agg {
            injected_ns: Nanos,
            pending_enqueue: Option<(Nanos, u32)>,
            queue_ns: Nanos,
            reconfig_ns: Nanos,
            latency_ns: Option<Nanos>,
            hops: u8,
            dropped: bool,
        }
        let mut cells: BTreeMap<(u64, u64), Agg> = BTreeMap::new();
        for ev in &self.events {
            let agg = cells.entry((ev.flow.0, ev.seq)).or_default();
            agg.injected_ns = ev.injected_ns;
            agg.hops = agg.hops.max(ev.hops);
            match ev.kind {
                HopKind::Enqueue {
                    circuit_wait_slots, ..
                } => agg.pending_enqueue = Some((ev.at_ns, circuit_wait_slots)),
                HopKind::Transmit { .. } => {
                    if let Some((enq_ns, wait_slots)) = agg.pending_enqueue.take() {
                        let wall = ev.at_ns.saturating_sub(enq_ns);
                        let reconfig = if wait_slots == CIRCUIT_NEVER {
                            wall
                        } else {
                            (wait_slots as Nanos * self.slot_ns).min(wall)
                        };
                        agg.reconfig_ns += reconfig;
                        agg.queue_ns += wall - reconfig;
                    }
                }
                HopKind::Deliver { latency_ns } => agg.latency_ns = Some(latency_ns),
                HopKind::Drop => agg.dropped = true,
            }
        }
        cells
            .into_iter()
            .map(|((flow, seq), a)| {
                let transmit_ns = a
                    .latency_ns
                    .map(|l| l.saturating_sub(a.queue_ns + a.reconfig_ns))
                    .unwrap_or(0);
                CellBreakdown {
                    flow,
                    seq,
                    injected_ns: a.injected_ns,
                    latency_ns: a.latency_ns,
                    queue_ns: a.queue_ns,
                    reconfig_wait_ns: a.reconfig_ns,
                    transmit_ns,
                    hops: a.hops,
                    dropped: a.dropped,
                }
            })
            .collect()
    }

    /// Renders the buffered spans as a Chrome `trace_event` JSON
    /// document (load in `chrome://tracing` or Perfetto). One "process"
    /// per flow, one track per cell; queue waits are complete (`X`)
    /// events carrying depth and circuit-wait args, link traversals are
    /// `X` events spanning slot + propagation, deliveries and drops are
    /// instants. Byte-deterministic: timestamps are integer-formatted
    /// microseconds with fixed three-digit fractions.
    pub fn chrome_trace_json(&self, propagation_ns: Nanos) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        // Track the open enqueue per cell to close it at transmit:
        // (enqueue time, hop index, depth, circuit wait) per (flow, seq).
        type OpenEnqueue = (Nanos, usize, u32, Option<u32>);
        let mut pending: BTreeMap<(u64, u64), OpenEnqueue> = BTreeMap::new();
        for ev in &self.events {
            let key = (ev.flow.0, ev.seq);
            match ev.kind {
                HopKind::Enqueue {
                    next,
                    depth,
                    circuit_wait_slots,
                } => {
                    pending.insert(
                        key,
                        (ev.at_ns, depth, circuit_wait_slots, next.map(|n| n.0)),
                    );
                }
                HopKind::Transmit { to, depth_after } => {
                    if let Some((enq_ns, depth, wait, next)) = pending.remove(&key) {
                        let dur = ev.at_ns.saturating_sub(enq_ns);
                        push_event(&mut out, &mut first, &format!(
                            "{{\"name\":\"queue@n{}\",\"cat\":\"queue\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"depth\":{},\"circuit_wait_slots\":{},\"next\":{}}}}}",
                            ev.node.0,
                            us(enq_ns),
                            us(dur),
                            ev.flow.0,
                            ev.seq,
                            depth,
                            wait,
                            next.map_or("null".to_string(), |n| n.to_string()),
                        ));
                    }
                    push_event(&mut out, &mut first, &format!(
                        "{{\"name\":\"link n{}->n{}\",\"cat\":\"link\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"depth_after\":{},\"hop\":{}}}}}",
                        ev.node.0,
                        to.0,
                        us(ev.at_ns),
                        us(self.slot_ns + propagation_ns),
                        ev.flow.0,
                        ev.seq,
                        depth_after,
                        ev.hops,
                    ));
                }
                HopKind::Deliver { latency_ns } => {
                    push_event(&mut out, &mut first, &format!(
                        "{{\"name\":\"deliver\",\"cat\":\"cell\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"latency_ns\":{}}}}}",
                        us(ev.at_ns),
                        ev.flow.0,
                        ev.seq,
                        latency_ns,
                    ));
                }
                HopKind::Drop => {
                    push_event(&mut out, &mut first, &format!(
                        "{{\"name\":\"drop\",\"cat\":\"cell\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
                        us(ev.at_ns),
                        ev.flow.0,
                        ev.seq,
                    ));
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

/// Chrome trace timestamps are microseconds; keep nanosecond precision
/// with a fixed three-digit fraction so output is byte-deterministic.
fn us(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn push_event(out: &mut String, first: &mut bool, ev: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "{ev}");
}

impl Probe for FlowTraceCollector {
    fn on_hop(&mut self, event: &HopEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{FlowId, HopEvent, HopKind};
    use sorn_topology::NodeId;

    fn ev(seq: u64, node: u32, at: Nanos, kind: HopKind) -> HopEvent {
        HopEvent {
            flow: FlowId(1),
            seq,
            node: NodeId(node),
            at_ns: at,
            injected_ns: 0,
            hops: 0,
            kind,
        }
    }

    #[test]
    fn attribution_splits_wait_into_reconfig_and_queueing() {
        let mut c = FlowTraceCollector::new(100);
        // Enqueued at 0 with a 2-slot schedule wait, transmitted at 500:
        // 200 ns is unavoidable (reconfig), 300 ns is contention.
        c.on_hop(&ev(
            0,
            0,
            0,
            HopKind::Enqueue {
                next: Some(NodeId(1)),
                depth: 3,
                circuit_wait_slots: 2,
            },
        ));
        c.on_hop(&ev(
            0,
            0,
            500,
            HopKind::Transmit {
                to: NodeId(1),
                depth_after: 2,
            },
        ));
        c.on_hop(&ev(0, 1, 1100, HopKind::Deliver { latency_ns: 1100 }));
        let b = c.cell_breakdowns();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].reconfig_wait_ns, 200);
        assert_eq!(b[0].queue_ns, 300);
        assert_eq!(b[0].latency_ns, Some(1100));
        assert_eq!(b[0].transmit_ns, 600);
        assert!(!b[0].dropped);
    }

    #[test]
    fn never_scheduled_circuit_charges_everything_to_reconfig() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(
            0,
            0,
            0,
            HopKind::Enqueue {
                next: Some(NodeId(1)),
                depth: 1,
                circuit_wait_slots: sorn_sim::CIRCUIT_NEVER,
            },
        ));
        c.on_hop(&ev(
            0,
            0,
            900,
            HopKind::Transmit {
                to: NodeId(1),
                depth_after: 0,
            },
        ));
        let b = c.cell_breakdowns();
        assert_eq!(b[0].reconfig_wait_ns, 900);
        assert_eq!(b[0].queue_ns, 0);
    }

    #[test]
    fn chrome_trace_is_valid_shaped_json() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(
            0,
            0,
            0,
            HopKind::Enqueue {
                next: Some(NodeId(1)),
                depth: 1,
                circuit_wait_slots: 0,
            },
        ));
        c.on_hop(&ev(
            0,
            0,
            100,
            HopKind::Transmit {
                to: NodeId(1),
                depth_after: 0,
            },
        ));
        c.on_hop(&ev(0, 1, 700, HopKind::Deliver { latency_ns: 700 }));
        let json = c.chrome_trace_json(500);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"queue@n0\""));
        assert!(json.contains("\"name\":\"link n0->n1\""));
        assert!(json.contains("\"name\":\"deliver\""));
        // 100 ns -> "0.100" µs; braces balance.
        assert!(json.contains("\"ts\":0.100"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Byte-deterministic: a second render is identical.
        assert_eq!(json, c.chrome_trace_json(500));
    }

    #[test]
    fn render_all_is_one_line_per_event() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(0, 1, 700, HopKind::Deliver { latency_ns: 700 }));
        c.on_hop(&ev(1, 1, 800, HopKind::Drop));
        let text = c.render_all();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn byte_round_trip_reproduces_every_rendering() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(
            0,
            0,
            0,
            HopKind::Enqueue {
                next: Some(NodeId(1)),
                depth: 3,
                circuit_wait_slots: 2,
            },
        ));
        c.on_hop(&ev(
            0,
            0,
            500,
            HopKind::Transmit {
                to: NodeId(1),
                depth_after: 2,
            },
        ));
        c.on_hop(&ev(0, 1, 1100, HopKind::Deliver { latency_ns: 1100 }));
        c.on_hop(&ev(1, 0, 1200, HopKind::Drop));
        let bytes = c.to_bytes();
        let back = FlowTraceCollector::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.render_all(), c.render_all());
        assert_eq!(back.chrome_trace_json(500), c.chrome_trace_json(500));
        assert_eq!(back.cell_breakdowns(), c.cell_breakdowns());
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-stable");
    }

    #[test]
    fn trace_blob_truncations_never_panic() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(0, 2, 300, HopKind::Drop));
        let bytes = c.to_bytes();
        for len in 0..bytes.len() {
            assert!(FlowTraceCollector::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn dropped_cells_are_flagged() {
        let mut c = FlowTraceCollector::new(100);
        c.on_hop(&ev(0, 2, 300, HopKind::Drop));
        let b = c.cell_breakdowns();
        assert!(b[0].dropped);
        assert_eq!(b[0].latency_ns, None);
    }
}
