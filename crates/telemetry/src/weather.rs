//! Network "weather": bounded-memory, clique-granularity observability.
//!
//! Every other aggregate view in the repo grows with topology size —
//! flow traces are per-flow, the link matrix is dense `n x n`. This
//! module rolls engine events up to *clique* granularity and keeps
//! heavy-hitter detail through fixed-size streaming sketches. The
//! whole layer costs `O(cliques^2 + K)` memory plus two flat per-node
//! index/scratch tables, regardless of run length:
//!
//! - [`WeatherProbe`] — a [`Probe`] feeding per-clique-pair demand /
//!   goodput matrices, per-clique queue high-water marks, drop
//!   counters, and a reconfiguration timeline;
//! - [`SpaceSaving`] — the Metwally et al. top-K heavy-hitter sketch
//!   (flows, links, node ports), with deterministic tie-breaking so
//!   its state is a pure function of the canonical event stream and
//!   reports are byte-identical at any `engine_threads`;
//! - [`EpochSeries`] — an epoch-bucketed time-series with power-of-two
//!   decimation: when the fixed bucket budget fills, adjacent buckets
//!   merge and the epoch doubles, so a `10^9`-slot run still fits.
//!
//! The probe renders a self-contained text + JSON run report, exposes
//! headline gauges for `/metrics`, and serializes to a checkpoint
//! sidecar blob ([`WeatherProbe::to_bytes`]) so an interrupted-and-
//! resumed run produces the same report as an uninterrupted one.

use crate::serve::MetricsPublisher;
use sorn_sim::{Cell, Flow, FlowRecord, Nanos, Probe, SkipView, SlotView};
use sorn_topology::{CliqueMap, NodeId};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Default number of heavy-hitter slots per sketch (`--weather-topk`).
pub const DEFAULT_TOPK: usize = 32;

/// Default time-series bucket budget (power of two).
pub const DEFAULT_SERIES_BUDGET: usize = 128;

/// Most reconfiguration events kept verbatim in the timeline; later
/// ones only bump the total (reconfigurations are rare by design).
const RECONFIG_LOG_CAP: usize = 256;

/// Port-sketch flush cadence in slots. Per-transmit port counts land in
/// a dense per-node scratch (a single array add) and drain into the
/// sketch every this many slots, in node order, so the sketch sees one
/// weighted observe per active port per window instead of one per
/// transmit. Flushing also happens at run end, and the scratch is part
/// of the checkpoint blob, so reports never miss a count.
const PORT_FLUSH_SLOTS: u64 = 64;

/// One tracked key in a [`SpaceSaving`] sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SketchEntry {
    /// The tracked key (flow id, packed link, or node id).
    pub key: u64,
    /// Estimated count: an upper bound on the key's true weight.
    pub count: u64,
    /// Maximum overestimate: true weight is in `[count - error, count]`.
    pub error: u64,
}

/// Space-Saving top-K heavy-hitter sketch.
///
/// Keeps at most `k` `(key, count, error)` entries. A hit increments
/// the key's count; a miss on a full sketch evicts the minimum-count
/// entry — ties broken toward the lowest slot index, and the slot
/// order is part of the serialized state, so the state after any event
/// sequence is deterministic, including across checkpoint/restore —
/// and adopts its count as the new key's `error`. Standard guarantees:
/// `count` sums equal the total observed weight `N`, every
/// `error <= N / k`, and any key with true weight `> N / k` is present.
///
/// Layout is performance-critical: `observe` runs on the engine's
/// merge thread for every transmitted cell. Keys live in one
/// contiguous array (membership is a vectorizable equality scan, no
/// hashing), and each slot's count is packed as `count << shift |
/// slot`, so picking the eviction victim is a pure `min` reduction
/// over one u64 array with the victim's index in the low bits — no
/// index-tracking scan, which the compiler cannot vectorize.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    k: usize,
    /// Bits reserved for the slot index in `packed` (0 when `k == 1`).
    shift: u32,
    keys: Vec<u64>,
    /// `count << shift | slot_index` per slot.
    packed: Vec<u64>,
    errors: Vec<u64>,
}

impl SpaceSaving {
    /// A sketch tracking at most `k` keys.
    ///
    /// Counts saturate the packed representation at `2^(64 - ceil(log2
    /// k))`; with the default k = 32 that is `2^59`, far beyond any
    /// simulated event count.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sketch needs at least one slot");
        let shift = if k == 1 {
            0
        } else {
            64 - ((k - 1) as u64).leading_zeros()
        };
        SpaceSaving {
            k,
            shift,
            keys: Vec::with_capacity(k),
            packed: Vec::with_capacity(k),
            errors: Vec::with_capacity(k),
        }
    }

    /// The sketch's capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no key has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Records `weight` for `key`.
    #[inline]
    pub fn observe(&mut self, key: u64, weight: u64) {
        // Membership and index in one pure OR-reduction: the compare
        // selects `i + 1` via an all-ones mask and AND (compare + and +
        // or vectorize directly; a multiply would not — x86 has no fast
        // 64-bit vector multiply), and keys are distinct so at most one
        // term is nonzero. Keeping this scan and the eviction min-scan
        // as separate single-array loops matters: fusing them into one
        // two-array pass defeats the vectorizer.
        let mut acc = 0u64;
        for (i, &k) in self.keys.iter().enumerate() {
            acc |= ((k == key) as u64).wrapping_neg() & (i as u64 + 1);
        }
        if acc != 0 {
            self.packed[(acc - 1) as usize] += weight << self.shift;
            return;
        }
        if self.keys.len() < self.k {
            let slot = self.keys.len() as u64;
            self.keys.push(key);
            self.packed.push((weight << self.shift) | slot);
            self.errors.push(0);
            return;
        }
        // Evict the minimum: a pure min-reduction over the packed
        // array; the low bits of the winner are the victim's slot, and
        // the packing makes the count tie-break toward the lowest slot.
        let mut min = u64::MAX;
        for &p in &self.packed {
            min = min.min(p);
        }
        let m = (min & ((1u64 << self.shift) - 1)) as usize;
        let evicted = min >> self.shift;
        self.keys[m] = key;
        self.packed[m] = ((evicted + weight) << self.shift) | m as u64;
        self.errors[m] = evicted;
    }

    /// The tracked entries, heaviest first (count desc, then error asc,
    /// then key asc — a total order, so the listing is deterministic).
    pub fn top(&self) -> Vec<SketchEntry> {
        let mut out = self.raw_entries();
        out.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.error.cmp(&b.error))
                .then(a.key.cmp(&b.key))
        });
        out
    }

    /// Entries in internal slot order (the serialization order: slot
    /// order feeds the eviction tie-break, so checkpoints must carry
    /// it for a restored sketch to evolve identically).
    fn raw_entries(&self) -> Vec<SketchEntry> {
        (0..self.keys.len())
            .map(|i| SketchEntry {
                key: self.keys[i],
                count: self.packed[i] >> self.shift,
                error: self.errors[i],
            })
            .collect()
    }

    /// Rebuilds a sketch from `(key, count, error)` triples in slot
    /// order (checkpoint restore). Entries beyond `k`, duplicate keys,
    /// and counts too large for the packed layout are errors.
    fn from_entries(k: usize, entries: Vec<SketchEntry>) -> Result<Self, String> {
        if entries.len() > k {
            return Err(format!("sketch holds {} entries but k={k}", entries.len()));
        }
        let mut sorted: Vec<u64> = entries.iter().map(|e| e.key).collect();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(format!("duplicate sketch key {}", w[0]));
        }
        let mut sketch = SpaceSaving::new(k);
        for (i, e) in entries.iter().enumerate() {
            if e.count > u64::MAX >> sketch.shift {
                return Err(format!("implausible sketch count {}", e.count));
            }
            sketch.keys.push(e.key);
            sketch.packed.push((e.count << sketch.shift) | i as u64);
            sketch.errors.push(e.error);
        }
        Ok(sketch)
    }
}

/// One bucket of the decimated weather time-series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeatherBucket {
    /// First slot covered by this bucket.
    pub start_slot: u64,
    /// Slots accumulated so far (equals the epoch once closed).
    pub slots: u64,
    /// Cells delivered during the bucket.
    pub delivered: u64,
    /// Cells dropped during the bucket.
    pub dropped: u64,
    /// Cells transmitted during the bucket.
    pub transmitted: u64,
    /// Schedule reconfigurations during the bucket.
    pub reconfigs: u64,
    /// Highest end-of-slot total queue depth seen in the bucket.
    pub max_queued: u64,
}

impl WeatherBucket {
    fn absorb(&mut self, other: &WeatherBucket) {
        self.slots += other.slots;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.transmitted += other.transmitted;
        self.reconfigs += other.reconfigs;
        self.max_queued = self.max_queued.max(other.max_queued);
    }
}

/// Epoch-bucketed time-series with power-of-two decimation.
///
/// Buckets cover `epoch_slots` slots each. When the fixed `budget` is
/// reached, adjacent buckets merge pairwise and the epoch doubles, so
/// memory stays `O(budget)` for any run length while resolution decays
/// gracefully (a `10^9`-slot run lands at `~2^23` slots per bucket).
/// The state is a pure function of the per-slot sample stream, so it is
/// identical at any thread count and across checkpoint/restore.
#[derive(Debug, Clone)]
pub struct EpochSeries {
    budget: usize,
    epoch_slots: u64,
    buckets: Vec<WeatherBucket>,
    cur: WeatherBucket,
}

impl EpochSeries {
    /// A series holding at most `budget` closed buckets.
    ///
    /// # Panics
    /// Panics unless `budget` is a power of two and at least 2.
    pub fn new(budget: usize) -> Self {
        assert!(
            budget >= 2 && budget.is_power_of_two(),
            "series budget must be a power of two >= 2"
        );
        EpochSeries {
            budget,
            epoch_slots: 1,
            buckets: Vec::new(),
            cur: WeatherBucket::default(),
        }
    }

    /// Current slots-per-bucket (a power of two).
    pub fn epoch_slots(&self) -> u64 {
        self.epoch_slots
    }

    /// Folds one slot's deltas into the series.
    pub fn record_slot(
        &mut self,
        slot: u64,
        delivered: u64,
        dropped: u64,
        transmitted: u64,
        reconfigs: u64,
        queued: u64,
    ) {
        if self.cur.slots == 0 {
            self.cur.start_slot = slot;
        }
        self.cur.slots += 1;
        self.cur.delivered += delivered;
        self.cur.dropped += dropped;
        self.cur.transmitted += transmitted;
        self.cur.reconfigs += reconfigs;
        self.cur.max_queued = self.cur.max_queued.max(queued);
        if self.cur.slots == self.epoch_slots {
            self.buckets.push(self.cur);
            self.cur = WeatherBucket::default();
            if self.buckets.len() == self.budget {
                self.decimate();
            }
        }
    }

    /// Folds `count` consecutive all-zero slots starting at `slot` into
    /// the series in one pass — exactly what `count` calls to
    /// [`EpochSeries::record_slot`] with zero deltas would produce, but
    /// in `O(budget + log count)` bucket operations instead of
    /// `O(count)`: whole buckets fill by arithmetic, and each decimation
    /// doubles the epoch, so long spans converge after a few rounds.
    pub fn record_quiet_span(&mut self, mut slot: u64, mut count: u64) {
        while count > 0 {
            if self.cur.slots == 0 {
                self.cur.start_slot = slot;
            }
            let take = count.min(self.epoch_slots - self.cur.slots);
            self.cur.slots += take;
            slot += take;
            count -= take;
            if self.cur.slots == self.epoch_slots {
                self.buckets.push(self.cur);
                self.cur = WeatherBucket::default();
                if self.buckets.len() == self.budget {
                    self.decimate();
                }
            }
        }
    }

    /// Merges adjacent bucket pairs and doubles the epoch.
    fn decimate(&mut self) {
        let mut merged = Vec::with_capacity(self.budget / 2);
        for pair in self.buckets.chunks(2) {
            let mut b = pair[0];
            if let Some(second) = pair.get(1) {
                b.absorb(second);
            }
            merged.push(b);
        }
        self.buckets = merged;
        self.epoch_slots *= 2;
    }

    /// Closed buckets plus the in-progress one (if it covers any slot),
    /// oldest first.
    pub fn buckets(&self) -> Vec<WeatherBucket> {
        let mut out = self.buckets.clone();
        if self.cur.slots > 0 {
            out.push(self.cur);
        }
        out
    }
}

/// Cumulative engine counters as of the last recorded slot, used to
/// turn monotone metrics into per-slot deltas.
#[derive(Debug, Clone, Copy, Default)]
struct LastCounters {
    delivered: u64,
    dropped: u64,
    transmitted: u64,
    reconfigs: u64,
}

/// The weather probe: clique-granularity accumulators + heavy-hitter
/// sketches + a decimated timeline, all updated on the engine's merge
/// thread in canonical event order.
///
/// Attach it with the tuple combinator like any other probe. All
/// report-facing state is a pure function of the deterministic event
/// stream; the optional [`MetricsPublisher`] only controls *when* live
/// snapshots are pushed to `/weather`, never what a report contains.
#[derive(Debug)]
pub struct WeatherProbe {
    cliques: CliqueMap,
    topk: usize,
    /// `c x c` matrices indexed `src_clique * c + dst_clique`.
    demand_bytes: Vec<u64>,
    goodput_cells: Vec<u64>,
    /// Per-clique end-of-slot queue-depth high-water marks.
    queue_hwm: Vec<u64>,
    /// Per-clique dropped-cell counts (clique of the dropping node).
    clique_drops: Vec<u64>,
    flow_sketch: SpaceSaving,
    link_sketch: SpaceSaving,
    port_sketch: SpaceSaving,
    /// Exact per-node transmit counts not yet folded into
    /// `port_sketch`; drained every [`PORT_FLUSH_SLOTS`] slots in node
    /// order. Serialized, so a resumed run flushes identically.
    port_pending: Vec<u64>,
    series: EpochSeries,
    reconfig_log: Vec<(u64, Nanos)>,
    reconfig_total: u64,
    flows_started: u64,
    flows_finished: u64,
    max_stranded: u64,
    last: LastCounters,
    final_slot: u64,
    final_now_ns: Nanos,
    /// Scratch for the per-slot clique-depth roll-up (not serialized).
    depth_scratch: Vec<u64>,
    /// `node index -> clique index`, flattened from `cliques` so the
    /// per-slot roll-up is a plain zip (not serialized).
    clique_table: Vec<usize>,
    publisher: Option<MetricsPublisher>,
    min_publish_interval: Duration,
    last_publish: Option<Instant>,
}

/// Packs a directed link into a sketch key.
#[inline]
fn link_key(from: NodeId, to: NodeId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

impl WeatherProbe {
    /// A probe over `cliques`, tracking `topk` heavy hitters per sketch.
    ///
    /// # Panics
    /// Panics if `topk` is zero.
    pub fn new(cliques: CliqueMap, topk: usize) -> Self {
        let c = cliques.cliques();
        WeatherProbe {
            topk,
            demand_bytes: vec![0; c * c],
            goodput_cells: vec![0; c * c],
            queue_hwm: vec![0; c],
            clique_drops: vec![0; c],
            flow_sketch: SpaceSaving::new(topk),
            link_sketch: SpaceSaving::new(topk),
            port_sketch: SpaceSaving::new(topk),
            port_pending: vec![0; cliques.n()],
            series: EpochSeries::new(DEFAULT_SERIES_BUDGET),
            reconfig_log: Vec::new(),
            reconfig_total: 0,
            flows_started: 0,
            flows_finished: 0,
            max_stranded: 0,
            last: LastCounters::default(),
            final_slot: 0,
            final_now_ns: 0,
            depth_scratch: vec![0; c],
            clique_table: (0..cliques.n())
                .map(|i| cliques.clique_of(NodeId(i as u32)).index())
                .collect(),
            publisher: None,
            min_publish_interval: Duration::from_millis(100),
            last_publish: None,
            cliques,
        }
    }

    /// Attaches a live publisher: the probe then pushes `/weather` JSON
    /// and headline gauges at most once per 100 ms of wall time.
    pub fn with_publisher(mut self, publisher: MetricsPublisher) -> Self {
        self.publisher = Some(publisher);
        self
    }

    /// The sketch capacity this probe was built with.
    pub fn topk(&self) -> usize {
        self.topk
    }

    /// The clique map this probe aggregates over.
    pub fn cliques(&self) -> &CliqueMap {
        &self.cliques
    }

    #[inline]
    fn pair(&self, src: NodeId, dst: NodeId) -> usize {
        let c = self.cliques.cliques();
        self.cliques.clique_of(src).index() * c + self.cliques.clique_of(dst).index()
    }

    /// Drains the dense per-node transmit counts into the port sketch
    /// in node order. Batched weighted observes leave every
    /// Space-Saving guarantee intact (counts are conserved, error stays
    /// bounded by `N / K`); only the flush cadence is coarser than the
    /// event stream, so a *live* snapshot can lag port counts by up to
    /// [`PORT_FLUSH_SLOTS`] slots. Final reports never do.
    fn flush_ports(&mut self) {
        for (node, count) in self.port_pending.iter_mut().enumerate() {
            if *count > 0 {
                self.port_sketch.observe(node as u64, *count);
                *count = 0;
            }
        }
    }

    fn publish_live(&mut self, force: bool) {
        let Some(publisher) = &self.publisher else {
            return;
        };
        let due = force
            || self
                .last_publish
                .is_none_or(|t| t.elapsed() >= self.min_publish_interval);
        if !due {
            return;
        }
        self.last_publish = Some(Instant::now());
        publisher.publish_weather(self.render_json("live"), self.headline_gauges());
    }

    /// Renders the plain-text run report. Deterministic: depends only
    /// on the observed event stream and `label`.
    pub fn render_txt(&self, label: &str) -> String {
        let c = self.cliques.cliques();
        let mut out = String::new();
        let _ = writeln!(out, "network weather: {label}");
        let _ = writeln!(
            out,
            "  {} nodes in {c} cliques, top-{} sketches",
            self.cliques.n(),
            self.topk
        );
        let _ = writeln!(
            out,
            "  {} slots, {} ns simulated",
            self.final_slot, self.final_now_ns
        );
        let _ = writeln!(
            out,
            "  flows: {} started, {} finished",
            self.flows_started, self.flows_finished
        );
        let delivered: u64 = self.goodput_cells.iter().sum();
        let dropped: u64 = self.clique_drops.iter().sum();
        let _ = writeln!(
            out,
            "  cells: {delivered} delivered, {} transmitted, {dropped} dropped, max {} stranded",
            self.last.transmitted, self.max_stranded
        );
        out.push('\n');

        render_matrix(
            &mut out,
            "clique demand (bytes offered, src -> dst)",
            c,
            |i| self.demand_bytes[i],
        );
        render_matrix(
            &mut out,
            "clique goodput (cells delivered, src -> dst)",
            c,
            |i| self.goodput_cells[i],
        );

        let _ = writeln!(out, "clique queue high-water / drops");
        for k in 0..c {
            let _ = writeln!(
                out,
                "  c{k}: hwm {} cells, {} drops",
                self.queue_hwm[k], self.clique_drops[k]
            );
        }
        out.push('\n');

        render_sketch(
            &mut out,
            "top flows (cells delivered)",
            &self.flow_sketch,
            |key| format!("flow {key}"),
        );
        render_sketch(
            &mut out,
            "top links (cells transmitted)",
            &self.link_sketch,
            |key| format!("{} -> {}", key >> 32, key & 0xffff_ffff),
        );
        render_sketch(
            &mut out,
            "top ports (cells sent)",
            &self.port_sketch,
            |key| format!("node {key}"),
        );

        let _ = writeln!(out, "reconfigurations: {} total", self.reconfig_total);
        for (slot, now_ns) in &self.reconfig_log {
            let _ = writeln!(out, "  slot {slot} @ {now_ns} ns");
        }
        if self.reconfig_total as usize > self.reconfig_log.len() {
            let _ = writeln!(
                out,
                "  ... {} more not logged",
                self.reconfig_total as usize - self.reconfig_log.len()
            );
        }
        out.push('\n');

        let buckets = self.series.buckets();
        let _ = writeln!(
            out,
            "timeline ({} slots/bucket, {} buckets)",
            self.series.epoch_slots(),
            buckets.len()
        );
        let _ = writeln!(
            out,
            "  start_slot slots delivered dropped transmitted maxq reconfigs"
        );
        for b in &buckets {
            let _ = writeln!(
                out,
                "  {:>10} {:>5} {:>9} {:>7} {:>11} {:>4} {:>9}",
                b.start_slot,
                b.slots,
                b.delivered,
                b.dropped,
                b.transmitted,
                b.max_queued,
                b.reconfigs
            );
        }
        out
    }

    /// Renders the JSON run report (hand-rolled: integers only, stable
    /// field order, so the bytes are deterministic).
    pub fn render_json(&self, label: &str) -> String {
        let c = self.cliques.cliques();
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"scheme\":\"{}\",\"nodes\":{},\"cliques\":{c},\"topk\":{},\
             \"slots\":{},\"now_ns\":{},",
            json_escape(label),
            self.cliques.n(),
            self.topk,
            self.final_slot,
            self.final_now_ns
        );
        let delivered: u64 = self.goodput_cells.iter().sum();
        let dropped: u64 = self.clique_drops.iter().sum();
        let _ = write!(
            out,
            "\"flows\":{{\"started\":{},\"finished\":{}}},\
             \"cells\":{{\"delivered\":{delivered},\"transmitted\":{},\
             \"dropped\":{dropped},\"max_stranded\":{}}},",
            self.flows_started, self.flows_finished, self.last.transmitted, self.max_stranded
        );
        json_matrix(&mut out, "demand_bytes", c, &self.demand_bytes);
        json_matrix(&mut out, "goodput_cells", c, &self.goodput_cells);
        json_u64_array(&mut out, "clique_queue_hwm", &self.queue_hwm);
        json_u64_array(&mut out, "clique_drops", &self.clique_drops);

        out.push_str("\"top_flows\":[");
        for (i, e) in self.flow_sketch.top().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"flow\":{},\"count\":{},\"error\":{}}}",
                e.key, e.count, e.error
            );
        }
        out.push_str("],\"top_links\":[");
        for (i, e) in self.link_sketch.top().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"src\":{},\"dst\":{},\"count\":{},\"error\":{}}}",
                e.key >> 32,
                e.key & 0xffff_ffff,
                e.count,
                e.error
            );
        }
        out.push_str("],\"top_ports\":[");
        for (i, e) in self.port_sketch.top().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"count\":{},\"error\":{}}}",
                e.key, e.count, e.error
            );
        }
        let _ = write!(
            out,
            "],\"reconfigurations\":{{\"total\":{},\"events\":[",
            self.reconfig_total
        );
        for (i, (slot, now_ns)) in self.reconfig_log.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"slot\":{slot},\"now_ns\":{now_ns}}}");
        }
        let _ = write!(
            out,
            "]}},\"timeline\":{{\"epoch_slots\":{},\"buckets\":[",
            self.series.epoch_slots()
        );
        for (i, b) in self.series.buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"start_slot\":{},\"slots\":{},\"delivered\":{},\"dropped\":{},\
                 \"transmitted\":{},\"max_queued\":{},\"reconfigs\":{}}}",
                b.start_slot,
                b.slots,
                b.delivered,
                b.dropped,
                b.transmitted,
                b.max_queued,
                b.reconfigs
            );
        }
        out.push_str("]}}");
        out
    }

    /// Headline gauges in the Prometheus text exposition format, for
    /// merging into `/metrics` alongside the registry rendering.
    pub fn headline_gauges(&self) -> String {
        let delivered: u64 = self.goodput_cells.iter().sum();
        let dropped: u64 = self.clique_drops.iter().sum();
        let hot_pair = self.goodput_cells.iter().copied().max().unwrap_or(0);
        let hwm = self.queue_hwm.iter().copied().max().unwrap_or(0);
        let top_flow = self.flow_sketch.top().first().map_or(0, |e| e.count);
        let top_link = self.link_sketch.top().first().map_or(0, |e| e.count);
        let mut out = String::new();
        for (name, value) in [
            ("sorn_weather_delivered_cells", delivered),
            ("sorn_weather_dropped_cells", dropped),
            ("sorn_weather_hot_clique_pair_cells", hot_pair),
            ("sorn_weather_queue_hwm_cells", hwm),
            ("sorn_weather_reconfigurations_total", self.reconfig_total),
            ("sorn_weather_top_flow_cells", top_flow),
            ("sorn_weather_top_link_cells", top_link),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        out
    }

    /// Serializes the full deterministic state for a checkpoint sidecar
    /// blob. The publisher and wall-clock gate are not part of the
    /// state; reattach with [`WeatherProbe::with_publisher`] after
    /// [`WeatherProbe::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, 1); // format version
        put_u64(&mut out, self.cliques.n() as u64);
        put_u64(&mut out, self.cliques.cliques() as u64);
        put_u64(&mut out, self.topk as u64);
        put_u64(&mut out, self.flows_started);
        put_u64(&mut out, self.flows_finished);
        put_u64(&mut out, self.reconfig_total);
        put_u64(&mut out, self.max_stranded);
        put_u64(&mut out, self.last.delivered);
        put_u64(&mut out, self.last.dropped);
        put_u64(&mut out, self.last.transmitted);
        put_u64(&mut out, self.last.reconfigs);
        put_u64(&mut out, self.final_slot);
        put_u64(&mut out, self.final_now_ns);
        for m in [&self.demand_bytes, &self.goodput_cells] {
            for &v in m.iter() {
                put_u64(&mut out, v);
            }
        }
        for m in [&self.queue_hwm, &self.clique_drops] {
            for &v in m.iter() {
                put_u64(&mut out, v);
            }
        }
        for sketch in [&self.flow_sketch, &self.link_sketch, &self.port_sketch] {
            let entries = sketch.raw_entries();
            put_u64(&mut out, entries.len() as u64);
            for e in entries {
                put_u64(&mut out, e.key);
                put_u64(&mut out, e.count);
                put_u64(&mut out, e.error);
            }
        }
        put_u64(&mut out, self.series.budget as u64);
        put_u64(&mut out, self.series.epoch_slots);
        put_u64(&mut out, self.series.buckets.len() as u64);
        for b in self
            .series
            .buckets
            .iter()
            .chain(std::iter::once(&self.series.cur))
        {
            put_u64(&mut out, b.start_slot);
            put_u64(&mut out, b.slots);
            put_u64(&mut out, b.delivered);
            put_u64(&mut out, b.dropped);
            put_u64(&mut out, b.transmitted);
            put_u64(&mut out, b.reconfigs);
            put_u64(&mut out, b.max_queued);
        }
        put_u64(&mut out, self.reconfig_log.len() as u64);
        for (slot, now_ns) in &self.reconfig_log {
            put_u64(&mut out, *slot);
            put_u64(&mut out, *now_ns);
        }
        put_u64(&mut out, self.port_pending.len() as u64);
        for &v in &self.port_pending {
            put_u64(&mut out, v);
        }
        out
    }

    /// Rebuilds a probe from a checkpoint blob. `cliques` must describe
    /// the same topology the blob was captured over (validated by node
    /// and clique count). Never panics on corrupt input.
    pub fn from_bytes(bytes: &[u8], cliques: CliqueMap) -> Result<Self, String> {
        let mut pos = 0usize;
        let u32_at = |pos: &mut usize| -> Result<u32, String> {
            let end = pos
                .checked_add(4)
                .ok_or_else(|| "weather blob offset overflow".to_string())?;
            let s = bytes
                .get(*pos..end)
                .ok_or_else(|| format!("weather blob truncated at byte {pos}"))?;
            *pos = end;
            Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
        };
        let u64_at = |pos: &mut usize| -> Result<u64, String> {
            let end = pos
                .checked_add(8)
                .ok_or_else(|| "weather blob offset overflow".to_string())?;
            let s = bytes
                .get(*pos..end)
                .ok_or_else(|| format!("weather blob truncated at byte {pos}"))?;
            *pos = end;
            Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
        };

        let version = u32_at(&mut pos)?;
        if version != 1 {
            return Err(format!("unsupported weather blob version {version}"));
        }
        let n = u64_at(&mut pos)? as usize;
        let c = u64_at(&mut pos)? as usize;
        if n != cliques.n() || c != cliques.cliques() {
            return Err(format!(
                "weather blob is over {n} nodes / {c} cliques but the run has {} / {}",
                cliques.n(),
                cliques.cliques()
            ));
        }
        let topk = u64_at(&mut pos)? as usize;
        if topk == 0 || topk > 1 << 20 {
            return Err(format!("implausible weather top-k {topk}"));
        }
        let mut probe = WeatherProbe::new(cliques, topk);
        probe.flows_started = u64_at(&mut pos)?;
        probe.flows_finished = u64_at(&mut pos)?;
        probe.reconfig_total = u64_at(&mut pos)?;
        probe.max_stranded = u64_at(&mut pos)?;
        probe.last.delivered = u64_at(&mut pos)?;
        probe.last.dropped = u64_at(&mut pos)?;
        probe.last.transmitted = u64_at(&mut pos)?;
        probe.last.reconfigs = u64_at(&mut pos)?;
        probe.final_slot = u64_at(&mut pos)?;
        probe.final_now_ns = u64_at(&mut pos)?;
        for i in 0..c * c {
            probe.demand_bytes[i] = u64_at(&mut pos)?;
        }
        for i in 0..c * c {
            probe.goodput_cells[i] = u64_at(&mut pos)?;
        }
        for i in 0..c {
            probe.queue_hwm[i] = u64_at(&mut pos)?;
        }
        for i in 0..c {
            probe.clique_drops[i] = u64_at(&mut pos)?;
        }
        for sketch in [
            &mut probe.flow_sketch,
            &mut probe.link_sketch,
            &mut probe.port_sketch,
        ] {
            let n_entries = u64_at(&mut pos)? as usize;
            if n_entries > bytes.len().saturating_sub(pos) / 24 {
                return Err(format!("sketch claims {n_entries} entries beyond blob end"));
            }
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let key = u64_at(&mut pos)?;
                let count = u64_at(&mut pos)?;
                let error = u64_at(&mut pos)?;
                entries.push(SketchEntry { key, count, error });
            }
            *sketch = SpaceSaving::from_entries(topk, entries)?;
        }
        let budget = u64_at(&mut pos)? as usize;
        if !(2..=1 << 20).contains(&budget) || !budget.is_power_of_two() {
            return Err(format!("implausible series budget {budget}"));
        }
        let epoch_slots = u64_at(&mut pos)?;
        if epoch_slots == 0 || !epoch_slots.is_power_of_two() {
            return Err(format!("implausible epoch length {epoch_slots}"));
        }
        let bucket_count = u64_at(&mut pos)? as usize;
        if bucket_count >= budget || bucket_count > bytes.len().saturating_sub(pos) / 56 {
            return Err(format!(
                "series claims {bucket_count} buckets beyond budget or blob end"
            ));
        }
        let read_bucket = |pos: &mut usize| -> Result<WeatherBucket, String> {
            Ok(WeatherBucket {
                start_slot: u64_at(pos)?,
                slots: u64_at(pos)?,
                delivered: u64_at(pos)?,
                dropped: u64_at(pos)?,
                transmitted: u64_at(pos)?,
                reconfigs: u64_at(pos)?,
                max_queued: u64_at(pos)?,
            })
        };
        let mut series = EpochSeries::new(budget);
        series.epoch_slots = epoch_slots;
        for _ in 0..bucket_count {
            series.buckets.push(read_bucket(&mut pos)?);
        }
        series.cur = read_bucket(&mut pos)?;
        probe.series = series;
        let log_count = u64_at(&mut pos)? as usize;
        if log_count > RECONFIG_LOG_CAP {
            return Err(format!(
                "reconfig log claims {log_count} entries (cap {RECONFIG_LOG_CAP})"
            ));
        }
        for _ in 0..log_count {
            let slot = u64_at(&mut pos)?;
            let now_ns = u64_at(&mut pos)?;
            probe.reconfig_log.push((slot, now_ns));
        }
        let pending = u64_at(&mut pos)? as usize;
        if pending != n {
            return Err(format!(
                "port scratch is over {pending} nodes, expected {n}"
            ));
        }
        for v in probe.port_pending.iter_mut() {
            *v = u64_at(&mut pos)?;
        }
        if pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after weather blob",
                bytes.len() - pos
            ));
        }
        Ok(probe)
    }
}

impl Probe for WeatherProbe {
    fn on_flow_start(&mut self, flow: &Flow, _now_ns: Nanos) {
        let p = self.pair(flow.src, flow.dst);
        self.demand_bytes[p] += flow.size_bytes;
        self.flows_started += 1;
    }

    #[inline]
    fn on_delivery(&mut self, cell: &Cell, _latency_ns: Nanos, _now_ns: Nanos) {
        let p = self.pair(cell.src, cell.dst);
        self.goodput_cells[p] += 1;
        self.flow_sketch.observe(cell.flow.0, 1);
    }

    #[inline]
    fn on_transmit(&mut self, _cell: &Cell, from: NodeId, to: NodeId, _now_ns: Nanos) {
        self.link_sketch.observe(link_key(from, to), 1);
        self.port_pending[from.0 as usize] += 1;
    }

    fn on_drop(&mut self, _cell: &Cell, node: NodeId, _now_ns: Nanos) {
        self.clique_drops[self.cliques.clique_of(node).index()] += 1;
    }

    fn on_flow_finish(&mut self, _record: &FlowRecord, _now_ns: Nanos) {
        self.flows_finished += 1;
    }

    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        self.reconfig_total += 1;
        if self.reconfig_log.len() < RECONFIG_LOG_CAP {
            self.reconfig_log.push((slot, now_ns));
        }
    }

    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        self.final_slot = view.slot;
        self.final_now_ns = view.now_ns;
        let m = view.metrics;
        let delivered = m.delivered_cells.saturating_sub(self.last.delivered);
        let dropped = m.dropped_cells.saturating_sub(self.last.dropped);
        let transmitted = m.transmissions.saturating_sub(self.last.transmitted);
        let reconfigs = self.reconfig_total.saturating_sub(self.last.reconfigs);
        self.last = LastCounters {
            delivered: m.delivered_cells,
            dropped: m.dropped_cells,
            transmitted: m.transmissions,
            reconfigs: self.reconfig_total,
        };
        self.series.record_slot(
            view.slot,
            delivered,
            dropped,
            transmitted,
            reconfigs,
            view.total_queued as u64,
        );
        self.max_stranded = self.max_stranded.max(m.stranded_cells);
        if !view.queues.is_empty() {
            self.depth_scratch.iter_mut().for_each(|v| *v = 0);
            for (q, &clique) in view.queues.iter().zip(&self.clique_table) {
                self.depth_scratch[clique] += q.depth() as u64;
            }
            for (hwm, depth) in self.queue_hwm.iter_mut().zip(&self.depth_scratch) {
                *hwm = (*hwm).max(*depth);
            }
        }
        if view.slot.is_multiple_of(PORT_FLUSH_SLOTS) {
            self.flush_ports();
        }
        self.publish_live(false);
    }

    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        let end = &view.end;
        let first_slot = end.slot - view.skipped + 1;
        self.final_slot = end.slot;
        self.final_now_ns = end.now_ns;
        let m = end.metrics;
        // Engine counters are frozen across a quiet span, so only its
        // first slot can carry a delta (a probe attached mid-run); the
        // rest of the span is all-zero slots folded in closed form.
        let delivered = m.delivered_cells.saturating_sub(self.last.delivered);
        let dropped = m.dropped_cells.saturating_sub(self.last.dropped);
        let transmitted = m.transmissions.saturating_sub(self.last.transmitted);
        let reconfigs = self.reconfig_total.saturating_sub(self.last.reconfigs);
        self.last = LastCounters {
            delivered: m.delivered_cells,
            dropped: m.dropped_cells,
            transmitted: m.transmissions,
            reconfigs: self.reconfig_total,
        };
        self.series.record_slot(
            first_slot,
            delivered,
            dropped,
            transmitted,
            reconfigs,
            end.total_queued as u64,
        );
        self.series
            .record_quiet_span(first_slot + 1, view.skipped - 1);
        self.max_stranded = self.max_stranded.max(m.stranded_cells);
        // Queues are empty throughout a quiet span, so the per-clique
        // HWM roll-up is a no-op. One flush covers every multiple of
        // PORT_FLUSH_SLOTS inside the span: per-slot stepping would
        // flush at the first one and find nothing pending at the rest.
        if end.slot / PORT_FLUSH_SLOTS > (first_slot - 1) / PORT_FLUSH_SLOTS {
            self.flush_ports();
        }
        self.publish_live(false);
    }

    fn on_run_end(&mut self, view: &SlotView<'_>) {
        self.final_slot = view.slot;
        self.final_now_ns = view.now_ns;
        self.flush_ports();
        self.publish_live(true);
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_matrix(out: &mut String, name: &str, c: usize, m: &[u64]) {
    let _ = write!(out, "\"{name}\":[");
    for row in 0..c {
        if row > 0 {
            out.push(',');
        }
        out.push('[');
        for col in 0..c {
            if col > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", m[row * c + col]);
        }
        out.push(']');
    }
    out.push_str("],");
}

fn json_u64_array(out: &mut String, name: &str, values: &[u64]) {
    let _ = write!(out, "\"{name}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push_str("],");
}

fn render_matrix(out: &mut String, title: &str, c: usize, at: impl Fn(usize) -> u64) {
    let _ = writeln!(out, "{title}");
    let mut header = String::from("      ");
    for col in 0..c {
        let _ = write!(header, " {:>10}", format!("c{col}"));
    }
    let _ = writeln!(out, "{header}");
    for row in 0..c {
        let _ = write!(out, "  c{row:<4}");
        for col in 0..c {
            let _ = write!(out, " {:>10}", at(row * c + col));
        }
        out.push('\n');
    }
    out.push('\n');
}

fn render_sketch(out: &mut String, title: &str, sketch: &SpaceSaving, fmt: impl Fn(u64) -> String) {
    let _ = writeln!(out, "{title}");
    if sketch.is_empty() {
        let _ = writeln!(out, "  (none)");
    }
    for e in sketch.top() {
        let _ = writeln!(
            out,
            "  {:<16} {:>10} (err {})",
            fmt(e.key),
            e.count,
            e.error
        );
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::FlowId;

    #[test]
    fn sketch_tracks_exact_counts_below_capacity() {
        let mut s = SpaceSaving::new(4);
        for key in [1u64, 2, 1, 3, 1, 2] {
            s.observe(key, 1);
        }
        let top = s.top();
        assert_eq!(
            top[0],
            SketchEntry {
                key: 1,
                count: 3,
                error: 0
            }
        );
        assert_eq!(
            top[1],
            SketchEntry {
                key: 2,
                count: 2,
                error: 0
            }
        );
        assert_eq!(
            top[2],
            SketchEntry {
                key: 3,
                count: 1,
                error: 0
            }
        );
    }

    #[test]
    fn sketch_eviction_is_deterministic_and_bounded() {
        let mut s = SpaceSaving::new(2);
        s.observe(10, 1);
        s.observe(20, 1);
        // Miss on a full sketch: evicts key 10 (min count, lowest slot).
        s.observe(30, 1);
        let top = s.top();
        assert_eq!(top.len(), 2);
        assert_eq!(
            top[0],
            SketchEntry {
                key: 30,
                count: 2,
                error: 1
            }
        );
        assert_eq!(
            top[1],
            SketchEntry {
                key: 20,
                count: 1,
                error: 0
            }
        );
        // Counts sum to the total weight.
        assert_eq!(top.iter().map(|e| e.count).sum::<u64>(), 3);
    }

    #[test]
    fn series_decimates_to_fixed_budget() {
        let mut s = EpochSeries::new(4);
        for slot in 0..64 {
            s.record_slot(slot + 1, 1, 0, 2, 0, slot);
        }
        assert!(s.buckets().len() < 4 + 1);
        assert_eq!(s.epoch_slots(), 32);
        let total: u64 = s.buckets().iter().map(|b| b.delivered).sum();
        assert_eq!(total, 64);
        let slots: u64 = s.buckets().iter().map(|b| b.slots).sum();
        assert_eq!(slots, 64);
        // Max composes across merges.
        assert_eq!(s.buckets().last().unwrap().max_queued, 63);
    }

    fn sample_probe() -> WeatherProbe {
        let map = CliqueMap::contiguous(8, 2);
        let mut p = WeatherProbe::new(map, 3);
        p.on_flow_start(
            &Flow {
                id: FlowId(7),
                src: NodeId(0),
                dst: NodeId(5),
                size_bytes: 4000,
                arrival_ns: 0,
            },
            0,
        );
        let cell = Cell {
            flow: FlowId(7),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(5),
            injected_ns: 0,
            hops: 1,
            tag: 0,
        };
        p.on_transmit(&cell, NodeId(0), NodeId(5), 100);
        p.on_delivery(&cell, 600, 700);
        p.on_drop(&cell, NodeId(6), 700);
        p.on_reconfiguration(3, 300);
        p
    }

    #[test]
    fn byte_round_trip_reproduces_every_rendering() {
        let p = sample_probe();
        let map = CliqueMap::contiguous(8, 2);
        let q = WeatherProbe::from_bytes(&p.to_bytes(), map).unwrap();
        assert_eq!(p.render_txt("x"), q.render_txt("x"));
        assert_eq!(p.render_json("x"), q.render_json("x"));
        assert_eq!(p.headline_gauges(), q.headline_gauges());
        // Re-encode is byte-stable.
        assert_eq!(p.to_bytes(), q.to_bytes());
    }

    #[test]
    fn port_flush_conserves_counts_and_round_trips() {
        let map = CliqueMap::contiguous(8, 2);
        let mut p = WeatherProbe::new(map, 3);
        let cell = Cell {
            flow: FlowId(7),
            seq: 0,
            src: NodeId(0),
            dst: NodeId(5),
            injected_ns: 0,
            hops: 1,
            tag: 0,
        };
        for i in 0..8u32 {
            for _ in 0..=i {
                p.on_transmit(&cell, NodeId(i), NodeId(0), 0);
            }
        }
        // Pending counts survive a checkpoint round-trip taken before
        // any flush, and flushing both sides yields identical reports.
        let mut q = WeatherProbe::from_bytes(&p.to_bytes(), CliqueMap::contiguous(8, 2)).unwrap();
        p.flush_ports();
        q.flush_ports();
        assert_eq!(p.render_txt("x"), q.render_txt("x"));
        // Space-Saving conserves total weight: 1 + 2 + ... + 8.
        let total: u64 = p.port_sketch.top().iter().map(|e| e.count).sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn weather_blob_truncations_never_panic() {
        let p = sample_probe();
        let bytes = p.to_bytes();
        for len in 0..bytes.len() {
            let map = CliqueMap::contiguous(8, 2);
            assert!(
                WeatherProbe::from_bytes(&bytes[..len], map).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn mismatched_clique_map_is_rejected() {
        let p = sample_probe();
        let map = CliqueMap::contiguous(16, 4);
        assert!(WeatherProbe::from_bytes(&p.to_bytes(), map).is_err());
    }

    #[test]
    fn reports_aggregate_at_clique_granularity() {
        let p = sample_probe();
        let txt = p.render_txt("demo");
        assert!(txt.contains("network weather: demo"));
        assert!(txt.contains("8 nodes in 2 cliques"));
        assert!(txt.contains("flow 7"));
        assert!(txt.contains("0 -> 5"));
        let json = p.render_json("demo");
        assert!(json.contains("\"demand_bytes\":[[0,4000],[0,0]]"));
        assert!(json.contains("\"goodput_cells\":[[0,1],[0,0]]"));
        assert!(json.contains("\"clique_drops\":[0,1]"));
        assert!(json.contains("\"reconfigurations\":{\"total\":1"));
    }
}
