//! A probe that counts hook invocations.

use sorn_sim::{Cell, FaultView, Flow, FlowRecord, Nanos, Probe, SkipView, SlotView};
use sorn_topology::NodeId;

/// Counts every probe callback — the cheapest way to verify that the
/// engine fires its hooks (tests) or to sanity-check event volumes
/// before attaching a real trace sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingProbe {
    /// `on_slot_end` invocations.
    pub slots: u64,
    /// `on_delivery` invocations.
    pub deliveries: u64,
    /// `on_drop` invocations.
    pub drops: u64,
    /// `on_flow_start` invocations.
    pub flow_starts: u64,
    /// `on_flow_finish` invocations.
    pub flow_finishes: u64,
    /// `on_reconfiguration` invocations.
    pub reconfigurations: u64,
    /// `on_fault` invocations.
    pub faults: u64,
    /// `on_run_end` invocations.
    pub run_ends: u64,
    /// `on_slots_skipped` invocations (batched quiet spans).
    pub skip_spans: u64,
    /// Slots covered by those spans; `slots + skipped_slots` is the
    /// total simulated slots observed regardless of fast-forward.
    pub skipped_slots: u64,
}

impl CountingProbe {
    /// A probe with all counters at zero.
    pub fn new() -> Self {
        CountingProbe::default()
    }
}

impl Probe for CountingProbe {
    fn on_slot_end(&mut self, _view: &SlotView<'_>) {
        self.slots += 1;
    }
    fn on_delivery(&mut self, _cell: &Cell, _latency_ns: Nanos, _now_ns: Nanos) {
        self.deliveries += 1;
    }
    fn on_drop(&mut self, _cell: &Cell, _node: NodeId, _now_ns: Nanos) {
        self.drops += 1;
    }
    fn on_flow_start(&mut self, _flow: &Flow, _now_ns: Nanos) {
        self.flow_starts += 1;
    }
    fn on_flow_finish(&mut self, _record: &FlowRecord, _now_ns: Nanos) {
        self.flow_finishes += 1;
    }
    fn on_reconfiguration(&mut self, _slot: u64, _now_ns: Nanos) {
        self.reconfigurations += 1;
    }
    fn on_fault(&mut self, _view: &FaultView<'_>) {
        self.faults += 1;
    }
    fn on_run_end(&mut self, _view: &SlotView<'_>) {
        self.run_ends += 1;
    }
    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        self.skip_spans += 1;
        self.skipped_slots += view.skipped;
    }
}
