//! Wall-clock phase profiling: the concrete [`Profiler`] backend.
//!
//! [`WallClockProfiler`] accumulates the engine's scoped phase timers
//! (see `sorn_sim::Phase`) into per-phase call counts, total time, and
//! a log-bucketed latency distribution for p99. It is a cheap `Rc`
//! handle: clone one before handing it to the engine and read the
//! [`ProfileReport`] from your copy after the run — no need to pull
//! the profiler back out of the engine.

use sorn_sim::{LatencyHistogram, Nanos, Phase, Profiler};
use std::cell::RefCell;
use std::rc::Rc;

/// Accumulated timings for one engine phase.
#[derive(Debug, Clone, Default)]
struct PhaseStats {
    calls: u64,
    total_ns: u64,
    spans: LatencyHistogram,
}

/// A [`Profiler`] that accumulates real wall-clock phase timings.
///
/// Shared-handle semantics: clones observe the same accumulator, so
/// the engine's spans (which clone the profiler per span) and the
/// caller's copy all feed one report.
#[derive(Debug, Clone, Default)]
pub struct WallClockProfiler {
    stats: Rc<RefCell<[PhaseStats; Phase::COUNT]>>,
}

impl WallClockProfiler {
    /// A fresh profiler with all phases at zero.
    pub fn new() -> Self {
        WallClockProfiler::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn report(&self) -> ProfileReport {
        let stats = self.stats.borrow();
        ProfileReport {
            phases: Phase::ALL
                .iter()
                .map(|&phase| {
                    let s = &stats[phase.index()];
                    PhaseSummary {
                        phase,
                        calls: s.calls,
                        total_ns: s.total_ns,
                        mean_ns: if s.calls == 0 {
                            0.0
                        } else {
                            s.total_ns as f64 / s.calls as f64
                        },
                        p99_ns: s.spans.p99(),
                    }
                })
                .collect(),
        }
    }

    /// Wall-clock nanoseconds attributed to any phase so far.
    pub fn total_ns(&self) -> u64 {
        self.stats.borrow().iter().map(|s| s.total_ns).sum()
    }

    /// Resets every phase to zero (for back-to-back scenario runs
    /// sharing one profiler handle).
    pub fn reset(&self) {
        *self.stats.borrow_mut() = Default::default();
    }
}

impl Profiler for WallClockProfiler {
    const ENABLED: bool = true;

    fn record(&self, phase: Phase, nanos: u64) {
        let mut stats = self.stats.borrow_mut();
        let s = &mut stats[phase.index()];
        s.calls += 1;
        s.total_ns += nanos;
        s.spans.record(nanos);
    }
}

/// Per-phase summary line of a [`ProfileReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// The phase.
    pub phase: Phase,
    /// Spans recorded.
    pub calls: u64,
    /// Total wall-clock time in the phase.
    pub total_ns: u64,
    /// Mean span duration (0 when the phase never ran).
    pub mean_ns: f64,
    /// 99th-percentile span duration (log-bucket upper bound), `None`
    /// when the phase never ran.
    pub p99_ns: Option<Nanos>,
}

/// A snapshot of every phase's accumulated timings.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// One summary per [`Phase`], in [`Phase::ALL`] order.
    pub phases: Vec<PhaseSummary>,
}

impl ProfileReport {
    /// Wall-clock nanoseconds attributed to any phase.
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.total_ns).sum()
    }

    /// The summary for one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseSummary {
        &self.phases[phase.index()]
    }

    /// A compact human-readable table (one line per phase that ran).
    pub fn render(&self) -> String {
        let mut out =
            String::from("phase        calls        total_ms      mean_ns       p99_ns\n");
        for p in &self.phases {
            if p.calls == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:>10} {:>13.3} {:>12.1} {:>12}\n",
                p.phase.name(),
                p.calls,
                p.total_ns as f64 / 1e6,
                p.mean_ns,
                p.p99_ns.unwrap_or(0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_phase() {
        let p = WallClockProfiler::new();
        p.record(Phase::Route, 100);
        p.record(Phase::Route, 300);
        p.record(Phase::Transmit, 50);
        let r = p.report();
        assert_eq!(r.phase(Phase::Route).calls, 2);
        assert_eq!(r.phase(Phase::Route).total_ns, 400);
        assert!((r.phase(Phase::Route).mean_ns - 200.0).abs() < 1e-9);
        assert_eq!(r.phase(Phase::Transmit).calls, 1);
        assert_eq!(r.phase(Phase::Enqueue).calls, 0);
        assert_eq!(r.total_ns(), 450);
        assert_eq!(p.total_ns(), 450);
    }

    #[test]
    fn clones_share_the_accumulator() {
        let p = WallClockProfiler::new();
        let q = p.clone();
        q.record(Phase::Deliver, 42);
        assert_eq!(p.report().phase(Phase::Deliver).calls, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let p = WallClockProfiler::new();
        p.record(Phase::Route, 10);
        p.reset();
        assert_eq!(p.total_ns(), 0);
        assert_eq!(p.report().phase(Phase::Route).calls, 0);
    }

    #[test]
    fn render_skips_idle_phases() {
        let p = WallClockProfiler::new();
        p.record(Phase::Transmit, 1000);
        let table = p.report().render();
        assert!(table.contains("transmit"));
        assert!(!table.contains("reconfigure"));
    }
}
