//! Event sinks: where trace events go.

use crate::event::TraceEvent;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A destination for trace events.
///
/// Sinks are infallible at the call site so probes stay cheap on the
/// hot path; sinks that can fail (files) record the first error and
/// surface it when finished.
pub trait EventSink {
    /// Accepts one event.
    fn emit(&mut self, event: &TraceEvent);
}

/// An in-memory sink — the natural choice for tests and for analyses
/// that post-process a run in the same process.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Everything emitted, in order.
    pub events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A sink writing one JSON object per line (JSON Lines) to a file.
///
/// Lines are buffered; call [`JsonlTraceSink::finish`] to flush and
/// learn whether every write succeeded. Dropping the sink flushes on a
/// best-effort basis and warns on stderr when that flush fails or when
/// an emit error would otherwise go unreported.
#[derive(Debug)]
#[must_use = "call finish() to flush the trace and surface write errors"]
pub struct JsonlTraceSink {
    writer: BufWriter<File>,
    lines: u64,
    error: Option<io::Error>,
    finished: bool,
}

impl JsonlTraceSink {
    /// Creates (or truncates) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceSink {
            writer: BufWriter::new(File::create(path)?),
            lines: 0,
            error: None,
            finished: false,
        })
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes the file and returns the number of lines written, or the
    /// first error encountered while emitting.
    pub fn finish(mut self) -> io::Result<u64> {
        self.finished = true;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.lines)
    }
}

impl Drop for JsonlTraceSink {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        if let Some(e) = &self.error {
            eprintln!("sorn-telemetry: trace sink dropped with unreported write error: {e}");
        } else if let Err(e) = self.writer.flush() {
            eprintln!("sorn-telemetry: best-effort flush of dropped trace sink failed: {e}");
        }
    }
}

impl EventSink for JsonlTraceSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = match serde_json::to_string(event) {
            Ok(l) => l,
            Err(e) => {
                self.error = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                return;
            }
        };
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Parses a JSONL trace from a string; blank lines are skipped.
pub fn parse_jsonl(s: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Reads and parses a JSONL trace file.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<TraceEvent>> {
    let text = std::fs::read_to_string(path)?;
    parse_jsonl(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_without_finish_still_flushes() {
        let path =
            std::env::temp_dir().join(format!("sorn-sink-drop-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlTraceSink::create(&path).unwrap();
            for slot in 0..3 {
                sink.emit(&TraceEvent::Reconfiguration { at_ns: 0, slot });
            }
            assert_eq!(sink.lines(), 3);
            // Dropped here without finish(): the Drop impl flushes.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_reports_line_count() {
        let path =
            std::env::temp_dir().join(format!("sorn-sink-finish-{}.jsonl", std::process::id()));
        let mut sink = JsonlTraceSink::create(&path).unwrap();
        sink.emit(&TraceEvent::Reconfiguration { at_ns: 5, slot: 1 });
        assert_eq!(sink.finish().unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }
}
