//! Event sinks: where trace events go.

use crate::event::TraceEvent;
use std::fs::File;
use std::io::{self, Seek, SeekFrom, Write};
use std::path::Path;

/// A writer that can roll partially-written bytes back to a known-good
/// length — how [`JsonlTraceSink`] keeps torn lines out of trace files.
trait Rollback: Write {
    /// Discards everything past the first `len` bytes.
    fn rollback_to(&mut self, len: u64) -> io::Result<()>;
}

impl Rollback for File {
    fn rollback_to(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)?;
        self.seek(SeekFrom::Start(len)).map(|_| ())
    }
}

/// Buffered writes that only ever land on record boundaries.
///
/// Records accumulate in an in-memory buffer (each appended whole) and
/// reach the underlying writer in record-aligned batches. When a batch
/// write fails partway, the writer is rolled back to the last byte
/// known to end a complete record, so downstream readers never see a
/// torn record no matter where the failure landed.
#[derive(Debug)]
struct RecordWriter<W: Rollback> {
    inner: W,
    /// Complete records not yet handed to `inner`.
    buf: Vec<u8>,
    /// Bytes of `inner` known to hold only complete records.
    durable: u64,
}

/// Flush the record buffer once it holds this much.
const FLUSH_BYTES: usize = 64 * 1024;

impl<W: Rollback> RecordWriter<W> {
    fn new(inner: W) -> Self {
        RecordWriter {
            inner,
            buf: Vec::with_capacity(FLUSH_BYTES),
            durable: 0,
        }
    }

    /// Buffers one complete record, flushing when the buffer is full.
    fn push_record(&mut self, record: &[u8]) -> io::Result<()> {
        self.buf.extend_from_slice(record);
        if self.buf.len() >= FLUSH_BYTES {
            self.flush_records()?;
        }
        Ok(())
    }

    /// Writes every buffered record through; on failure rolls the
    /// underlying writer back to the last record boundary and drops the
    /// batch (the error is surfaced to the caller).
    fn flush_records(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let result = self.inner.write_all(&self.buf);
        match result {
            Ok(()) => self.durable += self.buf.len() as u64,
            Err(_) => {
                // Best effort: a failing device may refuse the rollback
                // too, but then the original error is the story.
                let _ = self.inner.rollback_to(self.durable);
            }
        }
        self.buf.clear();
        result
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_records()?;
        self.inner.flush()
    }
}

/// A destination for trace events.
///
/// Sinks are infallible at the call site so probes stay cheap on the
/// hot path; sinks that can fail (files) record the first error and
/// surface it when finished.
pub trait EventSink {
    /// Accepts one event.
    fn emit(&mut self, event: &TraceEvent);
}

/// An in-memory sink — the natural choice for tests and for analyses
/// that post-process a run in the same process.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Everything emitted, in order.
    pub events: Vec<TraceEvent>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// A sink writing one JSON object per line (JSON Lines) to a file.
///
/// Lines are buffered; call [`JsonlTraceSink::finish`] to flush and
/// learn whether every write succeeded. Dropping the sink flushes on a
/// best-effort basis and warns on stderr when that flush fails or when
/// an emit error would otherwise go unreported.
///
/// **Torn-line guarantee:** each record (line plus its newline) is
/// buffered whole and written in record-aligned batches; if a write
/// fails partway, the file is truncated back to the end of the last
/// complete record. A reader therefore never sees a half-written JSON
/// line, even after a mid-run crash of the writing process's disk.
#[derive(Debug)]
#[must_use = "call finish() to flush the trace and surface write errors"]
pub struct JsonlTraceSink {
    writer: RecordWriter<File>,
    lines: u64,
    error: Option<io::Error>,
    finished: bool,
}

impl JsonlTraceSink {
    /// Creates (or truncates) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceSink {
            writer: RecordWriter::new(File::create(path)?),
            lines: 0,
            error: None,
            finished: false,
        })
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes the file and returns the number of lines written, or the
    /// first error encountered while emitting.
    pub fn finish(mut self) -> io::Result<u64> {
        self.finished = true;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.lines)
    }
}

impl Drop for JsonlTraceSink {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        if let Some(e) = &self.error {
            eprintln!("sorn-telemetry: trace sink dropped with unreported write error: {e}");
        } else if let Err(e) = self.writer.flush() {
            eprintln!("sorn-telemetry: best-effort flush of dropped trace sink failed: {e}");
        }
    }
}

impl EventSink for JsonlTraceSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = match serde_json::to_string(event) {
            Ok(l) => l,
            Err(e) => {
                self.error = Some(io::Error::new(io::ErrorKind::InvalidData, e));
                return;
            }
        };
        line.push('\n');
        if let Err(e) = self.writer.push_record(line.as_bytes()) {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Parses a JSONL trace from a string; blank lines are skipped.
pub fn parse_jsonl(s: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    s.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Reads and parses a JSONL trace file.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<TraceEvent>> {
    let text = std::fs::read_to_string(path)?;
    parse_jsonl(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_without_finish_still_flushes() {
        let path =
            std::env::temp_dir().join(format!("sorn-sink-drop-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlTraceSink::create(&path).unwrap();
            for slot in 0..3 {
                sink.emit(&TraceEvent::Reconfiguration { at_ns: 0, slot });
            }
            assert_eq!(sink.lines(), 3);
            // Dropped here without finish(): the Drop impl flushes.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }

    /// A Vec-backed writer that starts failing after `accept` bytes —
    /// and, like a real device, may accept a *partial* write first.
    struct LimitedWriter {
        bytes: Vec<u8>,
        accept: usize,
    }

    impl Write for LimitedWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let room = self.accept.saturating_sub(self.bytes.len());
            if room == 0 {
                return Err(io::Error::other("device full"));
            }
            let n = room.min(buf.len());
            self.bytes.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl Rollback for LimitedWriter {
        fn rollback_to(&mut self, len: u64) -> io::Result<()> {
            self.bytes.truncate(len as usize);
            Ok(())
        }
    }

    #[test]
    fn failed_batch_rolls_back_to_record_boundary() {
        // Device accepts 25 bytes; three 10-byte records flush as one
        // batch that tears mid-record 3.
        let mut w = RecordWriter::new(LimitedWriter {
            bytes: Vec::new(),
            accept: 25,
        });
        for i in 0..3 {
            w.push_record(format!("record-{i}\n").as_bytes()).unwrap();
        }
        assert!(w.flush().is_err());
        // Nothing partial survives: the failing batch rolled back whole.
        assert!(w.inner.bytes.is_empty());
        assert_eq!(w.durable, 0);
    }

    #[test]
    fn rollback_preserves_earlier_durable_records() {
        // First batch (2 records, 20 bytes) lands; the second tears.
        let mut w = RecordWriter::new(LimitedWriter {
            bytes: Vec::new(),
            accept: 25,
        });
        w.push_record(b"record-0-\n").unwrap();
        w.push_record(b"record-1-\n").unwrap();
        w.flush().unwrap();
        w.push_record(b"record-2-\n").unwrap();
        assert!(w.flush().is_err());
        // The device holds exactly the first two whole records.
        assert_eq!(w.inner.bytes, b"record-0-\nrecord-1-\n");
        assert_eq!(w.durable, 20);
        // Every surviving line is complete.
        assert!(w.inner.bytes.ends_with(b"\n"));
    }

    #[test]
    fn large_buffers_flush_on_record_boundaries() {
        let mut w = RecordWriter::new(LimitedWriter {
            bytes: Vec::new(),
            accept: usize::MAX,
        });
        let record = vec![b'x'; 1000];
        for _ in 0..100 {
            // 100 KiB total: crosses the internal flush threshold.
            let mut rec = record.clone();
            rec.push(b'\n');
            w.push_record(&rec).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(w.inner.bytes.len(), 100 * 1001);
        assert_eq!(w.durable, 100 * 1001);
    }

    #[test]
    fn file_rollback_truncates_to_requested_length() {
        let path =
            std::env::temp_dir().join(format!("sorn-sink-rollback-{}.bin", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(b"whole-line\ntorn-fragme").unwrap();
        f.rollback_to(11).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"whole-line\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn finish_reports_line_count() {
        let path =
            std::env::temp_dir().join(format!("sorn-sink-finish-{}.jsonl", std::process::id()));
        let mut sink = JsonlTraceSink::create(&path).unwrap();
        sink.emit(&TraceEvent::Reconfiguration { at_ns: 5, slot: 1 });
        assert_eq!(sink.finish().unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }
}
