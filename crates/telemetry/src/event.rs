//! The structured trace event model.

use serde::{Deserialize, Serialize};
use sorn_sim::{Nanos, SlotView};

/// A fixed-interval sample of aggregate engine state.
///
/// Counters are cumulative since the start of the run; instantaneous
/// state (`queued_cells`, `inflight_cells`) is as of the sample time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Simulated time of the sample.
    pub at_ns: Nanos,
    /// Slots completed so far.
    pub slot: u64,
    /// Cells sitting in node queues.
    pub queued_cells: u64,
    /// Cells propagating on circuits.
    pub inflight_cells: u64,
    /// Cells injected at sources (cumulative).
    pub injected_cells: u64,
    /// Cells delivered to destinations (cumulative).
    pub delivered_cells: u64,
    /// Cells dropped at full queues (cumulative).
    pub dropped_cells: u64,
    /// Circuit transmissions (cumulative).
    pub transmissions: u64,
    /// Fraction of scheduled circuit-slots used so far.
    pub circuit_utilization: f64,
    /// Fraction of transmissions that were final-hop deliveries.
    pub delivery_fraction: f64,
    /// Median cell delivery latency so far (log-bucket upper bound).
    pub p50_cell_latency_ns: Option<Nanos>,
    /// 99th-percentile cell delivery latency so far.
    pub p99_cell_latency_ns: Option<Nanos>,
}

impl Snapshot {
    /// Builds a snapshot from the engine's slot-boundary view.
    pub fn from_view(view: &SlotView<'_>) -> Self {
        let m = view.metrics;
        Snapshot {
            at_ns: view.now_ns,
            slot: view.slot,
            queued_cells: view.total_queued as u64,
            inflight_cells: view.inflight_cells as u64,
            injected_cells: m.injected_cells,
            delivered_cells: m.delivered_cells,
            dropped_cells: m.dropped_cells,
            transmissions: m.transmissions,
            circuit_utilization: m.circuit_utilization(),
            delivery_fraction: m.delivery_fraction(),
            p50_cell_latency_ns: m.cell_latency_p50_ns(),
            p99_cell_latency_ns: m.cell_latency_p99_ns(),
        }
    }
}

/// One record in a run trace.
///
/// Serializes as a JSON object whose `event` field names the variant
/// (`"snapshot"`, `"flow_start"`, ...), one object per JSONL line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum TraceEvent {
    /// A fixed-interval (or final) state sample.
    Snapshot(Snapshot),
    /// A flow arrived and began injecting.
    FlowStart {
        /// Simulated time of the arrival.
        at_ns: Nanos,
        /// Flow id.
        flow: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Transfer size in bytes.
        size_bytes: u64,
    },
    /// A flow's last cell was delivered.
    FlowFinish {
        /// Simulated time of the final delivery.
        at_ns: Nanos,
        /// Flow id.
        flow: u64,
        /// Transfer size in bytes.
        size_bytes: u64,
        /// Flow completion time.
        fct_ns: Nanos,
        /// Largest hop count any of the flow's cells took.
        max_hops: u8,
    },
    /// A cell was dropped at a full node queue.
    Drop {
        /// Simulated time of the drop.
        at_ns: Nanos,
        /// Owning flow id.
        flow: u64,
        /// Node whose queues were full.
        node: u32,
        /// Hops the cell had taken.
        hops: u8,
    },
    /// A new circuit schedule was installed mid-run.
    Reconfiguration {
        /// Simulated time of the swap.
        at_ns: Nanos,
        /// Slot at which the swap happened.
        slot: u64,
    },
    /// A scripted fault event (fail or restore) took effect.
    Fault {
        /// Simulated time the event was applied.
        at_ns: Nanos,
        /// Slot at whose boundary it was applied.
        slot: u64,
        /// `"fail"` or `"restore"`.
        action: String,
        /// `"node"`, `"link"`, or `"link_bidir"`.
        target: String,
        /// The failed node, or the link's source endpoint.
        a: u32,
        /// The link's destination endpoint (`None` for node targets).
        b: Option<u32>,
        /// Failed-node count after the event.
        failed_nodes: u64,
        /// Failed directed-link count after the event.
        failed_links: u64,
    },
}

impl TraceEvent {
    /// Builds a fault record from the engine's fault-hook view.
    pub fn from_fault(view: &sorn_sim::FaultView<'_>) -> Self {
        use sorn_sim::{FaultAction, FaultTarget};
        let action = match view.event.action {
            FaultAction::Fail => "fail",
            FaultAction::Restore => "restore",
        };
        let (target, a, b) = match view.event.target {
            FaultTarget::Node(v) => ("node", v.0, None),
            FaultTarget::Link(s, d) => ("link", s.0, Some(d.0)),
            FaultTarget::LinkBidir(s, d) => ("link_bidir", s.0, Some(d.0)),
        };
        TraceEvent::Fault {
            at_ns: view.now_ns,
            slot: view.slot,
            action: action.to_string(),
            target: target.to_string(),
            a,
            b,
            failed_nodes: view.failed_nodes as u64,
            failed_links: view.failed_links as u64,
        }
    }

    /// The snapshot payload, when this event is one.
    pub fn snapshot(&self) -> Option<&Snapshot> {
        match self {
            TraceEvent::Snapshot(s) => Some(s),
            _ => None,
        }
    }

    /// Simulated time of the event.
    pub fn at_ns(&self) -> Nanos {
        match self {
            TraceEvent::Snapshot(s) => s.at_ns,
            TraceEvent::FlowStart { at_ns, .. }
            | TraceEvent::FlowFinish { at_ns, .. }
            | TraceEvent::Drop { at_ns, .. }
            | TraceEvent::Reconfiguration { at_ns, .. }
            | TraceEvent::Fault { at_ns, .. } => *at_ns,
        }
    }
}
