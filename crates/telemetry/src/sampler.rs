//! The interval-sampling probe.

use crate::event::{Snapshot, TraceEvent};
use crate::sink::EventSink;
use sorn_sim::{Cell, FaultView, Flow, FlowRecord, Nanos, Probe, SlotView};
use sorn_topology::NodeId;

/// A probe that samples aggregate engine state every `interval_ns` of
/// simulated time and forwards discrete events (flow lifecycle, drops,
/// reconfigurations) to its sink as they happen.
///
/// At most one [`Snapshot`] is emitted per slot, at the first slot
/// boundary at or past each interval mark; a final snapshot is always
/// emitted from [`Probe::on_run_end`], so the last record of a trace
/// reflects the run's closing aggregate state.
#[derive(Debug)]
pub struct IntervalSampler<S: EventSink> {
    sink: S,
    interval_ns: Nanos,
    next_sample_ns: Nanos,
}

impl<S: EventSink> IntervalSampler<S> {
    /// Creates a sampler emitting into `sink` every `interval_ns`.
    ///
    /// # Panics
    /// Panics when `interval_ns` is 0.
    pub fn new(sink: S, interval_ns: Nanos) -> Self {
        assert!(interval_ns > 0, "sampling interval must be positive");
        IntervalSampler {
            sink,
            interval_ns,
            next_sample_ns: 0,
        }
    }

    /// Shared access to the sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the sampler, returning its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }
}

impl<S: EventSink> Probe for IntervalSampler<S> {
    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        if view.now_ns < self.next_sample_ns {
            return;
        }
        self.sink
            .emit(&TraceEvent::Snapshot(Snapshot::from_view(view)));
        // Skip any interval marks the slot jumped over: one sample per
        // slot, re-armed for the first mark strictly in the future.
        self.next_sample_ns = (view.now_ns / self.interval_ns + 1) * self.interval_ns;
    }

    // `on_slots_skipped` keeps its default (deliver the span's final
    // view): the engine bounds every fast-forward jump by
    // `next_boundary_ns`, so a batched span reaches at most one
    // interval mark, and only as its final slot — the sample that view
    // produces is exactly the one per-slot stepping would have emitted.

    fn next_boundary_ns(&self) -> Option<Nanos> {
        Some(self.next_sample_ns)
    }

    fn on_delivery(&mut self, _cell: &Cell, _latency_ns: Nanos, _now_ns: Nanos) {
        // Per-cell delivery events would dwarf the trace; deliveries are
        // visible through snapshot counters instead.
    }

    fn on_drop(&mut self, cell: &Cell, node: NodeId, now_ns: Nanos) {
        self.sink.emit(&TraceEvent::Drop {
            at_ns: now_ns,
            flow: cell.flow.0,
            node: node.0,
            hops: cell.hops,
        });
    }

    fn on_flow_start(&mut self, flow: &Flow, now_ns: Nanos) {
        self.sink.emit(&TraceEvent::FlowStart {
            at_ns: now_ns,
            flow: flow.id.0,
            src: flow.src.0,
            dst: flow.dst.0,
            size_bytes: flow.size_bytes,
        });
    }

    fn on_flow_finish(&mut self, record: &FlowRecord, now_ns: Nanos) {
        self.sink.emit(&TraceEvent::FlowFinish {
            at_ns: now_ns,
            flow: record.id.0,
            size_bytes: record.size_bytes,
            fct_ns: record.fct_ns(),
            max_hops: record.max_hops,
        });
    }

    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        self.sink.emit(&TraceEvent::Reconfiguration {
            at_ns: now_ns,
            slot,
        });
    }

    fn on_fault(&mut self, view: &FaultView<'_>) {
        self.sink.emit(&TraceEvent::from_fault(view));
    }

    fn on_run_end(&mut self, view: &SlotView<'_>) {
        self.sink
            .emit(&TraceEvent::Snapshot(Snapshot::from_view(view)));
    }
}
