//! The flight recorder: an always-on, fixed-size ring of recent engine
//! events.
//!
//! [`FlightRecorder`] is a [`Probe`] that keeps the last `capacity`
//! noteworthy events — drops, fault transitions, reconfigurations,
//! stranded-cell onsets, per-slot drop spikes — in a preallocated ring.
//! Memory is strictly bounded by the capacity regardless of run length
//! or network size, so it is safe to leave attached at `--scale512` and
//! beyond.
//!
//! Every recorded event is derived from *simulated* state (slots,
//! simulated time, deterministic counters), so the ring contents are
//! byte-identical at any `engine_threads`. The one wall-clock watchdog
//! — slow-slot detection — is opt-in
//! ([`FlightRecorder::with_slow_slot_watchdog`]) precisely because its
//! entries depend on host timing; leave it off when comparing dumps
//! across runs.
//!
//! When an anomaly watchdog fires (a drop spike, a stranded onset, or a
//! slow slot), the recorder arms itself; drivers check
//! [`FlightRecorder::anomaly`] at the end of a run and dump the ring
//! with [`FlightRecorder::dump_jsonl`]. If the process panics mid-run
//! while a dump path is configured, the recorder writes the dump from
//! its `Drop` impl — the black-box survives the crash.

use sorn_sim::{Cell, FaultAction, FaultTarget, FaultView, Nanos, Probe, SlotView};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Instant;

/// Default ring capacity: enough recent history to diagnose a spike
/// without meaningful memory cost (entries are small and fixed-size).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default drop-spike threshold: this many drops within one slot arms
/// the anomaly flag.
pub const DEFAULT_DROP_SPIKE: u64 = 64;

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedEvent {
    /// A cell was dropped (queue cap or router decision).
    Drop {
        /// Simulated time of the drop.
        at_ns: Nanos,
        /// Dropping node.
        node: u32,
        /// Flow of the dropped cell.
        flow: u64,
        /// Cell sequence number within the flow.
        seq: u64,
    },
    /// A scripted fault event took effect.
    Fault {
        /// Simulated time of the transition.
        at_ns: Nanos,
        /// Slot at whose boundary it applied.
        slot: u64,
        /// `"fail"` or `"restore"`.
        action: &'static str,
        /// Affected element, rendered (`"node 3"`, `"link 0->1"`).
        target: String,
        /// Failed-node count after the event.
        failed_nodes: usize,
        /// Failed directed-link count after the event.
        failed_links: usize,
    },
    /// A new circuit schedule was installed mid-run.
    Reconfiguration {
        /// Simulated time of the swap.
        at_ns: Nanos,
        /// Slot of the swap.
        slot: u64,
    },
    /// Queued cells became stranded (the count left zero).
    StrandedOnset {
        /// Simulated time at the end of the slot that stranded them.
        at_ns: Nanos,
        /// The slot.
        slot: u64,
        /// Stranded-cell count observed.
        stranded: u64,
    },
    /// More than the configured threshold of drops landed in one slot.
    DropSpike {
        /// Simulated time at the end of the spiking slot.
        at_ns: Nanos,
        /// The slot.
        slot: u64,
        /// Drops within that slot.
        drops: u64,
    },
    /// A slot took anomalously long in wall-clock terms (opt-in
    /// watchdog; host-dependent, never recorded by default).
    SlowSlot {
        /// The slot.
        slot: u64,
        /// Wall-clock microseconds the slot took.
        wall_us: u64,
    },
}

impl RecordedEvent {
    /// Hand-rolled single-line JSON rendering (no serde: determinism
    /// and zero dependencies on the dump path).
    pub fn to_json(&self) -> String {
        match self {
            RecordedEvent::Drop {
                at_ns,
                node,
                flow,
                seq,
            } => format!(
                "{{\"type\":\"drop\",\"at_ns\":{at_ns},\"node\":{node},\"flow\":{flow},\"seq\":{seq}}}"
            ),
            RecordedEvent::Fault {
                at_ns,
                slot,
                action,
                target,
                failed_nodes,
                failed_links,
            } => format!(
                "{{\"type\":\"fault\",\"at_ns\":{at_ns},\"slot\":{slot},\"action\":\"{action}\",\"target\":\"{target}\",\"failed_nodes\":{failed_nodes},\"failed_links\":{failed_links}}}"
            ),
            RecordedEvent::Reconfiguration { at_ns, slot } => {
                format!("{{\"type\":\"reconfiguration\",\"at_ns\":{at_ns},\"slot\":{slot}}}")
            }
            RecordedEvent::StrandedOnset {
                at_ns,
                slot,
                stranded,
            } => format!(
                "{{\"type\":\"stranded_onset\",\"at_ns\":{at_ns},\"slot\":{slot},\"stranded\":{stranded}}}"
            ),
            RecordedEvent::DropSpike { at_ns, slot, drops } => format!(
                "{{\"type\":\"drop_spike\",\"at_ns\":{at_ns},\"slot\":{slot},\"drops\":{drops}}}"
            ),
            RecordedEvent::SlowSlot { slot, wall_us } => {
                format!("{{\"type\":\"slow_slot\",\"slot\":{slot},\"wall_us\":{wall_us}}}")
            }
        }
    }
}

/// The always-on bounded event ring. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<RecordedEvent>,
    capacity: usize,
    /// Index of the next write (ring is full once `total >= capacity`).
    head: usize,
    /// Events recorded over the whole run (not just those retained).
    total: u64,
    drop_spike_threshold: u64,
    last_dropped: u64,
    last_stranded: u64,
    anomaly: Option<String>,
    /// Wall-clock watchdog: fire when a slot exceeds this many µs.
    slow_slot_us: Option<u64>,
    last_slot_end: Option<Instant>,
    /// Dump target for the panic-path `Drop` impl and
    /// [`FlightRecorder::dump_if_anomalous`].
    dump_path: Option<PathBuf>,
    dumped: bool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a positive capacity");
        FlightRecorder {
            ring: Vec::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            head: 0,
            total: 0,
            drop_spike_threshold: DEFAULT_DROP_SPIKE,
            last_dropped: 0,
            last_stranded: 0,
            anomaly: None,
            slow_slot_us: None,
            last_slot_end: None,
            dump_path: None,
            dumped: false,
        }
    }

    /// Sets the per-slot drop count that arms the anomaly flag.
    pub fn with_drop_spike_threshold(mut self, drops: u64) -> Self {
        self.drop_spike_threshold = drops;
        self
    }

    /// Enables the wall-clock slow-slot watchdog (host-dependent:
    /// entries and anomalies from it are NOT deterministic across
    /// machines or runs — leave off when byte-comparing dumps).
    pub fn with_slow_slot_watchdog(mut self, threshold_us: u64) -> Self {
        self.slow_slot_us = Some(threshold_us);
        self
    }

    /// Configures where [`FlightRecorder::dump_if_anomalous`] — and the
    /// panic-path `Drop` impl — write the JSONL dump.
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// Events recorded over the whole run (including ones the ring has
    /// since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first.
    pub fn entries(&self) -> Vec<&RecordedEvent> {
        if self.ring.len() < self.capacity {
            self.ring.iter().collect()
        } else {
            self.ring[self.head..]
                .iter()
                .chain(self.ring[..self.head].iter())
                .collect()
        }
    }

    /// The first anomaly the watchdogs saw, if any.
    pub fn anomaly(&self) -> Option<&str> {
        self.anomaly.as_deref()
    }

    /// Writes the ring as JSON Lines: a header object, then one event
    /// per line, oldest first.
    pub fn dump_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "{{\"type\":\"flight_recorder\",\"retained\":{},\"total\":{},\"capacity\":{}",
            self.ring.len(),
            self.total,
            self.capacity
        );
        match &self.anomaly {
            Some(a) => {
                let _ = write!(head, ",\"anomaly\":\"{}\"}}", escape(a));
            }
            None => head.push_str(",\"anomaly\":null}"),
        }
        writeln!(w, "{head}")?;
        for ev in self.entries() {
            writeln!(w, "{}", ev.to_json())?;
        }
        Ok(())
    }

    /// The dump as a string (tests, endpoints).
    pub fn dump_string(&self) -> String {
        let mut buf = Vec::new();
        self.dump_jsonl(&mut buf).expect("vec write cannot fail");
        String::from_utf8(buf).expect("dump is ASCII")
    }

    /// If an anomaly was flagged and a dump path is configured, writes
    /// the dump there. Returns the path written, if any.
    pub fn dump_if_anomalous(&mut self) -> io::Result<Option<PathBuf>> {
        if self.anomaly.is_none() || self.dumped {
            return Ok(None);
        }
        let Some(path) = self.dump_path.clone() else {
            return Ok(None);
        };
        let mut f = std::fs::File::create(&path)?;
        self.dump_jsonl(&mut f)?;
        f.flush()?;
        self.dumped = true;
        Ok(Some(path))
    }

    fn record(&mut self, ev: RecordedEvent) {
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn flag(&mut self, anomaly: String) {
        if self.anomaly.is_none() {
            self.anomaly = Some(anomaly);
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // The black-box survives a crash: on panic, write the dump if a
        // path was configured and nothing was written yet.
        if std::thread::panicking() && !self.dumped {
            if let Some(path) = self.dump_path.clone() {
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = self.dump_jsonl(&mut f);
                    eprintln!(
                        "sorn-telemetry: flight recorder dumped to {} (panic)",
                        path.display()
                    );
                }
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl Probe for FlightRecorder {
    fn on_drop(&mut self, cell: &Cell, node: sorn_topology::NodeId, now_ns: Nanos) {
        self.record(RecordedEvent::Drop {
            at_ns: now_ns,
            node: node.0,
            flow: cell.flow.0,
            seq: cell.seq,
        });
    }

    fn on_fault(&mut self, view: &FaultView<'_>) {
        let action = match view.event.action {
            FaultAction::Fail => "fail",
            FaultAction::Restore => "restore",
        };
        let target = match view.event.target {
            FaultTarget::Node(v) => format!("node {}", v.0),
            FaultTarget::Link(a, b) => format!("link {}->{}", a.0, b.0),
            FaultTarget::LinkBidir(a, b) => format!("link {}<->{}", a.0, b.0),
        };
        self.record(RecordedEvent::Fault {
            at_ns: view.now_ns,
            slot: view.slot,
            action,
            target,
            failed_nodes: view.failed_nodes,
            failed_links: view.failed_links,
        });
    }

    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        self.record(RecordedEvent::Reconfiguration {
            at_ns: now_ns,
            slot,
        });
    }

    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        let dropped = view.metrics.dropped_cells;
        let slot_drops = dropped.saturating_sub(self.last_dropped);
        self.last_dropped = dropped;
        if slot_drops >= self.drop_spike_threshold {
            self.record(RecordedEvent::DropSpike {
                at_ns: view.now_ns,
                slot: view.slot,
                drops: slot_drops,
            });
            self.flag(format!(
                "drop spike: {slot_drops} drops in slot {}",
                view.slot
            ));
        }
        let stranded = view.metrics.stranded_cells;
        if stranded > 0 && self.last_stranded == 0 {
            self.record(RecordedEvent::StrandedOnset {
                at_ns: view.now_ns,
                slot: view.slot,
                stranded,
            });
            self.flag(format!(
                "stranded onset: {stranded} cells in slot {}",
                view.slot
            ));
        }
        self.last_stranded = stranded;
        if let Some(threshold_us) = self.slow_slot_us {
            let now = Instant::now();
            if let Some(prev) = self.last_slot_end {
                let wall_us = now.duration_since(prev).as_micros() as u64;
                if wall_us >= threshold_us {
                    self.record(RecordedEvent::SlowSlot {
                        slot: view.slot,
                        wall_us,
                    });
                    self.flag(format!("slow slot: {wall_us} us at slot {}", view.slot));
                }
            }
            self.last_slot_end = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{FlowId, Metrics};
    use sorn_topology::NodeId;

    fn cell(flow: u64, seq: u64) -> Cell {
        Cell {
            flow: FlowId(flow),
            seq,
            src: NodeId(0),
            dst: NodeId(1),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    fn view(metrics: &Metrics, slot: u64) -> SlotView<'_> {
        SlotView {
            slot,
            now_ns: slot * 100,
            metrics,
            total_queued: 0,
            inflight_cells: 0,
            active_flows: 0,
        }
    }

    #[test]
    fn ring_is_strictly_bounded_and_keeps_the_newest() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.on_drop(&cell(i, 0), NodeId(0), i * 10);
        }
        assert_eq!(r.total_recorded(), 10);
        let entries = r.entries();
        assert_eq!(entries.len(), 4);
        // Oldest-first: drops of flows 6..10 remain.
        match entries[0] {
            RecordedEvent::Drop { flow, .. } => assert_eq!(*flow, 6),
            other => panic!("unexpected {other:?}"),
        }
        match entries[3] {
            RecordedEvent::Drop { flow, .. } => assert_eq!(*flow, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_spike_watchdog_flags_anomaly() {
        let mut r = FlightRecorder::new(16).with_drop_spike_threshold(3);
        let mut m = Metrics::default();
        m.dropped_cells = 2;
        r.on_slot_end(&view(&m, 1));
        assert!(r.anomaly().is_none());
        m.dropped_cells = 10; // 8 drops in slot 2
        r.on_slot_end(&view(&m, 2));
        assert!(r.anomaly().unwrap().contains("drop spike"));
        assert!(r.entries().iter().any(|e| matches!(
            e,
            RecordedEvent::DropSpike {
                drops: 8,
                slot: 2,
                ..
            }
        )));
    }

    #[test]
    fn stranded_onset_recorded_once_per_episode() {
        let mut r = FlightRecorder::new(16);
        let mut m = Metrics::default();
        m.stranded_cells = 5;
        r.on_slot_end(&view(&m, 1));
        r.on_slot_end(&view(&m, 2)); // still stranded: no new entry
        m.stranded_cells = 0;
        r.on_slot_end(&view(&m, 3));
        m.stranded_cells = 2;
        r.on_slot_end(&view(&m, 4)); // new episode
        let onsets = r
            .entries()
            .iter()
            .filter(|e| matches!(e, RecordedEvent::StrandedOnset { .. }))
            .count();
        assert_eq!(onsets, 2);
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let mut r = FlightRecorder::new(8);
        r.on_drop(&cell(3, 7), NodeId(2), 400);
        r.on_reconfiguration(5, 500);
        let dump = r.dump_string();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 events
        assert!(lines[0].contains("\"type\":\"flight_recorder\""));
        assert!(lines[0].contains("\"retained\":2"));
        assert!(lines[1].contains("\"type\":\"drop\""));
        assert!(lines[2].contains("\"type\":\"reconfiguration\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn dump_if_anomalous_writes_only_on_anomaly() {
        let path = std::env::temp_dir().join(format!("sorn-fr-{}.jsonl", std::process::id()));
        let mut r = FlightRecorder::new(8).with_dump_path(&path);
        assert_eq!(r.dump_if_anomalous().unwrap(), None);
        let mut m = Metrics::default();
        m.dropped_cells = DEFAULT_DROP_SPIKE + 1;
        r.on_slot_end(&view(&m, 1));
        assert_eq!(r.dump_if_anomalous().unwrap(), Some(path.clone()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("drop spike"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_entries_render_targets() {
        use sorn_sim::FaultEvent;
        let mut r = FlightRecorder::new(8);
        let event = FaultEvent {
            at_ns: 100,
            action: FaultAction::Fail,
            target: FaultTarget::Link(NodeId(0), NodeId(1)),
        };
        r.on_fault(&FaultView {
            event: &event,
            slot: 1,
            now_ns: 100,
            failed_nodes: 0,
            failed_links: 1,
        });
        let dump = r.dump_string();
        assert!(dump.contains("\"action\":\"fail\""));
        assert!(dump.contains("\"target\":\"link 0->1\""));
    }
}
