//! The flight recorder: an always-on, fixed-size ring of recent engine
//! events.
//!
//! [`FlightRecorder`] is a [`Probe`] that keeps the last `capacity`
//! noteworthy events — drops, fault transitions, reconfigurations,
//! stranded-cell onsets, per-slot drop spikes — in a preallocated ring.
//! Memory is strictly bounded by the capacity regardless of run length
//! or network size, so it is safe to leave attached at `--scale512` and
//! beyond.
//!
//! Every recorded event is derived from *simulated* state (slots,
//! simulated time, deterministic counters), so the ring contents are
//! byte-identical at any `engine_threads`. The one wall-clock watchdog
//! — slow-slot detection — is opt-in
//! ([`FlightRecorder::with_slow_slot_watchdog`]) precisely because its
//! entries depend on host timing; leave it off when comparing dumps
//! across runs.
//!
//! When an anomaly watchdog fires (a drop spike, a stranded onset, or a
//! slow slot), the recorder arms itself; drivers check
//! [`FlightRecorder::anomaly`] at the end of a run and dump the ring
//! with [`FlightRecorder::dump_jsonl`]. If the process panics mid-run
//! while a dump path is configured, the recorder writes the dump from
//! its `Drop` impl — the black-box survives the crash.

use sorn_sim::{Cell, FaultAction, FaultTarget, FaultView, Nanos, Probe, SkipView, SlotView};
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Instant;

/// Default ring capacity: enough recent history to diagnose a spike
/// without meaningful memory cost (entries are small and fixed-size).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default drop-spike threshold: this many drops within one slot arms
/// the anomaly flag.
pub const DEFAULT_DROP_SPIKE: u64 = 64;

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedEvent {
    /// A cell was dropped (queue cap or router decision).
    Drop {
        /// Simulated time of the drop.
        at_ns: Nanos,
        /// Dropping node.
        node: u32,
        /// Flow of the dropped cell.
        flow: u64,
        /// Cell sequence number within the flow.
        seq: u64,
    },
    /// A scripted fault event took effect.
    Fault {
        /// Simulated time of the transition.
        at_ns: Nanos,
        /// Slot at whose boundary it applied.
        slot: u64,
        /// `"fail"` or `"restore"`.
        action: &'static str,
        /// Affected element, rendered (`"node 3"`, `"link 0->1"`).
        target: String,
        /// Failed-node count after the event.
        failed_nodes: usize,
        /// Failed directed-link count after the event.
        failed_links: usize,
    },
    /// A new circuit schedule was installed mid-run.
    Reconfiguration {
        /// Simulated time of the swap.
        at_ns: Nanos,
        /// Slot of the swap.
        slot: u64,
    },
    /// Queued cells became stranded (the count left zero).
    StrandedOnset {
        /// Simulated time at the end of the slot that stranded them.
        at_ns: Nanos,
        /// The slot.
        slot: u64,
        /// Stranded-cell count observed.
        stranded: u64,
    },
    /// More than the configured threshold of drops landed in one slot.
    DropSpike {
        /// Simulated time at the end of the spiking slot.
        at_ns: Nanos,
        /// The slot.
        slot: u64,
        /// Drops within that slot.
        drops: u64,
    },
    /// A slot took anomalously long in wall-clock terms (opt-in
    /// watchdog; host-dependent, never recorded by default).
    SlowSlot {
        /// The slot.
        slot: u64,
        /// Wall-clock microseconds the slot took.
        wall_us: u64,
    },
    /// The run driver wrote a checkpoint generation.
    CheckpointWritten {
        /// Slot the checkpoint captured.
        slot: u64,
        /// Encoded size in bytes.
        bytes: u64,
        /// Generation file path.
        path: String,
    },
    /// The run driver restored state from a checkpoint.
    CheckpointRestored {
        /// Slot the run resumed from.
        slot: u64,
        /// Generation file path it loaded.
        path: String,
    },
    /// A corrupt checkpoint generation was skipped during load.
    CheckpointCorruptSkipped {
        /// The rejected file.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl RecordedEvent {
    /// Hand-rolled single-line JSON rendering (no serde: determinism
    /// and zero dependencies on the dump path).
    pub fn to_json(&self) -> String {
        match self {
            RecordedEvent::Drop {
                at_ns,
                node,
                flow,
                seq,
            } => format!(
                "{{\"type\":\"drop\",\"at_ns\":{at_ns},\"node\":{node},\"flow\":{flow},\"seq\":{seq}}}"
            ),
            RecordedEvent::Fault {
                at_ns,
                slot,
                action,
                target,
                failed_nodes,
                failed_links,
            } => format!(
                "{{\"type\":\"fault\",\"at_ns\":{at_ns},\"slot\":{slot},\"action\":\"{action}\",\"target\":\"{target}\",\"failed_nodes\":{failed_nodes},\"failed_links\":{failed_links}}}"
            ),
            RecordedEvent::Reconfiguration { at_ns, slot } => {
                format!("{{\"type\":\"reconfiguration\",\"at_ns\":{at_ns},\"slot\":{slot}}}")
            }
            RecordedEvent::StrandedOnset {
                at_ns,
                slot,
                stranded,
            } => format!(
                "{{\"type\":\"stranded_onset\",\"at_ns\":{at_ns},\"slot\":{slot},\"stranded\":{stranded}}}"
            ),
            RecordedEvent::DropSpike { at_ns, slot, drops } => format!(
                "{{\"type\":\"drop_spike\",\"at_ns\":{at_ns},\"slot\":{slot},\"drops\":{drops}}}"
            ),
            RecordedEvent::SlowSlot { slot, wall_us } => {
                format!("{{\"type\":\"slow_slot\",\"slot\":{slot},\"wall_us\":{wall_us}}}")
            }
            RecordedEvent::CheckpointWritten { slot, bytes, path } => format!(
                "{{\"type\":\"checkpoint_written\",\"slot\":{slot},\"bytes\":{bytes},\"path\":\"{}\"}}",
                escape(path)
            ),
            RecordedEvent::CheckpointRestored { slot, path } => format!(
                "{{\"type\":\"checkpoint_restored\",\"slot\":{slot},\"path\":\"{}\"}}",
                escape(path)
            ),
            RecordedEvent::CheckpointCorruptSkipped { path, reason } => format!(
                "{{\"type\":\"checkpoint_corrupt_skipped\",\"path\":\"{}\",\"reason\":\"{}\"}}",
                escape(path),
                escape(reason)
            ),
        }
    }
}

/// The always-on bounded event ring. See the module docs.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<RecordedEvent>,
    capacity: usize,
    /// Index of the next write (ring is full once `total >= capacity`).
    head: usize,
    /// Events recorded over the whole run (not just those retained).
    total: u64,
    drop_spike_threshold: u64,
    last_dropped: u64,
    last_stranded: u64,
    anomaly: Option<String>,
    /// Wall-clock watchdog: fire when a slot exceeds this many µs.
    slow_slot_us: Option<u64>,
    last_slot_end: Option<Instant>,
    /// Dump target for the panic-path `Drop` impl and
    /// [`FlightRecorder::dump_if_anomalous`].
    dump_path: Option<PathBuf>,
    dumped: bool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs a positive capacity");
        FlightRecorder {
            ring: Vec::with_capacity(capacity.min(DEFAULT_CAPACITY)),
            capacity,
            head: 0,
            total: 0,
            drop_spike_threshold: DEFAULT_DROP_SPIKE,
            last_dropped: 0,
            last_stranded: 0,
            anomaly: None,
            slow_slot_us: None,
            last_slot_end: None,
            dump_path: None,
            dumped: false,
        }
    }

    /// Sets the per-slot drop count that arms the anomaly flag.
    pub fn with_drop_spike_threshold(mut self, drops: u64) -> Self {
        self.drop_spike_threshold = drops;
        self
    }

    /// Enables the wall-clock slow-slot watchdog (host-dependent:
    /// entries and anomalies from it are NOT deterministic across
    /// machines or runs — leave off when byte-comparing dumps).
    pub fn with_slow_slot_watchdog(mut self, threshold_us: u64) -> Self {
        self.slow_slot_us = Some(threshold_us);
        self
    }

    /// Configures where [`FlightRecorder::dump_if_anomalous`] — and the
    /// panic-path `Drop` impl — write the JSONL dump.
    pub fn with_dump_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.dump_path = Some(path.into());
        self
    }

    /// Events recorded over the whole run (including ones the ring has
    /// since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// The retained events, oldest first.
    pub fn entries(&self) -> Vec<&RecordedEvent> {
        if self.ring.len() < self.capacity {
            self.ring.iter().collect()
        } else {
            self.ring[self.head..]
                .iter()
                .chain(self.ring[..self.head].iter())
                .collect()
        }
    }

    /// The first anomaly the watchdogs saw, if any.
    pub fn anomaly(&self) -> Option<&str> {
        self.anomaly.as_deref()
    }

    /// Writes the ring as JSON Lines: a header object, then one event
    /// per line, oldest first.
    pub fn dump_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let mut head = format!(
            "{{\"type\":\"flight_recorder\",\"retained\":{},\"total\":{},\"capacity\":{}",
            self.ring.len(),
            self.total,
            self.capacity
        );
        match &self.anomaly {
            Some(a) => {
                let _ = write!(head, ",\"anomaly\":\"{}\"}}", escape(a));
            }
            None => head.push_str(",\"anomaly\":null}"),
        }
        writeln!(w, "{head}")?;
        for ev in self.entries() {
            writeln!(w, "{}", ev.to_json())?;
        }
        Ok(())
    }

    /// The dump as a string (tests, endpoints).
    pub fn dump_string(&self) -> String {
        let mut buf = Vec::new();
        self.dump_jsonl(&mut buf).expect("vec write cannot fail");
        String::from_utf8(buf).expect("dump is ASCII")
    }

    /// If an anomaly was flagged and a dump path is configured, writes
    /// the dump there. Returns the path written, if any.
    pub fn dump_if_anomalous(&mut self) -> io::Result<Option<PathBuf>> {
        if self.anomaly.is_none() || self.dumped {
            return Ok(None);
        }
        let Some(path) = self.dump_path.clone() else {
            return Ok(None);
        };
        let mut f = std::fs::File::create(&path)?;
        self.dump_jsonl(&mut f)?;
        f.flush()?;
        self.dumped = true;
        Ok(Some(path))
    }

    /// Records that the run driver wrote a checkpoint generation.
    /// Driver-fired (never engine-fired), so engine-level restore
    /// equivalence is unaffected by checkpointing cadence.
    pub fn note_checkpoint_written(&mut self, slot: u64, bytes: u64, path: &str) {
        self.record(RecordedEvent::CheckpointWritten {
            slot,
            bytes,
            path: path.to_string(),
        });
    }

    /// Records that the run driver restored from a checkpoint.
    pub fn note_checkpoint_restored(&mut self, slot: u64, path: &str) {
        self.record(RecordedEvent::CheckpointRestored {
            slot,
            path: path.to_string(),
        });
    }

    /// Records that a corrupt checkpoint generation was skipped.
    pub fn note_checkpoint_corrupt_skipped(&mut self, path: &str, reason: &str) {
        self.record(RecordedEvent::CheckpointCorruptSkipped {
            path: path.to_string(),
            reason: reason.to_string(),
        });
    }

    /// Serializes the recorder's deterministic state (ring, counters,
    /// anomaly flag) so a resumed process reproduces the dump
    /// byte-for-byte. Wall-clock watchdog state and the dump path are
    /// not captured — the restoring driver reconfigures those.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.capacity as u64).to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.drop_spike_threshold.to_le_bytes());
        out.extend_from_slice(&self.last_dropped.to_le_bytes());
        out.extend_from_slice(&self.last_stranded.to_le_bytes());
        put_str(&mut out, self.anomaly.as_deref().unwrap_or(""));
        out.push(self.anomaly.is_some() as u8);
        let entries = self.entries();
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for ev in entries {
            encode_event(&mut out, ev);
        }
        out
    }

    /// Rebuilds a recorder from [`FlightRecorder::to_bytes`] output.
    /// Returns a description of the problem on malformed input (never
    /// panics).
    pub fn from_bytes(bytes: &[u8]) -> Result<FlightRecorder, String> {
        let mut pos = 0usize;
        fn u64_at(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
            let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| "recorder blob truncated".to_string())?;
            let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8 bytes"));
            *pos = end;
            Ok(v)
        }
        fn str_at(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
            let len = u64_at(bytes, pos)? as usize;
            let send = pos.checked_add(len).filter(|&e| e <= bytes.len());
            let send = send.ok_or_else(|| "recorder blob truncated".to_string())?;
            let s = String::from_utf8(bytes[*pos..send].to_vec())
                .map_err(|_| "recorder blob holds non-UTF-8 text".to_string())?;
            *pos = send;
            Ok(s)
        }
        let capacity = u64_at(bytes, &mut pos)? as usize;
        if capacity == 0 {
            return Err("recorder blob has zero capacity".to_string());
        }
        let total = u64_at(bytes, &mut pos)?;
        let drop_spike_threshold = u64_at(bytes, &mut pos)?;
        let last_dropped = u64_at(bytes, &mut pos)?;
        let last_stranded = u64_at(bytes, &mut pos)?;
        let anomaly_text = str_at(bytes, &mut pos)?;
        let has_anomaly = match bytes.get(pos) {
            Some(0) => false,
            Some(1) => true,
            _ => return Err("recorder blob has a bad anomaly flag".to_string()),
        };
        pos += 1;
        let count = u64_at(bytes, &mut pos)? as usize;
        if count > capacity {
            return Err("recorder blob retains more events than its capacity".to_string());
        }
        let mut ring = Vec::with_capacity(count.min(DEFAULT_CAPACITY));
        for _ in 0..count {
            ring.push(decode_event(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return Err("recorder blob has trailing bytes".to_string());
        }
        Ok(FlightRecorder {
            ring,
            capacity,
            // Oldest-first storage means index 0 is the next overwrite
            // target once full — exactly `record`'s convention.
            head: 0,
            total,
            drop_spike_threshold,
            last_dropped,
            last_stranded,
            anomaly: has_anomaly.then_some(anomaly_text),
            slow_slot_us: None,
            last_slot_end: None,
            dump_path: None,
            dumped: false,
        })
    }

    fn record(&mut self, ev: RecordedEvent) {
        self.total += 1;
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    fn flag(&mut self, anomaly: String) {
        if self.anomaly.is_none() {
            self.anomaly = Some(anomaly);
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        // The black-box survives a crash: on panic, write the dump if a
        // path was configured and nothing was written yet.
        if std::thread::panicking() && !self.dumped {
            if let Some(path) = self.dump_path.clone() {
                if let Ok(mut f) = std::fs::File::create(&path) {
                    let _ = self.dump_jsonl(&mut f);
                    eprintln!(
                        "sorn-telemetry: flight recorder dumped to {} (panic)",
                        path.display()
                    );
                }
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Binary event encoding behind [`FlightRecorder::to_bytes`]: a tag
/// byte, then the fields little-endian (strings length-prefixed).
fn encode_event(out: &mut Vec<u8>, ev: &RecordedEvent) {
    fn put_str(out: &mut Vec<u8>, s: &str) {
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }
    match ev {
        RecordedEvent::Drop {
            at_ns,
            node,
            flow,
            seq,
        } => {
            out.push(0);
            put_u64(out, *at_ns);
            put_u64(out, *node as u64);
            put_u64(out, *flow);
            put_u64(out, *seq);
        }
        RecordedEvent::Fault {
            at_ns,
            slot,
            action,
            target,
            failed_nodes,
            failed_links,
        } => {
            out.push(1);
            put_u64(out, *at_ns);
            put_u64(out, *slot);
            out.push((*action == "restore") as u8);
            put_str(out, target);
            put_u64(out, *failed_nodes as u64);
            put_u64(out, *failed_links as u64);
        }
        RecordedEvent::Reconfiguration { at_ns, slot } => {
            out.push(2);
            put_u64(out, *at_ns);
            put_u64(out, *slot);
        }
        RecordedEvent::StrandedOnset {
            at_ns,
            slot,
            stranded,
        } => {
            out.push(3);
            put_u64(out, *at_ns);
            put_u64(out, *slot);
            put_u64(out, *stranded);
        }
        RecordedEvent::DropSpike { at_ns, slot, drops } => {
            out.push(4);
            put_u64(out, *at_ns);
            put_u64(out, *slot);
            put_u64(out, *drops);
        }
        RecordedEvent::SlowSlot { slot, wall_us } => {
            out.push(5);
            put_u64(out, *slot);
            put_u64(out, *wall_us);
        }
        RecordedEvent::CheckpointWritten { slot, bytes, path } => {
            out.push(6);
            put_u64(out, *slot);
            put_u64(out, *bytes);
            put_str(out, path);
        }
        RecordedEvent::CheckpointRestored { slot, path } => {
            out.push(7);
            put_u64(out, *slot);
            put_str(out, path);
        }
        RecordedEvent::CheckpointCorruptSkipped { path, reason } => {
            out.push(8);
            put_str(out, path);
            put_str(out, reason);
        }
    }
}

/// Inverse of [`encode_event`]; bounds-checked, never panics.
fn decode_event(bytes: &[u8], pos: &mut usize) -> Result<RecordedEvent, String> {
    fn u64_at(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
        let end = pos
            .checked_add(8)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| "recorder blob truncated".to_string())?;
        let v = u64::from_le_bytes(bytes[*pos..end].try_into().expect("8 bytes"));
        *pos = end;
        Ok(v)
    }
    fn u8_at(bytes: &[u8], pos: &mut usize) -> Result<u8, String> {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| "recorder blob truncated".to_string())?;
        *pos += 1;
        Ok(b)
    }
    fn str_at(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        let len = u64_at(bytes, pos)? as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| "recorder blob truncated".to_string())?;
        let s = String::from_utf8(bytes[*pos..end].to_vec())
            .map_err(|_| "recorder blob holds non-UTF-8 text".to_string())?;
        *pos = end;
        Ok(s)
    }
    Ok(match u8_at(bytes, pos)? {
        0 => RecordedEvent::Drop {
            at_ns: u64_at(bytes, pos)?,
            node: u64_at(bytes, pos)? as u32,
            flow: u64_at(bytes, pos)?,
            seq: u64_at(bytes, pos)?,
        },
        1 => RecordedEvent::Fault {
            at_ns: u64_at(bytes, pos)?,
            slot: u64_at(bytes, pos)?,
            action: if u8_at(bytes, pos)? == 1 {
                "restore"
            } else {
                "fail"
            },
            target: str_at(bytes, pos)?,
            failed_nodes: u64_at(bytes, pos)? as usize,
            failed_links: u64_at(bytes, pos)? as usize,
        },
        2 => RecordedEvent::Reconfiguration {
            at_ns: u64_at(bytes, pos)?,
            slot: u64_at(bytes, pos)?,
        },
        3 => RecordedEvent::StrandedOnset {
            at_ns: u64_at(bytes, pos)?,
            slot: u64_at(bytes, pos)?,
            stranded: u64_at(bytes, pos)?,
        },
        4 => RecordedEvent::DropSpike {
            at_ns: u64_at(bytes, pos)?,
            slot: u64_at(bytes, pos)?,
            drops: u64_at(bytes, pos)?,
        },
        5 => RecordedEvent::SlowSlot {
            slot: u64_at(bytes, pos)?,
            wall_us: u64_at(bytes, pos)?,
        },
        6 => RecordedEvent::CheckpointWritten {
            slot: u64_at(bytes, pos)?,
            bytes: u64_at(bytes, pos)?,
            path: str_at(bytes, pos)?,
        },
        7 => RecordedEvent::CheckpointRestored {
            slot: u64_at(bytes, pos)?,
            path: str_at(bytes, pos)?,
        },
        8 => RecordedEvent::CheckpointCorruptSkipped {
            path: str_at(bytes, pos)?,
            reason: str_at(bytes, pos)?,
        },
        tag => return Err(format!("recorder blob has unknown event tag {tag}")),
    })
}

impl Probe for FlightRecorder {
    fn on_drop(&mut self, cell: &Cell, node: sorn_topology::NodeId, now_ns: Nanos) {
        self.record(RecordedEvent::Drop {
            at_ns: now_ns,
            node: node.0,
            flow: cell.flow.0,
            seq: cell.seq,
        });
    }

    fn on_fault(&mut self, view: &FaultView<'_>) {
        let action = match view.event.action {
            FaultAction::Fail => "fail",
            FaultAction::Restore => "restore",
        };
        let target = match view.event.target {
            FaultTarget::Node(v) => format!("node {}", v.0),
            FaultTarget::Link(a, b) => format!("link {}->{}", a.0, b.0),
            FaultTarget::LinkBidir(a, b) => format!("link {}<->{}", a.0, b.0),
        };
        self.record(RecordedEvent::Fault {
            at_ns: view.now_ns,
            slot: view.slot,
            action,
            target,
            failed_nodes: view.failed_nodes,
            failed_links: view.failed_links,
        });
    }

    fn on_reconfiguration(&mut self, slot: u64, now_ns: Nanos) {
        self.record(RecordedEvent::Reconfiguration {
            at_ns: now_ns,
            slot,
        });
    }

    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        let dropped = view.metrics.dropped_cells;
        let slot_drops = dropped.saturating_sub(self.last_dropped);
        self.last_dropped = dropped;
        if slot_drops >= self.drop_spike_threshold {
            self.record(RecordedEvent::DropSpike {
                at_ns: view.now_ns,
                slot: view.slot,
                drops: slot_drops,
            });
            self.flag(format!(
                "drop spike: {slot_drops} drops in slot {}",
                view.slot
            ));
        }
        let stranded = view.metrics.stranded_cells;
        if stranded > 0 && self.last_stranded == 0 {
            self.record(RecordedEvent::StrandedOnset {
                at_ns: view.now_ns,
                slot: view.slot,
                stranded,
            });
            self.flag(format!(
                "stranded onset: {stranded} cells in slot {}",
                view.slot
            ));
        }
        self.last_stranded = stranded;
        if let Some(threshold_us) = self.slow_slot_us {
            let now = Instant::now();
            if let Some(prev) = self.last_slot_end {
                let wall_us = now.duration_since(prev).as_micros() as u64;
                if wall_us >= threshold_us {
                    self.record(RecordedEvent::SlowSlot {
                        slot: view.slot,
                        wall_us,
                    });
                    self.flag(format!("slow slot: {wall_us} us at slot {}", view.slot));
                }
            }
            self.last_slot_end = Some(now);
        }
    }

    fn on_slots_skipped(&mut self, view: &SkipView<'_>) {
        let end = &view.end;
        let first_slot = end.slot - view.skipped + 1;
        let first_now = end.now_ns - (view.skipped - 1) * view.slot_ns;
        // Counters are frozen across a quiet span, so only its first
        // slot can carry a nonzero drop delta (a recorder attached
        // mid-run); every later slot's delta is zero.
        let dropped = end.metrics.dropped_cells;
        let slot_drops = dropped.saturating_sub(self.last_dropped);
        self.last_dropped = dropped;
        if slot_drops >= self.drop_spike_threshold {
            self.record(RecordedEvent::DropSpike {
                at_ns: first_now,
                slot: first_slot,
                drops: slot_drops,
            });
            self.flag(format!(
                "drop spike: {slot_drops} drops in slot {first_slot}"
            ));
            if self.drop_spike_threshold == 0 {
                // Degenerate threshold: per-slot stepping records a
                // zero-drop spike every slot. Reproduce the span in
                // O(capacity) — only the last `capacity` events survive
                // the ring, so older ones just bump the total.
                let extra = view.skipped - 1;
                let synth = extra.min(self.capacity as u64);
                self.total += extra - synth;
                for slot in (end.slot - synth + 1)..=end.slot {
                    self.record(RecordedEvent::DropSpike {
                        at_ns: end.now_ns - (end.slot - slot) * view.slot_ns,
                        slot,
                        drops: 0,
                    });
                }
            }
        }
        let stranded = end.metrics.stranded_cells;
        if stranded > 0 && self.last_stranded == 0 {
            self.record(RecordedEvent::StrandedOnset {
                at_ns: first_now,
                slot: first_slot,
                stranded,
            });
            self.flag(format!(
                "stranded onset: {stranded} cells in slot {first_slot}"
            ));
        }
        self.last_stranded = stranded;
        if let Some(threshold_us) = self.slow_slot_us {
            // Wall-clock watchdog (opt-in, host-dependent): a batched
            // span took one jump of wall time, so it is timed as one.
            let now = Instant::now();
            if let Some(prev) = self.last_slot_end {
                let wall_us = now.duration_since(prev).as_micros() as u64;
                if wall_us >= threshold_us {
                    self.record(RecordedEvent::SlowSlot {
                        slot: end.slot,
                        wall_us,
                    });
                    self.flag(format!("slow slot: {wall_us} us at slot {}", end.slot));
                }
            }
            self.last_slot_end = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::{FlowId, Metrics};
    use sorn_topology::NodeId;

    fn cell(flow: u64, seq: u64) -> Cell {
        Cell {
            flow: FlowId(flow),
            seq,
            src: NodeId(0),
            dst: NodeId(1),
            injected_ns: 0,
            hops: 0,
            tag: 0,
        }
    }

    fn view(metrics: &Metrics, slot: u64) -> SlotView<'_> {
        SlotView {
            slot,
            now_ns: slot * 100,
            metrics,
            total_queued: 0,
            inflight_cells: 0,
            active_flows: 0,
            queues: &[],
        }
    }

    #[test]
    fn ring_is_strictly_bounded_and_keeps_the_newest() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.on_drop(&cell(i, 0), NodeId(0), i * 10);
        }
        assert_eq!(r.total_recorded(), 10);
        let entries = r.entries();
        assert_eq!(entries.len(), 4);
        // Oldest-first: drops of flows 6..10 remain.
        match entries[0] {
            RecordedEvent::Drop { flow, .. } => assert_eq!(*flow, 6),
            other => panic!("unexpected {other:?}"),
        }
        match entries[3] {
            RecordedEvent::Drop { flow, .. } => assert_eq!(*flow, 9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drop_spike_watchdog_flags_anomaly() {
        let mut r = FlightRecorder::new(16).with_drop_spike_threshold(3);
        let mut m = Metrics::default();
        m.dropped_cells = 2;
        r.on_slot_end(&view(&m, 1));
        assert!(r.anomaly().is_none());
        m.dropped_cells = 10; // 8 drops in slot 2
        r.on_slot_end(&view(&m, 2));
        assert!(r.anomaly().unwrap().contains("drop spike"));
        assert!(r.entries().iter().any(|e| matches!(
            e,
            RecordedEvent::DropSpike {
                drops: 8,
                slot: 2,
                ..
            }
        )));
    }

    #[test]
    fn stranded_onset_recorded_once_per_episode() {
        let mut r = FlightRecorder::new(16);
        let mut m = Metrics::default();
        m.stranded_cells = 5;
        r.on_slot_end(&view(&m, 1));
        r.on_slot_end(&view(&m, 2)); // still stranded: no new entry
        m.stranded_cells = 0;
        r.on_slot_end(&view(&m, 3));
        m.stranded_cells = 2;
        r.on_slot_end(&view(&m, 4)); // new episode
        let onsets = r
            .entries()
            .iter()
            .filter(|e| matches!(e, RecordedEvent::StrandedOnset { .. }))
            .count();
        assert_eq!(onsets, 2);
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let mut r = FlightRecorder::new(8);
        r.on_drop(&cell(3, 7), NodeId(2), 400);
        r.on_reconfiguration(5, 500);
        let dump = r.dump_string();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 events
        assert!(lines[0].contains("\"type\":\"flight_recorder\""));
        assert!(lines[0].contains("\"retained\":2"));
        assert!(lines[1].contains("\"type\":\"drop\""));
        assert!(lines[2].contains("\"type\":\"reconfiguration\""));
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }

    #[test]
    fn dump_if_anomalous_writes_only_on_anomaly() {
        let path = std::env::temp_dir().join(format!("sorn-fr-{}.jsonl", std::process::id()));
        let mut r = FlightRecorder::new(8).with_dump_path(&path);
        assert_eq!(r.dump_if_anomalous().unwrap(), None);
        let mut m = Metrics::default();
        m.dropped_cells = DEFAULT_DROP_SPIKE + 1;
        r.on_slot_end(&view(&m, 1));
        assert_eq!(r.dump_if_anomalous().unwrap(), Some(path.clone()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("drop spike"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_round_trip_reproduces_the_dump() {
        let mut r = FlightRecorder::new(4).with_drop_spike_threshold(3);
        for i in 0..6 {
            r.on_drop(&cell(i, 0), NodeId(1), i * 10);
        }
        let mut m = Metrics::default();
        m.dropped_cells = 10;
        r.on_slot_end(&view(&m, 2)); // arms the anomaly, wraps the ring
        r.note_checkpoint_written(2, 123, "/tmp/ckpt-1.sorn");
        r.note_checkpoint_restored(2, "/tmp/ckpt-1.sorn");
        r.note_checkpoint_corrupt_skipped("/tmp/ckpt-2.sorn", "checksum \"mismatch\"");
        let bytes = r.to_bytes();
        let back = FlightRecorder::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.dump_string(), r.dump_string());
        assert_eq!(back.total_recorded(), r.total_recorded());
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-stable");
    }

    #[test]
    fn recorder_blob_truncations_never_panic() {
        let mut r = FlightRecorder::new(4);
        r.note_checkpoint_written(1, 99, "/tmp/x.sorn");
        let bytes = r.to_bytes();
        for len in 0..bytes.len() {
            assert!(FlightRecorder::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn fault_entries_render_targets() {
        use sorn_sim::FaultEvent;
        let mut r = FlightRecorder::new(8);
        let event = FaultEvent {
            at_ns: 100,
            action: FaultAction::Fail,
            target: FaultTarget::Link(NodeId(0), NodeId(1)),
        };
        r.on_fault(&FaultView {
            event: &event,
            slot: 1,
            now_ns: 100,
            failed_nodes: 0,
            failed_links: 1,
        });
        let dump = r.dump_string();
        assert!(dump.contains("\"action\":\"fail\""));
        assert!(dump.contains("\"target\":\"link 0->1\""));
    }
}
