//! A std-only live metrics endpoint for running simulations.
//!
//! [`MetricsServer::bind`] starts a background accept thread serving
//! three read-only routes over HTTP/1.1:
//!
//! - `/metrics` — the latest [`crate::MetricRegistry`] rendering in the
//!   Prometheus text exposition format;
//! - `/health` — `200 ok` while the run is live, `200 done` after;
//! - `/progress` — a small JSON object: slot, simulated time, active
//!   flows, queued and in-flight cells, delivered cells, and wall-clock
//!   cells/s.
//!
//! The simulation side never blocks on the network: a
//! [`MetricsPublisher`] swaps complete pre-rendered snapshots behind a
//! mutex at slot boundaries, and request threads only ever read the
//! current snapshot. [`LiveMetricsProbe`] is the engine-facing wrapper:
//! attach it as (part of) a probe and it re-renders and publishes at
//! most once per `min_publish_interval` of wall time, so even
//! million-slot runs pay a handful of renders per second.
//!
//! Everything here is `std`-only (TcpListener + threads): no HTTP
//! library, no async runtime — the first concrete step toward the
//! resident `sorn-serve` what-if service.

use crate::registry::MetricRegistry;
use sorn_sim::{Metrics, Probe, SlotView};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Snapshot state shared between the publisher and request threads.
#[derive(Debug)]
struct Shared {
    /// Latest Prometheus rendering.
    metrics_text: Mutex<String>,
    /// Latest `/progress` JSON object.
    progress_json: Mutex<String>,
    /// Latest `/weather` JSON report (`{}` until a weather probe
    /// publishes).
    weather_json: Mutex<String>,
    /// Weather headline gauges appended to `/metrics` (empty until a
    /// weather probe publishes).
    weather_gauges: Mutex<String>,
    /// Cleared when the run finishes (`/health` flips to `done`).
    live: AtomicBool,
    /// Set when the accept loop should exit.
    shutdown: AtomicBool,
}

/// The background HTTP listener. Dropping it without
/// [`MetricsServer::shutdown`] leaves the thread serving until process
/// exit (harmless for short-lived binaries, but call `shutdown` for a
/// clean join).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

/// The simulation-side handle: swaps in fresh snapshots.
#[derive(Debug, Clone)]
pub struct MetricsPublisher {
    shared: Arc<Shared>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9898`; port `0` picks a free one)
    /// and starts the accept thread. Returns the server handle and the
    /// publisher for the simulation side.
    pub fn bind(addr: &str) -> io::Result<(MetricsServer, MetricsPublisher)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            metrics_text: Mutex::new(String::new()),
            progress_json: Mutex::new(
                "{\"slot\":0,\"now_ns\":0,\"sim_ns\":0,\"slots_skipped\":0,\
                 \"active_flows\":0,\"queued_cells\":0,\
                 \"inflight_cells\":0,\"delivered_cells\":0,\"cells_per_sec\":0,\
                 \"recent_cells_per_sec\":0,\"slots_per_sec\":0,\"eta_s\":-1}"
                    .to_string(),
            ),
            weather_json: Mutex::new("{}".to_string()),
            weather_gauges: Mutex::new(String::new()),
            live: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sorn-metrics-serve".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok((
            MetricsServer {
                addr: local,
                shared: Arc::clone(&shared),
                handle: Some(handle),
            },
            MetricsPublisher { shared },
        ))
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Marks the run done and joins the accept thread. Existing
    /// snapshots keep serving until the wake-up connection lands.
    pub fn shutdown(mut self) {
        self.shared.live.store(false, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl MetricsPublisher {
    /// Swaps in a fresh Prometheus rendering.
    pub fn publish_metrics(&self, text: String) {
        *self.shared.metrics_text.lock().expect("snapshot lock") = text;
    }

    /// Swaps in a fresh `/progress` snapshot. `cells_per_sec` is the
    /// whole-run average, `recent_cells_per_sec` the rate between the
    /// last two slot-boundary snapshots, and `eta_s` the wall-clock
    /// seconds to `max_slots` at the recent *slot* rate (`-1` when
    /// unknown — no slot bound, or no throughput yet). `sim_ns` (the
    /// simulated time reached, same clock as `now_ns`), `slots_skipped`
    /// (slots covered without a full walk), and `slots_per_sec` keep
    /// progress and ETA meaningful on long-horizon runs where most
    /// slots are fast-forwarded and the cell rate goes quiet.
    #[allow(clippy::too_many_arguments)]
    pub fn publish_progress(
        &self,
        slot: u64,
        now_ns: u64,
        active_flows: usize,
        queued_cells: usize,
        inflight_cells: usize,
        delivered_cells: u64,
        cells_per_sec: u64,
        recent_cells_per_sec: u64,
        slots_skipped: u64,
        slots_per_sec: u64,
        eta_s: i64,
    ) {
        let json = format!(
            "{{\"slot\":{slot},\"now_ns\":{now_ns},\"sim_ns\":{now_ns},\
             \"slots_skipped\":{slots_skipped},\"active_flows\":{active_flows},\
             \"queued_cells\":{queued_cells},\"inflight_cells\":{inflight_cells},\
             \"delivered_cells\":{delivered_cells},\"cells_per_sec\":{cells_per_sec},\
             \"recent_cells_per_sec\":{recent_cells_per_sec},\
             \"slots_per_sec\":{slots_per_sec},\"eta_s\":{eta_s}}}"
        );
        *self.shared.progress_json.lock().expect("snapshot lock") = json;
    }

    /// Swaps in a fresh `/weather` report plus the headline gauges
    /// appended to every `/metrics` response.
    pub fn publish_weather(&self, json: String, gauges: String) {
        *self.shared.weather_json.lock().expect("snapshot lock") = json;
        *self.shared.weather_gauges.lock().expect("snapshot lock") = gauges;
    }

    /// Marks the run finished (`/health` answers `done`); the listener
    /// keeps serving final snapshots until the server is shut down.
    pub fn mark_done(&self) {
        self.shared.live.store(false, Ordering::SeqCst);
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            // One last wake-up connection arrives from shutdown();
            // answer nothing and exit.
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_shared = Arc::clone(&shared);
        // One short-lived thread per request: scrape traffic is a few
        // requests per second at most.
        let _ = std::thread::Builder::new()
            .name("sorn-metrics-conn".into())
            .spawn(move || {
                let _ = serve_one(stream, &conn_shared);
            });
    }
}

fn serve_one(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0;
    // Read until the end of the request head (we ignore any body).
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => {
            // Registry rendering plus weather headline gauges: the two
            // publishers own disjoint snapshots, concatenated per scrape.
            let mut body = shared.metrics_text.lock().expect("snapshot lock").clone();
            body.push_str(&shared.weather_gauges.lock().expect("snapshot lock"));
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", body)
        }
        "/health" => {
            let body = if shared.live.load(Ordering::SeqCst) {
                "ok\n"
            } else {
                "done\n"
            };
            ("200 OK", "text/plain; charset=utf-8", body.to_string())
        }
        "/progress" => (
            "200 OK",
            "application/json",
            shared.progress_json.lock().expect("snapshot lock").clone(),
        ),
        "/weather" => (
            "200 OK",
            "application/json",
            shared.weather_json.lock().expect("snapshot lock").clone(),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A probe that keeps a [`MetricsServer`] fed with fresh snapshots.
///
/// At each slot boundary it updates cheap progress counters; the full
/// Prometheus re-render is wall-clock gated (default every 100 ms) so
/// the simulation never spends meaningful time serializing. Attach it
/// alongside other probes with the tuple combinator:
/// `(live_probe, other_probe)`.
#[derive(Debug)]
pub struct LiveMetricsProbe {
    publisher: MetricsPublisher,
    registry: MetricRegistry,
    min_publish_interval: Duration,
    started: Instant,
    last_publish: Option<Instant>,
    /// Slot bound of the run, for the `/progress` ETA field.
    max_slots: Option<u64>,
    /// The previous published slot-boundary snapshot:
    /// `(instant, slot, delivered_cells)` — the basis for the recent
    /// throughput rate and the ETA.
    last_snapshot: Option<(Instant, u64, u64)>,
}

impl LiveMetricsProbe {
    /// Wraps `publisher` with the default 100 ms re-render gate.
    pub fn new(publisher: MetricsPublisher) -> Self {
        LiveMetricsProbe::with_interval(publisher, Duration::from_millis(100))
    }

    /// Wraps `publisher`, re-rendering at most once per `interval`.
    pub fn with_interval(publisher: MetricsPublisher, interval: Duration) -> Self {
        LiveMetricsProbe {
            publisher,
            registry: MetricRegistry::new(),
            min_publish_interval: interval,
            started: Instant::now(),
            last_publish: None,
            max_slots: None,
            last_snapshot: None,
        }
    }

    /// Declares the run's slot bound so `/progress` can report an ETA.
    pub fn with_max_slots(mut self, max_slots: u64) -> Self {
        self.max_slots = Some(max_slots);
        self
    }

    /// Bumps `sorn_checkpoints_written_total` and pushes a fresh
    /// `/metrics` rendering immediately (checkpoints are rare, so this
    /// bypasses the wall-clock gate).
    pub fn note_checkpoint_written(&mut self) {
        self.bump_checkpoint_counter("sorn_checkpoints_written_total");
    }

    /// Bumps `sorn_checkpoints_restored_total` and re-renders.
    pub fn note_checkpoint_restored(&mut self) {
        self.bump_checkpoint_counter("sorn_checkpoints_restored_total");
    }

    /// Bumps `sorn_checkpoints_corrupt_skipped_total` and re-renders.
    pub fn note_checkpoint_corrupt_skipped(&mut self) {
        self.bump_checkpoint_counter("sorn_checkpoints_corrupt_skipped_total");
    }

    fn bump_checkpoint_counter(&mut self, name: &str) {
        self.registry.inc_counter(name, 1);
        self.publisher
            .publish_metrics(self.registry.render_prometheus());
    }

    fn publish(&mut self, metrics: &Metrics, view: &SlotView<'_>) {
        self.registry.record_engine(metrics);
        self.publisher
            .publish_metrics(self.registry.render_prometheus());
        let elapsed = self.started.elapsed().as_secs_f64();
        let cells_per_sec = if elapsed > 0.0 {
            (metrics.delivered_cells as f64 / elapsed) as u64
        } else {
            0
        };
        // Recent rate and ETA come from the delta between the last two
        // slot-boundary snapshots, not the whole-run average, so they
        // track the *current* pace of a long run.
        let now = Instant::now();
        let mut recent_cells_per_sec = cells_per_sec;
        let mut slots_per_sec = 0.0;
        if let Some((at, slot, delivered)) = self.last_snapshot {
            let window = now.duration_since(at).as_secs_f64();
            if window > 0.0 {
                recent_cells_per_sec =
                    (metrics.delivered_cells.saturating_sub(delivered) as f64 / window) as u64;
                slots_per_sec = view.slot.saturating_sub(slot) as f64 / window;
            }
        }
        let eta_s = match self.max_slots {
            Some(max) if slots_per_sec > 0.0 => {
                (max.saturating_sub(view.slot) as f64 / slots_per_sec).ceil() as i64
            }
            _ => -1,
        };
        self.last_snapshot = Some((now, view.slot, metrics.delivered_cells));
        self.publisher.publish_progress(
            view.slot,
            view.now_ns,
            view.active_flows,
            view.total_queued,
            view.inflight_cells,
            metrics.delivered_cells,
            cells_per_sec,
            recent_cells_per_sec,
            metrics.slots_skipped,
            slots_per_sec as u64,
            eta_s,
        );
    }
}

impl Probe for LiveMetricsProbe {
    fn on_slot_end(&mut self, view: &SlotView<'_>) {
        let due = self
            .last_publish
            .is_none_or(|t| t.elapsed() >= self.min_publish_interval);
        if due {
            self.last_publish = Some(Instant::now());
            self.publish(view.metrics, view);
        }
    }

    // Publishes the final state but does NOT mark the run done: several
    // engine runs may share one publisher (a scenario suite), so the
    // binary calls `MetricsPublisher::mark_done` when all work is over.
    fn on_run_end(&mut self, view: &SlotView<'_>) {
        self.publish(view.metrics, view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_metrics_health_progress_and_404() {
        let (server, publisher) = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        publisher.publish_metrics("# TYPE sorn_x counter\nsorn_x 7\n".to_string());
        publisher.publish_progress(12, 1200, 3, 4, 5, 6, 7, 9, 1000, 8, 42);

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("sorn_x 7"));

        let health = get(addr, "/health");
        assert!(health.contains("ok"));

        let progress = get(addr, "/progress");
        assert!(progress.contains("\"slot\":12"));
        assert!(progress.contains("\"sim_ns\":1200"));
        assert!(progress.contains("\"cells_per_sec\":7"));
        assert!(progress.contains("\"recent_cells_per_sec\":9"));
        assert!(progress.contains("\"slots_skipped\":1000"));
        assert!(progress.contains("\"slots_per_sec\":8"));
        assert!(progress.contains("\"eta_s\":42"));

        let weather = get(addr, "/weather");
        assert!(weather.contains("{}"));
        publisher.publish_weather(
            "{\"scheme\":\"t\"}".to_string(),
            "# TYPE sorn_weather_x gauge\nsorn_weather_x 3\n".to_string(),
        );
        let weather = get(addr, "/weather");
        assert!(weather.contains("\"scheme\":\"t\""));
        // Headline gauges ride along on /metrics.
        let merged = get(addr, "/metrics");
        assert!(merged.contains("sorn_x 7"));
        assert!(merged.contains("sorn_weather_x 3"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        publisher.mark_done();
        let done = get(addr, "/health");
        assert!(done.contains("done"));

        server.shutdown();
    }

    #[test]
    fn snapshots_swap_atomically() {
        let (server, publisher) = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        for i in 0..20 {
            publisher.publish_metrics(format!("gen {i}\n"));
            let text = get(addr, "/metrics");
            // The response is always a complete snapshot: its body is
            // exactly one published generation, never a mix.
            assert!(text.contains("gen "), "{text}");
        }
        server.shutdown();
    }
}
