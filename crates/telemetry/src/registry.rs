//! A registry of named metrics with Prometheus-style export.
//!
//! [`MetricRegistry`] holds counters, gauges, and log-bucketed
//! histograms under stable snake_case names following the scheme
//! `sorn_<subsystem>_<metric>[_<unit>][_total]` (e.g.
//! `sorn_engine_cells_delivered_total`,
//! `sorn_profiler_transmit_ns_total`). Two renderings are offered:
//! the Prometheus text exposition format ([`MetricRegistry::render_prometheus`])
//! and a JSON snapshot ([`MetricRegistry::snapshot_json`]).
//!
//! The JSON is emitted by hand rather than through serde: the shape is
//! tiny and fixed, and hand-writing it keeps this crate's export path
//! free of any serializer behavior differences across environments.
//!
//! Wiring helpers pull in whole subsystems at once:
//! [`MetricRegistry::record_engine`] (run metrics, including the fault
//! machinery's counters) and [`MetricRegistry::record_profile`] (the
//! self-profiler's per-phase timings). The control plane exports its
//! decision log via `sorn_control::DecisionLog::export_metrics`.

use crate::profiler::ProfileReport;
use sorn_sim::{LatencyHistogram, Metrics, Nanos};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A log-bucketed histogram plus the exact sum of its samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramMetric {
    /// The bucketed distribution.
    pub hist: LatencyHistogram,
    /// Exact sum of all recorded values.
    pub sum: u128,
}

/// Named counters, gauges, and histograms.
///
/// Counters are monotone `u64`s, gauges are instantaneous `f64`s,
/// histograms bucket `u64` samples (typically nanoseconds). Names are
/// kept in sorted order so both renderings are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramMetric>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricRegistry::default()
    }

    /// Adds `by` to the named counter, creating it at zero.
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self
            .counters
            .entry(sanitize_name(name).into_owned())
            .or_insert(0) += by;
    }

    /// Sets the named counter outright (for importing totals).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters
            .insert(sanitize_name(name).into_owned(), value);
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(sanitize_name(name).into_owned(), value);
    }

    /// Records one sample into the named histogram, creating it empty.
    pub fn observe(&mut self, name: &str, value: u64) {
        let h = self
            .histograms
            .entry(sanitize_name(name).into_owned())
            .or_default();
        h.hist.record(value);
        h.sum += value as u128;
    }

    /// Imports a whole histogram under `name` (replacing any previous
    /// one), with `sum` the exact sum of its samples.
    pub fn set_histogram(&mut self, name: &str, hist: LatencyHistogram, sum: u128) {
        self.histograms.insert(
            sanitize_name(name).into_owned(),
            HistogramMetric { hist, sum },
        );
    }

    /// The named counter's value, when present. Looks up under the same
    /// sanitization the insert applied, so callers can use the name
    /// they registered with.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(sanitize_name(name).as_ref()).copied()
    }

    /// The named gauge's value, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(sanitize_name(name).as_ref()).copied()
    }

    /// The named histogram, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramMetric> {
        self.histograms.get(sanitize_name(name).as_ref())
    }

    /// Number of registered metrics across all three kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Imports the engine's run metrics (including the fault
    /// machinery's counters) under `sorn_engine_*`.
    pub fn record_engine(&mut self, m: &Metrics) {
        self.set_counter("sorn_engine_slots_total", m.slots);
        self.set_counter("sorn_engine_cells_injected_total", m.injected_cells);
        self.set_counter("sorn_engine_cells_delivered_total", m.delivered_cells);
        self.set_counter("sorn_engine_cells_dropped_total", m.dropped_cells);
        self.set_counter("sorn_engine_cells_stranded", m.stranded_cells);
        self.set_counter("sorn_engine_transmissions_total", m.transmissions);
        self.set_counter("sorn_engine_idle_circuit_slots_total", m.idle_circuit_slots);
        self.set_counter("sorn_engine_flows_completed_total", m.flows.len() as u64);
        self.set_counter("sorn_engine_failure_slots_total", m.failure_slots);
        self.set_counter("sorn_engine_failure_episodes_total", m.failure_episodes);
        self.set_counter(
            "sorn_engine_cells_delivered_during_failure_total",
            m.delivered_during_failure,
        );
        self.set_gauge("sorn_engine_circuit_utilization", m.circuit_utilization());
        self.set_gauge("sorn_engine_delivery_fraction", m.delivery_fraction());
        self.set_gauge("sorn_engine_mean_hops", m.mean_hops());
        self.set_gauge("sorn_engine_link_load_cv", m.link_load_cv());
        self.set_gauge("sorn_engine_peak_queue_depth", m.peak_queue_depth as f64);
        self.set_gauge(
            "sorn_engine_degraded_goodput_ratio",
            m.degraded_goodput_ratio(),
        );
        self.set_histogram(
            "sorn_engine_cell_latency_ns",
            m.cell_latency.clone(),
            m.cell_latency_sum_ns,
        );
    }

    /// Imports a self-profiling report under `sorn_profiler_<phase>_*`.
    pub fn record_profile(&mut self, report: &ProfileReport) {
        for p in &report.phases {
            let phase = p.phase.name();
            self.set_counter(&format!("sorn_profiler_{phase}_spans_total"), p.calls);
            self.set_counter(&format!("sorn_profiler_{phase}_ns_total"), p.total_ns);
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", fmt_f64(*value));
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (le, count) in h.hist.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.hist.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.hist.count());
        }
        out
    }

    /// Renders the registry as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {"count", "sum", "p50", "p99", "p999"}}}` (percentile fields are
    /// `null` for empty histograms).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        out.push_str(&join_entries(
            self.counters
                .iter()
                .map(|(k, v)| format!("{}: {v}", json_string(k))),
        ));
        out.push_str("},\n  \"gauges\": {");
        out.push_str(&join_entries(
            self.gauges
                .iter()
                .map(|(k, v)| format!("{}: {}", json_string(k), fmt_f64(*v))),
        ));
        out.push_str("},\n  \"histograms\": {");
        out.push_str(&join_entries(self.histograms.iter().map(|(k, h)| {
            format!(
                "{}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}}}",
                json_string(k),
                h.hist.count(),
                h.sum,
                fmt_opt(h.hist.p50()),
                fmt_opt(h.hist.p99()),
                fmt_opt(h.hist.p999()),
            )
        })));
        out.push_str("}\n}\n");
        out
    }
}

/// Prometheus metric-name charset: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Forces an arbitrary string into the legal metric-name charset so a
/// hostile or buggy name can never corrupt the text exposition (a name
/// containing a newline or space would otherwise inject whole lines
/// into `render_prometheus`). Legal names borrow straight through;
/// every illegal character becomes `_`, a leading digit is prefixed
/// with `_`, and the empty string becomes `_`.
fn sanitize_name(name: &str) -> std::borrow::Cow<'_, str> {
    if valid_name(name) {
        return std::borrow::Cow::Borrowed(name);
    }
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    std::borrow::Cow::Owned(out)
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Inf; Prometheus tolerates this too as a
        // conservative stand-in.
        "null".to_string()
    }
}

fn fmt_opt(v: Option<Nanos>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn join_entries(entries: impl Iterator<Item = String>) -> String {
    entries.collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sorn_sim::Phase;

    #[test]
    fn counters_and_gauges_round_through_accessors() {
        let mut r = MetricRegistry::new();
        assert!(r.is_empty());
        r.inc_counter("sorn_test_events_total", 2);
        r.inc_counter("sorn_test_events_total", 3);
        r.set_gauge("sorn_test_ratio", 0.5);
        assert_eq!(r.counter("sorn_test_events_total"), Some(5));
        assert_eq!(r.gauge("sorn_test_ratio"), Some(0.5));
        assert_eq!(r.counter("missing"), None);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn observe_builds_a_histogram() {
        let mut r = MetricRegistry::new();
        r.observe("sorn_test_latency_ns", 100);
        r.observe("sorn_test_latency_ns", 300);
        let h = r.histogram("sorn_test_latency_ns").unwrap();
        assert_eq!(h.hist.count(), 2);
        assert_eq!(h.sum, 400);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let mut r = MetricRegistry::new();
        r.set_counter("sorn_a_total", 7);
        r.set_gauge("sorn_b", 0.25);
        r.observe("sorn_c_ns", 600);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE sorn_a_total counter\nsorn_a_total 7\n"));
        assert!(text.contains("# TYPE sorn_b gauge\nsorn_b 0.25\n"));
        assert!(text.contains("# TYPE sorn_c_ns histogram\n"));
        // 600 lands in the [512, 1024) bucket, upper bound 1023.
        assert!(text.contains("sorn_c_ns_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("sorn_c_ns_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("sorn_c_ns_sum 600\n"));
        assert!(text.contains("sorn_c_ns_count 1\n"));
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut r = MetricRegistry::new();
        r.observe("sorn_h_ns", 1); // bucket le=1
        r.observe("sorn_h_ns", 600); // bucket le=1023
        r.observe("sorn_h_ns", 700); // bucket le=1023
        let text = r.render_prometheus();
        assert!(text.contains("sorn_h_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("sorn_h_ns_bucket{le=\"1023\"} 3\n"));
        assert!(text.contains("sorn_h_ns_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn json_snapshot_shape() {
        let mut r = MetricRegistry::new();
        r.set_counter("sorn_a_total", 7);
        r.set_gauge("sorn_b", 0.25);
        r.observe("sorn_c_ns", 600);
        let json = r.snapshot_json();
        assert!(json.contains("\"sorn_a_total\": 7"));
        assert!(json.contains("\"sorn_b\": 0.25"));
        assert!(json.contains("\"sorn_c_ns\": {\"count\": 1, \"sum\": 600"));
        assert!(json.contains("\"p50\": 1023"));
        // Structurally balanced (cheap sanity in lieu of a parser).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn engine_metrics_import() {
        let mut m = Metrics::default();
        m.slots = 10;
        m.injected_cells = 5;
        m.delivered_cells = 4;
        m.transmissions = 8;
        m.failure_slots = 2;
        let mut r = MetricRegistry::new();
        r.record_engine(&m);
        assert_eq!(r.counter("sorn_engine_slots_total"), Some(10));
        assert_eq!(r.counter("sorn_engine_cells_delivered_total"), Some(4));
        assert_eq!(r.counter("sorn_engine_failure_slots_total"), Some(2));
        assert_eq!(r.gauge("sorn_engine_delivery_fraction"), Some(0.5));
        assert!(r.histogram("sorn_engine_cell_latency_ns").is_some());
    }

    #[test]
    fn profile_import_names_every_phase() {
        use crate::profiler::WallClockProfiler;
        use sorn_sim::Profiler as _;
        let p = WallClockProfiler::new();
        p.record(Phase::Transmit, 1_000);
        p.record(Phase::Transmit, 3_000);
        let mut r = MetricRegistry::new();
        r.record_profile(&p.report());
        assert_eq!(r.counter("sorn_profiler_transmit_spans_total"), Some(2));
        assert_eq!(r.counter("sorn_profiler_transmit_ns_total"), Some(4_000));
        assert_eq!(r.counter("sorn_profiler_route_spans_total"), Some(0));
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("sorn_engine_slots_total"));
        assert!(valid_name("_x:y9"));
        assert!(!valid_name(""));
        assert!(!valid_name("9starts_with_digit"));
        assert!(!valid_name("has-dash"));
        assert!(!valid_name("has space"));
    }

    #[test]
    fn hostile_names_are_sanitized_not_rendered_raw() {
        let mut r = MetricRegistry::new();
        // A newline in a name would otherwise inject whole lines into
        // the exposition; spaces and dashes would corrupt parsing.
        r.inc_counter("evil\nname 1\ninjected_line 2", 1);
        r.set_gauge("has-dash and space", 2.0);
        r.inc_counter("9starts_with_digit", 3);
        r.inc_counter("", 4);

        let text = r.render_prometheus();
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let name = line.split([' ', '{']).next().unwrap();
            assert!(valid_name(name), "illegal rendered name {name:?}");
        }
        assert!(!text.contains("injected_line 2\n") || text.contains("_injected_line_2"));
        assert_eq!(r.counter("evil\nname 1\ninjected_line 2"), Some(1));
        assert_eq!(r.counter("evil_name_1_injected_line_2"), Some(1));
        assert_eq!(r.gauge("has_dash_and_space"), Some(2.0));
        assert_eq!(r.counter("_9starts_with_digit"), Some(3));
        assert_eq!(r.counter("_"), Some(4));
    }

    #[test]
    fn sanitize_passes_legal_names_through_unchanged() {
        assert!(matches!(
            sanitize_name("sorn_engine_slots_total"),
            std::borrow::Cow::Borrowed("sorn_engine_slots_total")
        ));
        assert_eq!(sanitize_name("a b"), "a_b");
        assert_eq!(sanitize_name("7up"), "_7up");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn json_string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    }
}
