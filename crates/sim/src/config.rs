//! Simulation configuration and time accounting.
//!
//! The simulator is *slot-synchronous*: the whole fabric advances in fixed
//! time slots, each long enough to reconfigure circuits and transmit one
//! cell per uplink (§2 "Fast Circuit Switches"). Table 1's reference
//! parameters are 100 ns slots, 500 ns of propagation per hop, and 16
//! uplinks per node.

/// Nanoseconds, the simulator's base time unit.
pub type Nanos = u64;

/// Static parameters of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Duration of one time slot in nanoseconds (reconfiguration guard
    /// time included). Table 1 uses 100 ns.
    pub slot_ns: Nanos,
    /// Propagation delay per hop in nanoseconds. Table 1 uses 500 ns.
    pub propagation_ns: Nanos,
    /// Uplinks (parallel OCS planes) per node; each plane follows the same
    /// schedule with a staggered phase.
    pub uplinks: usize,
    /// Payload bytes carried per cell (one cell per slot per uplink).
    ///
    /// At 100 Gb/s per uplink and 100 ns slots this is 1250 bytes.
    pub cell_bytes: u32,
    /// RNG seed; identical seeds reproduce runs exactly.
    pub seed: u64,
    /// Safety bound on hops per cell; exceeding it is a routing bug and
    /// aborts the run with an error.
    pub max_hops: u8,
    /// How many cells deep to scan a class (spray) queue for one whose
    /// routing constraints admit the current circuit. `0` means scan the
    /// whole queue.
    pub class_scan_limit: usize,
    /// Total queued cells a node may hold before arrivals are dropped;
    /// `0` means unbounded (the open-loop default for throughput
    /// studies). Finite caps enable loss experiments.
    pub node_queue_cap: usize,
    /// Threads the engine shards each slot's routing and transmit work
    /// across. `1` (the default) runs the classic inline path with no
    /// worker pool; any value produces bit-identical results — per-node
    /// RNG streams and node-ordered merges make parallelism invisible.
    pub engine_threads: usize,
    /// Causal flow tracing: trace roughly one flow in this many (`1`
    /// traces every flow). `0` — the default — disables tracing; the
    /// engine then emits no hop events and pays nothing. The traced
    /// subset is a pure hash of `(seed, flow id)`, so it is identical
    /// at any `engine_threads` and enabling it never perturbs routing.
    pub trace_one_in: u64,
    /// Checkpoint cadence for long runs, in slots; `0` — the default —
    /// disables periodic checkpointing. The engine itself only exposes
    /// [`Engine::checkpoint`](crate::Engine::checkpoint) at slot
    /// boundaries; run drivers (the `perf`/`resilience`/`sorn-cli`
    /// binaries) consult this cadence to decide *when* to call it and
    /// where the snapshot files go. Restoring a snapshot carries the
    /// cadence along, so a resumed run keeps checkpointing on schedule.
    pub checkpoint_every_slots: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            slot_ns: 100,
            propagation_ns: 500,
            uplinks: 1,
            cell_bytes: 1250,
            seed: 0,
            max_hops: 16,
            class_scan_limit: 0,
            node_queue_cap: 0,
            engine_threads: 1,
            trace_one_in: 0,
            checkpoint_every_slots: 0,
        }
    }
}

impl SimConfig {
    /// Table 1's deployment parameters (100 ns slots, 500 ns propagation,
    /// 16 uplinks, 100 Gb/s-equivalent cells).
    pub fn paper_reference() -> Self {
        SimConfig {
            slot_ns: 100,
            propagation_ns: 500,
            uplinks: 16,
            ..Default::default()
        }
    }

    /// Start time (ns) of slot `t`.
    #[inline]
    pub fn slot_start(&self, slot: u64) -> Nanos {
        slot * self.slot_ns
    }

    /// The slot containing time `ns`.
    #[inline]
    pub fn slot_of(&self, ns: Nanos) -> u64 {
        ns / self.slot_ns
    }

    /// Per-uplink line rate implied by cell size and slot length, in
    /// gigabits per second.
    pub fn line_rate_gbps(&self) -> f64 {
        (self.cell_bytes as f64 * 8.0) / self.slot_ns as f64
    }

    /// Aggregate node bandwidth in gigabits per second (all uplinks).
    pub fn node_bandwidth_gbps(&self) -> f64 {
        self.line_rate_gbps() * self.uplinks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_arithmetic_round_trips() {
        let c = SimConfig::default();
        assert_eq!(c.slot_start(7), 700);
        assert_eq!(c.slot_of(700), 7);
        assert_eq!(c.slot_of(799), 7);
        assert_eq!(c.slot_of(800), 8);
    }

    #[test]
    fn paper_reference_rates() {
        let c = SimConfig::paper_reference();
        // 1250 B per 100 ns slot = 100 Gb/s per uplink.
        assert!((c.line_rate_gbps() - 100.0).abs() < 1e-9);
        assert!((c.node_bandwidth_gbps() - 1600.0).abs() < 1e-9);
        assert_eq!(c.uplinks, 16);
    }
}
